/** @file Session-job overhead vs the blocking sweep, plus streaming
 *  and cancellation latency of the job machinery itself. */

#include <iostream>

#include "api/grid.hh"
#include "api/session.hh"
#include "bench_util.hh"
#include "common/table.hh"

using namespace qmh;

namespace {

/** A cheap analytic design space: per-point cost is microseconds,
 *  so the job bookkeeping dominates and the bench actually measures
 *  the session machinery, not the engines behind it. */
std::vector<api::ExperimentSpec>
bandwidthGrid(std::size_t blocks_points)
{
    api::SpecGrid grid;
    grid.base = api::parseSpec("experiment=bandwidth").spec;
    std::vector<std::string> blocks;
    for (std::size_t b = 0; b < blocks_points; ++b)
        blocks.push_back(std::to_string(10 + 2 * b));
    grid.axis("blocks", blocks);
    grid.axis("utilization", {"0.25", "0.5", "0.75", "1"});
    return grid.expand();
}

void
printSessionDemo()
{
    benchBanner("Session",
                "job-oriented execution: streaming rows, progress, "
                "cooperative cancellation");

    const auto specs = bandwidthGrid(16);
    api::Session session({.threads = 2});
    auto job = session.submit(specs).value();
    std::size_t streamed = 0;
    while (job.nextRow())
        ++streamed;
    const auto result = job.wait();
    std::printf("streamed %zu/%zu rows in index order "
                "(table rows: %zu, cancelled: %s)\n",
                streamed, specs.size(), result.table.rows(),
                result.cancelled ? "yes" : "no");

    auto limited = session.submit(specs).value();
    std::size_t consumed = 0;
    while (consumed < specs.size() / 4 && limited.nextRow())
        ++consumed;
    limited.cancel();
    const auto partial = limited.wait();
    std::printf("cancelled after %zu rows: prefix %zu, executed %zu, "
                "skipped %zu\n",
                consumed, partial.completed, partial.executed,
                partial.skipped);
    maybeWriteSweepOutputs(result.table, "session");
}

/** Baseline: the blocking one-shot sweep of the same design space. */
void
BM_BlockingSpecSweep(benchmark::State &state)
{
    const auto specs =
        bandwidthGrid(static_cast<std::size_t>(state.range(0)));
    sweep::SweepRunner runner(
        {.threads = static_cast<unsigned>(state.range(1))});
    for (auto _ : state) {
        auto table = api::runSpecSweep(runner, specs);
        benchmark::DoNotOptimize(table);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_BlockingSpecSweep)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({64, 2});

/** The same sweep as a session job, drained through the row stream
 *  (the qmh_service hot path: submit + N nextRow + wait). */
void
BM_SessionStreamSweep(benchmark::State &state)
{
    const auto specs =
        bandwidthGrid(static_cast<std::size_t>(state.range(0)));
    api::Session session(sweep::SweepOptions{
        .threads = static_cast<unsigned>(state.range(1))});
    for (auto _ : state) {
        auto job = session.submit(specs).value();
        while (job.nextRow()) {
        }
        auto result = job.wait();
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_SessionStreamSweep)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({64, 2});

/** Submit + immediate cancel + wait: the optimizer's abandon path. */
void
BM_SessionCancelLatency(benchmark::State &state)
{
    const auto specs = bandwidthGrid(64);
    api::Session session(sweep::SweepOptions{.threads = 2});
    for (auto _ : state) {
        auto job = session.submit(specs).value();
        job.cancel();
        auto result = job.wait();
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SessionCancelLatency);

} // namespace

QMH_BENCH_MAIN(printSessionDemo)
