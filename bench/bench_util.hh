/**
 * @file
 * Shared helpers for the reproduction benches: every bench prints its
 * paper artifact (table or figure series) and then runs a small
 * google-benchmark suite over the kernels that produced it.
 */

#ifndef QMH_BENCH_UTIL_HH
#define QMH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include <benchmark/benchmark.h>

#include "sweep/emit.hh"

/** Print the bench banner. */
inline void
benchBanner(const char *artifact, const char *description)
{
    std::printf("==============================================================\n");
    std::printf("%s - %s\n", artifact, description);
    std::printf("(model values computed by qmh; paper values in parentheses)\n");
    std::printf("==============================================================\n");
}

/**
 * When QMH_SWEEP_OUT=<prefix> is set, write @p table to
 * <prefix>_<artifact>.csv and .json (the shared emission protocol of
 * the sweep-based benches).
 */
inline void
maybeWriteSweepOutputs(const qmh::sweep::ResultTable &table,
                       const char *artifact)
{
    const char *out = std::getenv("QMH_SWEEP_OUT");
    if (!out)
        return;
    const std::string base = std::string(out) + "_" + artifact;
    if (table.writeCsvFile(base + ".csv") &&
        table.writeJsonFile(base + ".json"))
        std::printf("sweep results written to %s.{csv,json}\n",
                    base.c_str());
    else
        std::fprintf(stderr, "failed to write %s.*\n", base.c_str());
}

/** Run the reproduction printer, then google-benchmark. */
#define QMH_BENCH_MAIN(print_fn)                                       \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        print_fn();                                                    \
        ::benchmark::Initialize(&argc, argv);                          \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))      \
            return 1;                                                  \
        ::benchmark::RunSpecifiedBenchmarks();                         \
        return 0;                                                      \
    }

#endif // QMH_BENCH_UTIL_HH
