/**
 * @file
 * Shared helpers for the reproduction benches: every bench prints its
 * paper artifact (table or figure series) and then runs a small
 * google-benchmark suite over the kernels that produced it.
 */

#ifndef QMH_BENCH_UTIL_HH
#define QMH_BENCH_UTIL_HH

#include <cstdio>

#include <benchmark/benchmark.h>

/** Print the bench banner. */
inline void
benchBanner(const char *artifact, const char *description)
{
    std::printf("==============================================================\n");
    std::printf("%s - %s\n", artifact, description);
    std::printf("(model values computed by qmh; paper values in parentheses)\n");
    std::printf("==============================================================\n");
}

/** Run the reproduction printer, then google-benchmark. */
#define QMH_BENCH_MAIN(print_fn)                                       \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        print_fn();                                                    \
        ::benchmark::Initialize(&argc, argv);                          \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))      \
            return 1;                                                  \
        ::benchmark::RunSpecifiedBenchmarks();                         \
        return 0;                                                      \
    }

#endif // QMH_BENCH_UTIL_HH
