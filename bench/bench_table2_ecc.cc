/** @file Reproduces paper Table 2: error-correction metric summary. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "ecc/code.hh"
#include "ecc/montecarlo.hh"

using namespace qmh;

namespace {

void
printTable2()
{
    benchBanner("Table 2", "error-correction metric summary");
    const auto params = iontrap::Params::future();

    struct PaperRef {
        double ec[2];
        double size[2];
        double gate[2];
    };
    const PaperRef paper_steane{{3.1e-3, 0.3}, {0.2, 3.4}, {6.2e-3, 0.5}};
    const PaperRef paper_bs{{1.2e-3, 0.1}, {0.1, 2.4}, {2.4e-3, 0.2}};

    AsciiTable t;
    t.setHeader({"Code-Level", "EC time [s]", "Qubit size [mm^2]",
                 "Transversal gate [s]", "Data ions", "Ancilla ions"});
    t.setAlign(0, Align::Left);
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const auto code = ecc::Code::byKind(kind);
        const auto &ref = kind == ecc::CodeKind::Steane713
                              ? paper_steane
                              : paper_bs;
        for (ecc::Level level = 1; level <= 2; ++level) {
            const auto i = static_cast<std::size_t>(level - 1);
            t.addRow({"[[" + std::to_string(code.n()) + ",1,3]] - L" +
                          std::to_string(level),
                      AsciiTable::sci(code.ecTime(level, params)) +
                          " (" + AsciiTable::sci(ref.ec[i]) + ")",
                      AsciiTable::num(code.qubitAreaMm2(level, params),
                                      2) +
                          " (" + AsciiTable::num(ref.size[i], 1) + ")",
                      AsciiTable::sci(
                          code.transversalGateTime(level, params)) +
                          " (" + AsciiTable::sci(ref.gate[i]) + ")",
                      AsciiTable::num(
                          static_cast<std::uint64_t>(code.dataIons(level))),
                      AsciiTable::num(static_cast<std::uint64_t>(
                          code.ancillaIons(level)))});
        }
    }
    t.print(std::cout);

    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const ecc::EcMonteCarlo mc(ecc::Code::byKind(kind));
        std::printf("%s model pseudo-threshold: %.2e (Eq.1 threshold "
                    "constant: %.2e)\n",
                    ecc::Code::byKind(kind).name().c_str(),
                    mc.pseudoThreshold(),
                    ecc::Code::byKind(kind).threshold());
    }
    std::printf("\n");
}

void
BM_EcTime(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    const auto code = ecc::Code::steane();
    for (auto _ : state)
        benchmark::DoNotOptimize(code.ecTime(2, params));
}
BENCHMARK(BM_EcTime);

void
BM_MonteCarloLevel1(benchmark::State &state)
{
    const ecc::EcMonteCarlo mc(ecc::Code::steane());
    Random rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(mc.estimate(1, 1e-3, 1000, rng).rate);
}
BENCHMARK(BM_MonteCarloLevel1);

} // namespace

QMH_BENCH_MAIN(printTable2)
