/** @file Reproduces paper Fig. 6(a): utilization vs compute blocks. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "cqla/perf_model.hh"

using namespace qmh;

namespace {

void
printFig6a()
{
    benchBanner("Figure 6(a)",
                "overall utilization vs number of compute blocks");
    const auto params = iontrap::Params::future();
    cqla::PerformanceModel perf(params);

    const int sizes[] = {32, 64, 128, 256, 512, 1024};
    const unsigned blocks[] = {4, 16, 36, 64, 100, 144, 196};

    AsciiTable t;
    std::vector<std::string> header = {"Blocks"};
    for (const int n : sizes)
        header.push_back(std::to_string(n) + "-qubit");
    t.setHeader(header);
    for (const auto b : blocks) {
        std::vector<std::string> row = {std::to_string(b)};
        for (const int n : sizes)
            row.push_back(
                AsciiTable::num(perf.scheduledUtilization(n, b), 2));
        t.addRow(row);
    }
    t.print(std::cout);
    std::printf("Larger adders keep more blocks busy; utilization "
                "falls as blocks grow (the performance/utilization "
                "balance of Section 5.1).\n\n");
}

void
BM_Utilization(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::PerformanceModel perf(params);
    for (auto _ : state)
        benchmark::DoNotOptimize(perf.utilization(256, 49));
}
BENCHMARK(BM_Utilization);

} // namespace

QMH_BENCH_MAIN(printFig6a)
