/** @file Adaptive optimizer vs exhaustive sweep, cold vs cached. */

#include <iostream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "opt/cached_sweep.hh"
#include "opt/frontier.hh"

using namespace qmh;

namespace {

/** The Table-5-style reference design space the optimizer refines. */
const opt::FrontierAxis axis_fraction{"l1_fraction", 0.2, 0.8, 3};
const opt::FrontierAxis axis_transfers{"transfers", 2, 16, 3};

api::ExperimentSpec
referenceBase()
{
    return api::parseSpec("experiment=hierarchy adders=60 n=64").spec;
}

opt::FrontierOptions
referenceOptions()
{
    opt::FrontierOptions options;
    options.objective = "mean_adder_speedup";
    options.max_depth = 2;
    options.budget = 40;
    options.frontier = 3;
    return options;
}

/** Brute force over the same per-axis lattices the search explores. */
std::vector<api::ExperimentSpec>
bruteForceSpecs(const opt::FrontierOptions &options)
{
    api::SpecGrid grid;
    grid.base = referenceBase();
    for (const auto *axis : {&axis_fraction, &axis_transfers}) {
        const bool integer = opt::frontierAxisIsInteger(axis->key);
        std::vector<std::string> values;
        for (const double v : opt::frontierAxisLattice(
                 *axis, integer, options.max_depth))
            values.push_back(opt::frontierAxisValueText(v, integer));
        grid.axis(axis->key, values);
    }
    return grid.expand();
}

void
printOptimizer()
{
    benchBanner("Optimizer",
                "adaptive frontier refinement vs exhaustive sweep, "
                "plus spec-keyed result caching");

    const auto base = referenceBase();
    const auto options = referenceOptions();
    sweep::SweepRunner runner;

    const auto brute = bruteForceSpecs(options);
    const auto brute_run = opt::runSpecSweepCached(runner, brute);
    const auto obj = *brute_run.table.findColumn(options.objective);
    double brute_best = 0.0;
    for (std::size_t r = 0; r < brute_run.table.rows(); ++r)
        brute_best = std::max(
            brute_best, *brute_run.table.cell(r, obj).asNumber());

    opt::ResultCache cache;  // in-memory: the warm pass replays it
    const auto cold = opt::frontierSearch(
        runner, base, {axis_fraction, axis_transfers}, options, &cache);
    const auto warm = opt::frontierSearch(
        runner, base, {axis_fraction, axis_transfers}, options, &cache);

    AsciiTable t;
    t.setCaption("hierarchy design space: l1_fraction x transfers, "
                 "objective " + options.objective);
    t.setHeader({"run", "points simulated", "best objective"});
    t.setAlign(0, Align::Left);
    t.addRow({"exhaustive sweep",
              AsciiTable::num(std::uint64_t(brute.size())),
              AsciiTable::num(brute_best, 4)});
    t.addRow({"adaptive search (cold)",
              AsciiTable::num(std::uint64_t(cold.simulated)),
              AsciiTable::num(cold.best_objective, 4)});
    t.addRow({"adaptive search (cached)",
              AsciiTable::num(std::uint64_t(warm.simulated)),
              AsciiTable::num(warm.best_objective, 4)});
    t.print(std::cout);

    maybeWriteSweepOutputs(cold.table, "optimizer");
    std::printf("The adaptive search reaches the brute-force optimum "
                "with a fraction of the\nsimulations; a warm "
                "spec-keyed cache replays the rest bit-identically "
                "(0 simulated).\n\n");
}

void
BM_FrontierSearchCold(benchmark::State &state)
{
    const auto base = referenceBase();
    const auto options = referenceOptions();
    sweep::SweepRunner runner(
        {.threads = static_cast<unsigned>(state.range(0))});
    for (auto _ : state) {
        const auto found = opt::frontierSearch(
            runner, base, {axis_fraction, axis_transfers}, options);
        benchmark::DoNotOptimize(found.best_objective);
    }
}
BENCHMARK(BM_FrontierSearchCold)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_FrontierSearchWarmCache(benchmark::State &state)
{
    const auto base = referenceBase();
    const auto options = referenceOptions();
    sweep::SweepRunner runner({.threads = 2});
    opt::ResultCache cache;
    opt::frontierSearch(runner, base, {axis_fraction, axis_transfers},
                        options, &cache);
    for (auto _ : state) {
        const auto found = opt::frontierSearch(
            runner, base, {axis_fraction, axis_transfers}, options,
            &cache);
        benchmark::DoNotOptimize(found.best_objective);
    }
}
BENCHMARK(BM_FrontierSearchWarmCache)->Unit(benchmark::kMillisecond);

void
BM_ResultCacheLookup(benchmark::State &state)
{
    opt::ResultCache cache;
    std::vector<std::string> keys;
    for (int i = 0; i < 512; ++i) {
        keys.push_back("experiment=hierarchy n=" + std::to_string(i));
        cache.insert(keys.back(), opt::specSeed(1, keys.back()),
                     {sweep::Cell(double(i)), sweep::Cell(i)});
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.lookup(keys[i++ & 511]));
    }
}
BENCHMARK(BM_ResultCacheLookup);

} // namespace

QMH_BENCH_MAIN(printOptimizer)
