/** @file Reproduces paper Fig. 7: quantum cache hit rates. */

#include <cstdlib>
#include <iostream>
#include <iterator>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "api/workload.hh"
#include "bench_util.hh"
#include "cache/cache_sim.hh"
#include "common/table.hh"
#include "gen/draper.hh"

using namespace qmh;

namespace {

const char *adder_widths[] = {"64", "128", "256", "512", "1024"};
const char *cache_multipliers[] = {"1", "1.5", "2"};
const char *policies[] = {"inorder", "optimized"};

/**
 * The Fig. 7 design space as one qmh::api spec grid: adder width x
 * cache multiplier x fetch policy, warm-started, data registers
 * cacheable. Point order is (width slowest, policy fastest).
 */
std::vector<api::ExperimentSpec>
fig7Grid()
{
    api::SpecGrid grid;
    grid.base =
        api::parseSpec("experiment=cache workload=draper warm=1")
            .spec;
    grid.axis("n", {std::begin(adder_widths),
                    std::end(adder_widths)});
    grid.axis("capacity_x", {std::begin(cache_multipliers),
                             std::end(cache_multipliers)});
    grid.axis("policy", {std::begin(policies), std::end(policies)});
    return grid.expand();
}

void
printFig7()
{
    benchBanner("Figure 7",
                "cache hit rate, in-order vs optimized fetch, cache "
                "size in {1, 1.5, 2} x PE");

    sweep::SweepRunner runner;
    const auto table = api::runSpecSweep(runner, fig7Grid());
    const auto rate_col = *table.findColumn("hit_rate");

    // Reshape the flat sweep into the paper's figure layout: one row
    // per adder width, one column per cache size, io/opt side by side.
    const std::size_t n_multipliers = std::size(cache_multipliers);
    const std::size_t n_policies = std::size(policies);
    AsciiTable t;
    t.setHeader({"Adder", "PE", "Cache=PE io/opt",
                 "Cache=1.5PE io/opt", "Cache=2PE io/opt"});
    for (std::size_t wi = 0; wi < std::size(adder_widths); ++wi) {
        const int n =
            static_cast<int>(*api::parseInt(adder_widths[wi]));
        std::vector<std::string> row = {
            std::string(adder_widths[wi]) + "-bit",
            std::to_string(api::adderPeQubits(n))};
        for (std::size_t mi = 0; mi < n_multipliers; ++mi) {
            const std::size_t base =
                (wi * n_multipliers + mi) * n_policies;
            const auto io =
                *table.cell(base + 0, rate_col).asNumber();
            const auto opt =
                *table.cell(base + 1, rate_col).asNumber();
            row.push_back(AsciiTable::num(100.0 * io, 1) + "% / " +
                          AsciiTable::num(100.0 * opt, 1) + "%");
        }
        t.addRow(row);
    }
    t.print(std::cout);

    maybeWriteSweepOutputs(table, "fig7");
    std::printf("Optimized dependency-aware fetch dominates in-order "
                "issue (paper: ~20%% -> ~85%%); gains from smarter "
                "fetch exceed gains from a larger cache.\n\n");
}

void
BM_CacheSimInOrder(benchmark::State &state)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache::simulateCache(prog, 441, cache::FetchPolicy::InOrder)
                .hits);
}
BENCHMARK(BM_CacheSimInOrder);

void
BM_CacheSimOptimized(benchmark::State &state)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache::simulateCache(prog, 441,
                                 cache::FetchPolicy::OptimizedLookahead)
                .hits);
}
BENCHMARK(BM_CacheSimOptimized);

} // namespace

QMH_BENCH_MAIN(printFig7)
