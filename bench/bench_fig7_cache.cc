/** @file Reproduces paper Fig. 7: quantum cache hit rates. */

#include <cstdlib>
#include <iostream>
#include <iterator>

#include "bench_util.hh"
#include "cache/cache_sim.hh"
#include "common/table.hh"
#include "cqla/perf_model.hh"
#include "gen/draper.hh"
#include "sweep/sweep.hh"

using namespace qmh;

namespace {

const int adder_widths[] = {64, 128, 256, 512, 1024};
const double cache_multipliers[] = {1.0, 1.5, 2.0};

/** One generated workload: the adder program plus its cacheable set. */
struct Workload
{
    circuit::Program program;
    std::vector<bool> cacheable;
    unsigned pe = 0;
};

Workload
makeWorkload(int n)
{
    Workload w;
    gen::AdderLayout layout;
    w.program = gen::draperAdder(n, true, &layout,
                                 gen::UncomputeMode::CarriesLeftDirty);
    // Cacheable set: the two data registers; carry/tree ancilla are
    // compute-block-local scratch.
    w.cacheable.assign(static_cast<std::size_t>(layout.total_qubits),
                       false);
    for (int i = 0; i < 2 * n; ++i)
        w.cacheable[static_cast<std::size_t>(i)] = true;
    w.pe = 9 * cqla::PerformanceModel::paperBlockCounts(n).second;
    return w;
}

/** Hit rates for one (adder, capacity) cell under both policies. */
struct Fig7Cell
{
    int n = 0;
    double multiplier = 0.0;
    std::size_t capacity = 0;
    double in_order_hit_rate = 0.0;
    double optimized_hit_rate = 0.0;
};

void
printFig7()
{
    benchBanner("Figure 7",
                "cache hit rate, in-order vs optimized fetch, cache "
                "size in {1, 1.5, 2} x PE");

    sweep::SweepRunner runner;

    // Stage 1: generate the adder workloads (one per width) in
    // parallel; each is read-only afterwards.
    const auto workloads = runner.map(
        std::size(adder_widths), [](std::size_t i, Random &) {
            return makeWorkload(adder_widths[i]);
        });

    // Stage 2: fan the (width x capacity) grid across the pool; each
    // point runs both fetch policies on the shared immutable program.
    const std::size_t n_cells =
        std::size(adder_widths) * std::size(cache_multipliers);
    const auto cells = runner.map(
        n_cells, [&workloads](std::size_t i, Random &) {
            const std::size_t wi = i / std::size(cache_multipliers);
            const std::size_t mi = i % std::size(cache_multipliers);
            const Workload &w = workloads[wi];
            Fig7Cell cell;
            cell.n = adder_widths[wi];
            cell.multiplier = cache_multipliers[mi];
            cell.capacity =
                static_cast<std::size_t>(w.pe * cell.multiplier);
            cell.in_order_hit_rate =
                cache::simulateCache(w.program, cell.capacity,
                                     cache::FetchPolicy::InOrder, true,
                                     w.cacheable)
                    .hitRate();
            cell.optimized_hit_rate =
                cache::simulateCache(
                    w.program, cell.capacity,
                    cache::FetchPolicy::OptimizedLookahead, true,
                    w.cacheable)
                    .hitRate();
            return cell;
        });

    AsciiTable t;
    t.setHeader({"Adder", "PE", "Cache=PE io/opt",
                 "Cache=1.5PE io/opt", "Cache=2PE io/opt"});
    for (std::size_t wi = 0; wi < std::size(adder_widths); ++wi) {
        std::vector<std::string> row = {
            std::to_string(adder_widths[wi]) + "-bit",
            std::to_string(workloads[wi].pe)};
        for (std::size_t mi = 0; mi < std::size(cache_multipliers);
             ++mi) {
            const auto &cell =
                cells[wi * std::size(cache_multipliers) + mi];
            row.push_back(
                AsciiTable::num(100.0 * cell.in_order_hit_rate, 1) +
                "% / " +
                AsciiTable::num(100.0 * cell.optimized_hit_rate, 1) +
                "%");
        }
        t.addRow(row);
    }
    t.print(std::cout);

    sweep::ResultTable table({"adder_bits", "pe", "capacity",
                              "multiplier", "in_order_hit_rate",
                              "optimized_hit_rate"});
    for (std::size_t wi = 0; wi < std::size(adder_widths); ++wi)
        for (std::size_t mi = 0; mi < std::size(cache_multipliers);
             ++mi) {
            const auto &cell =
                cells[wi * std::size(cache_multipliers) + mi];
            table.addRow({cell.n, workloads[wi].pe,
                          static_cast<std::uint64_t>(cell.capacity),
                          cell.multiplier, cell.in_order_hit_rate,
                          cell.optimized_hit_rate});
        }
    maybeWriteSweepOutputs(table, "fig7");
    std::printf("Optimized dependency-aware fetch dominates in-order "
                "issue (paper: ~20%% -> ~85%%); gains from smarter "
                "fetch exceed gains from a larger cache.\n\n");
}

void
BM_CacheSimInOrder(benchmark::State &state)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache::simulateCache(prog, 441, cache::FetchPolicy::InOrder)
                .hits);
}
BENCHMARK(BM_CacheSimInOrder);

void
BM_CacheSimOptimized(benchmark::State &state)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache::simulateCache(prog, 441,
                                 cache::FetchPolicy::OptimizedLookahead)
                .hits);
}
BENCHMARK(BM_CacheSimOptimized);

} // namespace

QMH_BENCH_MAIN(printFig7)
