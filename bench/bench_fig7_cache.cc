/** @file Reproduces paper Fig. 7: quantum cache hit rates. */

#include <iostream>

#include "bench_util.hh"
#include "cache/cache_sim.hh"
#include "common/table.hh"
#include "cqla/perf_model.hh"
#include "gen/draper.hh"

using namespace qmh;

namespace {

void
printFig7()
{
    benchBanner("Figure 7",
                "cache hit rate, in-order vs optimized fetch, cache "
                "size in {1, 1.5, 2} x PE");
    AsciiTable t;
    t.setHeader({"Adder", "PE", "Cache=PE io/opt",
                 "Cache=1.5PE io/opt", "Cache=2PE io/opt"});
    for (const int n : {64, 128, 256, 512, 1024}) {
        gen::AdderLayout layout;
        const auto prog = gen::draperAdder(
            n, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
        // Cacheable set: the two data registers; carry/tree ancilla
        // are compute-block-local scratch.
        std::vector<bool> mask(
            static_cast<std::size_t>(layout.total_qubits), false);
        for (int i = 0; i < 2 * n; ++i)
            mask[static_cast<std::size_t>(i)] = true;
        const unsigned pe =
            9 * cqla::PerformanceModel::paperBlockCounts(n).second;

        std::vector<std::string> row = {std::to_string(n) + "-bit",
                                        std::to_string(pe)};
        for (const double mult : {1.0, 1.5, 2.0}) {
            const auto capacity =
                static_cast<std::size_t>(pe * mult);
            const auto in_order = cache::simulateCache(
                prog, capacity, cache::FetchPolicy::InOrder, true,
                mask);
            const auto optimized = cache::simulateCache(
                prog, capacity, cache::FetchPolicy::OptimizedLookahead,
                true, mask);
            row.push_back(
                AsciiTable::num(100.0 * in_order.hitRate(), 1) + "% / " +
                AsciiTable::num(100.0 * optimized.hitRate(), 1) + "%");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::printf("Optimized dependency-aware fetch dominates in-order "
                "issue (paper: ~20%% -> ~85%%); gains from smarter "
                "fetch exceed gains from a larger cache.\n\n");
}

void
BM_CacheSimInOrder(benchmark::State &state)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache::simulateCache(prog, 441, cache::FetchPolicy::InOrder)
                .hits);
}
BENCHMARK(BM_CacheSimInOrder);

void
BM_CacheSimOptimized(benchmark::State &state)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            cache::simulateCache(prog, 441,
                                 cache::FetchPolicy::OptimizedLookahead)
                .hits);
}
BENCHMARK(BM_CacheSimOptimized);

} // namespace

QMH_BENCH_MAIN(printFig7)
