/** @file Reproduces paper Table 4: CQLA modular-exponentiation gains. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "cqla/perf_model.hh"
#include "gen/draper.hh"
#include "sched/scheduler.hh"

using namespace qmh;

namespace {

struct PaperRow
{
    int n;
    unsigned blocks;
    double area_st, area_bs, sp_st, sp_bs, gp_st, gp_bs;
};

const PaperRow paper_rows[] = {
    {32, 4, 6.69, 9.80, 0.54, 1.47, 3.61, 14.41},
    {32, 9, 3.22, 4.74, 0.97, 2.9, 3.14, 13.74},
    {64, 9, 6.36, 9.32, 0.70, 1.92, 4.45, 17.70},
    {64, 16, 3.79, 5.56, 0.98, 3.0, 3.71, 16.68},
    {128, 16, 7.24, 10.6, 0.72, 1.97, 5.24, 20.88},
    {128, 25, 4.90, 7.17, 0.96, 2.84, 4.70, 20.36},
    {256, 36, 6.65, 9.47, 0.92, 2.51, 6.12, 23.68},
    {256, 49, 5.07, 7.43, 0.98, 2.98, 4.96, 22.14},
    {512, 64, 7.42, 10.87, 0.92, 2.50, 6.80, 27.18},
    {512, 81, 6.06, 8.87, 0.98, 2.91, 5.94, 25.81},
    {1024, 100, 9.14, 13.4, 0.80, 2.19, 7.35, 29.35},
    {1024, 121, 7.81, 11.45, 0.97, 2.65, 7.60, 30.34},
};

void
printTable4()
{
    benchBanner("Table 4",
                "CQLA vs QLA for modular exponentiation "
                "(area reduced / speedup / gain product)");
    const auto params = iontrap::Params::future();
    cqla::PerformanceModel perf(params);

    AsciiTable t;
    t.setHeader({"Input", "Blocks", "Area St", "Area BSr", "SpUp St",
                 "SpUp BSr", "GP St", "GP BSr"});
    for (const auto &p : paper_rows) {
        const auto row = perf.table4Row(p.n, p.blocks);
        auto cell = [](double model, double paper) {
            return AsciiTable::num(model, 2) + " (" +
                   AsciiTable::num(paper, 2) + ")";
        };
        t.addRow({std::to_string(p.n) + "-bit",
                  std::to_string(p.blocks),
                  cell(row.area_reduced_steane, p.area_st),
                  cell(row.area_reduced_bacon_shor, p.area_bs),
                  cell(row.speedup_steane, p.sp_st),
                  cell(row.speedup_bacon_shor, p.sp_bs),
                  cell(row.gain_product_steane, p.gp_st),
                  cell(row.gain_product_bacon_shor, p.gp_bs)});
    }
    t.print(std::cout);
    std::printf("Headline: up to %.1fx area reduction (Bacon-Shor, "
                "1024-bit, 100 blocks)\n\n",
                perf.table4Row(1024, 100).area_reduced_bacon_shor);
}

void
BM_AdderGeneration(benchmark::State &state)
{
    const auto n = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(gen::draperAdder(
            n, true, nullptr, gen::UncomputeMode::CarriesLeftDirty));
}
BENCHMARK(BM_AdderGeneration)->Arg(64)->Arg(256)->Arg(1024);

void
BM_RoundSchedule(benchmark::State &state)
{
    const auto prog = gen::draperAdder(
        static_cast<int>(state.range(0)), true, nullptr,
        gen::UncomputeMode::CarriesLeftDirty);
    const sched::LatencyModel lat;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::roundSchedule(prog, lat, 49).makespan);
}
BENCHMARK(BM_RoundSchedule)->Arg(256)->Arg(1024);

} // namespace

QMH_BENCH_MAIN(printTable4)
