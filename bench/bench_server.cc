/** @file Experiment-server throughput: protocol rows/sec over TCP
 *  for one client, for a concurrent client population sharing the
 *  pool, and for warm shared-cache replay (zero simulation). */

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/grid.hh"
#include "api/service.hh"
#include "bench_util.hh"
#include "server/client.hh"
#include "server/server.hh"
#include "sweep/emit.hh"

using namespace qmh;

namespace {

/** Cheap analytic points: the bench measures the transport and the
 *  cache, not the engines (same trick as bench_session). */
std::vector<std::string>
bandwidthSpecs(std::size_t blocks_points)
{
    api::SpecGrid grid;
    grid.base = api::parseSpec("experiment=bandwidth").spec;
    std::vector<std::string> blocks;
    for (std::size_t b = 0; b < blocks_points; ++b)
        blocks.push_back(std::to_string(10 + 2 * b));
    grid.axis("blocks", blocks);
    grid.axis("utilization", {"0.25", "0.5", "0.75", "1"});
    std::vector<std::string> specs;
    for (const auto &spec : grid.expand())
        specs.push_back(api::printSpec(spec));
    return specs;
}

std::string
requestLine(const std::string &id,
            const std::vector<std::string> &specs, bool spec_mode)
{
    std::string line = "{\"id\":" + sweep::jsonQuote(id);
    if (spec_mode)
        line += ",\"seed_mode\":\"spec\"";
    line += ",\"specs\":[";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i)
            line += ",";
        line += sweep::jsonQuote(specs[i]);
    }
    return line + "]}";
}

server::ServerConfig
benchConfig(unsigned threads)
{
    server::ServerConfig config;
    config.threads = threads;
    return config;
}

/** serve() on a background thread for the lifetime of one bench. */
struct RunningServer
{
    std::unique_ptr<server::Server> server;
    std::thread thread;

    explicit RunningServer(server::ServerConfig config)
        : server(server::Server::create(std::move(config)).value()),
          thread([raw = server.get()]() { raw->serve(); })
    {
    }
    ~RunningServer() { finish(); }

    /** Stop serving; only now is stats() safe (loop thread owns the
     *  connection list while serve() runs). */
    server::ServerStats finish()
    {
        server->stop();
        if (thread.joinable())
            thread.join();
        return server->stats();
    }
};

std::size_t
runClient(std::uint16_t port, const std::string &line)
{
    auto client = server::Client::connect("127.0.0.1", port).value();
    std::size_t rows = 0;
    client
        .request(line,
                 [&rows](const std::string &record) {
                     if (record.rfind("{\"type\":\"row\"", 0) == 0)
                         ++rows;
                 })
        .value();
    return rows;
}

void
printServerDemo()
{
    benchBanner("Server",
                "multi-client JSONL serving: shared pool, shared "
                "result cache, byte-identical protocol");

    RunningServer running(benchConfig(2));
    const auto specs = bandwidthSpecs(16);
    std::vector<std::thread> population;
    for (std::size_t k = 0; k < 4; ++k)
        population.emplace_back([&, k]() {
            runClient(running.server->port(),
                      requestLine("demo-" + std::to_string(k), specs,
                                  true));
        });
    for (auto &client : population)
        client.join();

    const auto stats = running.finish();
    std::printf("4 clients x %zu overlapping spec-mode points: "
                "%zu rows, %zu simulated, cache %zu hit(s) / "
                "%zu miss(es)\n",
                specs.size(), stats.rows, stats.simulated,
                stats.cache.hits, stats.cache.misses);
}

/** One client streaming one sweep: transport + protocol overhead on
 *  top of what BM_SessionStreamSweep measures pool-side. */
void
BM_ServerStreamSweep(benchmark::State &state)
{
    RunningServer running(
        benchConfig(static_cast<unsigned>(state.range(1))));
    const auto line = requestLine(
        "bench",
        bandwidthSpecs(static_cast<std::size_t>(state.range(0))),
        false);
    std::size_t rows = 0;
    for (auto _ : state)
        rows += runClient(running.server->port(), line);
    state.SetItemsProcessed(static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ServerStreamSweep)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({64, 2})
    ->Unit(benchmark::kMillisecond);

/** N concurrent clients sweeping the same index-mode grid: fairness
 *  and loop overhead under population load. */
void
BM_ServerConcurrentClients(benchmark::State &state)
{
    RunningServer running(benchConfig(2));
    const std::size_t clients =
        static_cast<std::size_t>(state.range(0));
    const auto specs = bandwidthSpecs(16);
    std::size_t rows = 0;
    for (auto _ : state) {
        std::vector<std::thread> population;
        for (std::size_t k = 0; k < clients; ++k)
            population.emplace_back([&]() {
                runClient(running.server->port(),
                          requestLine("bench", specs, false));
            });
        for (auto &client : population)
            client.join();
        rows += clients * specs.size();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ServerConcurrentClients)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/** Warm-cache replay: every point answered from the shared cache,
 *  nothing simulated — the repeat-population hot path. */
void
BM_ServerCachedReplay(benchmark::State &state)
{
    RunningServer running(benchConfig(2));
    const auto line = requestLine(
        "bench",
        bandwidthSpecs(static_cast<std::size_t>(state.range(0))),
        true);
    runClient(running.server->port(), line); // prime the cache
    std::size_t rows = 0;
    for (auto _ : state)
        rows += runClient(running.server->port(), line);
    state.SetItemsProcessed(static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ServerCachedReplay)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

QMH_BENCH_MAIN(printServerDemo)
