/** @file Reproduces paper Fig. 8(a): modular exponentiation comm vs
 * computation (Bacon-Shor). */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "common/units.hh"
#include "cqla/apps.hh"

using namespace qmh;

namespace {

void
printFig8a()
{
    benchBanner("Figure 8(a)",
                "modular exponentiation: computation vs communication "
                "[hours], Bacon-Shor code");
    const auto params = iontrap::Params::future();
    cqla::ModExpModel model(ecc::Code::baconShor(), params);

    AsciiTable t;
    t.setHeader({"Adder size", "Computation [h]", "Communication [h]",
                 "Comm/Comp"});
    for (const int n : {32, 128, 256, 512, 1024}) {
        const auto blocks =
            cqla::PerformanceModel::paperBlockCounts(n).second;
        const auto times = model.totalTimes(n, blocks);
        t.addRow({std::to_string(n),
                  AsciiTable::num(
                      units::secondsToHours(times.computation_s), 1),
                  AsciiTable::num(
                      units::secondsToHours(times.communication_s), 1),
                  AsciiTable::num(times.communication_s /
                                      times.computation_s,
                                  2)});
    }
    t.print(std::cout);
    std::printf("Computation dominates at every size (paper: ~500 h "
                "computation at 1024 bits); communication hides "
                "behind error correction.\n\n");
}

void
BM_ModExpTimes(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::ModExpModel model(ecc::Code::baconShor(), params);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.totalTimes(256, 49));
}
BENCHMARK(BM_ModExpTimes);

} // namespace

QMH_BENCH_MAIN(printFig8a)
