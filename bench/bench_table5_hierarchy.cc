/** @file Reproduces paper Table 5: memory-hierarchy speedups. */

#include <iostream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "cqla/hierarchy.hh"
#include "cqla/hierarchy_sim.hh"
#include "sweep/sweep.hh"

using namespace qmh;

namespace {

struct PaperRow
{
    ecc::CodeKind code;
    unsigned channels;
    int n;
    double s1, s2, sA, area, gp;
};

const PaperRow paper_rows[] = {
    {ecc::CodeKind::Steane713, 10, 256, 17.417, 0.98, 6.25, 5.07, 31.68},
    {ecc::CodeKind::Steane713, 10, 512, 17.41, 0.97, 6.33, 6.06, 38.38},
    {ecc::CodeKind::Steane713, 10, 1024, 18.18, 0.88, 4.93, 9.14, 45.06},
    {ecc::CodeKind::Steane713, 5, 256, 10.409, 0.98, 4.05, 5.07, 24.99},
    {ecc::CodeKind::Steane713, 5, 512, 10.408, 0.97, 4.04, 6.06, 24.48},
    {ecc::CodeKind::Steane713, 5, 1024, 10.96, 0.88, 2.94, 9.14, 26.87},
    {ecc::CodeKind::BaconShor913, 10, 256, 9.61, 1.53, 5.92, 7.43, 43.99},
    {ecc::CodeKind::BaconShor913, 10, 512, 9.61, 2.28, 8.82, 8.87, 78.23},
    {ecc::CodeKind::BaconShor913, 10, 1024, 10.15, 2.00, 8.10, 13.40,
     108.53},
    {ecc::CodeKind::BaconShor913, 5, 256, 5.17, 1.53, 3.66, 7.43, 27.19},
    {ecc::CodeKind::BaconShor913, 5, 512, 5.17, 2.28, 5.45, 8.87, 48.37},
    {ecc::CodeKind::BaconShor913, 5, 1024, 5.49, 2.00, 4.99, 13.40,
     66.90},
};

/**
 * Design-space grid around the paper's Table-5 operating points:
 * 2 codes x 3 adder widths x 3 channel counts x 2 block counts x
 * 3 level-1 fractions = 108 event-driven simulations, expressed as a
 * generic qmh::api spec grid.
 */
std::vector<api::ExperimentSpec>
table5Grid()
{
    api::SpecGrid grid;
    grid.base =
        api::parseSpec("experiment=hierarchy adders=300").spec;
    grid.axis("code", {"steane", "bacon-shor"});
    grid.axis("n", {"256", "512", "1024"});
    grid.axis("transfers", {"2", "5", "10"});
    grid.axis("blocks", {"49", "100"});
    grid.axis("l1_fraction", {"0.333", "0.5", "0.666"});
    return grid.expand();
}

void
printTable5()
{
    benchBanner("Table 5",
                "memory hierarchy with two encoding levels "
                "(L1/L2/adder speedups, gain product)");
    const auto params = iontrap::Params::future();
    cqla::HierarchyModel hier(params);

    AsciiTable t;
    t.setHeader({"Code", "Xfer", "Size", "L1 SpUp", "L2 SpUp", "f(L1)",
                 "Adder SpUp", "Area Red", "Gain Product"});
    t.setAlign(0, Align::Left);
    for (const auto &p : paper_rows) {
        const auto code = ecc::Code::byKind(p.code);
        const auto row = hier.row(code, p.n, p.channels,
                                  cqla::HierarchyModel::paperBlocks(p.n));
        auto cell = [](double model, double paper) {
            return AsciiTable::num(model, 2) + " (" +
                   AsciiTable::num(paper, 2) + ")";
        };
        t.addRow({code.shortName() == "7" ? "Steane" : "Bacon-Shor",
                  std::to_string(p.channels), std::to_string(p.n),
                  cell(row.level1_speedup, p.s1),
                  cell(row.level2_speedup, p.s2),
                  AsciiTable::num(row.level1_add_fraction, 2),
                  cell(row.adder_speedup, p.sA),
                  cell(row.area_reduced, p.area),
                  cell(row.gain_product, p.gp)});
    }
    t.print(std::cout);

    // Event-driven design-space sweep across every core, routed
    // through the qmh::api facade (one spec grid, one sweep call).
    const auto specs = table5Grid();
    sweep::SweepRunner runner;
    auto table = api::runSpecSweep(runner, specs);

    std::printf("\nDES design-space sweep: %zu points on %u threads; "
                "top configurations by makespan speedup:\n",
                table.rows(), runner.threadCount());
    table.sortRowsByColumnDesc(
        *table.findColumn("makespan_speedup"));
    sweep::toAsciiTable(table, 5, {"spec", "seed"})
        .print(std::cout);

    maybeWriteSweepOutputs(table, "table5");
    std::printf("Headline: ~8x performance (paper Table 5 Bacon-Shor "
                "rows).\n\n");
}

void
BM_HierarchyRow(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::HierarchyModel hier(params);
    const auto code = ecc::Code::baconShor();
    for (auto _ : state)
        benchmark::DoNotOptimize(hier.row(code, 512, 10, 81));
}
BENCHMARK(BM_HierarchyRow);

void
BM_HierarchyDes(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::BaconShor913;
    cfg.n_bits = 256;
    cfg.blocks = 49;
    cfg.total_adders = 120;
    cfg.level1_fraction = 2.0 / 3.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(runHierarchySim(cfg, params));
}
BENCHMARK(BM_HierarchyDes);

/**
 * The full 108-point Table-5 grid at varying thread counts: the
 * speedup of the 8-thread row over the 1-thread row is the sweep
 * engine's wall-clock scaling (real time, not CPU time).
 */
void
BM_HierarchySweep(benchmark::State &state)
{
    const auto specs = table5Grid();
    const auto threads = static_cast<unsigned>(state.range(0));
    sweep::SweepRunner runner({.threads = threads});
    for (auto _ : state) {
        const auto table = api::runSpecSweep(runner, specs);
        benchmark::DoNotOptimize(table.rows());
    }
    state.counters["points"] =
        static_cast<double>(specs.size());
}
BENCHMARK(BM_HierarchySweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

} // namespace

QMH_BENCH_MAIN(printTable5)
