/** @file Reproduces paper Table 5: memory-hierarchy speedups. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "cqla/hierarchy.hh"
#include "cqla/hierarchy_sim.hh"

using namespace qmh;

namespace {

struct PaperRow
{
    ecc::CodeKind code;
    unsigned channels;
    int n;
    double s1, s2, sA, area, gp;
};

const PaperRow paper_rows[] = {
    {ecc::CodeKind::Steane713, 10, 256, 17.417, 0.98, 6.25, 5.07, 31.68},
    {ecc::CodeKind::Steane713, 10, 512, 17.41, 0.97, 6.33, 6.06, 38.38},
    {ecc::CodeKind::Steane713, 10, 1024, 18.18, 0.88, 4.93, 9.14, 45.06},
    {ecc::CodeKind::Steane713, 5, 256, 10.409, 0.98, 4.05, 5.07, 24.99},
    {ecc::CodeKind::Steane713, 5, 512, 10.408, 0.97, 4.04, 6.06, 24.48},
    {ecc::CodeKind::Steane713, 5, 1024, 10.96, 0.88, 2.94, 9.14, 26.87},
    {ecc::CodeKind::BaconShor913, 10, 256, 9.61, 1.53, 5.92, 7.43, 43.99},
    {ecc::CodeKind::BaconShor913, 10, 512, 9.61, 2.28, 8.82, 8.87, 78.23},
    {ecc::CodeKind::BaconShor913, 10, 1024, 10.15, 2.00, 8.10, 13.40,
     108.53},
    {ecc::CodeKind::BaconShor913, 5, 256, 5.17, 1.53, 3.66, 7.43, 27.19},
    {ecc::CodeKind::BaconShor913, 5, 512, 5.17, 2.28, 5.45, 8.87, 48.37},
    {ecc::CodeKind::BaconShor913, 5, 1024, 5.49, 2.00, 4.99, 13.40,
     66.90},
};

void
printTable5()
{
    benchBanner("Table 5",
                "memory hierarchy with two encoding levels "
                "(L1/L2/adder speedups, gain product)");
    const auto params = iontrap::Params::future();
    cqla::HierarchyModel hier(params);

    AsciiTable t;
    t.setHeader({"Code", "Xfer", "Size", "L1 SpUp", "L2 SpUp", "f(L1)",
                 "Adder SpUp", "Area Red", "Gain Product"});
    t.setAlign(0, Align::Left);
    for (const auto &p : paper_rows) {
        const auto code = ecc::Code::byKind(p.code);
        const auto row = hier.row(code, p.n, p.channels,
                                  cqla::HierarchyModel::paperBlocks(p.n));
        auto cell = [](double model, double paper) {
            return AsciiTable::num(model, 2) + " (" +
                   AsciiTable::num(paper, 2) + ")";
        };
        t.addRow({code.shortName() == "7" ? "Steane" : "Bacon-Shor",
                  std::to_string(p.channels), std::to_string(p.n),
                  cell(row.level1_speedup, p.s1),
                  cell(row.level2_speedup, p.s2),
                  AsciiTable::num(row.level1_add_fraction, 2),
                  cell(row.adder_speedup, p.sA),
                  cell(row.area_reduced, p.area),
                  cell(row.gain_product, p.gp)});
    }
    t.print(std::cout);

    // Event-driven cross-check for the headline configuration.
    cqla::HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::BaconShor913;
    cfg.n_bits = 1024;
    cfg.blocks = 100;
    cfg.parallel_transfers = 10;
    cfg.level1_fraction = 2.0 / 3.0;
    cfg.total_adders = 300;
    const auto des = runHierarchySim(cfg, params);
    std::printf("DES cross-check (BS, 1024, 10 ch, 300 adds): "
                "makespan speedup %.2f, add-weighted mean speedup %.2f, "
                "transfer-channel utilization %.2f, %llu events\n",
                des.makespan_speedup, des.mean_adder_speedup,
                des.transfer_utilization,
                static_cast<unsigned long long>(des.events_executed));
    std::printf("Headline: ~8x performance (paper Table 5 Bacon-Shor "
                "rows).\n\n");
}

void
BM_HierarchyRow(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::HierarchyModel hier(params);
    const auto code = ecc::Code::baconShor();
    for (auto _ : state)
        benchmark::DoNotOptimize(hier.row(code, 512, 10, 81));
}
BENCHMARK(BM_HierarchyRow);

void
BM_HierarchyDes(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::BaconShor913;
    cfg.n_bits = 256;
    cfg.blocks = 49;
    cfg.total_adders = 120;
    cfg.level1_fraction = 2.0 / 3.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(runHierarchySim(cfg, params));
}
BENCHMARK(BM_HierarchyDes);

} // namespace

QMH_BENCH_MAIN(printTable5)
