/** @file Reproduces paper Fig. 6(b): superblock bandwidth crossover. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "net/bandwidth.hh"

using namespace qmh;

namespace {

void
printFig6b()
{
    benchBanner("Figure 6(b)",
                "bandwidth required vs available per compute "
                "superblock");
    const auto params = iontrap::Params::future();
    const net::BandwidthModel model(ecc::Code::steane(), 2, params);

    AsciiTable t;
    t.setHeader({"Blocks", "Required worst [q/s]",
                 "Required Draper [q/s]", "Available [q/s]"});
    for (unsigned b = 10; b <= 80; b += 10) {
        t.addRow({std::to_string(b),
                  AsciiTable::num(model.requiredWorstCase(b), 2),
                  AsciiTable::num(model.requiredDraper(b), 2),
                  AsciiTable::num(model.availablePerSuperblock(b), 2)});
    }
    t.print(std::cout);

    const net::BandwidthModel bs(ecc::Code::baconShor(), 2, params);
    std::printf("Draper/available crossover: Steane %u blocks, "
                "Bacon-Shor %u blocks (paper: 36, immaterial of "
                "code)\n\n",
                model.crossoverBlocks(), bs.crossoverBlocks());
}

void
BM_Crossover(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    const net::BandwidthModel model(ecc::Code::steane(), 2, params);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.crossoverBlocks());
}
BENCHMARK(BM_Crossover);

} // namespace

QMH_BENCH_MAIN(printFig6b)
