/** @file Reproduces paper Fig. 6(b): superblock bandwidth crossover. */

#include <cstdlib>
#include <iostream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "net/bandwidth.hh"

using namespace qmh;

namespace {

void
printFig6b()
{
    benchBanner("Figure 6(b)",
                "bandwidth required vs available per compute "
                "superblock");

    // Superblock sizes 10..80 for both codes as one qmh::api spec
    // grid (code slowest, so rows 0..7 are the Steane series).
    api::SpecGrid grid;
    grid.base = api::parseSpec("experiment=bandwidth").spec;
    grid.axis("code", {"steane", "bacon-shor"});
    grid.axis("blocks", {"10", "20", "30", "40", "50", "60", "70",
                         "80"});
    sweep::SweepRunner runner;
    const auto table = api::runSpecSweep(runner, grid.expand());

    auto steane_only = sweep::toAsciiTable(
        table, 8, {"spec", "seed", "code", "level", "utilization",
                   "crossover_blocks"});
    steane_only.setCaption("Steane [[7,1,3]], level 2");
    steane_only.print(std::cout);

    const auto crossover_col = *table.findColumn("crossover_blocks");
    std::printf("Draper/available crossover: Steane %s blocks, "
                "Bacon-Shor %s blocks (paper: 36, immaterial of "
                "code)\n\n",
                table.cell(0, crossover_col).toString().c_str(),
                table.cell(8, crossover_col).toString().c_str());

    maybeWriteSweepOutputs(table, "fig6b");
}

void
BM_Crossover(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    const net::BandwidthModel model(ecc::Code::steane(), 2, params);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.crossoverBlocks());
}
BENCHMARK(BM_Crossover);

} // namespace

QMH_BENCH_MAIN(printFig6b)
