/** @file Reproduces paper Fig. 6(b): superblock bandwidth crossover. */

#include <cstdlib>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "net/bandwidth.hh"
#include "sweep/sweep.hh"

using namespace qmh;

namespace {

/** Supply/demand at one superblock size. */
struct Fig6bPoint
{
    unsigned blocks = 0;
    double required_worst = 0.0;
    double required_draper = 0.0;
    double available = 0.0;
};

void
printFig6b()
{
    benchBanner("Figure 6(b)",
                "bandwidth required vs available per compute "
                "superblock");
    const auto params = iontrap::Params::future();
    const net::BandwidthModel model(ecc::Code::steane(), 2, params);

    // Sweep superblock sizes 10..80 across the pool; the model object
    // is immutable, so points share it freely.
    sweep::SweepRunner runner;
    const auto points =
        runner.map(8, [&model](std::size_t i, Random &) {
            Fig6bPoint point;
            point.blocks = 10 * (static_cast<unsigned>(i) + 1);
            point.required_worst =
                model.requiredWorstCase(point.blocks);
            point.required_draper = model.requiredDraper(point.blocks);
            point.available =
                model.availablePerSuperblock(point.blocks);
            return point;
        });

    AsciiTable t;
    t.setHeader({"Blocks", "Required worst [q/s]",
                 "Required Draper [q/s]", "Available [q/s]"});
    for (const auto &point : points) {
        t.addRow({std::to_string(point.blocks),
                  AsciiTable::num(point.required_worst, 2),
                  AsciiTable::num(point.required_draper, 2),
                  AsciiTable::num(point.available, 2)});
    }
    t.print(std::cout);

    sweep::ResultTable table({"blocks", "required_worst_qps",
                              "required_draper_qps", "available_qps"});
    for (const auto &point : points)
        table.addRow({point.blocks, point.required_worst,
                      point.required_draper, point.available});
    maybeWriteSweepOutputs(table, "fig6b");

    const net::BandwidthModel bs(ecc::Code::baconShor(), 2, params);
    std::printf("Draper/available crossover: Steane %u blocks, "
                "Bacon-Shor %u blocks (paper: 36, immaterial of "
                "code)\n\n",
                model.crossoverBlocks(), bs.crossoverBlocks());
}

void
BM_Crossover(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    const net::BandwidthModel model(ecc::Code::steane(), 2, params);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.crossoverBlocks());
}
BENCHMARK(BM_Crossover);

} // namespace

QMH_BENCH_MAIN(printFig6b)
