/** @file Banked level-2 memory: bank/port scaling of the contended
 * trace engine, plus raw component-kernel throughput under a
 * same-bank conflict storm and a spread access pattern. */

#include <cstdio>
#include <iostream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "api/workload.hh"
#include "bench_util.hh"
#include "sim/banked_memory.hh"
#include "sim/event_queue.hh"
#include "sweep/sweep.hh"
#include "trace/engine.hh"

using namespace qmh;

namespace {

/**
 * The contention design space: a cache too small for the workload
 * (every miss refills through the banks, evictions write back) swept
 * across bank counts and port widths. One bank behind one port is the
 * fully serialized floor; the wide corner approaches the unbanked
 * engine of PR 5.
 */
std::vector<api::ExperimentSpec>
memoryGrid()
{
    api::SpecGrid grid;
    grid.base = api::parseSpec(
                    "experiment=trace workload=draper n=64 blocks=16 "
                    "transfers=8 capacity=16")
                    .spec;
    grid.axis("mem_banks", {"1", "4", "16", "64"});
    grid.axis("mem_ports", {"1", "8"});
    grid.axis("cycles_per_line", {"0", "2"});
    return grid.expand();
}

void
printMemoryTable()
{
    benchBanner("Banked memory",
                "bank-conflict contention under the trace engine "
                "(fills + writebacks through bounded bank queues)");
    const auto specs = memoryGrid();
    sweep::SweepRunner runner;
    auto table = api::runSpecSweep(runner, specs);

    std::printf("bank/port scaling: %zu contended trace runs on %u "
                "threads; fastest configurations first:\n",
                table.rows(), runner.threadCount());
    table.sortRowsByColumnDesc(*table.findColumn("speedup"));
    sweep::toAsciiTable(table, 8, {"spec", "seed"})
        .print(std::cout);

    maybeWriteSweepOutputs(table, "memory");
    std::printf("Headline: with one bank behind one port every fill "
                "serializes (bank_conflicts counts the queue); banks "
                "and ports buy the makespan back until the transfer "
                "channels are the bottleneck again.\n\n");
}

/**
 * Raw kernel throughput: N requests through the banked memory, either
 * all hammering bank 0 (storm) or striped across every bank
 * (spread). The gap is the cost of queueing itself, with no cache or
 * transfer machinery around it.
 */
void
BM_BankedMemory(benchmark::State &state)
{
    const auto banks = static_cast<unsigned>(state.range(0));
    const bool storm = state.range(1) != 0;
    constexpr std::uint64_t kRequests = 4096;
    std::uint64_t conflicts = 0;
    for (auto _ : state) {
        sim::EventQueue eq;
        sim::BankedMemoryConfig config;
        config.banks = banks;
        config.ports = banks;
        config.buffer = 64;
        config.cycles_per_request = 10;
        sim::BankedMemory memory(eq, "mem", config);
        eq.schedule(0, [&]() {
            for (std::uint64_t i = 0; i < kRequests; ++i)
                memory.request(storm ? 0 : i, 1, {});
        });
        eq.run();
        benchmark::DoNotOptimize(memory.served());
        conflicts = memory.bankConflicts();
    }
    state.counters["requests_per_sec"] = benchmark::Counter(
        static_cast<double>(kRequests) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
    state.counters["bank_conflicts"] =
        static_cast<double>(conflicts);
}
BENCHMARK(BM_BankedMemory)
    ->ArgsProduct({{1, 8, 64}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

/** One contended end-to-end trace run at each bank count. */
void
BM_TraceContended(benchmark::State &state)
{
    Random rng(7);
    api::ExperimentSpec spec;
    spec.workload = "draper";
    spec.n = 64;
    const auto workload = api::buildWorkload(spec, rng);
    trace::TraceConfig config;
    config.blocks = 16;
    config.transfers = 8;
    config.capacity = 16;
    config.mem_banks = static_cast<unsigned>(state.range(0));
    config.mem_ports = config.mem_banks;
    const auto params = iontrap::Params::future();
    std::uint64_t conflicts = 0;
    for (auto _ : state) {
        const auto result =
            trace::runTrace(workload, config, params);
        benchmark::DoNotOptimize(result.makespan_s);
        conflicts = result.bank_conflicts;
    }
    state.counters["bank_conflicts"] =
        static_cast<double>(conflicts);
}
BENCHMARK(BM_TraceContended)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);

} // namespace

QMH_BENCH_MAIN(printMemoryTable)
