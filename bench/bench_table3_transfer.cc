/** @file Reproduces paper Table 3: code-transfer network latencies. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "net/transfer.hh"

using namespace qmh;

namespace {

void
printTable3()
{
    benchBanner("Table 3", "transfer-network latency matrix [s]");
    const auto params = iontrap::Params::future();
    const net::TransferNetwork network(params);

    const std::vector<net::Encoding> encodings = {
        {ecc::CodeKind::Steane713, 1},
        {ecc::CodeKind::Steane713, 2},
        {ecc::CodeKind::BaconShor913, 1},
        {ecc::CodeKind::BaconShor913, 2}};
    // Paper Table 3, row = source, column = destination.
    const double paper[4][4] = {{0, 0.6, 0.02, 0.2},
                                {1.3, 0, 1.3, 1.5},
                                {0.01, 0.5, 0, 0.1},
                                {0.4, 0.9, 0.4, 0}};

    const auto matrix = network.latencyMatrix(encodings);
    AsciiTable t;
    std::vector<std::string> header = {"from \\ to"};
    for (const auto &e : encodings)
        header.push_back(net::encodingLabel(e));
    t.setHeader(header);
    t.setAlign(0, Align::Left);
    for (std::size_t i = 0; i < encodings.size(); ++i) {
        std::vector<std::string> row = {net::encodingLabel(encodings[i])};
        for (std::size_t j = 0; j < encodings.size(); ++j) {
            row.push_back(AsciiTable::num(matrix[i][j], 3) + " (" +
                          AsciiTable::num(paper[i][j], 2) + ")");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::printf("Model: T = %.1f x EC(src) + %.1f x EC(dst); see "
                "EXPERIMENTS.md for the single outlier (9-L1 -> 9-L2).\n\n",
                net::TransferNetwork::src_ec_equivalents,
                net::TransferNetwork::dst_ec_equivalents);
}

void
BM_TransferMatrix(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    const net::TransferNetwork network(params);
    const std::vector<net::Encoding> encodings = {
        {ecc::CodeKind::Steane713, 1},
        {ecc::CodeKind::Steane713, 2},
        {ecc::CodeKind::BaconShor913, 1},
        {ecc::CodeKind::BaconShor913, 2}};
    for (auto _ : state)
        benchmark::DoNotOptimize(network.latencyMatrix(encodings));
}
BENCHMARK(BM_TransferMatrix);

} // namespace

QMH_BENCH_MAIN(printTable3)
