/** @file Reproduces paper Table 1: physical operation parameters. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "iontrap/geometry.hh"
#include "iontrap/params.hh"

using namespace qmh;

namespace {

void
printTable1()
{
    benchBanner("Table 1", "ion-trap physical operation parameters");
    const auto now = iontrap::Params::currentTechnology();
    const auto future = iontrap::Params::future();

    AsciiTable t;
    t.setCaption("Operation time [us] and failure rate, now (future)");
    t.setHeader({"Operation", "Time now", "Time future", "Fail now",
                 "Fail future"});
    t.setAlign(0, Align::Left);
    using iontrap::PhysOp;
    for (const auto op :
         {PhysOp::SingleGate, PhysOp::DoubleGate, PhysOp::Measure,
          PhysOp::Move, PhysOp::Split, PhysOp::Cooling}) {
        t.addRow({iontrap::physOpName(op),
                  AsciiTable::num(now.opTimeUs(op), 1),
                  AsciiTable::num(future.opTimeUs(op), 1),
                  AsciiTable::sci(now.opFailure(op)),
                  AsciiTable::sci(future.opFailure(op))});
    }
    t.addRow({"memory time [s]", AsciiTable::num(now.memory_time_s, 0),
              AsciiTable::num(future.memory_time_s, 0), "-", "-"});
    t.addRow({"trap size [um]", AsciiTable::num(now.trap_size_um, 0),
              AsciiTable::num(future.trap_size_um, 0), "-", "-"});
    t.print(std::cout);
    std::printf("Fundamental cycle: %.0f us; trapping region: %.0f um; "
                "p0 (Eq.1 average): %.2e\n\n",
                future.cycle_us, future.regionDimUm(),
                future.averageFailure());
}

void
BM_MoveLatency(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    const iontrap::TrapGrid grid(256, 256, params);
    int x = 0;
    for (auto _ : state) {
        x = (x + 37) % 256;
        benchmark::DoNotOptimize(
            grid.moveLatencyCycles({0, 0}, {x, 255 - x}));
    }
}
BENCHMARK(BM_MoveLatency);

} // namespace

QMH_BENCH_MAIN(printTable1)
