/** @file Reproduces paper Fig. 2: 64-bit adder parallelism profile. */

#include <iostream>

#include "bench_util.hh"
#include "circuit/dag.hh"
#include "common/table.hh"
#include "gen/draper.hh"
#include "sched/scheduler.hh"

using namespace qmh;

namespace {

void
printFig2()
{
    benchBanner("Figure 2",
                "gates in parallel vs time, 64-qubit adder "
                "(unlimited resources vs 15 compute blocks)");
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    const sched::LatencyModel lat;
    const auto unlimited =
        sched::roundSchedule(prog, lat, sched::unlimited_blocks);
    const auto capped = sched::listSchedule(prog, lat, 15);

    const auto u_profile = unlimited.windowedProfile(lat.toffoli);
    const auto c_profile = capped.windowedProfile(lat.toffoli);

    AsciiTable t;
    t.setHeader({"Toffoli slot", "Unlimited", "15 blocks"});
    const auto slots = std::max(u_profile.size(), c_profile.size());
    for (std::size_t s = 0; s < slots; ++s) {
        t.addRow({std::to_string(s + 1),
                  s < u_profile.size()
                      ? AsciiTable::num(u_profile[s], 1)
                      : "-",
                  s < c_profile.size()
                      ? AsciiTable::num(c_profile[s], 1)
                      : "-"});
    }
    t.print(std::cout);
    std::printf("Unlimited: makespan %llu steps (%.1f Toffoli slots), "
                "peak %u gates (paper peak ~57)\n",
                static_cast<unsigned long long>(unlimited.makespan),
                static_cast<double>(unlimited.makespan) / lat.toffoli,
                unlimited.peakParallelism());
    std::printf("15 blocks: makespan %llu steps - work bound "
                "W/15 = %.0f steps <= critical path, so runtime is "
                "unchanged (the paper's claim)\n\n",
                static_cast<unsigned long long>(capped.makespan),
                static_cast<double>(capped.busy_block_steps) / 15.0);
}

void
BM_DagConstruction(benchmark::State &state)
{
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    for (auto _ : state)
        benchmark::DoNotOptimize(circuit::DependencyGraph(prog).depth());
}
BENCHMARK(BM_DagConstruction);

void
BM_ListSchedule15(benchmark::State &state)
{
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    const sched::LatencyModel lat;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::listSchedule(prog, lat, 15).makespan);
}
BENCHMARK(BM_ListSchedule15);

} // namespace

QMH_BENCH_MAIN(printFig2)
