/** @file Reproduces paper Fig. 8(b): QFT comm vs computation. */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "cqla/apps.hh"
#include "gen/qft.hh"
#include "net/mesh.hh"
#include "net/teleport.hh"

using namespace qmh;

namespace {

void
printFig8b()
{
    benchBanner("Figure 8(b)",
                "QFT: computation vs communication [s], Bacon-Shor "
                "code");
    const auto params = iontrap::Params::future();
    cqla::QftModel model(ecc::Code::baconShor(), params);

    AsciiTable t;
    t.setHeader({"Problem size", "Computation [s]",
                 "Communication [s]", "Comm/Comp"});
    for (int n = 100; n <= 1000; n += 100) {
        const auto times = model.totalTimes(n);
        t.addRow({std::to_string(n),
                  AsciiTable::num(times.computation_s, 0),
                  AsciiTable::num(times.communication_s, 0),
                  AsciiTable::num(times.communication_s /
                                      times.computation_s,
                                  2)});
    }
    t.print(std::cout);

    // Mesh all-to-all sanity: the personalized exchange fits inside
    // the serialized execution window.
    const net::TeleportModel teleport(ecc::Code::baconShor(), 2,
                                      params);
    const net::Mesh mesh(6);  // 36-block superblock
    std::printf("Mesh check (n=1000, 6x6 superblock): all-to-all "
                "exchange %.0f s vs %.0f s serialized computation\n",
                mesh.allToAllTime(1000, teleport.channelRate()),
                model.totalTimes(1000).computation_s);
    std::printf("Communication closely tracks computation at every "
                "size (paper Fig. 8b).\n\n");
}

void
BM_QftGeneration(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(gen::qft(128).size());
}
BENCHMARK(BM_QftGeneration);

void
BM_QftTimes(benchmark::State &state)
{
    const auto params = iontrap::Params::future();
    cqla::QftModel model(ecc::Code::baconShor(), params);
    for (auto _ : state)
        benchmark::DoNotOptimize(model.totalTimes(1000));
}
BENCHMARK(BM_QftTimes);

} // namespace

QMH_BENCH_MAIN(printFig8b)
