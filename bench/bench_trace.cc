/** @file Trace-driven hierarchy engine: end-to-end circuit -> cache
 * -> transfer-network runs, and sweep throughput at 1/4/8 threads. */

#include <cstdio>
#include <iostream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "api/workload.hh"
#include "bench_util.hh"
#include "sweep/sweep.hh"
#include "trace/engine.hh"

using namespace qmh;

namespace {

/**
 * Design-space grid around the paper's operating points, executed at
 * instruction granularity: 2 codes x 2 adder workloads x channel and
 * capacity sweeps = 24 event-driven trace simulations.
 */
std::vector<api::ExperimentSpec>
traceGrid()
{
    api::SpecGrid grid;
    grid.base =
        api::parseSpec("experiment=trace n=64 blocks=49").spec;
    grid.axis("code", {"steane", "bacon-shor"});
    grid.axis("workload", {"draper", "qft"});
    grid.axis("transfers", {"2", "5", "10"});
    grid.axis("capacity_x", {"1", "2"});
    return grid.expand();
}

void
printTraceTable()
{
    benchBanner("Trace engine",
                "gate-level circuits through the full memory "
                "hierarchy (cache residency + transfer channels)");
    const auto specs = traceGrid();
    sweep::SweepRunner runner;
    auto table = api::runSpecSweep(runner, specs);

    std::printf("trace design-space sweep: %zu points on %u "
                "threads; top configurations by speedup over the "
                "flat level-2 baseline:\n",
                table.rows(), runner.threadCount());
    table.sortRowsByColumnDesc(*table.findColumn("speedup"));
    sweep::toAsciiTable(table, 8, {"spec", "seed"})
        .print(std::cout);

    maybeWriteSweepOutputs(table, "trace");
    std::printf("Headline: the hierarchy pays off once transfer "
                "channels and cache capacity match the circuit's "
                "parallelism (paper Fig. 2 / Fig. 7 / Table 5).\n\n");
}

/** One end-to-end trace run (engine cost without the sweep layer). */
void
BM_TraceRun(benchmark::State &state)
{
    Random rng(7);
    api::ExperimentSpec spec;
    spec.workload = "draper";
    spec.n = static_cast<int>(state.range(0));
    const auto workload = api::buildWorkload(spec, rng);
    trace::TraceConfig config;
    config.blocks = 49;
    config.transfers = 10;
    config.capacity = 2 * workload.pe_qubits;
    const auto params = iontrap::Params::future();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            trace::runTrace(workload, config, params));
    state.counters["gates"] =
        static_cast<double>(workload.program.size());
}
BENCHMARK(BM_TraceRun)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

/**
 * The 24-point trace grid at 1/4/8 threads: points/sec is the trace
 * engine's sweep throughput, and the 8-thread row over the 1-thread
 * row is the wall-clock scaling (real time, not CPU time).
 */
void
BM_TraceSweep(benchmark::State &state)
{
    const auto specs = traceGrid();
    const auto threads = static_cast<unsigned>(state.range(0));
    sweep::SweepRunner runner({.threads = threads});
    for (auto _ : state) {
        const auto table = api::runSpecSweep(runner, specs);
        benchmark::DoNotOptimize(table.rows());
    }
    state.counters["points_per_sec"] = benchmark::Counter(
        static_cast<double>(specs.size()) *
            static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceSweep)->Arg(1)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

} // namespace

QMH_BENCH_MAIN(printTraceTable)
