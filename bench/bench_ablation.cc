/**
 * @file
 * Ablation studies over the design choices DESIGN.md calls out:
 * scheduling discipline, barrier fences, adder circuit family, cache
 * fetch policy, and error-correcting code.
 */

#include <iostream>

#include "bench_util.hh"
#include "cache/cache_sim.hh"
#include "common/table.hh"
#include "cqla/hierarchy.hh"
#include "gen/draper.hh"
#include "gen/ripple.hh"
#include "sched/scheduler.hh"

using namespace qmh;

namespace {

void
printAblations()
{
    benchBanner("Ablations", "design-choice sensitivity studies");
    const sched::LatencyModel lat;

    // 1. Scheduling discipline: round-synchronous vs overlapped list
    // scheduling, with and without barrier fences.
    {
        AsciiTable t;
        t.setCaption("A1. 256-bit adder makespan [gate-steps] by "
                     "scheduling discipline (B = 36)");
        t.setHeader({"Variant", "Round-sync", "Greedy list"});
        t.setAlign(0, Align::Left);
        for (const bool barriers : {true, false}) {
            const auto prog = gen::draperAdder(
                256, true, nullptr,
                gen::UncomputeMode::CarriesLeftDirty, barriers);
            const auto rs = sched::roundSchedule(prog, lat, 36);
            const auto ls = sched::listSchedule(prog, lat, 36);
            t.addRow({barriers ? "with barriers" : "no barriers",
                      std::to_string(rs.makespan),
                      std::to_string(ls.makespan)});
        }
        t.print(std::cout);
    }

    // 2. Adder family: logarithmic-depth CLA vs linear ripple.
    {
        AsciiTable t;
        t.setCaption("A2. carry-lookahead vs ripple-carry "
                     "(unlimited blocks, full uncompute)");
        t.setHeader({"n", "CLA steps", "Ripple steps", "CLA/Ripple"});
        for (const int n : {16, 64, 256}) {
            const auto cla = sched::listSchedule(
                gen::draperAdder(n, true, nullptr,
                                 gen::UncomputeMode::Full, false),
                lat, sched::unlimited_blocks);
            const auto rip = sched::listSchedule(
                gen::rippleAdder(n), lat, sched::unlimited_blocks);
            t.addRow({std::to_string(n), std::to_string(cla.makespan),
                      std::to_string(rip.makespan),
                      AsciiTable::num(static_cast<double>(cla.makespan) /
                                          static_cast<double>(
                                              rip.makespan),
                                      2)});
        }
        t.print(std::cout);
    }

    // 3. Transfer-channel sensitivity of the hierarchy speedup.
    {
        const auto params = iontrap::Params::future();
        cqla::HierarchyModel hier(params);
        AsciiTable t;
        t.setCaption("A3. adder speedup vs transfer channels "
                     "(Bacon-Shor, 1024-bit, 100 blocks)");
        t.setHeader({"Channels", "L1 speedup", "Adder speedup"});
        for (const unsigned ch : {1u, 2u, 5u, 10u, 20u, 40u}) {
            const auto row =
                hier.row(ecc::Code::baconShor(), 1024, ch, 100);
            t.addRow({std::to_string(ch),
                      AsciiTable::num(row.level1_speedup, 2),
                      AsciiTable::num(row.adder_speedup, 2)});
        }
        t.print(std::cout);
    }

    // 4. Cache capacity sweep under both fetch policies.
    {
        gen::AdderLayout layout;
        const auto prog = gen::draperAdder(
            256, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
        std::vector<bool> mask(
            static_cast<std::size_t>(layout.total_qubits), false);
        for (int i = 0; i < 512; ++i)
            mask[static_cast<std::size_t>(i)] = true;
        AsciiTable t;
        t.setCaption("A4. 256-bit adder hit rate vs cache capacity");
        t.setHeader({"Capacity", "In-order", "Optimized"});
        for (const std::size_t cap : {64u, 128u, 256u, 384u, 512u}) {
            const auto io = cache::simulateCache(
                prog, cap, cache::FetchPolicy::InOrder, true, mask);
            const auto opt = cache::simulateCache(
                prog, cap, cache::FetchPolicy::OptimizedLookahead, true,
                mask);
            t.addRow({std::to_string(cap),
                      AsciiTable::num(100.0 * io.hitRate(), 1) + "%",
                      AsciiTable::num(100.0 * opt.hitRate(), 1) + "%"});
        }
        t.print(std::cout);
    }
    std::printf("\n");
}

void
BM_GreedyVsRound(benchmark::State &state)
{
    const auto prog = gen::draperAdder(
        512, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    const sched::LatencyModel lat;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            sched::listSchedule(prog, lat, 64).makespan);
}
BENCHMARK(BM_GreedyVsRound);

} // namespace

QMH_BENCH_MAIN(printAblations)
