/**
 * @file
 * Scenario: sweep any experiment's design space on every core.
 *
 * Builds a base qmh::api::ExperimentSpec from `key=value` arguments,
 * expands `--axis key=v1,v2,...` overrides into a SpecGrid (any spec
 * key is sweepable — including the experiment kind's own knobs), fans
 * the points across a worker pool with deterministic per-point
 * seeding, ranks the result rows, and optionally writes the full
 * result set as CSV and JSON for downstream analysis.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "api/grid.hh"
#include "api/session.hh"
#include "api/workload.hh"
#include "cli_util.hh"

namespace {

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options] [key=value ...]\n"
        "  key=value        override the base spec "
        "(default: experiment=hierarchy)\n"
        "  --axis key=v1,v2 sweep axis; repeatable, any spec key\n"
        "  --rank COLUMN    sort rows by COLUMN descending\n"
        "  --threads N      worker threads (default: all cores)\n"
        "  --points SIZE    built-in hierarchy grid: small | full\n"
        "                   (used when no --axis is given)\n"
        "  --seed S         base seed for per-point RNG streams\n"
        "  --progress       stream per-point progress to stderr\n"
        "  --out PREFIX     write PREFIX.csv and PREFIX.json\n"
        "  --list-keys      print every spec key\n"
        "  --list-workloads print the workload registry\n"
        "  --help           this message\n",
        prog);
}

/** The PR-1 hierarchy demo grids, now expressed as spec axes. */
void
addDefaultHierarchyAxes(qmh::api::SpecGrid &grid, bool small_grid)
{
    grid.axis("code", {"steane", "bacon-shor"});
    if (small_grid) {
        grid.base.adders = 60;
        grid.axis("n", {"64", "128"});
        grid.axis("transfers", {"5", "10"});
        grid.axis("l1_fraction", {"0.333", "0.666"});
    } else {
        grid.axis("n", {"256", "512", "1024"});
        grid.axis("transfers", {"2", "5", "10", "20"});
        grid.axis("blocks", {"25", "49", "100"});
        grid.axis("l1_fraction", {"0.25", "0.333", "0.5", "0.666"});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    unsigned threads = 0;
    std::uint64_t seed = sweep::SweepOptions{}.base_seed;
    std::string out_prefix;
    std::string rank_column;
    bool small_grid = false;
    bool progress = false;
    std::vector<std::string> spec_tokens = {"experiment=hierarchy"};
    std::vector<std::string> axis_args;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) {
            return cli::flagValue(argc, argv, i, flag);
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--list-keys") {
            for (const auto &key : api::specKeys())
                std::printf("  %-14s %s\n", key.c_str(),
                            api::specKeyHelp(key));
            return 0;
        } else if (arg == "--list-workloads") {
            for (const auto &generator : api::workloadRegistry())
                std::printf("  %-8s %s\n", generator.name.c_str(),
                            generator.description.c_str());
            return 0;
        } else if (arg == "--threads") {
            const auto parsed = cli::threadsArg(next_value("--threads"));
            if (!parsed) {
                std::fprintf(stderr, "--threads: bad value\n");
                return 1;
            }
            threads = *parsed;
        } else if (arg == "--seed") {
            const auto parsed = cli::seedArg(next_value("--seed"));
            if (!parsed) {
                std::fprintf(stderr, "--seed: bad value\n");
                return 1;
            }
            seed = *parsed;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--out") {
            out_prefix = next_value("--out");
        } else if (arg == "--rank") {
            rank_column = next_value("--rank");
        } else if (arg == "--axis") {
            axis_args.emplace_back(next_value("--axis"));
        } else if (arg == "--points") {
            const char *size = next_value("--points");
            if (std::strcmp(size, "small") == 0) {
                small_grid = true;
            } else if (std::strcmp(size, "full") == 0) {
                small_grid = false;
            } else {
                std::fprintf(stderr,
                             "--points must be small or full, got %s\n",
                             size);
                return 1;
            }
        } else if (cli::isSpecToken(arg)) {
            spec_tokens.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printUsage(argv[0]);
            return 1;
        }
    }

    const auto parsed = api::parseSpecTokens(spec_tokens);
    if (!parsed.ok()) {
        for (const auto &error : parsed.errors)
            std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    api::SpecGrid grid;
    grid.base = parsed.spec;
    for (const auto &axis : axis_args) {
        const auto error = grid.addAxis(axis);
        if (!error.empty()) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
    }
    if (grid.axes.empty() &&
        grid.base.kind == api::ExperimentKind::Hierarchy)
        addDefaultHierarchyAxes(grid, small_grid);

    const auto specs = grid.expand();

    // Submit through a session: validation problems (an axis putting
    // later values out of range, or sweeping the experiment kind
    // itself into a mixed table) come back as one typed error with
    // per-spec diagnostics instead of a panic.
    api::Session session({.threads = threads, .base_seed = seed});
    auto submitted = session.submit(specs);
    if (!submitted.ok()) {
        const auto &error = submitted.error();
        std::fprintf(stderr, "error [%s]: %s\n",
                     api::errorCodeName(error.code),
                     error.message.c_str());
        for (const auto &detail : error.details)
            std::fprintf(stderr, "  %s\n", detail.c_str());
        return 1;
    }
    auto job = submitted.value();

    std::printf("sweeping %zu %s configurations on %u threads "
                "(base seed %llu)...\n",
                specs.size(), api::kindName(grid.base.kind),
                session.threadCount(),
                static_cast<unsigned long long>(seed));
    // qmh-lint: allow(no-wallclock): points/s progress display only — never feeds a row, a seed or a cache entry
    const auto start = std::chrono::steady_clock::now();
    if (progress) {
        // Completed rows stream in index order while later points
        // are still in flight; report each as it lands.
        while (job.nextRow()) {
            const auto snapshot = job.progress();
            std::fprintf(stderr, "progress: %zu/%zu points\r",
                         snapshot.done, snapshot.total);
        }
        std::fprintf(stderr, "\n");
    }
    auto result = job.wait();
    if (result.failure) {
        std::fprintf(stderr, "error [%s]: %s\n",
                     api::errorCodeName(result.failure->code),
                     result.failure->message.c_str());
        return 1;
    }
    auto table = std::move(result.table);
    const auto elapsed =
        std::chrono::duration<double>(
            // qmh-lint: allow(no-wallclock): points/s progress display only — never feeds a row, a seed or a cache entry
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("done in %.3f s (%.1f points/s)\n\n", elapsed,
                static_cast<double>(table.rows()) / elapsed);

    if (rank_column.empty() &&
        grid.base.kind == api::ExperimentKind::Hierarchy)
        rank_column = "makespan_speedup";
    if (rank_column.empty() &&
        grid.base.kind == api::ExperimentKind::Trace)
        rank_column = "speedup";
    if (!rank_column.empty()) {
        const auto col = table.findColumn(rank_column);
        if (!col) {
            std::fprintf(stderr,
                         "--rank: no column '%s' in this experiment\n",
                         rank_column.c_str());
            return 1;
        }
        table.sortRowsByColumnDesc(*col);
        std::printf("top rows by %s:\n", rank_column.c_str());
    } else {
        std::printf("first rows:\n");
    }
    sweep::toAsciiTable(table, 10, {"spec", "seed"})
        .print(std::cout);

    if (!out_prefix.empty()) {
        const bool csv_ok = table.writeCsvFile(out_prefix + ".csv");
        const bool json_ok = table.writeJsonFile(out_prefix + ".json");
        if (!csv_ok || !json_ok) {
            std::fprintf(stderr, "failed to write %s.{csv,json}\n",
                         out_prefix.c_str());
            return 1;
        }
        std::printf("\nfull result set written to %s.csv and %s.json\n",
                    out_prefix.c_str(), out_prefix.c_str());
    }
    return 0;
}
