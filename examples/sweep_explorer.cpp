/**
 * @file
 * Scenario: explore the hierarchy design space on every core.
 *
 * Expands a grid of event-driven hierarchy simulations (code x adder
 * width x transfer channels x block count x level-1 fraction), fans it
 * across a worker pool with deterministic per-point seeding, ranks the
 * configurations by makespan speedup, and optionally writes the full
 * result set as CSV and JSON for downstream analysis.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "sweep/sweep.hh"

namespace {

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --threads N    worker threads (default: all cores)\n"
        "  --points SIZE  grid size: small | full (default: full)\n"
        "  --seed S       base seed for per-point RNG streams\n"
        "  --out PREFIX   write PREFIX.csv and PREFIX.json\n"
        "  --help         this message\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    unsigned threads = 0;
    std::uint64_t seed = sweep::SweepOptions{}.base_seed;
    std::string out_prefix;
    bool small_grid = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(
                std::strtoul(next_value("--threads"), nullptr, 10));
        } else if (arg == "--seed") {
            seed = std::strtoull(next_value("--seed"), nullptr, 10);
        } else if (arg == "--out") {
            out_prefix = next_value("--out");
        } else if (arg == "--points") {
            const char *size = next_value("--points");
            if (std::strcmp(size, "small") == 0) {
                small_grid = true;
            } else if (std::strcmp(size, "full") == 0) {
                small_grid = false;
            } else {
                std::fprintf(stderr,
                             "--points must be small or full, got %s\n",
                             size);
                return 1;
            }
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printUsage(argv[0]);
            return 1;
        }
    }

    sweep::HierarchyGrid grid;
    grid.base.total_adders = 300;
    grid.codes = {ecc::CodeKind::Steane713,
                  ecc::CodeKind::BaconShor913};
    if (small_grid) {
        grid.base.total_adders = 60;
        grid.n_bits = {64, 128};
        grid.parallel_transfers = {5, 10};
        grid.blocks = {49};
        grid.level1_fractions = {1.0 / 3.0, 2.0 / 3.0};
    } else {
        grid.n_bits = {256, 512, 1024};
        grid.parallel_transfers = {2, 5, 10, 20};
        grid.blocks = {25, 49, 100};
        grid.level1_fractions = {0.25, 1.0 / 3.0, 0.5, 2.0 / 3.0};
    }
    const auto configs = grid.expand();

    sweep::SweepRunner runner({.threads = threads, .base_seed = seed});
    const auto params = iontrap::Params::future();

    std::printf("sweeping %zu hierarchy configurations on %u "
                "threads (base seed %llu)...\n",
                configs.size(), runner.threadCount(),
                static_cast<unsigned long long>(seed));
    const auto start = std::chrono::steady_clock::now();
    const auto points =
        sweep::runHierarchySweep(runner, configs, params);
    const auto elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    std::printf("done in %.3f s (%.1f points/s)\n\n", elapsed,
                static_cast<double>(points.size()) / elapsed);

    std::printf("top configurations by end-to-end makespan speedup:\n");
    sweep::printTopBySpeedup(std::cout, points, 10);

    if (!out_prefix.empty()) {
        const auto table = sweep::hierarchySweepTable(points);
        const bool csv_ok = table.writeCsvFile(out_prefix + ".csv");
        const bool json_ok = table.writeJsonFile(out_prefix + ".json");
        if (!csv_ok || !json_ok) {
            std::fprintf(stderr, "failed to write %s.{csv,json}\n",
                         out_prefix.c_str());
            return 1;
        }
        std::printf("\nfull result set written to %s.csv and %s.json\n",
                    out_prefix.c_str(), out_prefix.c_str());
    }
    return 0;
}
