/**
 * @file
 * Scenario: explore the quantum cache design space (paper Fig. 7).
 *
 * Builds one qmh::api cache ExperimentSpec, sweeps fetch policy,
 * capacity and warm/cold start over it with a SpecGrid, and prints
 * hit rates and transfer traffic so a designer can size the level-1
 * cache and transfer network. Extra `key=value` arguments override
 * the base spec (e.g. `workload=qft`, `mask_data=0`).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "cli_util.hh"

int
main(int argc, char **argv)
{
    using namespace qmh;

    std::vector<std::string> overrides = {"experiment=cache",
                                          "workload=draper"};
    if (argc > 1) {
        // First positional argument: the adder width (strict parse —
        // garbage is an error, not silently zero).
        const auto n = cli::intArg(argv[1], 8, 4096);
        if (!n) {
            std::fprintf(stderr,
                         "usage: %s [adder-width 8..4096] "
                         "[key=value ...]\n",
                         argv[0]);
            return 1;
        }
        overrides.push_back("n=" + std::to_string(*n));
    } else {
        overrides.push_back("n=256");
    }
    for (int i = 2; i < argc; ++i)
        overrides.emplace_back(argv[i]);

    const auto parsed = api::parseSpecTokens(overrides);
    if (!parsed.ok()) {
        for (const auto &error : parsed.errors)
            std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    api::SpecGrid grid;
    grid.base = parsed.spec;
    grid.axis("capacity_x", {"0.25", "0.5", "0.75", "1"});
    grid.axis("policy", {"inorder", "optimized"});
    grid.axis("warm", {"0", "1"});

    const auto specs = grid.expand();
    const auto errors = api::makeExperiment(specs.front())->validate();
    if (!errors.empty()) {
        for (const auto &error : errors)
            std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    std::printf("=== cache design space: %s (%zu points) ===\n",
                api::printSpec(parsed.spec).c_str(), specs.size());
    auto table = api::runSpecSweep(specs);
    sweep::toAsciiTable(table, table.rows(), {"spec", "seed"})
        .print(std::cout);
    std::printf("\nEach miss is one code transfer between memory (L2) "
                "and cache (L1);\nsize the transfer network for the "
                "optimized-warm miss rate.\n");
    return 0;
}
