/**
 * @file
 * Scenario: explore the quantum cache design space (paper Fig. 7).
 *
 * Sweeps fetch policy, cache capacity and warm/cold start for a
 * chosen adder width, printing hit rates and transfer traffic so a
 * designer can size the level-1 cache and transfer network.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cache/cache_sim.hh"
#include "gen/draper.hh"

int
main(int argc, char **argv)
{
    using namespace qmh;

    int n = 256;
    if (argc > 1)
        n = std::atoi(argv[1]);
    if (n < 8 || n > 4096) {
        std::fprintf(stderr, "usage: %s [adder-width 8..4096]\n",
                     argv[0]);
        return 1;
    }

    gen::AdderLayout layout;
    const auto adder = gen::draperAdder(
        n, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> cacheable(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * n; ++i)
        cacheable[static_cast<std::size_t>(i)] = true;

    std::printf("=== cache design space, %d-bit adder "
                "(%zu instructions, %d data qubits) ===\n",
                n, adder.size(), 2 * n);
    std::printf("%10s %12s %6s %10s %10s %10s\n", "capacity", "policy",
                "warm", "hit-rate", "misses", "evictions");

    for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
        const auto capacity = static_cast<std::size_t>(2 * n * frac);
        for (const auto policy :
             {cache::FetchPolicy::InOrder,
              cache::FetchPolicy::OptimizedLookahead}) {
            for (const bool warm : {false, true}) {
                const auto r = cache::simulateCache(
                    adder, capacity, policy, warm, cacheable);
                std::printf("%10zu %12s %6s %9.1f%% %10llu %10llu\n",
                            capacity, cache::fetchPolicyName(policy),
                            warm ? "yes" : "no", 100.0 * r.hitRate(),
                            static_cast<unsigned long long>(r.misses),
                            static_cast<unsigned long long>(
                                r.evictions));
            }
        }
    }
    std::printf("\nEach miss is one code transfer between memory (L2) "
                "and cache (L1);\nsize the transfer network for the "
                "optimized-warm miss rate.\n");
    return 0;
}
