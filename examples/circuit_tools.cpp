/**
 * @file
 * Scenario: work with the assembly-like circuit format.
 *
 * Generates a circuit from the qmh::api workload registry (any
 * registered generator: draper, ripple, modexp, qft, random), writes
 * it in the paper's instruction format, parses it back, and prints
 * gate statistics plus the parallelism profile the scheduler extracts
 * — the same pipeline the paper's cache simulator consumes.
 */

#include <cstdio>
#include <fstream>
#include <iostream>

#include "api/workload.hh"
#include "circuit/dag.hh"
#include "cli_util.hh"
#include "circuit/text_format.hh"
#include "sched/scheduler.hh"

namespace {

void
printUsage(const char *prog)
{
    std::fprintf(stderr, "usage: %s [workload] [width] [file]\n",
                 prog);
    std::fprintf(stderr, "workloads:\n");
    for (const auto &generator : qmh::api::workloadRegistry())
        std::fprintf(stderr, "  %-8s %s\n", generator.name.c_str(),
                     generator.description.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    const char *kind = argc > 1 ? argv[1] : "draper";
    const char *path = argc > 3 ? argv[3] : nullptr;

    api::ExperimentSpec spec;
    if (!api::specSet(spec, "workload", kind).empty() ||
        !api::findWorkload(spec.workload)) {
        std::fprintf(stderr, "unknown workload: %s\n", kind);
        printUsage(argv[0]);
        return 1;
    }
    spec.n = 32;
    if (argc > 2) {
        // Strict width parsing: garbage is an error, not zero.
        const auto n = cli::intArg(argv[2], 1, 4096);
        if (!n) {
            std::fprintf(stderr, "bad width: %s\n", argv[2]);
            printUsage(argv[0]);
            return 1;
        }
        spec.n = *n;
    }

    Random rng(1);
    const auto prog = api::buildWorkload(spec, rng).program;

    const auto text = circuit::writeText(prog);
    if (path) {
        std::ofstream out(path);
        out << text;
        std::printf("wrote %zu bytes to %s\n", text.size(), path);
    } else {
        // Print the first lines as a taste of the format.
        std::size_t pos = 0;
        for (int line = 0; line < 12 && pos != std::string::npos;
             ++line) {
            const auto next = text.find('\n', pos);
            std::printf("  %s\n",
                        text.substr(pos, next - pos).c_str());
            pos = next == std::string::npos ? next : next + 1;
        }
        std::printf("  ... (%zu instructions total)\n", prog.size());
    }

    const auto parsed = circuit::parseText(text);
    if (!parsed.ok) {
        std::fprintf(stderr, "round-trip failed: %s (line %d)\n",
                     parsed.error.c_str(), parsed.line);
        return 1;
    }

    std::printf("\ngate histogram:\n");
    for (const auto &[g, count] : parsed.program.gateHistogram())
        std::printf("  %-8s %llu\n", circuit::gateName(g),
                    static_cast<unsigned long long>(count));

    const circuit::DependencyGraph dag(parsed.program);
    std::printf("dependency depth: %u rounds, peak parallelism %u\n",
                dag.depth(), dag.maxParallelism());

    const sched::LatencyModel lat;
    const auto schedule =
        sched::roundSchedule(parsed.program, dag, lat, 16);
    std::printf("on 16 compute blocks: %llu gate-steps, utilization "
                "%.0f%%\n",
                static_cast<unsigned long long>(schedule.makespan),
                100.0 * schedule.utilization());
    return 0;
}
