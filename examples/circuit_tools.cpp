/**
 * @file
 * Scenario: work with the assembly-like circuit format.
 *
 * Generates a circuit (adder or QFT), writes it in the paper's
 * instruction format, parses it back, and prints gate statistics plus
 * the parallelism profile the scheduler extracts — the same pipeline
 * the paper's cache simulator consumes.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "circuit/dag.hh"
#include "circuit/text_format.hh"
#include "gen/draper.hh"
#include "gen/qft.hh"
#include "sched/scheduler.hh"

int
main(int argc, char **argv)
{
    using namespace qmh;

    const char *kind = argc > 1 ? argv[1] : "adder";
    const int n = argc > 2 ? std::atoi(argv[2]) : 32;
    const char *path = argc > 3 ? argv[3] : nullptr;

    circuit::Program prog;
    if (std::strcmp(kind, "adder") == 0)
        prog = gen::draperAdder(n);
    else if (std::strcmp(kind, "qft") == 0)
        prog = gen::qft(n, true);
    else {
        std::fprintf(stderr, "usage: %s [adder|qft] [width] [file]\n",
                     argv[0]);
        return 1;
    }

    const auto text = circuit::writeText(prog);
    if (path) {
        std::ofstream out(path);
        out << text;
        std::printf("wrote %zu bytes to %s\n", text.size(), path);
    } else {
        // Print the first lines as a taste of the format.
        std::size_t pos = 0;
        for (int line = 0; line < 12 && pos != std::string::npos;
             ++line) {
            const auto next = text.find('\n', pos);
            std::printf("  %s\n",
                        text.substr(pos, next - pos).c_str());
            pos = next == std::string::npos ? next : next + 1;
        }
        std::printf("  ... (%zu instructions total)\n", prog.size());
    }

    const auto parsed = circuit::parseText(text);
    if (!parsed.ok) {
        std::fprintf(stderr, "round-trip failed: %s (line %d)\n",
                     parsed.error.c_str(), parsed.line);
        return 1;
    }

    std::printf("\ngate histogram:\n");
    for (const auto &[g, count] : parsed.program.gateHistogram())
        std::printf("  %-8s %llu\n", circuit::gateName(g),
                    static_cast<unsigned long long>(count));

    const circuit::DependencyGraph dag(parsed.program);
    std::printf("dependency depth: %u rounds, peak parallelism %u\n",
                dag.depth(), dag.maxParallelism());

    const sched::LatencyModel lat;
    const auto schedule =
        sched::roundSchedule(parsed.program, dag, lat, 16);
    std::printf("on 16 compute blocks: %llu gate-steps, utilization "
                "%.0f%%\n",
                static_cast<unsigned long long>(schedule.makespan),
                100.0 * schedule.utilization());
    return 0;
}
