/**
 * @file
 * Quickstart: the five-minute tour of the qmh library.
 *
 *  1. Generate the paper's workload (a Draper carry-lookahead adder).
 *  2. Prove it actually adds, with the reversible-logic simulator.
 *  3. Schedule it onto a CQLA with a limited number of compute blocks.
 *  4. Ask the architecture models for the paper's headline numbers.
 *  5. Run whole experiments as one-line qmh::api specs.
 */

#include <cstdio>

#include "api/experiment.hh"
#include "circuit/reversible.hh"
#include "cqla/hierarchy.hh"
#include "gen/draper.hh"
#include "sched/scheduler.hh"

int
main()
{
    using namespace qmh;

    // 1. A 32-bit quantum carry-lookahead adder at the logical level.
    gen::AdderLayout layout;
    const auto adder = gen::draperAdder(32, true, &layout);
    std::printf("generated %s: %zu gates, %llu Toffolis, %d qubits\n",
                adder.name().c_str(), adder.size(),
                static_cast<unsigned long long>(
                    adder.gateCount(circuit::GateKind::Toffoli)),
                layout.total_qubits);

    // 2. Functional check: 1234567 + 7654321 (mod 2^32).
    circuit::ReversibleState state(layout.total_qubits);
    state.loadInteger(1234567, layout.a_offset, 32);
    state.loadInteger(7654321, layout.b_offset, 32);
    state.run(adder);
    std::printf("1234567 + 7654321 = %llu (expected 8888888)\n",
                static_cast<unsigned long long>(
                    state.readInteger(layout.b_offset, 32)));

    // 3. Schedule onto 9 compute blocks (one Toffoli in flight each).
    const sched::LatencyModel latency;
    const auto schedule = sched::roundSchedule(adder, latency, 9);
    std::printf("on 9 compute blocks: %llu gate-steps, %.0f%% block "
                "utilization\n",
                static_cast<unsigned long long>(schedule.makespan),
                100.0 * schedule.utilization());

    // 4. The paper's headline numbers from the architecture models.
    const auto params = iontrap::Params::future();
    cqla::HierarchyModel hierarchy(params);
    const auto row =
        hierarchy.row(ecc::Code::baconShor(), 1024, 10, 100);
    std::printf("CQLA @ 1024-bit factoring (Bacon-Shor): %.1fx less "
                "area, %.1fx faster additions, gain product %.0f\n",
                row.area_reduced, row.adder_speedup, row.gain_product);

    // 5. Any simulator in the repo, as a one-line experiment spec.
    for (const char *text :
         {"experiment=cache workload=draper n=64 warm=1",
          "experiment=montecarlo code=bacon-shor level=1 p0=0.001 "
          "trials=20000"}) {
        const auto parsed = api::parseSpec(text);
        if (!parsed.ok()) {
            std::fprintf(stderr, "bad spec: %s\n",
                         parsed.errors.front().c_str());
            return 1;
        }
        const auto experiment = api::makeExperiment(parsed.spec);
        Random rng(1);
        const auto cells = experiment->run(rng);
        const auto columns = experiment->columns();
        std::printf("%s ->", text);
        // Skip the echo of the spec itself (column 0).
        for (std::size_t c = 1; c < columns.size(); ++c)
            std::printf(" %s=%s", columns[c].c_str(),
                        cells[c].toString().c_str());
        std::printf("\n");
    }
    return 0;
}
