/**
 * @file
 * Scenario: host the JSONL sweep protocol for many concurrent
 * clients over TCP, with a shared result cache.
 *
 * Every connected client speaks exactly the qmh_service protocol
 * (api/service.hh) and receives bytes identical to a stdio run of
 * the same request lines; requests with "seed_mode":"spec" share the
 * server-wide result cache, so a spec any client already swept is
 * replayed instead of re-simulated. Serving ends when a client sends
 * {"op":"shutdown"} (or on SIGTERM via the surrounding shell).
 *
 *   terminal 1 $ qmh_serve --listen 7777 --threads 8
 *   terminal 2 $ echo '{"id":"r1","seed_mode":"spec",
 *                "specs":["experiment=cache n=64"]}' \
 *                  | qmh_service --connect 127.0.0.1:7777
 *
 * The subsystem lives in src/server/; this binary owns only flags,
 * the port file (so scripts can use an ephemeral --listen 0) and the
 * exit summary.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "cli_util.hh"
#include "server/server.hh"

namespace {

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options]\n"
        "  --listen [HOST:]PORT  bind address (default 127.0.0.1:0;"
        " port 0 = ephemeral)\n"
        "  --threads N      worker threads (default: all cores)\n"
        "  --seed S         base seed (spec-mode cache identity)\n"
        "  --cache PATH     persistent shared cache (JSONL; shared\n"
        "                   format with optimizer --cache)\n"
        "  --max-clients N  concurrent connection cap (default 64)\n"
        "  --port-file P    write the bound port to file P\n"
        "  --help           this message\n"
        "clients: qmh_service --connect HOST:PORT (same protocol,\n"
        "         byte-identical responses); {\"op\":\"shutdown\"}\n"
        "         stops the server\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    server::ServerConfig config;
    std::string port_file;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) {
            return cli::flagValue(argc, argv, i, flag);
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--listen") {
            const auto parsed =
                cli::hostPortArg(next_value("--listen"));
            if (!parsed) {
                std::fprintf(stderr, "--listen: bad [HOST:]PORT\n");
                return 1;
            }
            config.host = parsed->host;
            config.port = parsed->port;
        } else if (arg == "--threads") {
            const auto parsed =
                cli::threadsArg(next_value("--threads"));
            if (!parsed) {
                std::fprintf(stderr, "--threads: bad value\n");
                return 1;
            }
            config.threads = *parsed;
        } else if (arg == "--seed") {
            const auto parsed = cli::seedArg(next_value("--seed"));
            if (!parsed) {
                std::fprintf(stderr, "--seed: bad value\n");
                return 1;
            }
            config.base_seed = *parsed;
        } else if (arg == "--cache") {
            config.cache_path = next_value("--cache");
        } else if (arg == "--max-clients") {
            const auto parsed =
                cli::intArg(next_value("--max-clients"), 1, 100000);
            if (!parsed) {
                std::fprintf(stderr, "--max-clients: bad value\n");
                return 1;
            }
            config.max_clients = static_cast<std::size_t>(*parsed);
        } else if (arg == "--port-file") {
            port_file = next_value("--port-file");
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printUsage(argv[0]);
            return 1;
        }
    }

    auto created = server::Server::create(config);
    if (!created.ok()) {
        std::fprintf(stderr, "qmh_serve: %s\n",
                     created.error().describe().c_str());
        return 1;
    }
    auto &server = *created.value();

    std::fprintf(stderr, "qmh_serve: listening on %s:%u\n",
                 config.host.c_str(), server.port());
    if (!port_file.empty()) {
        std::ofstream out(port_file, std::ios::trunc);
        out << server.port() << "\n";
        if (!out) {
            std::fprintf(stderr,
                         "qmh_serve: cannot write port file %s\n",
                         port_file.c_str());
            return 1;
        }
    }

    server.serve();

    const auto stats = server.stats();
    std::fprintf(stderr,
                 "qmh_serve: served %zu request(s), %zu row(s), "
                 "%zu error record(s) over %zu client(s)"
                 " (%zu rejected)\n",
                 stats.requests, stats.rows, stats.errors,
                 stats.accepted, stats.rejected);
    std::fprintf(stderr,
                 "qmh_serve: cache %zu hit(s), %zu miss(es), "
                 "%zu insert(s), %zu eviction(s); "
                 "simulated %zu point(s)\n",
                 stats.cache.hits, stats.cache.misses,
                 stats.cache.inserts, stats.cache.evictions,
                 stats.simulated);
    return 0;
}
