/**
 * @file
 * Scenario: pick the best CQLA configuration for a problem size.
 *
 * Sweeps compute-block counts, evaluates area/speedup/gain product for
 * both codes, reports the optimal superblock size from the bandwidth
 * model, and suggests the configuration with the best gain product.
 */

#include <cstdio>
#include <cstdlib>

#include "cqla/area_model.hh"
#include "cqla/hierarchy.hh"
#include "net/bandwidth.hh"

int
main(int argc, char **argv)
{
    using namespace qmh;

    int n = 512;
    if (argc > 1)
        n = std::atoi(argv[1]);

    const auto params = iontrap::Params::future();
    cqla::PerformanceModel perf(params);
    const cqla::AreaModel area(params);

    std::printf("=== CQLA design sweep for %d-bit modular "
                "exponentiation ===\n\n", n);
    std::printf("%7s | %21s | %21s\n", "", "Steane [[7,1,3]]",
                "Bacon-Shor [[9,1,3]]");
    std::printf("%7s | %7s %6s %6s | %7s %6s %6s\n", "blocks", "area",
                "speed", "GP", "area", "speed", "GP");

    unsigned best_blocks = 0;
    double best_gp = 0.0;
    for (unsigned b = 4; b <= 196; b += 8) {
        const auto steane = ecc::Code::steane();
        const auto bs = ecc::Code::baconShor();
        const double a_st = area.areaReductionFactor(steane, n, b);
        const double a_bs = area.areaReductionFactor(bs, n, b);
        const double s_st = perf.speedup(steane, n, b);
        const double s_bs = perf.speedup(bs, n, b);
        std::printf("%7u | %7.2f %6.2f %6.1f | %7.2f %6.2f %6.1f\n", b,
                    a_st, s_st, a_st * s_st, a_bs, s_bs, a_bs * s_bs);
        if (a_bs * s_bs > best_gp) {
            best_gp = a_bs * s_bs;
            best_blocks = b;
        }
    }

    const net::BandwidthModel bw(ecc::Code::baconShor(), 2, params);
    std::printf("\nbest gain product: %.1f at %u blocks (Bacon-Shor)\n",
                best_gp, best_blocks);
    std::printf("optimal superblock size from perimeter bandwidth: %u "
                "blocks => arrange %u blocks as %u superblock(s)\n",
                bw.crossoverBlocks(), best_blocks,
                (best_blocks + bw.crossoverBlocks() - 1) /
                    bw.crossoverBlocks());
    return 0;
}
