/**
 * @file
 * Scenario: pick the best CQLA configuration for a problem size.
 *
 * Sweeps compute-block counts with the analytic area/performance
 * models, then drives the qmh::api facade: a bandwidth experiment for
 * the optimal superblock size and a hierarchy-DES SpecGrid over
 * (code x level-1 fraction) at the winning block count to cross-check
 * the analytic pick with the event-driven simulator.
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "cli_util.hh"
#include "cqla/area_model.hh"
#include "cqla/hierarchy.hh"

int
main(int argc, char **argv)
{
    using namespace qmh;

    int n = 512;
    if (argc > 1) {
        // Strict parse: garbage is an error, not silently zero.
        const auto parsed = cli::intArg(argv[1], 32, 4096);
        if (!parsed) {
            std::fprintf(stderr, "usage: %s [bits 32..4096]\n",
                         argv[0]);
            return 1;
        }
        n = *parsed;
    }

    const auto params = iontrap::Params::future();
    cqla::PerformanceModel perf(params);
    const cqla::AreaModel area(params);

    std::printf("=== CQLA design sweep for %d-bit modular "
                "exponentiation ===\n\n", n);
    std::printf("%7s | %21s | %21s\n", "", "Steane [[7,1,3]]",
                "Bacon-Shor [[9,1,3]]");
    std::printf("%7s | %7s %6s %6s | %7s %6s %6s\n", "blocks", "area",
                "speed", "GP", "area", "speed", "GP");

    unsigned best_blocks = 0;
    double best_gp = 0.0;
    for (unsigned b = 4; b <= 196; b += 8) {
        const auto steane = ecc::Code::steane();
        const auto bs = ecc::Code::baconShor();
        const double a_st = area.areaReductionFactor(steane, n, b);
        const double a_bs = area.areaReductionFactor(bs, n, b);
        const double s_st = perf.speedup(steane, n, b);
        const double s_bs = perf.speedup(bs, n, b);
        std::printf("%7u | %7.2f %6.2f %6.1f | %7.2f %6.2f %6.1f\n", b,
                    a_st, s_st, a_st * s_st, a_bs, s_bs, a_bs * s_bs);
        if (a_bs * s_bs > best_gp) {
            best_gp = a_bs * s_bs;
            best_blocks = b;
        }
    }
    std::printf("\nbest gain product: %.1f at %u blocks (Bacon-Shor)\n",
                best_gp, best_blocks);

    // Superblock sizing through the facade (one bandwidth spec).
    const auto bw_spec =
        api::parseSpec("experiment=bandwidth code=bacon-shor").spec;
    const auto bw = api::makeExperiment(bw_spec);
    Random rng(1);
    const auto bw_row = bw->run(rng);
    const auto crossover_col = [&bw]() {
        const auto columns = bw->columns();
        for (std::size_t c = 0; c < columns.size(); ++c)
            if (columns[c] == "crossover_blocks")
                return c;
        return std::size_t(0);
    }();
    const auto crossover = static_cast<unsigned>(
        bw_row[crossover_col].asNumber().value_or(1.0));
    std::printf("optimal superblock size from perimeter bandwidth: %u "
                "blocks => arrange %u blocks as %u superblock(s)\n",
                crossover, best_blocks,
                (best_blocks + crossover - 1) / crossover);

    // Cross-check the pick with the event-driven hierarchy simulator:
    // sweep code x level-1 fraction at the winning block count.
    api::SpecGrid grid;
    grid.base = api::parseSpec("experiment=hierarchy adders=120 n=" +
                               std::to_string(std::min(n, 1024)) +
                               " blocks=" +
                               std::to_string(best_blocks))
                    .spec;
    grid.axis("code", {"steane", "bacon-shor"});
    grid.axis("l1_fraction", {"0.25", "0.33", "0.5", "0.66"});
    auto table = api::runSpecSweep(grid.expand());
    const auto speedup_col = table.findColumn("mean_adder_speedup");
    table.sortRowsByColumnDesc(*speedup_col);
    std::printf("\nevent-driven cross-check at %u blocks (top adder "
                "speedups):\n", best_blocks);
    sweep::toAsciiTable(table, 4, {"spec", "seed"}).print(std::cout);
    return 0;
}
