/**
 * @file
 * Shared strict argv helpers for the examples/ CLIs.
 *
 * Every example parses arguments the same way — garbage fails
 * loudly instead of atoi-coercing to 0, a flag missing its value
 * exits immediately, and `key=value` tokens flow into the spec
 * machinery — so the logic lives here once instead of being
 * copy-pasted per main(). The WILL_FAIL ctest cases pin these
 * semantics; error *messages* stay in each CLI, which knows its own
 * usage line.
 */

#ifndef QMH_EXAMPLES_CLI_UTIL_HH
#define QMH_EXAMPLES_CLI_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "api/spec.hh"

namespace qmh {
namespace cli {

/**
 * Value of the flag at argv[i], advancing i past it; prints
 * "<flag> needs a value" and exits(1) when argv ends first.
 */
inline const char *
flagValue(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
    }
    return argv[++i];
}

/**
 * Strict integer in [lo, hi]; nullopt on garbage, trailing junk or
 * out-of-range (never silently coerces).
 */
inline std::optional<int>
intArg(const char *text, int lo, int hi)
{
    const auto parsed = api::parseInt(text);
    if (!parsed || *parsed < lo || *parsed > hi)
        return std::nullopt;
    return static_cast<int>(*parsed);
}

/** --threads value: worker count in [0, 4096] (0 = all cores). */
inline std::optional<unsigned>
threadsArg(const char *text)
{
    const auto parsed = api::parseUInt(text);
    if (!parsed || *parsed > 4096)
        return std::nullopt;
    return static_cast<unsigned>(*parsed);
}

/** --seed value: any u64. */
inline std::optional<std::uint64_t>
seedArg(const char *text)
{
    return api::parseUInt(text);
}

/** A parsed [HOST:]PORT endpoint (server listen / client connect). */
struct HostPort
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
};

/**
 * "[HOST:]PORT" with a strict port in [0, 65535]; a bare "PORT"
 * means loopback. nullopt on garbage (never coerces).
 */
inline std::optional<HostPort>
hostPortArg(const char *text)
{
    std::string value(text);
    HostPort endpoint;
    std::string port_text = value;
    if (const auto colon = value.rfind(':');
        colon != std::string::npos) {
        endpoint.host = value.substr(0, colon);
        port_text = value.substr(colon + 1);
        if (endpoint.host.empty())
            return std::nullopt;
    }
    const auto port = api::parseUInt(port_text);
    if (!port || *port > 65535)
        return std::nullopt;
    endpoint.port = static_cast<std::uint16_t>(*port);
    return endpoint;
}

/** True for a `key=value` spec token (as opposed to a --flag). */
inline bool
isSpecToken(const std::string &arg)
{
    return arg.find('=') != std::string::npos &&
           arg.rfind("--", 0) != 0;
}

} // namespace cli
} // namespace qmh

#endif // QMH_EXAMPLES_CLI_UTIL_HH
