/**
 * @file
 * Scenario: provision a CQLA machine to factor an n-bit number.
 *
 * Prints the complete machine report for a problem size given on the
 * command line (default 1024): region areas, adder latencies, the
 * fidelity budget that licenses the memory hierarchy, and projected
 * runtimes for the two phases of Shor's algorithm.
 */

#include <cstdio>

#include "api/experiment.hh"
#include "cli_util.hh"
#include "common/units.hh"
#include "cqla/apps.hh"
#include "cqla/area_model.hh"
#include "cqla/hierarchy.hh"
#include "ecc/threshold.hh"

int
main(int argc, char **argv)
{
    using namespace qmh;

    int n = 1024;
    if (argc > 1) {
        // Strict parse: garbage is an error, not silently zero.
        const auto parsed = cli::intArg(argv[1], 32, 1024);
        n = parsed ? *parsed : -1;
    }
    if (n != 32 && n != 64 && n != 128 && n != 256 && n != 512 &&
        n != 1024) {
        std::fprintf(stderr,
                     "usage: %s [32|64|128|256|512|1024]\n", argv[0]);
        return 1;
    }

    const auto params = iontrap::Params::future();
    const auto blocks = cqla::PerformanceModel::paperBlockCounts(n);
    std::printf("=== CQLA provisioning report: %d-bit Shor ===\n\n", n);

    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const auto code = ecc::Code::byKind(kind);
        std::printf("--- %s ---\n", code.name().c_str());

        const cqla::AreaModel area(params);
        const unsigned cache_qubits = 2 * 9 * blocks.second;
        const auto breakdown = area.cqlaArea(code, n, blocks.second,
                                             cache_qubits, 10);
        std::printf("memory %.0f mm^2 + compute %.0f mm^2 + cache "
                    "%.0f mm^2 + transfer %.0f mm^2 = %.0f mm^2 "
                    "(QLA baseline: %.0f mm^2, %.1fx larger)\n",
                    breakdown.memory_mm2, breakdown.compute_mm2,
                    breakdown.cache_mm2, breakdown.transfer_mm2,
                    breakdown.total(), area.qlaAreaMm2(n),
                    area.qlaAreaMm2(n) / breakdown.total());

        const ecc::FidelityBudget budget(code, params,
                                         ecc::shorKqOps(n));
        std::printf("fidelity: Pf(L1)=%.1e Pf(L2)=%.1e; max level-1 "
                    "time share %.1f%%\n",
                    budget.failureRate(1), budget.failureRate(2),
                    100.0 * budget.maxLevel1TimeFraction());

        cqla::HierarchyModel hier(params);
        const auto row = hier.row(code, n, 10, blocks.second);
        std::printf("hierarchy: L1 speedup %.1f, adder speedup %.2f, "
                    "gain product %.1f\n",
                    row.level1_speedup, row.adder_speedup,
                    row.gain_product);

        cqla::ModExpModel modexp(code, params);
        const auto t = modexp.totalTimes(n, blocks.second);
        std::printf("modular exponentiation: %.1f h computation, "
                    "%.1f h communication (before hierarchy gains: "
                    "/%.2f with it)\n",
                    units::secondsToHours(t.computation_s),
                    units::secondsToHours(t.communication_s),
                    row.adder_speedup);

        cqla::QftModel qft(code, params);
        const auto q = qft.totalTimes(n);
        std::printf("QFT: %.0f s computation, %.0f s communication\n\n",
                    q.computation_s, q.communication_s);

        // Event-driven cross-check through the facade: the same
        // machine as one hierarchy ExperimentSpec.
        api::ExperimentSpec spec;
        spec.kind = api::ExperimentKind::Hierarchy;
        spec.code = kind;
        spec.n = n;
        spec.blocks = blocks.second;
        spec.adders = 120;
        const auto experiment = api::makeExperiment(spec);
        Random rng(1);
        const auto cells = experiment->run(rng);
        const auto columns = experiment->columns();
        double makespan_speedup = 0.0;
        double adder_speedup = 0.0;
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (columns[c] == "makespan_speedup")
                makespan_speedup = cells[c].asNumber().value_or(0.0);
            if (columns[c] == "mean_adder_speedup")
                adder_speedup = cells[c].asNumber().value_or(0.0);
        }
        std::printf("DES cross-check (%s): makespan speedup %.2f, "
                    "adder speedup %.2f\n\n",
                    api::printSpec(spec).c_str(), makespan_speedup,
                    adder_speedup);
    }
    return 0;
}
