/**
 * @file
 * Scenario: serve spec sweeps as a streaming JSONL backend.
 *
 * Reads one JSON request per stdin line and answers with JSONL
 * records on stdout — rows stream out in index order while the sweep
 * is still running, caller mistakes come back as structured error
 * records, and a "limit" field cancels the job cooperatively after
 * the requested number of rows. Pipe requests in, parse lines out:
 *
 *   $ echo '{"id":"r1","specs":["experiment=cache n=64"]}' \
 *       | qmh_service
 *   {"type":"accepted","id":"r1","total":1,"columns":[...]}
 *   {"type":"row","id":"r1","index":0,"cells":{...}}
 *   {"type":"done","id":"r1","rows":1,"total":1,"cancelled":false}
 *
 * The protocol lives in api/service.hh; this binary only owns the
 * process concerns (flags, stdio, the exit summary).
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "api/service.hh"
#include "cli_util.hh"
#include "server/client.hh"

namespace {

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options] < requests.jsonl\n"
        "  --threads N          worker threads (default: all cores)\n"
        "  --seed S     default base seed (requests may override)\n"
        "  --connect HOST:PORT  forward requests to a qmh_serve\n"
        "                       instance instead of sweeping locally\n"
        "                       (responses are byte-identical)\n"
        "  --help       this message\n"
        "request:  {\"op\":\"sweep\",\"id\":\"r1\",\"specs\":[...],"
        "\"seed\":7,\"limit\":10}\n"
        "responses: accepted / row (streamed) / error / done\n",
        prog);
}

/**
 * The --connect mode: the same stdin-to-stdout contract, with a
 * remote qmh_serve doing the sweeping. Records stream to stdout as
 * they arrive, one request at a time, in lockstep like the local
 * loop.
 */
int
runRemote(const qmh::cli::HostPort &endpoint)
{
    using namespace qmh;
    auto connected =
        server::Client::connect(endpoint.host, endpoint.port);
    if (!connected.ok()) {
        std::fprintf(stderr, "qmh_service: %s\n",
                     connected.error().describe().c_str());
        return 1;
    }
    auto client = std::move(connected).value();

    std::size_t requests = 0, rows = 0, errors = 0;
    std::string line;
    while (std::getline(std::cin, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        ++requests;
        const auto served = client.request(
            line, [&](const std::string &record) {
                std::cout << record << std::endl;
                if (record.rfind("{\"type\":\"row\"", 0) == 0)
                    ++rows;
                else if (record.rfind("{\"type\":\"error\"", 0) == 0)
                    ++errors;
            });
        if (!served.ok()) {
            std::fprintf(stderr, "qmh_service: %s\n",
                         served.error().describe().c_str());
            return 1;
        }
    }
    std::fprintf(stderr,
                 "qmh_service: served %zu request(s), %zu row(s), "
                 "%zu error record(s)\n",
                 requests, rows, errors);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    unsigned threads = 0;
    std::uint64_t seed = sweep::SweepOptions{}.base_seed;
    std::optional<cli::HostPort> connect;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) {
            return cli::flagValue(argc, argv, i, flag);
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--threads") {
            const auto parsed = cli::threadsArg(next_value("--threads"));
            if (!parsed) {
                std::fprintf(stderr, "--threads: bad value\n");
                return 1;
            }
            threads = *parsed;
        } else if (arg == "--seed") {
            const auto parsed = cli::seedArg(next_value("--seed"));
            if (!parsed) {
                std::fprintf(stderr, "--seed: bad value\n");
                return 1;
            }
            seed = *parsed;
        } else if (arg == "--connect") {
            const auto parsed =
                cli::hostPortArg(next_value("--connect"));
            if (!parsed) {
                std::fprintf(stderr, "--connect: bad HOST:PORT\n");
                return 1;
            }
            connect = *parsed;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printUsage(argv[0]);
            return 1;
        }
    }

    if (connect)
        return runRemote(*connect);

    api::Session session({.threads = threads, .base_seed = seed});
    const auto stats =
        api::runService(session, std::cin, std::cout);
    std::fprintf(stderr,
                 "qmh_service: served %zu request(s), %zu row(s), "
                 "%zu error record(s)\n",
                 stats.requests, stats.rows, stats.errors);
    return 0;
}
