/**
 * @file
 * Scenario: serve spec sweeps as a streaming JSONL backend.
 *
 * Reads one JSON request per stdin line and answers with JSONL
 * records on stdout — rows stream out in index order while the sweep
 * is still running, caller mistakes come back as structured error
 * records, and a "limit" field cancels the job cooperatively after
 * the requested number of rows. Pipe requests in, parse lines out:
 *
 *   $ echo '{"id":"r1","specs":["experiment=cache n=64"]}' \
 *       | qmh_service
 *   {"type":"accepted","id":"r1","total":1,"columns":[...]}
 *   {"type":"row","id":"r1","index":0,"cells":{...}}
 *   {"type":"done","id":"r1","rows":1,"total":1,"cancelled":false}
 *
 * The protocol lives in api/service.hh; this binary only owns the
 * process concerns (flags, stdio, the exit summary).
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "api/service.hh"
#include "cli_util.hh"

namespace {

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options] < requests.jsonl\n"
        "  --threads N  worker threads (default: all cores)\n"
        "  --seed S     default base seed (requests may override)\n"
        "  --help       this message\n"
        "request:  {\"op\":\"sweep\",\"id\":\"r1\",\"specs\":[...],"
        "\"seed\":7,\"limit\":10}\n"
        "responses: accepted / row (streamed) / error / done\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    unsigned threads = 0;
    std::uint64_t seed = sweep::SweepOptions{}.base_seed;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) {
            return cli::flagValue(argc, argv, i, flag);
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--threads") {
            const auto parsed = cli::threadsArg(next_value("--threads"));
            if (!parsed) {
                std::fprintf(stderr, "--threads: bad value\n");
                return 1;
            }
            threads = *parsed;
        } else if (arg == "--seed") {
            const auto parsed = cli::seedArg(next_value("--seed"));
            if (!parsed) {
                std::fprintf(stderr, "--seed: bad value\n");
                return 1;
            }
            seed = *parsed;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printUsage(argv[0]);
            return 1;
        }
    }

    api::Session session({.threads = threads, .base_seed = seed});
    const auto stats =
        api::runService(session, std::cin, std::cout);
    std::fprintf(stderr,
                 "qmh_service: served %zu request(s), %zu row(s), "
                 "%zu error record(s)\n",
                 stats.requests, stats.rows, stats.errors);
    return 0;
}
