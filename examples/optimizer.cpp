/**
 * @file
 * Scenario: find the best hierarchy design without sweeping the
 * whole design space.
 *
 * Where sweep_explorer exhaustively expands a SpecGrid, this CLI
 * runs opt::frontierSearch: a coarse grid over the given numeric
 * axes, then adaptive refinement around the best-ranked points until
 * the point budget or lattice resolution is reached. With --cache
 * every evaluated point is memoized to a JSON-lines file keyed by
 * its canonical spec string, so a repeated invocation simulates
 * nothing and replays bit-identical tables.
 */

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "api/experiment.hh"
#include "cli_util.hh"
#include "opt/frontier.hh"

namespace {

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [options] [key=value ...]\n"
        "  key=value          override the base spec "
        "(default: experiment=hierarchy)\n"
        "  --axis key=lo:hi[:coarse]\n"
        "                     numeric axis to optimize; repeatable\n"
        "  --objective COLUMN result column to optimize (defaults:\n"
        "                     hierarchy mean_adder_speedup, cache "
        "hit_rate)\n"
        "  --minimize         minimize the objective instead\n"
        "  --budget N         max points to evaluate (default 256)\n"
        "  --depth D          bisection generations per interval "
        "(default 4)\n"
        "  --frontier K       refine the top K points per round;\n"
        "                     0 = refine all (exhaustive; default 3)\n"
        "  --cache FILE       JSONL result cache (load on open, "
        "append on miss)\n"
        "  --progress         stream per-point search progress to "
        "stderr\n"
        "  --threads N        worker threads (default: all cores)\n"
        "  --seed S           base seed for spec-addressed RNG "
        "streams\n"
        "  --out PREFIX       write PREFIX.csv and PREFIX.json\n"
        "  --help             this message\n",
        prog);
}

bool
parseAxis(const std::string &text, qmh::opt::FrontierAxis &axis)
{
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    axis.key = text.substr(0, eq);
    const std::string rest = text.substr(eq + 1);
    const auto colon1 = rest.find(':');
    if (colon1 == std::string::npos)
        return false;
    const auto colon2 = rest.find(':', colon1 + 1);
    const auto lo = qmh::api::parseDouble(rest.substr(0, colon1));
    const auto hi = qmh::api::parseDouble(
        rest.substr(colon1 + 1, colon2 == std::string::npos
                                    ? std::string::npos
                                    : colon2 - colon1 - 1));
    if (!lo || !hi)
        return false;
    axis.lo = *lo;
    axis.hi = *hi;
    if (colon2 != std::string::npos) {
        const auto coarse =
            qmh::api::parseInt(rest.substr(colon2 + 1));
        // Range-check before the narrowing cast: 2^33+2 must fail
        // loudly, not truncate into a plausible count.
        if (!coarse || *coarse < 2 || *coarse > 65)
            return false;
        axis.coarse = static_cast<int>(*coarse);
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qmh;

    unsigned threads = 0;
    std::uint64_t seed = sweep::SweepOptions{}.base_seed;
    std::string out_prefix;
    std::string cache_path;
    opt::FrontierOptions options;
    std::vector<opt::FrontierAxis> axes;
    std::vector<std::string> spec_tokens = {"experiment=hierarchy"};

    bool progress = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&](const char *flag) {
            return cli::flagValue(argc, argv, i, flag);
        };
        if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            return 0;
        } else if (arg == "--threads") {
            const auto parsed = cli::threadsArg(next_value("--threads"));
            if (!parsed) {
                std::fprintf(stderr, "--threads: bad value\n");
                return 1;
            }
            threads = *parsed;
        } else if (arg == "--seed") {
            const auto parsed = cli::seedArg(next_value("--seed"));
            if (!parsed) {
                std::fprintf(stderr, "--seed: bad value\n");
                return 1;
            }
            seed = *parsed;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--budget") {
            const auto parsed =
                api::parseUInt(next_value("--budget"));
            if (!parsed || *parsed == 0) {
                std::fprintf(stderr, "--budget: bad value\n");
                return 1;
            }
            options.budget = static_cast<std::size_t>(*parsed);
        } else if (arg == "--depth") {
            const auto parsed = api::parseInt(next_value("--depth"));
            if (!parsed || *parsed < 0 || *parsed > 20) {
                std::fprintf(stderr,
                             "--depth: expected integer in [0, 20]\n");
                return 1;
            }
            options.max_depth = static_cast<int>(*parsed);
        } else if (arg == "--frontier") {
            const auto parsed =
                api::parseUInt(next_value("--frontier"));
            if (!parsed) {
                std::fprintf(stderr, "--frontier: bad value\n");
                return 1;
            }
            options.frontier = static_cast<std::size_t>(*parsed);
        } else if (arg == "--objective") {
            options.objective = next_value("--objective");
        } else if (arg == "--minimize") {
            options.maximize = false;
        } else if (arg == "--cache") {
            cache_path = next_value("--cache");
        } else if (arg == "--out") {
            out_prefix = next_value("--out");
        } else if (arg == "--axis") {
            opt::FrontierAxis axis;
            if (!parseAxis(next_value("--axis"), axis)) {
                std::fprintf(stderr,
                             "--axis: expected key=lo:hi[:coarse] "
                             "with coarse in [2, 65]\n");
                return 1;
            }
            axes.push_back(std::move(axis));
        } else if (cli::isSpecToken(arg)) {
            spec_tokens.push_back(arg);
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            printUsage(argv[0]);
            return 1;
        }
    }

    const auto parsed = api::parseSpecTokens(spec_tokens);
    if (!parsed.ok()) {
        for (const auto &error : parsed.errors)
            std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    const auto base = parsed.spec;

    if (options.objective.empty()) {
        if (base.kind == api::ExperimentKind::Hierarchy)
            options.objective = "mean_adder_speedup";
        else if (base.kind == api::ExperimentKind::Cache)
            options.objective = "hit_rate";
        else if (base.kind == api::ExperimentKind::Trace)
            options.objective = "speedup";
        else {
            std::fprintf(stderr,
                         "error: --objective is required for %s "
                         "experiments\n",
                         api::kindName(base.kind));
            return 1;
        }
    }

    const auto errors = opt::validateFrontier(base, axes, options);
    if (!errors.empty()) {
        for (const auto &error : errors)
            std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }

    sweep::SweepRunner runner({.threads = threads, .base_seed = seed});
    opt::ResultCache cache;
    if (!cache_path.empty()) {
        const auto error = cache.open(cache_path, seed);
        if (!error.empty()) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        std::printf("cache: %s (%zu points loaded)\n",
                    cache_path.c_str(), cache.size());
    }

    if (progress)
        options.on_progress = [](const opt::FrontierProgress &p) {
            std::fprintf(stderr,
                         "progress: round %zu, point %zu/%zu "
                         "(%zu evaluated)\n",
                         p.round, p.round_done, p.round_total,
                         p.evaluated);
            return true;  // observe only; never cancel
        };

    std::printf("%s %s over %zu axes on %u threads (base seed %llu, "
                "budget %zu)...\n",
                options.maximize ? "maximizing" : "minimizing",
                options.objective.c_str(), axes.size(),
                runner.threadCount(),
                static_cast<unsigned long long>(seed), options.budget);
    // qmh-lint: allow(no-wallclock): elapsed-seconds display only — never feeds a row, a seed or a cache entry
    const auto start = std::chrono::steady_clock::now();
    const auto found = opt::frontierSearch(
        runner, base, axes, options,
        cache_path.empty() ? nullptr : &cache);
    const auto elapsed =
        std::chrono::duration<double>(
            // qmh-lint: allow(no-wallclock): elapsed-seconds display only — never feeds a row, a seed or a cache entry
            std::chrono::steady_clock::now() - start)
            .count();

    std::printf("evaluated %zu points in %zu rounds: simulated %zu, "
                "replayed %zu from cache (%.3f s)\n",
                found.evaluated, found.rounds, found.simulated,
                found.cached, elapsed);
    if (found.skipped_invalid)
        std::printf("skipped %zu candidate points that failed "
                    "validation\n",
                    found.skipped_invalid);
    std::printf("\nbest %s = %s at\n  %s\n\n", options.objective.c_str(),
                api::formatDouble(found.best_objective).c_str(),
                found.best_key.c_str());
    std::printf("top rows by %s:\n", options.objective.c_str());
    sweep::toAsciiTable(found.table, 10, {"spec", "seed"})
        .print(std::cout);

    if (!out_prefix.empty()) {
        const bool csv_ok =
            found.table.writeCsvFile(out_prefix + ".csv");
        const bool json_ok =
            found.table.writeJsonFile(out_prefix + ".json");
        if (!csv_ok || !json_ok) {
            std::fprintf(stderr, "failed to write %s.{csv,json}\n",
                         out_prefix.c_str());
            return 1;
        }
        std::printf("\nfull result set written to %s.csv and "
                    "%s.json\n",
                    out_prefix.c_str(), out_prefix.c_str());
    }
    return 0;
}
