/** @file Tests of the code metrics against the paper's Table 2. */

#include <gtest/gtest.h>

#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace ecc {
namespace {

const iontrap::Params params = iontrap::Params::future();

TEST(SteaneCode, BasicParameters)
{
    const auto c = Code::steane();
    EXPECT_EQ(c.n(), 7);
    EXPECT_EQ(c.k(), 1);
    EXPECT_EQ(c.d(), 3);
    EXPECT_EQ(c.shortName(), "7");
}

TEST(BaconShorCode, BasicParameters)
{
    const auto c = Code::baconShor();
    EXPECT_EQ(c.n(), 9);
    EXPECT_EQ(c.k(), 1);
    EXPECT_EQ(c.d(), 3);
    EXPECT_EQ(c.shortName(), "9");
}

TEST(CodeTable2, IonCountsMatchPaper)
{
    const auto steane = Code::steane();
    EXPECT_EQ(steane.dataIons(1), 7);
    EXPECT_EQ(steane.ancillaIons(1), 21);
    EXPECT_EQ(steane.dataIons(2), 49);
    EXPECT_EQ(steane.ancillaIons(2), 441);
    const auto bs = Code::baconShor();
    EXPECT_EQ(bs.dataIons(1), 9);
    EXPECT_EQ(bs.ancillaIons(1), 12);
    EXPECT_EQ(bs.dataIons(2), 81);
    EXPECT_EQ(bs.ancillaIons(2), 298);
}

TEST(CodeTable2, EcTimesMatchPaper)
{
    // Paper: Steane 3.1e-3 / 0.3 s; Bacon-Shor 1.2e-3 / 0.1 s.
    const auto steane = Code::steane();
    EXPECT_NEAR(steane.ecTime(1, params), 3.1e-3, 0.1e-3);
    EXPECT_NEAR(steane.ecTime(2, params), 0.3, 0.01);
    const auto bs = Code::baconShor();
    EXPECT_NEAR(bs.ecTime(1, params), 1.2e-3, 0.05e-3);
    EXPECT_NEAR(bs.ecTime(2, params), 0.1, 0.005);
}

TEST(CodeTable2, TransversalGateTimesMatchPaper)
{
    // Paper: Steane 6.2e-3 / 0.5 s; Bacon-Shor 2.4e-3 / 0.2 s.
    const auto steane = Code::steane();
    EXPECT_NEAR(steane.transversalGateTime(1, params), 6.2e-3, 0.3e-3);
    EXPECT_NEAR(steane.transversalGateTime(2, params), 0.5, 0.12);
    const auto bs = Code::baconShor();
    EXPECT_NEAR(bs.transversalGateTime(1, params), 2.4e-3, 0.15e-3);
    EXPECT_NEAR(bs.transversalGateTime(2, params), 0.2, 0.01);
}

TEST(CodeTable2, QubitAreasMatchPaper)
{
    // Paper: Steane 0.2 / 3.4 mm^2; Bacon-Shor 0.1 / 2.4 mm^2.
    const auto steane = Code::steane();
    EXPECT_NEAR(steane.qubitAreaMm2(1, params), 0.2, 0.02);
    EXPECT_NEAR(steane.qubitAreaMm2(2, params), 3.4, 0.05);
    const auto bs = Code::baconShor();
    EXPECT_NEAR(bs.qubitAreaMm2(1, params), 0.13, 0.04);
    EXPECT_NEAR(bs.qubitAreaMm2(2, params), 2.4, 0.05);
}

TEST(Code, ToffoliIsFifteenGateSteps)
{
    const auto c = Code::steane();
    EXPECT_DOUBLE_EQ(c.toffoliTime(2, params),
                     15.0 * c.gateStepTime(2, params));
}

TEST(Code, GateStepDominatedByEc)
{
    for (const auto kind :
         {CodeKind::Steane713, CodeKind::BaconShor913}) {
        const auto c = Code::byKind(kind);
        for (Level l = 1; l <= 2; ++l) {
            EXPECT_GT(c.gateStepTime(l, params), c.ecTime(l, params));
            EXPECT_LT(c.gateStepTime(l, params),
                      1.1 * c.ecTime(l, params));
        }
    }
}

TEST(Code, MemoryProvisioningReducesIons)
{
    const auto c = Code::steane();
    const double dense = c.ionsPerDataQubit(2, 1.0 / 8.0);
    const double full = c.ionsPerDataQubit(2, 2.0);
    EXPECT_LT(dense, full);
    EXPECT_DOUBLE_EQ(full, 49.0 + 441.0);
    EXPECT_DOUBLE_EQ(dense, 49.0 + 441.0 / 16.0);
}

TEST(Code, BaconShorFasterButBigger)
{
    const auto steane = Code::steane();
    const auto bs = Code::baconShor();
    // Faster EC at both levels...
    EXPECT_LT(bs.ecTime(1, params), steane.ecTime(1, params));
    EXPECT_LT(bs.ecTime(2, params), steane.ecTime(2, params));
    // ...more data ions to teleport...
    EXPECT_GT(bs.teleportIons(2), steane.teleportIons(2));
    // ...smaller overall tile.
    EXPECT_LT(bs.qubitAreaMm2(2, params), steane.qubitAreaMm2(2, params));
}

class CodeLevels
    : public ::testing::TestWithParam<std::tuple<CodeKind, Level>>
{};

TEST_P(CodeLevels, EcTimeGrowsRoughlyHundredfoldPerLevel)
{
    const auto code = Code::byKind(std::get<0>(GetParam()));
    const auto level = std::get<1>(GetParam());
    const double ratio = code.ecTime(level + 1, params) /
                         code.ecTime(level, params);
    EXPECT_GT(ratio, 50.0);
    EXPECT_LT(ratio, 150.0);
}

TEST_P(CodeLevels, AreaGrowsWithLevel)
{
    const auto code = Code::byKind(std::get<0>(GetParam()));
    const auto level = std::get<1>(GetParam());
    EXPECT_GT(code.qubitAreaMm2(level + 1, params),
              code.qubitAreaMm2(level, params));
}

INSTANTIATE_TEST_SUITE_P(
    BothCodes, CodeLevels,
    ::testing::Combine(::testing::Values(CodeKind::Steane713,
                                         CodeKind::BaconShor913),
                       ::testing::Values(1, 2)));

TEST(CodeDeath, NegativeLevelPanics)
{
    const auto c = Code::steane();
    EXPECT_DEATH(c.dataIons(-1), "negative");
}

} // namespace
} // namespace ecc
} // namespace qmh
