/** @file Unit tests for the ion-trap physical layer (paper Table 1). */

#include <gtest/gtest.h>

#include "iontrap/geometry.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace iontrap {
namespace {

TEST(Params, FutureValuesMatchPaperTable1)
{
    const auto p = Params::future();
    EXPECT_DOUBLE_EQ(p.single_gate_us, 1.0);
    EXPECT_DOUBLE_EQ(p.double_gate_us, 10.0);
    EXPECT_DOUBLE_EQ(p.measure_us, 10.0);
    EXPECT_DOUBLE_EQ(p.move_us, 10.0);
    EXPECT_DOUBLE_EQ(p.single_gate_fail, 1e-8);
    EXPECT_DOUBLE_EQ(p.double_gate_fail, 1e-7);
    EXPECT_DOUBLE_EQ(p.measure_fail, 1e-8);
    EXPECT_DOUBLE_EQ(p.move_fail_per_um, 5e-8);
    EXPECT_DOUBLE_EQ(p.trap_size_um, 5.0);
    EXPECT_DOUBLE_EQ(p.cycle_us, 10.0);
}

TEST(Params, CurrentTechnologyValuesMatchPaperTable1)
{
    const auto p = Params::currentTechnology();
    EXPECT_DOUBLE_EQ(p.double_gate_fail, 0.03);
    EXPECT_DOUBLE_EQ(p.measure_us, 200.0);
    EXPECT_DOUBLE_EQ(p.move_us, 20.0);
    EXPECT_DOUBLE_EQ(p.trap_size_um, 200.0);
}

TEST(Params, RegionDimensionIs50Microns)
{
    const auto p = Params::future();
    // ~10 electrodes x 5 um traps = 50 um region (paper Section 2.2).
    EXPECT_DOUBLE_EQ(p.regionDimUm(), 50.0);
    EXPECT_DOUBLE_EQ(p.regionAreaUm2(), 2500.0);
}

TEST(Params, MovementFailurePerRegionIsMicroScale)
{
    const auto p = Params::future();
    // Paper: "order of 10^-6 per fundamental move operation".
    EXPECT_NEAR(p.moveFailurePerRegion(), 2.5e-6, 1e-7);
}

TEST(Params, OpCyclesRoundUp)
{
    const auto p = Params::future();
    EXPECT_EQ(p.opCycles(PhysOp::SingleGate), 1);
    EXPECT_EQ(p.opCycles(PhysOp::DoubleGate), 1);
    EXPECT_EQ(p.opCycles(PhysOp::Measure), 1);
    const auto current = Params::currentTechnology();
    EXPECT_EQ(current.opCycles(PhysOp::Measure), 20);
    EXPECT_EQ(current.opCycles(PhysOp::Move), 2);
}

TEST(Params, AverageFailureIsMeanOfFourRates)
{
    const auto p = Params::future();
    EXPECT_NEAR(p.averageFailure(),
                (1e-8 + 1e-7 + 1e-8 + 5e-8) / 4.0, 1e-12);
}

class PhysOpNames : public ::testing::TestWithParam<PhysOp>
{};

TEST_P(PhysOpNames, HasNameAndTime)
{
    const auto p = Params::future();
    EXPECT_NE(physOpName(GetParam()), nullptr);
    EXPECT_GT(p.opTimeUs(GetParam()), 0.0);
    EXPECT_GE(p.opFailure(GetParam()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllOps, PhysOpNames,
                         ::testing::Values(PhysOp::SingleGate,
                                           PhysOp::DoubleGate,
                                           PhysOp::Measure, PhysOp::Move,
                                           PhysOp::Split,
                                           PhysOp::Cooling));

TEST(TrapGrid, AreaScalesWithRegions)
{
    const auto p = Params::future();
    TrapGrid grid(10, 20, p);
    EXPECT_EQ(grid.regions(), 200);
    EXPECT_NEAR(grid.areaMm2(), 200 * 2500.0 * 1e-6, 1e-9);
    EXPECT_DOUBLE_EQ(grid.widthUm(), 500.0);
    EXPECT_DOUBLE_EQ(grid.heightUm(), 1000.0);
}

TEST(TrapGrid, MoveLatencyIncludesSplitAndCooling)
{
    const auto p = Params::future();
    TrapGrid grid(10, 10, p);
    EXPECT_EQ(grid.moveLatencyCycles({0, 0}, {0, 0}), 0);
    const int one_hop = grid.moveLatencyCycles({0, 0}, {1, 0});
    const int two_hops = grid.moveLatencyCycles({0, 0}, {1, 1});
    EXPECT_EQ(two_hops - one_hop, p.opCycles(PhysOp::Move));
    EXPECT_GT(one_hop, p.opCycles(PhysOp::Move));
}

TEST(TrapGrid, MoveFailureGrowsWithDistance)
{
    const auto p = Params::future();
    TrapGrid grid(100, 100, p);
    const double near = grid.moveFailure({0, 0}, {1, 0});
    const double far = grid.moveFailure({0, 0}, {50, 50});
    EXPECT_GT(far, near);
    EXPECT_NEAR(near, p.moveFailurePerRegion(), 1e-9);
    EXPECT_NEAR(far, 100 * p.moveFailurePerRegion(), 1e-6);
}

TEST(TrapGrid, Manhattan)
{
    EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
    EXPECT_EQ(manhattan({-1, 0}, {1, 0}), 2);
}

TEST(TrapGridDeath, RejectsBadDimensions)
{
    const auto p = Params::future();
    EXPECT_EXIT(TrapGrid(0, 5, p), ::testing::ExitedWithCode(1),
                "positive");
}

} // namespace
} // namespace iontrap
} // namespace qmh
