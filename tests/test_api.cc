/** @file Unit tests for the qmh::api experiment facade. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "api/spec.hh"
#include "api/workload.hh"
#include "cqla/hierarchy_sim.hh"

namespace qmh {
namespace api {
namespace {

std::string
csvOf(const sweep::ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

TEST(Spec, DefaultsPrintAsKindOnly)
{
    EXPECT_EQ(printSpec(ExperimentSpec{}), "experiment=hierarchy");
}

TEST(Spec, PrintParsesBackExactly)
{
    ExperimentSpec spec;
    spec.kind = ExperimentKind::Cache;
    spec.code = ecc::CodeKind::BaconShor913;
    spec.workload = "random";
    spec.n = 96;
    spec.gates = 777;
    spec.warm = true;
    spec.policy = cache::FetchPolicy::InOrder;
    spec.capacity_x = 0.1 + 0.2;  // not representable as "0.3"
    spec.l1_fraction = 2.0 / 3.0;
    const auto text = printSpec(spec);
    const auto parsed = parseSpec(text);
    ASSERT_TRUE(parsed.ok()) << parsed.errors.front();
    EXPECT_TRUE(parsed.spec == spec) << text;
    // And printing the reparsed spec is a fixed point.
    EXPECT_EQ(printSpec(parsed.spec), text);
}

TEST(Spec, RoundTripsEveryKind)
{
    for (const auto kind :
         {ExperimentKind::Hierarchy, ExperimentKind::Cache,
          ExperimentKind::Bandwidth, ExperimentKind::MonteCarlo,
          ExperimentKind::Trace}) {
        ExperimentSpec spec;
        spec.kind = kind;
        spec.machine = "now";
        spec.trials = 12345;
        spec.p0 = 3.7e-4;
        const auto parsed = parseSpec(printSpec(spec));
        ASSERT_TRUE(parsed.ok());
        EXPECT_TRUE(parsed.spec == spec);
    }
}

TEST(Spec, DoubleRoundTripFuzz)
{
    // The result cache is keyed on canonical spec strings, so the
    // printer must round-trip *every* finite double bit-exactly —
    // including subnormals, negative zero and values with no short
    // decimal form. Drive random bit patterns through print -> parse.
    Random rng(0xF00DF00DULL);
    int tested = 0;
    while (tested < 5000) {
        const std::uint64_t bits = rng.next();
        double value;
        static_assert(sizeof(value) == sizeof(bits));
        std::memcpy(&value, &bits, sizeof(value));
        if (!std::isfinite(value))
            continue;  // the spec layer rejects non-finite values
        ++tested;
        const auto reparsed = parseDouble(formatDouble(value));
        ASSERT_TRUE(reparsed.has_value()) << formatDouble(value);
        EXPECT_EQ(std::memcmp(&*reparsed, &value, sizeof(value)), 0)
            << formatDouble(value);

        ExperimentSpec spec;
        spec.l1_fraction = value;
        const auto parsed = parseSpec(printSpec(spec));
        ASSERT_TRUE(parsed.ok()) << printSpec(spec);
        EXPECT_TRUE(parsed.spec == spec) << printSpec(spec);
        EXPECT_EQ(printSpec(parsed.spec), printSpec(spec));
    }
}

TEST(Spec, NonRepresentableDecimalRoundTrips)
{
    // 0.1 has no exact binary representation; the canonical printer
    // must still emit a string that parses back to the same bits (and
    // stays the human-friendly shortest form, not 0.1000000000000000055…).
    ExperimentSpec spec;
    ASSERT_EQ(specSet(spec, "l1_fraction", "0.1"), "");
    EXPECT_EQ(specGet(spec, "l1_fraction"), "0.1");
    EXPECT_EQ(spec.l1_fraction, 0.1);
    const auto parsed = parseSpec(printSpec(spec));
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.spec == spec);
}

TEST(Spec, RejectsNonFiniteReals)
{
    // NaN breaks parse(print(s)) == s (NaN != NaN) and inf corrupts
    // the casts that size caches from capacity_x, so the field
    // setters must refuse what parseDouble itself accepts.
    ExperimentSpec spec;
    EXPECT_NE(specSet(spec, "capacity_x", "inf"), "");
    EXPECT_NE(specSet(spec, "l1_fraction", "-inf"), "");
    EXPECT_NE(specSet(spec, "p0", "nan"), "");
    EXPECT_NE(specSet(spec, "noise_factor", "NAN"), "");
    EXPECT_TRUE(spec == ExperimentSpec{});
}

TEST(Spec, EveryKeyReportsItsKind)
{
    for (const auto &key : specKeys())
        EXPECT_TRUE(specKeyKind(key).has_value()) << key;
    EXPECT_EQ(specKeyKind("l1_fraction"), SpecKeyKind::Real);
    EXPECT_EQ(specKeyKind("transfers"), SpecKeyKind::Int);
    EXPECT_EQ(specKeyKind("adders"), SpecKeyKind::UInt);
    EXPECT_EQ(specKeyKind("warm"), SpecKeyKind::Bool);
    EXPECT_EQ(specKeyKind("policy"), SpecKeyKind::Text);
    EXPECT_EQ(specKeyKind("no_such_key"), std::nullopt);
}

TEST(Spec, ParseReportsEveryProblem)
{
    const auto parsed =
        parseSpec("experiment=warp n=alpha bogus_key=1 justatoken");
    EXPECT_EQ(parsed.errors.size(), 4u);
    // Valid tokens in the same string still apply.
    const auto partial = parseSpec("n=128 experiment=warp");
    EXPECT_EQ(partial.spec.n, 128);
    EXPECT_EQ(partial.errors.size(), 1u);
}

TEST(Spec, StrictParsingRejectsAtoiGarbage)
{
    // Everything std::atoi would silently coerce to an integer.
    EXPECT_FALSE(parseInt("12abc").has_value());
    EXPECT_FALSE(parseInt("").has_value());
    EXPECT_FALSE(parseInt(" 12").has_value());
    EXPECT_FALSE(parseInt("1.5").has_value());
    EXPECT_FALSE(parseUInt("-3").has_value());
    EXPECT_FALSE(parseDouble("1e").has_value());
    EXPECT_EQ(parseInt("-12"), -12);
    EXPECT_EQ(parseUInt("18446744073709551615"),
              18446744073709551615ULL);
    EXPECT_DOUBLE_EQ(parseDouble("2.5e-3").value(), 2.5e-3);
}

TEST(Spec, GetAndSetCoverEveryKey)
{
    ExperimentSpec spec;
    for (const auto &key : specKeys()) {
        const auto value = specGet(spec, key);
        ASSERT_TRUE(value.has_value()) << key;
        // Setting a field to its own canonical value is always legal.
        EXPECT_EQ(specSet(spec, key, *value), "") << key;
        EXPECT_NE(specKeyHelp(key), nullptr) << key;
    }
    EXPECT_FALSE(specGet(spec, "no_such_key").has_value());
    EXPECT_NE(specSet(spec, "no_such_key", "1"), "");
}

TEST(Workloads, RegistryHasThePaperGenerators)
{
    for (const char *name :
         {"draper", "ripple", "modexp", "qft", "random"})
        EXPECT_NE(findWorkload(name), nullptr) << name;
    EXPECT_EQ(findWorkload("bogus"), nullptr);
}

TEST(Workloads, BuildsProgramsWithMetadata)
{
    Random rng(7);
    ExperimentSpec spec;
    spec.workload = "draper";
    spec.n = 32;
    const auto draper = buildWorkload(spec, rng);
    EXPECT_GT(draper.program.size(), 0u);
    ASSERT_EQ(draper.cacheable.size(),
              static_cast<std::size_t>(draper.program.qubitCount()));
    // The data registers are cacheable, the scratch is not.
    EXPECT_TRUE(draper.cacheable[0]);
    EXPECT_FALSE(draper.cacheable.back());
    EXPECT_GT(draper.pe_qubits, 0u);

    spec.workload = "modexp";
    spec.reps = 3;
    const auto modexp = buildWorkload(spec, rng);
    EXPECT_EQ(modexp.program.size(), 3 * draper.program.size());

    spec.workload = "random";
    spec.n = 16;
    spec.gates = 64;
    const auto random = buildWorkload(spec, rng);
    EXPECT_EQ(random.program.size(), 64u);
    EXPECT_TRUE(random.cacheable.empty());
}

TEST(Experiments, ValidateCatchesBadRanges)
{
    ExperimentSpec spec;
    spec.kind = ExperimentKind::Hierarchy;
    spec.l1_fraction = 0.0;
    EXPECT_FALSE(makeExperiment(spec)->validate().empty());

    spec = ExperimentSpec{};
    spec.kind = ExperimentKind::Cache;
    spec.workload = "unknown-generator";
    EXPECT_FALSE(makeExperiment(spec)->validate().empty());

    spec = ExperimentSpec{};
    spec.kind = ExperimentKind::MonteCarlo;
    spec.p0 = 0.9;
    EXPECT_FALSE(makeExperiment(spec)->validate().empty());

    spec = ExperimentSpec{};
    spec.kind = ExperimentKind::Bandwidth;
    EXPECT_TRUE(makeExperiment(spec)->validate().empty());
}

TEST(Experiments, EveryKindRunsAndMatchesItsColumns)
{
    for (const char *text :
         {"experiment=hierarchy n=64 adders=40",
          "experiment=cache workload=draper n=32",
          "experiment=bandwidth blocks=36",
          "experiment=montecarlo trials=2000",
          "experiment=trace workload=draper n=32 blocks=8 "
          "transfers=4 capacity=24"}) {
        const auto parsed = parseSpec(text);
        ASSERT_TRUE(parsed.ok()) << text;
        const auto experiment = makeExperiment(parsed.spec);
        EXPECT_TRUE(experiment->validate().empty()) << text;
        Random rng(42);
        const auto row = experiment->run(rng);
        EXPECT_EQ(row.size(), experiment->columns().size()) << text;
        EXPECT_EQ(experiment->columns().front(), "spec");
        // The first cell re-parses to the spec that produced it.
        const auto reparsed = parseSpec(row.front().toString());
        ASSERT_TRUE(reparsed.ok()) << text;
        EXPECT_TRUE(reparsed.spec == parsed.spec) << text;
    }
}

TEST(SpecGrid, ExpandsCrossProductInAxisOrder)
{
    SpecGrid grid;
    grid.base = parseSpec("experiment=cache workload=draper").spec;
    grid.axis("n", {"16", "32"});
    grid.axis("policy", {"inorder", "optimized"});
    grid.axis("warm", {"0", "1"});
    EXPECT_EQ(grid.points(), 8u);
    const auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 8u);
    // First axis slowest, last fastest.
    EXPECT_EQ(specs[0].n, 16);
    EXPECT_FALSE(specs[0].warm);
    EXPECT_TRUE(specs[1].warm);
    EXPECT_EQ(specs[1].policy, cache::FetchPolicy::InOrder);
    EXPECT_EQ(specs[2].policy, cache::FetchPolicy::OptimizedLookahead);
    EXPECT_EQ(specs[4].n, 32);
    // Un-swept axes keep the base value everywhere.
    for (const auto &spec : specs)
        EXPECT_EQ(spec.workload, "draper");
}

TEST(SpecGrid, AddAxisParsesAndRejects)
{
    SpecGrid grid;
    EXPECT_EQ(grid.addAxis("n=64,128,256"), "");
    ASSERT_EQ(grid.axes.size(), 1u);
    EXPECT_EQ(grid.axes[0].values.size(), 3u);
    EXPECT_NE(grid.addAxis("n=64,,128"), "");
    EXPECT_NE(grid.addAxis("bogus=1"), "");
    EXPECT_NE(grid.addAxis("n=notanumber"), "");
    EXPECT_NE(grid.addAxis("justatoken"), "");
    EXPECT_EQ(grid.axes.size(), 1u);
    EXPECT_TRUE(grid.validate().empty());
}

TEST(SpecGrid, ValidateFlagsBadValues)
{
    SpecGrid grid;
    grid.axis("n", {"16", "oops"});
    grid.axis("unknown", {"1"});
    EXPECT_EQ(grid.validate().size(), 2u);
}

TEST(SpecSweep, CacheGridBitIdenticalAcrossThreadCounts)
{
    // The acceptance sweep: a *cache* experiment grid (random
    // workload, so the per-point RNG stream matters) must emit a
    // bit-identical table on 1 vs N threads.
    SpecGrid grid;
    grid.base =
        parseSpec("experiment=cache workload=random n=24 gates=400")
            .spec;
    grid.axis("capacity", {"6", "12", "18"});
    grid.axis("policy", {"inorder", "optimized"});
    grid.axis("warm", {"0", "1"});
    const auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 12u);

    const auto serial =
        runSpecSweep(specs, {.threads = 1, .base_seed = 99});
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = runSpecSweep(
            specs, {.threads = threads, .base_seed = 99});
        EXPECT_EQ(csvOf(serial), csvOf(parallel))
            << threads << " threads diverged";
    }
    // The random workload really is seed-sensitive: a different base
    // seed must change the table (hit counts differ).
    const auto other =
        runSpecSweep(specs, {.threads = 2, .base_seed = 100});
    EXPECT_NE(csvOf(serial), csvOf(other));
}

TEST(SpecSweep, TableShapeAndSeeds)
{
    SpecGrid grid;
    grid.base = parseSpec("experiment=bandwidth").spec;
    grid.axis("blocks", {"10", "20", "30"});
    const auto table =
        runSpecSweep(grid.expand(), {.threads = 2, .base_seed = 5});
    ASSERT_EQ(table.rows(), 3u);
    EXPECT_EQ(table.columnNames().front(), "spec");
    EXPECT_EQ(table.columnNames().back(), "seed");
    const auto seed_col = table.findColumn("seed");
    ASSERT_TRUE(seed_col.has_value());
    for (std::size_t r = 0; r < table.rows(); ++r)
        EXPECT_EQ(table.cell(r, *seed_col).toString(),
                  std::to_string(sweep::pointSeed(5, r)));
    const auto blocks_col = table.findColumn("blocks");
    ASSERT_TRUE(blocks_col.has_value());
    EXPECT_EQ(table.cell(2, *blocks_col).toString(), "30");
}

TEST(SpecSweep, EmptySpecListYieldsEmptyTable)
{
    const auto table = runSpecSweep({}, {.threads = 1});
    EXPECT_EQ(table.rows(), 0u);
}

TEST(SpecSweepDeath, InvalidSpecPanics)
{
    ExperimentSpec bad;
    bad.kind = ExperimentKind::Cache;
    bad.workload = "bogus";
    EXPECT_DEATH(runSpecSweep({bad}, {.threads = 1}),
                 "validation error.*unknown workload 'bogus'");
}

TEST(SpecSweepDeath, MixedKindsPanic)
{
    const auto a = parseSpec("experiment=bandwidth").spec;
    const auto b = parseSpec("experiment=montecarlo trials=10").spec;
    EXPECT_DEATH(runSpecSweep({a, b}, {.threads = 1}),
                 "mixed experiment kinds");
}

TEST(SpecSweep, HierarchyMatchesDirectEngineCall)
{
    // The facade is a veneer: a hierarchy row must equal the internal
    // engine's result for the same config.
    const auto parsed = parseSpec(
        "experiment=hierarchy code=bacon-shor n=64 adders=40 "
        "transfers=5 blocks=25 l1_fraction=0.5");
    ASSERT_TRUE(parsed.ok());
    const auto table = runSpecSweep({parsed.spec}, {.threads = 1});

    cqla::HierarchySimConfig config;
    config.code = ecc::CodeKind::BaconShor913;
    config.n_bits = 64;
    config.total_adders = 40;
    config.parallel_transfers = 5;
    config.blocks = 25;
    config.level1_fraction = 0.5;
    const auto direct =
        cqla::runHierarchySim(config, iontrap::Params::future());

    const auto speedup_col = table.findColumn("makespan_speedup");
    ASSERT_TRUE(speedup_col.has_value());
    EXPECT_EQ(table.cell(0, *speedup_col).asNumber().value(),
              direct.makespan_speedup);
}

} // namespace
} // namespace api
} // namespace qmh
