/** @file CQLA area/performance/hierarchy model tests (Tables 4, 5). */

#include <gtest/gtest.h>

#include "cqla/area_model.hh"
#include "cqla/hierarchy.hh"
#include "cqla/perf_model.hh"

namespace qmh {
namespace cqla {
namespace {

const iontrap::Params params = iontrap::Params::future();

TEST(AreaModel, MemoryDenserThanCompute)
{
    const AreaModel area(params);
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const auto code = ecc::Code::byKind(kind);
        const double mem = area.memoryQubitAreaMm2(code, 2);
        const double block_per_qubit =
            area.computeBlockAreaMm2(code, 2) /
            AreaModel::qubits_per_block;
        EXPECT_LT(mem, block_per_qubit / 3.0);
    }
}

TEST(AreaModel, QlaDominatesCqla)
{
    const AreaModel area(params);
    const auto steane = ecc::Code::steane();
    for (int n : {32, 256, 1024}) {
        const auto blocks =
            PerformanceModel::paperBlockCounts(n).first;
        EXPECT_GT(area.areaReductionFactor(steane, n, blocks), 3.0);
    }
}

struct AreaRow
{
    int n;
    unsigned blocks;
    double paper_steane;
    double paper_bacon_shor;
};

class Table4Area : public ::testing::TestWithParam<AreaRow>
{};

TEST_P(Table4Area, WithinTenPercentOfPaper)
{
    const AreaModel area(params);
    const auto row = GetParam();
    const double steane = area.areaReductionFactor(
        ecc::Code::steane(), row.n, row.blocks);
    const double bs = area.areaReductionFactor(
        ecc::Code::baconShor(), row.n, row.blocks);
    EXPECT_NEAR(steane, row.paper_steane, 0.10 * row.paper_steane);
    EXPECT_NEAR(bs, row.paper_bacon_shor,
                0.10 * row.paper_bacon_shor);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table4Area,
    ::testing::Values(AreaRow{32, 4, 6.69, 9.80},
                      AreaRow{32, 9, 3.22, 4.74},
                      AreaRow{64, 9, 6.36, 9.32},
                      AreaRow{64, 16, 3.79, 5.56},
                      AreaRow{128, 16, 7.24, 10.6},
                      AreaRow{256, 36, 6.65, 9.47},
                      AreaRow{512, 64, 7.42, 10.87},
                      AreaRow{1024, 100, 9.14, 13.4},
                      AreaRow{1024, 121, 7.81, 11.45}));

TEST(AreaModel, HeadlineThirteenX)
{
    // "up to a factor of thirteen savings in area".
    const AreaModel area(params);
    const double bs = area.areaReductionFactor(
        ecc::Code::baconShor(), 1024, 100);
    EXPECT_GT(bs, 11.0);
    EXPECT_LT(bs, 15.0);
}

TEST(AreaModel, CacheAndTransferChargeable)
{
    const AreaModel area(params);
    const auto code = ecc::Code::steane();
    const auto plain = area.cqlaArea(code, 256, 49);
    const auto full = area.cqlaArea(code, 256, 49, 900, 10);
    EXPECT_GT(full.cache_mm2, 0.0);
    EXPECT_GT(full.transfer_mm2, 0.0);
    EXPECT_GT(full.total(), plain.total());
    // Level-1 cache tiles are small: the hierarchy costs little area.
    EXPECT_LT(full.total(), 1.3 * plain.total());
}

struct SpeedRow
{
    int n;
    unsigned blocks;
    double paper_steane;
    double paper_bacon_shor;
};

class Table4Speedup : public ::testing::TestWithParam<SpeedRow>
{};

TEST_P(Table4Speedup, WithinTenPercentOfPaper)
{
    PerformanceModel perf(params);
    const auto row = GetParam();
    EXPECT_NEAR(perf.speedup(ecc::Code::steane(), row.n, row.blocks),
                row.paper_steane, 0.10 * row.paper_steane);
    EXPECT_NEAR(
        perf.speedup(ecc::Code::baconShor(), row.n, row.blocks),
        row.paper_bacon_shor, 0.12 * row.paper_bacon_shor);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table4Speedup,
    ::testing::Values(SpeedRow{32, 4, 0.54, 1.47},
                      SpeedRow{32, 9, 0.97, 2.9},
                      SpeedRow{64, 9, 0.70, 1.92},
                      SpeedRow{64, 16, 0.98, 3.0},
                      SpeedRow{128, 16, 0.72, 1.97},
                      SpeedRow{256, 36, 0.92, 2.51},
                      SpeedRow{512, 64, 0.92, 2.50},
                      SpeedRow{1024, 100, 0.80, 2.19},
                      SpeedRow{1024, 121, 0.97, 2.65}));

TEST(PerformanceModel, BaconShorCapsAtEcRatio)
{
    // With enough blocks the Bacon-Shor speedup approaches the EC
    // latency ratio (0.3 s / 0.1 s = 3).
    PerformanceModel perf(params);
    const double sp =
        perf.speedup(ecc::Code::baconShor(), 256, 4096);
    EXPECT_NEAR(sp, 3.0, 0.05);
}

TEST(PerformanceModel, BoundedMakespanMonotonic)
{
    PerformanceModel perf(params);
    const auto &timing = perf.adderTiming(128);
    double prev = 1e300;
    for (unsigned b : {1u, 2u, 4u, 8u, 16u, 64u, 256u}) {
        const double mk = timing.boundedMakespanSteps(b);
        EXPECT_LE(mk, prev);
        prev = mk;
    }
    EXPECT_DOUBLE_EQ(
        timing.boundedMakespanSteps(sched::unlimited_blocks),
        static_cast<double>(timing.critical_path_steps));
}

TEST(PerformanceModel, UtilizationTradeoff)
{
    // Fig. 6a: utilization falls as blocks grow.
    PerformanceModel perf(params);
    double prev = 2.0;
    for (unsigned b : {4u, 16u, 36u, 100u, 196u}) {
        const double u = perf.utilization(256, b);
        EXPECT_LE(u, prev);
        EXPECT_GT(u, 0.0);
        EXPECT_LE(u, 1.0);
        prev = u;
    }
    // Small block counts stay work-bound (full utilization); very
    // large ones waste most block-steps.
    EXPECT_NEAR(perf.utilization(256, 4), 1.0, 1e-9);
    EXPECT_LT(perf.utilization(256, 196), 0.4);
}

TEST(PerformanceModel, ScheduledUtilizationBelowBound)
{
    PerformanceModel perf(params);
    for (unsigned b : {9u, 49u}) {
        EXPECT_LE(perf.scheduledUtilization(256, b),
                  perf.utilization(256, b) + 1e-9);
    }
}

TEST(PerformanceModel, GainProductIsProduct)
{
    PerformanceModel perf(params);
    const auto row = perf.table4Row(256, 36);
    EXPECT_NEAR(row.gain_product_steane,
                row.area_reduced_steane * row.speedup_steane, 1e-9);
    EXPECT_NEAR(row.gain_product_bacon_shor,
                row.area_reduced_bacon_shor * row.speedup_bacon_shor,
                1e-9);
    EXPECT_GT(row.gain_product_bacon_shor, row.gain_product_steane);
}

TEST(PerformanceModelDeath, UnknownSizeRejected)
{
    EXPECT_EXIT(PerformanceModel::paperBlockCounts(77),
                ::testing::ExitedWithCode(1), "Table 4");
}

struct HierRow
{
    ecc::CodeKind code;
    int n;
    unsigned channels;
    double paper_s1;
};

class Table5Level1 : public ::testing::TestWithParam<HierRow>
{};

TEST_P(Table5Level1, WithinFifteenPercentOfPaper)
{
    HierarchyModel hier(params);
    const auto row = GetParam();
    const double s1 = hier.level1Speedup(ecc::Code::byKind(row.code),
                                         row.n, row.channels);
    EXPECT_NEAR(s1, row.paper_s1, 0.15 * row.paper_s1);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table5Level1,
    ::testing::Values(
        HierRow{ecc::CodeKind::Steane713, 256, 10, 17.417},
        HierRow{ecc::CodeKind::Steane713, 512, 10, 17.41},
        HierRow{ecc::CodeKind::Steane713, 1024, 10, 18.18},
        HierRow{ecc::CodeKind::Steane713, 256, 5, 10.409},
        HierRow{ecc::CodeKind::Steane713, 1024, 5, 10.96},
        HierRow{ecc::CodeKind::BaconShor913, 256, 10, 9.61},
        HierRow{ecc::CodeKind::BaconShor913, 512, 10, 9.61},
        HierRow{ecc::CodeKind::BaconShor913, 1024, 10, 10.15},
        HierRow{ecc::CodeKind::BaconShor913, 256, 5, 5.17},
        HierRow{ecc::CodeKind::BaconShor913, 1024, 5, 5.49}));

TEST(HierarchyModel, MoreChannelsFasterLevel1)
{
    HierarchyModel hier(params);
    const auto code = ecc::Code::steane();
    EXPECT_GT(hier.level1Speedup(code, 512, 10),
              hier.level1Speedup(code, 512, 5));
    EXPECT_GT(hier.level1Speedup(code, 512, 20),
              hier.level1Speedup(code, 512, 10));
}

TEST(HierarchyModel, AddMixMatchesPaperPolicy)
{
    HierarchyModel hier(params);
    EXPECT_NEAR(hier.level1AddFraction(ecc::Code::steane(), 1024),
                1.0 / 3.0, 0.02);
    EXPECT_NEAR(hier.level1AddFraction(ecc::Code::baconShor(), 1024),
                2.0 / 3.0, 0.02);
    // The design point pins the mix for smaller runs too.
    EXPECT_NEAR(hier.level1AddFraction(ecc::Code::steane(), 256),
                1.0 / 3.0, 0.02);
}

TEST(HierarchyModel, HeadlineEightXSpeedup)
{
    // "a speedup of about 8" (Bacon-Shor, 10 parallel transfers).
    HierarchyModel hier(params);
    const auto code = ecc::Code::baconShor();
    const double sA =
        hier.adderSpeedup(code, 1024, 10, HierarchyModel::paperBlocks(1024));
    EXPECT_GT(sA, 7.0);
    EXPECT_LT(sA, 9.5);
}

TEST(HierarchyModel, RowIsSelfConsistent)
{
    HierarchyModel hier(params);
    const auto code = ecc::Code::baconShor();
    const auto row = hier.row(code, 512, 10, 81);
    EXPECT_NEAR(row.adder_speedup,
                row.level1_add_fraction * row.level1_speedup +
                    (1.0 - row.level1_add_fraction) *
                        row.level2_speedup,
                1e-9);
    EXPECT_NEAR(row.gain_product,
                row.area_reduced * row.adder_speedup, 1e-9);
}

TEST(HierarchyModel, GainProductBeatsTable4)
{
    // The hierarchy multiplies the specialization gains.
    HierarchyModel hier(params);
    PerformanceModel perf(params);
    const auto code = ecc::Code::baconShor();
    const auto t5 = hier.row(code, 1024, 10, 100);
    const auto t4 = perf.table4Row(1024, 100);
    EXPECT_GT(t5.gain_product, t4.gain_product_bacon_shor * 2.0);
}

} // namespace
} // namespace cqla
} // namespace qmh
