/** @file Assembly text format round-trip and error tests. */

#include <gtest/gtest.h>

#include "circuit/text_format.hh"

namespace qmh {
namespace circuit {
namespace {

TEST(TextFormat, WriteContainsHeaderAndGates)
{
    Program p("demo", 3);
    p.cnot(QubitId(0), QubitId(1));
    p.toffoli(QubitId(0), QubitId(1), QubitId(2));
    const auto text = writeText(p);
    EXPECT_NE(text.find("name demo"), std::string::npos);
    EXPECT_NE(text.find("qubits 3"), std::string::npos);
    EXPECT_NE(text.find("cnot q0 q1"), std::string::npos);
    EXPECT_NE(text.find("toffoli q0 q1 q2"), std::string::npos);
}

TEST(TextFormat, RoundTripPreservesProgram)
{
    Program p("rt", 5);
    p.h(QubitId(0));
    p.cphase(4, QubitId(1), QubitId(2));
    p.barrier();
    p.swapq(QubitId(3), QubitId(4));
    p.measure(QubitId(0));

    const auto parsed = parseText(writeText(p));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.program.size(), p.size());
    EXPECT_EQ(parsed.program.name(), "rt");
    EXPECT_EQ(parsed.program.qubitCount(), 5);
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(parsed.program[i].kind, p[i].kind);
        EXPECT_EQ(parsed.program[i].param, p[i].param);
        EXPECT_EQ(parsed.program[i].arity, p[i].arity);
    }
}

TEST(TextFormat, CommentsAndBlankLinesIgnored)
{
    const auto result = parseText("# a comment\n\nqubits 2\n"
                                  "x q0  # trailing comment\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.program.size(), 1u);
}

struct BadInput
{
    const char *text;
    const char *reason;
};

class ParseErrors : public ::testing::TestWithParam<BadInput>
{};

TEST_P(ParseErrors, Rejected)
{
    const auto result = parseText(GetParam().text);
    EXPECT_FALSE(result.ok) << "should reject: " << GetParam().reason;
    EXPECT_FALSE(result.error.empty());
}

INSTANTIATE_TEST_SUITE_P(
    BadPrograms, ParseErrors,
    ::testing::Values(
        BadInput{"x q0\n", "instruction before qubits"},
        BadInput{"qubits -3\n", "negative register"},
        BadInput{"qubits two\n", "non-numeric register"},
        BadInput{"qubits 2\nfoo q0\n", "unknown mnemonic"},
        BadInput{"qubits 2\nx q5\n", "operand out of range"},
        BadInput{"qubits 2\nx j0\n", "bad operand syntax"},
        BadInput{"qubits 2\ncnot q0\n", "missing operand"},
        BadInput{"qubits 2\ncnot q0 q1 q1\n", "extra operand"},
        BadInput{"qubits 2\ncnot q1 q1\n", "duplicate operand"},
        BadInput{"qubits 3\ncphase q0 q1\n", "cphase missing k"},
        BadInput{"", "missing qubits directive"}));

TEST(TextFormat, ErrorCarriesLineNumber)
{
    const auto result = parseText("qubits 2\nx q0\nbogus q1\n");
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.line, 3);
}

} // namespace
} // namespace circuit
} // namespace qmh
