/** @file Unit tests for the statistics package. */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace qmh {
namespace {

TEST(Scalar, StartsAtZeroAndAccumulates)
{
    stats::Scalar s("ops", "operations");
    EXPECT_EQ(s.value(), 0.0);
    s.inc();
    s.inc(2.5);
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Average, EmptyExtremaAreNaNNotZero)
{
    // A real minimum of 0.0 must be distinguishable from "no samples
    // were ever taken"; empty extrema follow the NaN-safe ResultTable
    // sort convention instead of masquerading as 0.0.
    stats::Average a("lat", "latency");
    EXPECT_EQ(a.count(), 0u);
    EXPECT_TRUE(std::isnan(a.min()));
    EXPECT_TRUE(std::isnan(a.max()));
    a.sample(0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(Average, TracksMeanMinMax)
{
    stats::Average a("lat", "latency");
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, ResetClears)
{
    stats::Average a("x", "");
    a.sample(1.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    // The previous run's extrema must not leak through reset().
    EXPECT_TRUE(std::isnan(a.min()));
    EXPECT_TRUE(std::isnan(a.max()));
}

TEST(Average, SamplingAfterResetReinitializesExtrema)
{
    stats::Average a("x", "");
    a.sample(-5.0);
    a.sample(100.0);
    a.reset();
    // A post-reset sample larger than the old min (and smaller than
    // the old max) must win outright — stale extrema are a bug.
    a.sample(7.0);
    EXPECT_EQ(a.min(), 7.0);
    EXPECT_EQ(a.max(), 7.0);
    EXPECT_DOUBLE_EQ(a.mean(), 7.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    stats::Histogram h("h", "", 0.0, 10.0, 5);
    h.sample(0.5);   // bucket 0
    h.sample(3.0);   // bucket 1
    h.sample(9.99);  // bucket 4
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(4), 1u);
    EXPECT_EQ(h.totalSamples(), 3u);
}

TEST(Histogram, UnderOverflow)
{
    stats::Histogram h("h", "", 0.0, 1.0, 2);
    h.sample(-0.1);
    h.sample(1.0);
    h.sample(5.0, 3);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 4u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Histogram, WeightedSamples)
{
    stats::Histogram h("h", "", 0.0, 4.0, 4);
    h.sample(1.5, 7);
    EXPECT_EQ(h.bucketCount(1), 7u);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    stats::Scalar s("count", "the count");
    stats::Average a("delay", "the delay");
    s.inc(42);
    a.sample(3.0);
    stats::StatGroup group("mygroup");
    group.add(&s);
    group.add(&a);
    std::ostringstream os;
    group.dump(os);
    const auto text = os.str();
    EXPECT_NE(text.find("mygroup.count"), std::string::npos);
    EXPECT_NE(text.find("42"), std::string::npos);
    EXPECT_NE(text.find("mygroup.delay.mean"), std::string::npos);
    EXPECT_NE(text.find("the count"), std::string::npos);
}

TEST(StatGroup, ResetAllClearsMembers)
{
    stats::Scalar s("c", "");
    stats::Average a("d", "");
    s.inc(5);
    a.sample(5);
    stats::StatGroup group("g");
    group.add(&s);
    group.add(&a);
    group.resetAll();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

} // namespace
} // namespace qmh
