/**
 * @file
 * Unit tests for server::SharedCache — the eviction policy, the
 * two-tier promotion path, and thread-safety under concurrent
 * clients (the TSan job runs this suite).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "opt/result_cache.hh"
#include "server/shared_cache.hh"

namespace qmh {
namespace {

constexpr std::uint64_t kBase = 7;

std::vector<sweep::Cell>
rowFor(const std::string &key)
{
    return {sweep::Cell(key), sweep::Cell(1.5),
            sweep::Cell(std::int64_t(key.size()))};
}

std::string
cellBytes(const std::vector<sweep::Cell> &row)
{
    std::string joined;
    for (const auto &cell : row)
        joined += cell.toJson() + ",";
    return joined;
}

bool
put(server::SharedCache &cache, const std::string &key)
{
    return cache.insert(key, opt::specSeed(cache.baseSeed(), key),
                        rowFor(key));
}

/** A self-deleting temp file path (mkstemp keeps lint's no-rand). */
class TempPath
{
  public:
    TempPath()
    {
        char name[] = "/tmp/qmh_shared_cache_XXXXXX";
        const int fd = ::mkstemp(name);
        if (fd >= 0)
            ::close(fd);
        _path = name;
        std::remove(_path.c_str()); // open() treats missing as empty
    }
    ~TempPath() { std::remove(_path.c_str()); }
    const std::string &str() const { return _path; }

  private:
    std::string _path;
};

// ---------------------------------------------------------------------------
// Eviction policy (the contract the ISSUE pins): sharded LRU, least
// recently *used*, where a lookup hit counts as a use.
// ---------------------------------------------------------------------------

TEST(SharedCache, EvictsTheLeastRecentlyUsedEntry)
{
    // One shard makes residentKeys() a total recency order.
    server::SharedCache cache(kBase,
                              {.shards = 1, .capacity_per_shard = 2});
    EXPECT_TRUE(put(cache, "a"));
    EXPECT_TRUE(put(cache, "b"));
    EXPECT_EQ(cache.residentKeys(),
              (std::vector<std::string>{"b", "a"}));

    // Touch "a": it is now the most recent, so "b" is the victim.
    ASSERT_TRUE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.residentKeys(),
              (std::vector<std::string>{"a", "b"}));

    EXPECT_TRUE(put(cache, "c"));
    EXPECT_EQ(cache.residentKeys(),
              (std::vector<std::string>{"c", "a"}));

    const auto stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.resident, 2u);
    EXPECT_EQ(stats.inserts, 3u);
}

TEST(SharedCache, UnbackedEvictionForgetsTheEntry)
{
    server::SharedCache cache(kBase,
                              {.shards = 1, .capacity_per_shard = 1});
    EXPECT_TRUE(put(cache, "a"));
    EXPECT_TRUE(put(cache, "b")); // evicts "a"; no persistent tier
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SharedCache, FirstWriterWinsOnDuplicateInsert)
{
    server::SharedCache cache(kBase,
                              {.shards = 1, .capacity_per_shard = 4});
    EXPECT_TRUE(cache.insert("k", opt::specSeed(kBase, "k"),
                             rowFor("k")));
    EXPECT_FALSE(cache.insert("k", opt::specSeed(kBase, "k"),
                              {sweep::Cell("imposter")}));
    const auto hit = cache.lookup("k");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(cellBytes(hit->row), cellBytes(rowFor("k")));
    EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(SharedCache, ConfigMinimumsAreClamped)
{
    server::SharedCache cache(kBase,
                              {.shards = 0, .capacity_per_shard = 0});
    EXPECT_TRUE(put(cache, "only"));
    EXPECT_TRUE(cache.lookup("only").has_value());
    EXPECT_TRUE(put(cache, "next")); // cap clamps to 1: evicts "only"
    EXPECT_EQ(cache.residentKeys(),
              (std::vector<std::string>{"next"}));
}

// ---------------------------------------------------------------------------
// The persistent tier: eviction never loses a backed entry, hits
// promote back into memory, and the file is plain opt::ResultCache.
// ---------------------------------------------------------------------------

TEST(SharedCache, BackedEvictionReloadsFromThePersistentTier)
{
    TempPath path;
    server::SharedCache cache(kBase,
                              {.shards = 1, .capacity_per_shard = 2});
    ASSERT_EQ(cache.open(path.str()), "");
    ASSERT_TRUE(cache.backed());

    EXPECT_TRUE(put(cache, "a"));
    EXPECT_TRUE(put(cache, "b"));
    EXPECT_TRUE(put(cache, "c")); // evicts "a" from memory only

    const auto hit = cache.lookup("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->seed, opt::specSeed(kBase, "a"));
    EXPECT_EQ(cellBytes(hit->row), cellBytes(rowFor("a")));

    const auto stats = cache.stats();
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_EQ(stats.persisted, 3u);
    // The promotion re-homed "a", evicting the then-LRU "b".
    EXPECT_EQ(cache.residentKeys(),
              (std::vector<std::string>{"a", "c"}));
}

TEST(SharedCache, SharesTheFileFormatWithTheOptimizerCache)
{
    TempPath path;
    {
        opt::ResultCache writer;
        ASSERT_EQ(writer.open(path.str(), kBase), "");
        ASSERT_TRUE(writer.insert("x", opt::specSeed(kBase, "x"),
                                  rowFor("x")));
    }
    server::SharedCache cache(kBase, {.shards = 1});
    ASSERT_EQ(cache.open(path.str()), "");
    const auto hit = cache.lookup("x");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(cellBytes(hit->row), cellBytes(rowFor("x")));

    // The seed-identity check survives the promotion: a mismatched
    // base seed is a typed diagnostic, not silent wrong replay.
    server::SharedCache wrong(kBase + 1, {.shards = 1});
    EXPECT_NE(wrong.open(path.str()), "");
}

// ---------------------------------------------------------------------------
// Concurrency: many threads, few keys, tiny shards — the shape that
// makes every lock and eviction path race if it can.
// ---------------------------------------------------------------------------

TEST(SharedCache, StaysCoherentUnderConcurrentClients)
{
    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kRounds = 200;
    constexpr std::size_t kKeys = 24;

    TempPath path;
    server::SharedCache cache(kBase,
                              {.shards = 4, .capacity_per_shard = 4});
    ASSERT_EQ(cache.open(path.str()), "");
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&cache, t]() {
            for (std::size_t round = 0; round < kRounds; ++round) {
                const std::string key =
                    "spec-" +
                    std::to_string((t * 7 + round) % kKeys);
                if (const auto hit = cache.lookup(key)) {
                    // A torn row would show up here.
                    ASSERT_EQ(cellBytes(hit->row),
                              cellBytes(rowFor(key)));
                } else {
                    cache.insert(
                        key, opt::specSeed(kBase, key), rowFor(key));
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds);
    // Every key is touched; duplicates collapse in the backing file.
    EXPECT_EQ(stats.persisted, kKeys);
    EXPECT_LE(stats.resident, 16u); // 4 shards x 4 entries
}

} // namespace
} // namespace qmh
