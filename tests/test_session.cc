/** @file Unit tests for the job-oriented session API. */

#include <gtest/gtest.h>

#include <functional>
#include <latch>
#include <sstream>
#include <stdexcept>

#include "api/grid.hh"
#include "api/session.hh"

namespace qmh {
namespace api {
namespace {

std::string
csvOf(const sweep::ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

std::vector<ExperimentSpec>
montecarloSpecs(std::size_t points)
{
    SpecGrid grid;
    grid.base =
        parseSpec("experiment=montecarlo trials=400 level=1").spec;
    std::vector<std::string> trials;
    for (std::size_t i = 0; i < points; ++i)
        trials.push_back(std::to_string(400 + i));
    grid.axis("trials", trials);
    return grid.expand();
}

TEST(Session, SubmitRejectsInvalidSpecsWithTypedError)
{
    Session session({.threads = 1});
    const auto specs =
        std::vector<ExperimentSpec>{parseSpec("experiment=hierarchy "
                                              "n=5000")
                                        .spec};
    const auto submitted = session.submit(specs);
    ASSERT_FALSE(submitted.ok());
    EXPECT_EQ(submitted.error().code, ErrorCode::InvalidSpec);
    ASSERT_EQ(submitted.error().details.size(), 1u);
    EXPECT_NE(submitted.error().details.front().find("n must be"),
              std::string::npos);
    // The session survives a rejected submission.
    EXPECT_TRUE(session.submit(montecarloSpecs(2)).ok());
}

TEST(Session, SubmitRejectsMixedKinds)
{
    Session session({.threads = 1});
    const std::vector<ExperimentSpec> specs = {
        parseSpec("experiment=cache").spec,
        parseSpec("experiment=bandwidth").spec};
    const auto submitted = session.submit(specs);
    ASSERT_FALSE(submitted.ok());
    EXPECT_EQ(submitted.error().code, ErrorCode::MixedKinds);
}

TEST(Session, SubmitRejectsSeedCountMismatch)
{
    Session session({.threads = 1});
    SubmitOptions options;
    options.seeds = {1, 2, 3};
    const auto submitted =
        session.submit(montecarloSpecs(2), std::move(options));
    ASSERT_FALSE(submitted.ok());
    EXPECT_EQ(submitted.error().code, ErrorCode::BadSeeds);
}

TEST(Session, EmptySubmitIsAFinishedJob)
{
    Session session({.threads = 1});
    auto submitted = session.submit(std::vector<ExperimentSpec>{});
    ASSERT_TRUE(submitted.ok());
    auto job = submitted.value();
    EXPECT_TRUE(job.progress().finished);
    EXPECT_FALSE(job.nextRow().has_value());
    const auto result = job.wait();
    EXPECT_EQ(result.table.rows(), 0u);
    EXPECT_EQ(result.table.columnNames(),
              (std::vector<std::string>{"spec", "seed"}));
}

TEST(Session, WaitMatchesBlockingRunSpecSweep)
{
    const auto specs = montecarloSpecs(6);
    const sweep::SweepOptions options{.threads = 3,
                                      .base_seed = 2024};
    const auto blocking = runSpecSweep(specs, options);

    Session session(options);
    auto job = session.submit(specs).value();
    const auto result = job.wait();
    EXPECT_FALSE(result.cancelled);
    EXPECT_FALSE(result.failure.has_value());
    EXPECT_EQ(result.completed, specs.size());
    EXPECT_EQ(csvOf(result.table), csvOf(blocking));
    // wait() is idempotent: it snapshots, it does not consume.
    EXPECT_EQ(csvOf(job.wait().table), csvOf(blocking));
}

TEST(Session, RowsStreamInIndexOrderWhileRunning)
{
    const auto specs = montecarloSpecs(8);
    Session session({.threads = 4, .base_seed = 99});
    auto job = session.submit(specs).value();
    ASSERT_EQ(job.totalPoints(), specs.size());
    ASSERT_EQ(job.columns().back(), "seed");

    std::vector<std::vector<sweep::Cell>> streamed;
    std::size_t last_done = 0;
    while (auto row = job.nextRow()) {
        streamed.push_back(std::move(*row));
        const auto progress = job.progress();
        // Monotonic counters, and streamable never outruns done.
        EXPECT_GE(progress.done, last_done);
        EXPECT_LE(progress.streamable, progress.done);
        EXPECT_GE(progress.streamable, streamed.size());
        last_done = progress.done;
    }
    ASSERT_EQ(streamed.size(), specs.size());

    const auto result = job.wait();
    for (std::size_t r = 0; r < streamed.size(); ++r)
        for (std::size_t c = 0; c < result.table.columns(); ++c)
            EXPECT_EQ(streamed[r][c].toString(),
                      result.table.cell(r, c).toString());
    // The spec column lands in submission order: streaming is by
    // index, not by completion.
    const auto spec_col = *result.table.findColumn("spec");
    for (std::size_t r = 0; r < specs.size(); ++r)
        EXPECT_EQ(result.table.cell(r, spec_col).toString(),
                  printSpec(specs[r]));
}

TEST(Session, PollRowReportsPendingAndEnd)
{
    Session session({.threads = 1});
    auto job = session.submit(montecarloSpecs(2)).value();
    std::vector<sweep::Cell> row;
    std::size_t got = 0;
    for (;;) {
        const auto poll = job.pollRow(row);
        if (poll == RowPoll::End)
            break;
        if (poll == RowPoll::Ready)
            ++got;
        // Pending: the next in-order row has not completed yet; a
        // real caller would do other work here.
    }
    EXPECT_EQ(got, 2u);
    EXPECT_EQ(job.pollRow(row), RowPoll::End);
}

/**
 * The cancellation-determinism contract (issue satellite): rows the
 * cancelled job *did* return are bit-identical to the same prefix of
 * an uncancelled single-thread run, no matter where the cut landed.
 */
TEST(Session, CancelledPrefixMatchesUncancelledSingleThreadRun)
{
    const auto specs = montecarloSpecs(16);
    const std::uint64_t seed = 77;
    const auto reference =
        runSpecSweep(specs, {.threads = 1, .base_seed = seed});

    Session session({.threads = 4, .base_seed = seed});
    auto job = session.submit(specs).value();
    for (int consumed = 0; consumed < 3; ++consumed)
        ASSERT_TRUE(job.nextRow().has_value());
    job.cancel();
    const auto result = job.wait();

    EXPECT_TRUE(result.cancelled);
    ASSERT_GE(result.completed, 3u);  // streamed rows are in the prefix
    ASSERT_LE(result.completed, specs.size());
    EXPECT_EQ(result.executed + result.skipped, specs.size());
    for (std::size_t r = 0; r < result.completed; ++r)
        for (std::size_t c = 0; c < result.table.columns(); ++c)
            EXPECT_EQ(result.table.cell(r, c).toString(),
                      reference.cell(r, c).toString())
                << "prefix row " << r << " diverged";
}

/** A minimal injectable experiment for lifecycle tests. */
class ScriptedExperiment final : public Experiment
{
  public:
    using Behavior = std::function<double(std::size_t index)>;

    ScriptedExperiment(std::size_t index, Behavior behavior)
        : Experiment(ExperimentSpec{}), _index(index),
          _behavior(std::move(behavior))
    {
    }

    std::string name() const override { return "scripted"; }

    std::vector<std::string> validate() const override { return {}; }

    std::vector<std::string> columns() const override
    {
        return {"spec", "value"};
    }

    std::vector<sweep::Cell> run(Random &) const override
    {
        return {printSpec(_spec), _behavior(_index)};
    }

  private:
    std::size_t _index;
    Behavior _behavior;
};

std::vector<std::unique_ptr<Experiment>>
scriptedBatch(std::size_t points,
              const ScriptedExperiment::Behavior &behavior)
{
    std::vector<std::unique_ptr<Experiment>> experiments;
    for (std::size_t i = 0; i < points; ++i)
        experiments.push_back(
            std::make_unique<ScriptedExperiment>(i, behavior));
    return experiments;
}

/**
 * Pin the exact cancellation semantics with a gated experiment: the
 * in-flight point finishes, every unclaimed point is skipped, and
 * the counts come out deterministic because the gate serializes the
 * race the real engines would leave to timing.
 */
TEST(Session, CancelFinishesInFlightAndSkipsUnclaimed)
{
    std::latch started{1};
    std::latch gate{1};
    Session session({.threads = 1});
    auto job = session
                   .submit(scriptedBatch(
                       4,
                       [&](std::size_t index) {
                           if (index == 1) {
                               started.count_down();
                               gate.wait();
                           }
                           return static_cast<double>(index);
                       }))
                   .value();

    ASSERT_TRUE(job.nextRow().has_value());  // point 0 done
    started.wait();   // the single worker is now inside point 1
    job.cancel();     // points 2 and 3 are unclaimed -> skipped
    gate.count_down();

    const auto result = job.wait();
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.completed, 2u);  // in-flight point 1 finished
    EXPECT_EQ(result.executed, 2u);
    EXPECT_EQ(result.skipped, 2u);
    EXPECT_FALSE(result.failure.has_value());
    // The stream drains the remaining prefix row, then ends.
    ASSERT_TRUE(job.nextRow().has_value());
    EXPECT_FALSE(job.nextRow().has_value());
}

TEST(Session, ThrowingExperimentRetiresJobWithTypedFailure)
{
    Session session({.threads = 1});
    auto job = session
                   .submit(scriptedBatch(
                       3,
                       [](std::size_t index) -> double {
                           if (index == 1)
                               throw std::runtime_error("boom");
                           return 1.0;
                       }))
                   .value();
    const auto result = job.wait();
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_EQ(result.failure->code, ErrorCode::ExecutionFailed);
    EXPECT_NE(result.failure->message.find("boom"),
              std::string::npos);
    EXPECT_EQ(result.completed, 1u);  // the prefix before the throw
    EXPECT_EQ(result.executed, 2u);   // the failed point *did* run
    EXPECT_EQ(result.skipped, 1u);    // only the never-claimed tail
    EXPECT_TRUE(result.cancelled);    // the failure cancels the rest

    // The session (and its pool) stay usable after a failed job.
    auto next = session.submit(montecarloSpecs(2)).value();
    EXPECT_EQ(next.wait().completed, 2u);
}

TEST(Session, WrongRowWidthIsAnExecutionFailure)
{
    class WrongWidth final : public Experiment
    {
      public:
        WrongWidth() : Experiment(ExperimentSpec{}) {}
        std::string name() const override { return "wrong"; }
        std::vector<std::string> validate() const override
        {
            return {};
        }
        std::vector<std::string> columns() const override
        {
            return {"spec", "a", "b"};
        }
        std::vector<sweep::Cell> run(Random &) const override
        {
            return {printSpec(_spec)};  // 1 cell for 3 columns
        }
    };

    Session session({.threads = 1});
    std::vector<std::unique_ptr<Experiment>> experiments;
    experiments.push_back(std::make_unique<WrongWidth>());
    const auto result =
        session.submit(std::move(experiments)).value().wait();
    ASSERT_TRUE(result.failure.has_value());
    EXPECT_EQ(result.failure->code, ErrorCode::ExecutionFailed);
    EXPECT_EQ(result.completed, 0u);
}

TEST(Session, ExplicitSeedsDriveThePointStreams)
{
    // Explicit seeds land in the seed column verbatim, and repeating
    // a seed reproduces its row exactly — the property
    // opt::runSpecSweepCached builds spec-addressed replay on.
    const auto spec =
        parseSpec("experiment=montecarlo trials=400").spec;
    Session session({.threads = 2});
    SubmitOptions options;
    options.seeds = {5, 6, 5};
    auto job = session
                   .submit(std::vector<ExperimentSpec>{spec, spec,
                                                       spec},
                           std::move(options))
                   .value();
    const auto result = job.wait();
    ASSERT_EQ(result.completed, 3u);
    const auto failures = *result.table.findColumn("failures");
    const auto seed_col = *result.table.findColumn("seed");
    EXPECT_EQ(result.table.cell(0, seed_col).toString(), "5");
    EXPECT_EQ(result.table.cell(1, seed_col).toString(), "6");
    EXPECT_EQ(result.table.cell(0, failures).toString(),
              result.table.cell(2, failures).toString());
}

TEST(Session, SessionOverSharedRunnerUsesItsPoolAndSeed)
{
    sweep::SweepRunner runner({.threads = 2, .base_seed = 4242});
    Session session(runner);
    EXPECT_EQ(session.threadCount(), 2u);
    EXPECT_EQ(session.baseSeed(), 4242u);
    const auto specs = montecarloSpecs(4);
    const auto via_session =
        session.submit(specs).value().wait().table;
    const auto via_runner = runSpecSweep(runner, specs);
    EXPECT_EQ(csvOf(via_session), csvOf(via_runner));
}

} // namespace
} // namespace api
} // namespace qmh
