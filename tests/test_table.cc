/** @file Unit tests for the ASCII table renderer. */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace qmh {
namespace {

TEST(AsciiTable, RendersHeaderAndRows)
{
    AsciiTable t;
    t.setHeader({"n", "value"});
    t.addRow({"32", "1.5"});
    t.addRow({"1024", "13.4"});
    const auto text = t.toString();
    EXPECT_NE(text.find(" n |"), std::string::npos);
    EXPECT_NE(text.find("1024"), std::string::npos);
    EXPECT_NE(text.find("13.4"), std::string::npos);
}

TEST(AsciiTable, ColumnWidthsExpandToContent)
{
    AsciiTable t;
    t.setHeader({"x"});
    t.addRow({"a-very-long-cell"});
    const auto text = t.toString();
    EXPECT_NE(text.find("a-very-long-cell"), std::string::npos);
}

TEST(AsciiTable, CaptionPrintedFirst)
{
    AsciiTable t;
    t.setCaption("Table 4");
    t.setHeader({"a"});
    t.addRow({"1"});
    const auto text = t.toString();
    EXPECT_EQ(text.rfind("Table 4", 0), 0u);
}

TEST(AsciiTable, SeparatorAddsRule)
{
    AsciiTable t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const auto text = t.toString();
    // header rule + top + separator + bottom = 4 rules
    int rules = 0;
    for (std::size_t pos = 0; (pos = text.find("+-", pos)) !=
                              std::string::npos;
         ++pos)
        ++rules;
    EXPECT_EQ(rules, 4);
}

TEST(AsciiTable, NumFormatting)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(std::uint64_t(42)), "42");
    EXPECT_EQ(AsciiTable::num(-7), "-7");
}

TEST(AsciiTable, SciFormatting)
{
    EXPECT_EQ(AsciiTable::sci(3.1e-3, 1), "3.1e-03");
}

TEST(AsciiTable, CountsRowsAndColumns)
{
    AsciiTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(AsciiTableDeath, MismatchedRowPanics)
{
    AsciiTable t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(AsciiTableDeath, RowBeforeHeaderPanics)
{
    AsciiTable t;
    EXPECT_DEATH(t.addRow({"x"}), "setHeader");
}

} // namespace
} // namespace qmh
