/** @file Unit tests for the ASCII table renderer and table cells. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/table.hh"
#include "sweep/emit.hh"

namespace qmh {
namespace {

TEST(AsciiTable, RendersHeaderAndRows)
{
    AsciiTable t;
    t.setHeader({"n", "value"});
    t.addRow({"32", "1.5"});
    t.addRow({"1024", "13.4"});
    const auto text = t.toString();
    EXPECT_NE(text.find(" n |"), std::string::npos);
    EXPECT_NE(text.find("1024"), std::string::npos);
    EXPECT_NE(text.find("13.4"), std::string::npos);
}

TEST(AsciiTable, ColumnWidthsExpandToContent)
{
    AsciiTable t;
    t.setHeader({"x"});
    t.addRow({"a-very-long-cell"});
    const auto text = t.toString();
    EXPECT_NE(text.find("a-very-long-cell"), std::string::npos);
}

TEST(AsciiTable, CaptionPrintedFirst)
{
    AsciiTable t;
    t.setCaption("Table 4");
    t.setHeader({"a"});
    t.addRow({"1"});
    const auto text = t.toString();
    EXPECT_EQ(text.rfind("Table 4", 0), 0u);
}

TEST(AsciiTable, SeparatorAddsRule)
{
    AsciiTable t;
    t.setHeader({"a"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    const auto text = t.toString();
    // header rule + top + separator + bottom = 4 rules
    int rules = 0;
    for (std::size_t pos = 0; (pos = text.find("+-", pos)) !=
                              std::string::npos;
         ++pos)
        ++rules;
    EXPECT_EQ(rules, 4);
}

TEST(AsciiTable, NumFormatting)
{
    EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(AsciiTable::num(std::uint64_t(42)), "42");
    EXPECT_EQ(AsciiTable::num(-7), "-7");
}

TEST(AsciiTable, SciFormatting)
{
    EXPECT_EQ(AsciiTable::sci(3.1e-3, 1), "3.1e-03");
}

TEST(AsciiTable, CountsRowsAndColumns)
{
    AsciiTable t;
    t.setHeader({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.columns(), 3u);
    EXPECT_EQ(t.rows(), 1u);
}

TEST(Cell, NonFiniteDoublesEmitJsonNull)
{
    // Regression: bare inf/nan tokens are not valid JSON; the whole
    // emitted document would be unparseable.
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(sweep::Cell(inf).toJson(), "null");
    EXPECT_EQ(sweep::Cell(-inf).toJson(), "null");
    EXPECT_EQ(sweep::Cell(nan).toJson(), "null");
    // Finite doubles and the other cell types are untouched.
    EXPECT_EQ(sweep::Cell(2.5).toJson(), "2.5");
    EXPECT_EQ(sweep::Cell(std::string("inf")).toJson(), "\"inf\"");

    sweep::ResultTable table({"speedup"});
    table.addRow({0.0 / 0.0});
    table.addRow({1.0 / 0.0});
    std::ostringstream os;
    table.writeJson(os);
    EXPECT_EQ(os.str(), "[\n"
                        "  {\"speedup\": null},\n"
                        "  {\"speedup\": null}\n"
                        "]\n");
}

TEST(Cell, AsNumberCoversNumericAlternatives)
{
    EXPECT_DOUBLE_EQ(sweep::Cell(1.25).asNumber().value(), 1.25);
    EXPECT_DOUBLE_EQ(sweep::Cell(-3).asNumber().value(), -3.0);
    EXPECT_DOUBLE_EQ(sweep::Cell(std::uint64_t(9)).asNumber().value(),
                     9.0);
    EXPECT_FALSE(sweep::Cell("text").asNumber().has_value());
}

TEST(ResultTable, AccessorsAndDescendingSort)
{
    sweep::ResultTable table({"label", "score"});
    table.addRow({"low", 1.0});
    table.addRow({"high", 3.0});
    table.addRow({"mid", 2.0});
    table.addRow({"text-score", "n/a"});
    ASSERT_TRUE(table.findColumn("score").has_value());
    EXPECT_EQ(*table.findColumn("score"), 1u);
    EXPECT_FALSE(table.findColumn("missing").has_value());

    table.sortRowsByColumnDesc(1);
    EXPECT_EQ(table.cell(0, 0).toString(), "high");
    EXPECT_EQ(table.cell(1, 0).toString(), "mid");
    EXPECT_EQ(table.cell(2, 0).toString(), "low");
    // Non-numeric cells sort below every number.
    EXPECT_EQ(table.cell(3, 0).toString(), "text-score");
}

TEST(ResultTable, ToAsciiDropsColumnsAndCapsRows)
{
    sweep::ResultTable table({"spec", "n", "rate"});
    table.addRow({"experiment=cache", 64, 0.75});
    table.addRow({"experiment=cache n=128", 128, 0.5});
    const auto ascii =
        sweep::toAsciiTable(table, 1, {"spec"});
    EXPECT_EQ(ascii.columns(), 2u);
    EXPECT_EQ(ascii.rows(), 1u);
    const auto text = ascii.toString();
    EXPECT_EQ(text.find("experiment"), std::string::npos);
    EXPECT_NE(text.find("rate"), std::string::npos);
}

TEST(AsciiTableDeath, MismatchedRowPanics)
{
    AsciiTable t;
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(AsciiTableDeath, RowBeforeHeaderPanics)
{
    AsciiTable t;
    EXPECT_DEATH(t.addRow({"x"}), "setHeader");
}

} // namespace
} // namespace qmh
