/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <limits>

#include "common/random.hh"

namespace qmh {
namespace {

TEST(Random, SameSeedSameStream)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Random, UniformInUnitInterval)
{
    Random rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
    }
}

TEST(Random, UniformMeanIsHalf)
{
    Random rng(11);
    double sum = 0.0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / trials, 0.5, 0.01);
}

TEST(Random, UniformIntRespectsBound)
{
    Random rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
        for (int i = 0; i < 1000; ++i)
            ASSERT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Random, UniformIntCoversRange)
{
    Random rng(5);
    bool seen[10] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniformInt(10)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Random, UniformRangeInclusive)
{
    Random rng(9);
    bool lo_seen = false, hi_seen = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        lo_seen |= v == -3;
        hi_seen |= v == 3;
    }
    EXPECT_TRUE(lo_seen);
    EXPECT_TRUE(hi_seen);
}

// Regression: the span of [lo, hi] used to be computed as hi - lo in
// signed arithmetic, which is UB once the width exceeds INT64_MAX, and
// the full 64-bit range wrapped the span to 0 and panicked inside
// uniformInt.
TEST(Random, UniformRangeHugeSpan)
{
    constexpr auto int64_min = std::numeric_limits<std::int64_t>::min();
    constexpr auto int64_max = std::numeric_limits<std::int64_t>::max();
    Random rng(29);
    for (int i = 0; i < 1000; ++i) {
        const auto a = rng.uniformRange(int64_min, 0);
        ASSERT_GE(a, int64_min);
        ASSERT_LE(a, 0);
        const auto b = rng.uniformRange(-1, int64_max);
        ASSERT_GE(b, -1);
        const auto c = rng.uniformRange(int64_min + 1, int64_max - 1);
        ASSERT_GT(c, int64_min);
        ASSERT_LT(c, int64_max);
    }
}

TEST(Random, UniformRangeFullRange)
{
    constexpr auto int64_min = std::numeric_limits<std::int64_t>::min();
    constexpr auto int64_max = std::numeric_limits<std::int64_t>::max();
    Random rng(31);
    bool negative_seen = false, positive_seen = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformRange(int64_min, int64_max);
        negative_seen |= v < 0;
        positive_seen |= v > 0;
    }
    // Every 64-bit pattern is valid, so both halves must appear.
    EXPECT_TRUE(negative_seen);
    EXPECT_TRUE(positive_seen);
    // The full-range path consumes exactly one raw draw per sample.
    Random a(37), b(37);
    const auto sampled = a.uniformRange(int64_min, int64_max);
    EXPECT_EQ(sampled, static_cast<std::int64_t>(b.next()));
}

TEST(Random, UniformRangeDegenerate)
{
    Random rng(41);
    EXPECT_EQ(rng.uniformRange(5, 5), 5);
    constexpr auto int64_min = std::numeric_limits<std::int64_t>::min();
    EXPECT_EQ(rng.uniformRange(int64_min, int64_min), int64_min);
}

TEST(Random, BernoulliEdgeCases)
{
    Random rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Random, BernoulliFrequency)
{
    Random rng(13);
    int hits = 0;
    const int trials = 100000;
    for (int i = 0; i < trials; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Random, BinomialSmallNMatchesMean)
{
    Random rng(17);
    double sum = 0.0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        sum += static_cast<double>(rng.binomial(20, 0.25));
    EXPECT_NEAR(sum / trials, 5.0, 0.1);
}

TEST(Random, BinomialLargeNMatchesMean)
{
    Random rng(19);
    double sum = 0.0;
    const int trials = 5000;
    for (int i = 0; i < trials; ++i)
        sum += static_cast<double>(rng.binomial(100000, 0.01));
    EXPECT_NEAR(sum / trials, 1000.0, 10.0);
}

TEST(Random, BinomialDegenerateProbabilities)
{
    Random rng(23);
    EXPECT_EQ(rng.binomial(1000, 0.0), 0u);
    EXPECT_EQ(rng.binomial(1000, 1.0), 1000u);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
}

} // namespace
} // namespace qmh
