/** @file Tests for logging levels, strong ids and unit conversions. */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/strong_id.hh"
#include "common/units.hh"

namespace qmh {
namespace {

using TestId = StrongId<struct TestTag>;

TEST(StrongId, DefaultIsInvalid)
{
    TestId id;
    EXPECT_FALSE(id.isValid());
    EXPECT_EQ(id, TestId::invalid());
}

TEST(StrongId, ValueRoundTrip)
{
    TestId id(17);
    EXPECT_TRUE(id.isValid());
    EXPECT_EQ(id.value(), 17u);
}

TEST(StrongId, Ordering)
{
    EXPECT_LT(TestId(1), TestId(2));
    EXPECT_EQ(TestId(3), TestId(3));
    EXPECT_NE(TestId(3), TestId(4));
}

TEST(StrongId, Hashable)
{
    std::hash<TestId> h;
    EXPECT_EQ(h(TestId(5)), h(TestId(5)));
    EXPECT_NE(h(TestId(5)), h(TestId(6)));
}

TEST(Units, SecondsTicksRoundTrip)
{
    const Tick t = units::secondsToTicks(1.5);
    EXPECT_EQ(t, 1500000000ull);
    EXPECT_DOUBLE_EQ(units::ticksToSeconds(t), 1.5);
}

TEST(Units, MicrosecondConversion)
{
    EXPECT_DOUBLE_EQ(units::usToSeconds(10.0), 1e-5);
}

TEST(Units, AreaConversion)
{
    EXPECT_DOUBLE_EQ(units::um2ToMm2(1e6), 1.0);
}

TEST(Units, HoursConversion)
{
    EXPECT_DOUBLE_EQ(units::secondsToHours(7200.0), 2.0);
}

TEST(Logging, LevelsAreOrdered)
{
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(qmh_panic("boom ", 42), "boom 42");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(qmh_fatal("bad config"),
                ::testing::ExitedWithCode(1), "bad config");
}

} // namespace
} // namespace qmh
