/** @file Unit tests for the multithreaded sweep engine. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "sweep/emit.hh"
#include "sweep/sweep.hh"
#include "sweep/thread_pool.hh"

namespace qmh {
namespace {

using cqla::HierarchySimConfig;
using cqla::HierarchySimResult;

bool
bitIdentical(const HierarchySimResult &a, const HierarchySimResult &b)
{
    // Exact equality on purpose: the determinism contract is
    // bit-identical results, not results within a tolerance.
    return a.makespan_s == b.makespan_s &&
           a.baseline_s == b.baseline_s &&
           a.makespan_speedup == b.makespan_speedup &&
           a.mean_adder_speedup == b.mean_adder_speedup &&
           a.level1_adds == b.level1_adds &&
           a.level2_adds == b.level2_adds &&
           a.transfer_utilization == b.transfer_utilization &&
           a.events_executed == b.events_executed;
}

std::vector<HierarchySimConfig>
smallGrid()
{
    sweep::HierarchyGrid grid;
    grid.base.total_adders = 40;
    grid.codes = {ecc::CodeKind::Steane713, ecc::CodeKind::BaconShor913};
    grid.n_bits = {64, 128};
    grid.parallel_transfers = {5, 10};
    grid.blocks = {25, 49};
    grid.level1_fractions = {1.0 / 3.0, 2.0 / 3.0};
    return grid.expand();
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    sweep::ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter]() { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    sweep::ThreadPool pool(2);
    std::atomic<int> counter{0};
    pool.submit([&counter]() { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
    pool.submit([&counter]() { ++counter; });
    pool.submit([&counter]() { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPool, PropagatesFirstTaskException)
{
    sweep::ThreadPool pool(2);
    pool.submit([]() { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The pool stays usable after a failed batch.
    std::atomic<int> counter{0};
    pool.submit([&counter]() { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ThrowingTasksDoNotCorruptInFlightAccounting)
{
    // A task that throws must still count as retired: if _in_flight
    // leaked, this wait() (and every later one) would hang instead
    // of rethrowing, and the session layer above — which shares one
    // pool across jobs — would stall with it.
    sweep::ThreadPool pool(4);
    std::atomic<int> survivors{0};
    for (int i = 0; i < 64; ++i) {
        if (i % 3 == 0)
            pool.submit([]() { throw std::runtime_error("boom"); });
        else
            pool.submit([&survivors]() { ++survivors; });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(survivors.load(), 64 - 22);  // every non-thrower ran

    // And a full second batch drains cleanly: no stale error, no
    // stale in-flight count.
    std::atomic<int> second{0};
    for (int i = 0; i < 32; ++i)
        pool.submit([&second]() { ++second; });
    pool.wait();  // must not throw and must not hang
    EXPECT_EQ(second.load(), 32);
}

TEST(ThreadPool, WaitRethrowsTheFirstErrorAndDropsTheRest)
{
    // One worker serializes execution, so "first" is well defined.
    sweep::ThreadPool pool(1);
    pool.submit([]() { throw std::runtime_error("first"); });
    pool.submit([]() { throw std::logic_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() did not rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
    // The second exception was dropped, not deferred to the next
    // wait(): a later clean batch reports clean.
    pool.submit([]() {});
    EXPECT_NO_THROW(pool.wait());
}

TEST(Sweep, PointSeedIsDeterministicAndDistinct)
{
    EXPECT_EQ(sweep::pointSeed(1, 0), sweep::pointSeed(1, 0));
    EXPECT_NE(sweep::pointSeed(1, 0), sweep::pointSeed(1, 1));
    EXPECT_NE(sweep::pointSeed(1, 0), sweep::pointSeed(2, 0));
    // Adjacent indices must not produce correlated seeds.
    const auto a = sweep::pointSeed(99, 7);
    const auto b = sweep::pointSeed(99, 8);
    EXPECT_GT(a ^ b, 0xFFFFFFFFULL);
}

TEST(Sweep, MapPreservesIndexOrder)
{
    sweep::SweepRunner runner({.threads = 4});
    const auto results = runner.map(
        257, [](std::size_t i, Random &) { return i * i; });
    ASSERT_EQ(results.size(), 257u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * i);
}

TEST(Sweep, MapSeedsAreIndependentOfThreadCountAndTiming)
{
    // Draw from the per-point RNG under deliberately skewed task
    // durations so completion order differs from index order; the
    // sampled streams must not care.
    auto draw = [](std::size_t i, Random &rng) {
        if (i % 7 == 0)
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        return rng.next();
    };
    sweep::SweepRunner serial({.threads = 1, .base_seed = 123});
    sweep::SweepRunner wide({.threads = 8, .base_seed = 123});
    const auto expected = serial.map(64, draw);
    const auto actual = wide.map(64, draw);
    EXPECT_EQ(expected, actual);
}

TEST(Sweep, HierarchyGridExpandsCrossProduct)
{
    const auto configs = smallGrid();
    EXPECT_EQ(configs.size(), 2u * 2u * 2u * 2u * 2u);
    // Base values survive on axes the grid does not list.
    for (const auto &config : configs)
        EXPECT_EQ(config.total_adders, 40u);
}

TEST(Sweep, HierarchyGridEmptyAxesUseBase)
{
    sweep::HierarchyGrid grid;
    grid.base.n_bits = 96;
    grid.level1_fractions = {0.25, 0.5};
    const auto configs = grid.expand();
    ASSERT_EQ(configs.size(), 2u);
    EXPECT_EQ(configs[0].n_bits, 96);
    EXPECT_EQ(configs[0].code, grid.base.code);
    EXPECT_DOUBLE_EQ(configs[0].level1_fraction, 0.25);
    EXPECT_DOUBLE_EQ(configs[1].level1_fraction, 0.5);
}

TEST(Sweep, HierarchySweepBitIdenticalAcrossThreadCounts)
{
    const auto configs = smallGrid();
    const auto params = iontrap::Params::future();
    const auto serial =
        sweep::runHierarchySweep(configs, params, {.threads = 1});
    ASSERT_EQ(serial.size(), configs.size());
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = sweep::runHierarchySweep(
            configs, params, {.threads = threads});
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_TRUE(
                bitIdentical(serial[i].result, parallel[i].result))
                << "point " << i << " diverged at " << threads
                << " threads";
            EXPECT_EQ(serial[i].seed, parallel[i].seed);
            EXPECT_EQ(serial[i].config.n_bits,
                      parallel[i].config.n_bits);
        }
    }
}

TEST(Sweep, HierarchySweepSeedsFollowBaseSeed)
{
    const auto configs = smallGrid();
    const auto params = iontrap::Params::future();
    const auto a = sweep::runHierarchySweep(
        configs, params, {.threads = 2, .base_seed = 7});
    const auto b = sweep::runHierarchySweep(
        configs, params, {.threads = 2, .base_seed = 8});
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].seed, sweep::pointSeed(7, i));
        EXPECT_NE(a[i].seed, b[i].seed);
    }
}

TEST(Emit, CsvQuotesOnlyWhenNeeded)
{
    sweep::ResultTable table({"name", "value"});
    table.addRow({"plain", 3});
    table.addRow({"com,ma", 1.5});
    table.addRow({"qu\"ote", std::uint64_t(7)});
    std::ostringstream os;
    table.writeCsv(os);
    EXPECT_EQ(os.str(), "name,value\n"
                        "plain,3\n"
                        "\"com,ma\",1.5\n"
                        "\"qu\"\"ote\",7\n");
}

TEST(Emit, DoublesRoundTripExactly)
{
    const double value = 0.1 + 0.2; // not representable as "0.3"
    sweep::ResultTable table({"v"});
    table.addRow({value});
    std::ostringstream os;
    table.writeCsv(os);
    const auto body = os.str().substr(os.str().find('\n') + 1);
    EXPECT_EQ(std::stod(body), value);
}

TEST(Emit, JsonShapesRowsAsObjects)
{
    sweep::ResultTable table({"label", "speedup"});
    table.addRow({"steane", 6.25});
    table.addRow({"line\nbreak", 1});
    std::ostringstream os;
    table.writeJson(os);
    EXPECT_EQ(os.str(), "[\n"
                        "  {\"label\": \"steane\", \"speedup\": 6.25},\n"
                        "  {\"label\": \"line\\nbreak\", \"speedup\": 1}\n"
                        "]\n");
}

} // namespace
} // namespace qmh
