/** @file QFT and random-circuit generator tests. */

#include <gtest/gtest.h>

#include "circuit/dag.hh"
#include "circuit/reversible.hh"
#include "gen/qft.hh"
#include "gen/random_circuit.hh"

namespace qmh {
namespace gen {
namespace {

TEST(Qft, GateCountsMatchClosedForm)
{
    for (int n : {2, 5, 16, 100}) {
        const auto prog = qft(n);
        EXPECT_EQ(prog.gateCount(circuit::GateKind::H),
                  static_cast<std::uint64_t>(n));
        EXPECT_EQ(prog.gateCount(circuit::GateKind::Cphase),
                  qftCphaseCount(n));
        EXPECT_EQ(prog.gateCount(circuit::GateKind::Swap), 0u);
    }
}

TEST(Qft, SwapNetworkOptional)
{
    const auto prog = qft(9, true);
    EXPECT_EQ(prog.gateCount(circuit::GateKind::Swap), 4u);
}

TEST(Qft, CphaseCountFormula)
{
    EXPECT_EQ(qftCphaseCount(1), 0u);
    EXPECT_EQ(qftCphaseCount(2), 1u);
    EXPECT_EQ(qftCphaseCount(1000), 499500u);
}

TEST(Qft, RotationIndicesAreDistanceBased)
{
    const auto prog = qft(4);
    for (const auto &inst : prog.instructions()) {
        if (inst.kind != circuit::GateKind::Cphase)
            continue;
        const int dist =
            static_cast<int>(inst.ops[1].value()) -
            static_cast<int>(inst.ops[0].value());
        EXPECT_EQ(inst.param, dist + 1);
        EXPECT_GE(inst.param, 2);
    }
}

TEST(Qft, SerialChainStructure)
{
    // Each qubit's H gate depends on all rotations targeting it; the
    // DAG depth grows linearly in n (the paper runs QFT serialized).
    const auto prog = qft(12);
    circuit::DependencyGraph dag(prog);
    EXPECT_GE(dag.depth(), 12u);
}

TEST(RandomCircuit, ReversibleOnlyUsesClassicalGates)
{
    Random rng(1);
    const auto prog = randomReversible(8, 500, rng);
    EXPECT_TRUE(prog.isClassical());
    EXPECT_EQ(prog.size(), 500u);
    circuit::ReversibleState st(8);
    EXPECT_TRUE(st.run(prog));
}

TEST(RandomCircuit, MixedUsesQuantumGates)
{
    Random rng(2);
    const auto prog = randomMixed(8, 500, rng);
    EXPECT_FALSE(prog.isClassical());
}

TEST(RandomCircuit, DeterministicUnderSeed)
{
    Random a(7), b(7);
    const auto pa = randomReversible(6, 100, a);
    const auto pb = randomReversible(6, 100, b);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].kind, pb[i].kind);
        EXPECT_EQ(pa[i].ops, pb[i].ops);
    }
}

TEST(RandomCircuit, SelfInverseRoundTrip)
{
    // Appending the reverse of a classical circuit undoes it (each
    // X/CNOT/SWAP/Toffoli is self-inverse).
    Random rng(3);
    auto prog = randomReversible(10, 300, rng);
    circuit::Program inverse("inv", 10);
    const auto &insts = prog.instructions();
    for (auto it = insts.rbegin(); it != insts.rend(); ++it)
        inverse.append(*it);

    circuit::ReversibleState st(10);
    st.loadInteger(0x2B5, 0, 10);
    ASSERT_TRUE(st.run(prog));
    ASSERT_TRUE(st.run(inverse));
    EXPECT_EQ(st.readInteger(0, 10), 0x2B5u);
}

} // namespace
} // namespace gen
} // namespace qmh
