/** @file Hierarchy DES and application model tests (Fig. 8). */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "cqla/apps.hh"
#include "cqla/hierarchy_sim.hh"

namespace qmh {
namespace cqla {
namespace {

const iontrap::Params params = iontrap::Params::future();

TEST(HierarchySim, RunsAndReportsSaneNumbers)
{
    HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::BaconShor913;
    cfg.n_bits = 256;
    cfg.blocks = 49;
    cfg.total_adders = 90;
    cfg.level1_fraction = 2.0 / 3.0;
    const auto r = runHierarchySim(cfg, params);
    EXPECT_GT(r.makespan_s, 0.0);
    EXPECT_GT(r.baseline_s, r.makespan_s);
    EXPECT_EQ(r.level1_adds + r.level2_adds, cfg.total_adders);
    EXPECT_GT(r.events_executed, cfg.total_adders);
    EXPECT_GE(r.transfer_utilization, 0.0);
    EXPECT_LE(r.transfer_utilization, 1.0);
}

TEST(HierarchySim, ConcurrentRegionsBoundedByLevel2Stream)
{
    // With fully independent adds, the makespan speedup approaches
    // total / level2_adds (the level-2 region is the bottleneck).
    HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::Steane713;
    cfg.n_bits = 256;
    cfg.blocks = 49;
    cfg.total_adders = 300;
    cfg.level1_fraction = 1.0 / 3.0;
    const auto r = runHierarchySim(cfg, params);
    EXPECT_NEAR(r.makespan_speedup, 1.5, 0.05);
}

TEST(HierarchySim, ChainDependenceSlowsDown)
{
    HierarchySimConfig fast;
    fast.code = ecc::CodeKind::BaconShor913;
    fast.n_bits = 256;
    fast.blocks = 49;
    fast.total_adders = 120;
    fast.level1_fraction = 2.0 / 3.0;
    auto chained = fast;
    chained.chain_dependent_fraction = 1.0;
    const auto free_run = runHierarchySim(fast, params);
    const auto chained_run = runHierarchySim(chained, params);
    EXPECT_GE(chained_run.makespan_s, free_run.makespan_s);
}

TEST(HierarchySim, MeanAdderSpeedupTracksAnalyticModel)
{
    HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::BaconShor913;
    cfg.n_bits = 512;
    cfg.blocks = 81;
    cfg.total_adders = 120;
    cfg.level1_fraction = 2.0 / 3.0;
    const auto r = runHierarchySim(cfg, params);
    EXPECT_GT(r.mean_adder_speedup, 5.0);
    EXPECT_LT(r.mean_adder_speedup, 12.0);
}

TEST(HierarchySim, MoreChannelsNeverSlower)
{
    HierarchySimConfig cfg;
    cfg.code = ecc::CodeKind::Steane713;
    cfg.n_bits = 256;
    cfg.blocks = 49;
    cfg.total_adders = 60;
    cfg.level1_fraction = 1.0 / 3.0;
    auto cfg10 = cfg;
    cfg10.parallel_transfers = 10;
    auto cfg5 = cfg;
    cfg5.parallel_transfers = 5;
    EXPECT_LE(runHierarchySim(cfg10, params).makespan_s,
              runHierarchySim(cfg5, params).makespan_s + 1e-9);
}

TEST(ModExp, SequentialAddersScaleNLogN)
{
    EXPECT_NEAR(ModExpModel::sequentialAdders(1024),
                2.8 * 1024 * 10, 1.0);
    EXPECT_GT(ModExpModel::sequentialAdders(2048) /
                  ModExpModel::sequentialAdders(1024),
              2.0);
}

TEST(ModExp, Fig8aComputationDominatesCommunication)
{
    ModExpModel model(ecc::Code::baconShor(), params);
    for (int n : {32, 128, 512, 1024}) {
        const auto blocks =
            PerformanceModel::paperBlockCounts(n).second;
        const auto t = model.totalTimes(n, blocks);
        EXPECT_GT(t.computation_s, t.communication_s)
            << "modexp is computation bound at n=" << n;
    }
}

TEST(ModExp, Fig8aHoursScaleMatchesPaper)
{
    // Paper Fig. 8a: ~500 hours of computation at 1024 bits.
    ModExpModel model(ecc::Code::baconShor(), params);
    const auto t = model.totalTimes(1024, 121);
    const double hours = units::secondsToHours(t.computation_s);
    EXPECT_GT(hours, 300.0);
    EXPECT_LT(hours, 700.0);
}

TEST(ModExp, TrafficGrowsWithWidth)
{
    ModExpModel model(ecc::Code::baconShor(), params);
    EXPECT_GT(model.adderTraffic(512), model.adderTraffic(256));
}

TEST(Qft, Fig8bCommunicationTracksComputation)
{
    QftModel model(ecc::Code::baconShor(), params);
    for (int n : {100, 400, 1000}) {
        const auto t = model.totalTimes(n);
        EXPECT_LT(t.communication_s, t.computation_s);
        EXPECT_GT(t.communication_s, 0.7 * t.computation_s)
            << "QFT communication closely tracks computation";
    }
}

TEST(Qft, Fig8bSecondsScaleMatchesPaper)
{
    // Paper Fig. 8b: ~1e5 seconds at n = 1000 (Bacon-Shor).
    QftModel model(ecc::Code::baconShor(), params);
    const auto t = model.totalTimes(1000);
    EXPECT_GT(t.computation_s, 6e4);
    EXPECT_LT(t.computation_s, 1.5e5);
}

TEST(Qft, QuadraticGrowth)
{
    QftModel model(ecc::Code::baconShor(), params);
    const auto t500 = model.totalTimes(500);
    const auto t1000 = model.totalTimes(1000);
    EXPECT_NEAR(t1000.computation_s / t500.computation_s, 4.0, 0.1);
}

TEST(HierarchySimDeath, RejectsBadConfig)
{
    HierarchySimConfig cfg;
    cfg.total_adders = 0;
    EXPECT_EXIT(runHierarchySim(cfg, params),
                ::testing::ExitedWithCode(1), "at least one");
}

} // namespace
} // namespace cqla
} // namespace qmh
