/** @file Program container tests. */

#include <gtest/gtest.h>

#include "circuit/program.hh"

namespace qmh {
namespace circuit {
namespace {

TEST(Program, EmittersAppendInstructions)
{
    Program p("t", 4);
    p.x(QubitId(0));
    p.cnot(QubitId(0), QubitId(1));
    p.toffoli(QubitId(0), QubitId(1), QubitId(2));
    p.cphase(3, QubitId(2), QubitId(3));
    p.barrier();
    EXPECT_EQ(p.size(), 5u);
    EXPECT_EQ(p[1].kind, GateKind::Cnot);
    EXPECT_EQ(p[3].param, 3);
}

TEST(Program, GateCountsAndHistogram)
{
    Program p("t", 3);
    p.x(QubitId(0));
    p.x(QubitId(1));
    p.cnot(QubitId(0), QubitId(1));
    EXPECT_EQ(p.gateCount(GateKind::X), 2u);
    EXPECT_EQ(p.gateCount(GateKind::Cnot), 1u);
    EXPECT_EQ(p.gateCount(GateKind::Toffoli), 0u);
    const auto hist = p.gateHistogram();
    EXPECT_EQ(hist.at(GateKind::X), 2u);
    EXPECT_EQ(hist.size(), 2u);
}

TEST(Program, ClassicalDetection)
{
    Program classical("c", 3);
    classical.toffoli(QubitId(0), QubitId(1), QubitId(2));
    classical.barrier();
    EXPECT_TRUE(classical.isClassical());

    Program quantum("q", 2);
    quantum.h(QubitId(0));
    EXPECT_FALSE(quantum.isClassical());
}

TEST(Program, AddQubitGrowsRegister)
{
    Program p("t", 2);
    const auto q = p.addQubit();
    EXPECT_EQ(q, QubitId(2));
    EXPECT_EQ(p.qubitCount(), 3);
    p.x(q);  // must not panic
    EXPECT_EQ(p.size(), 1u);
}

TEST(Program, ConcatAppendsSequentially)
{
    Program a("a", 3);
    a.x(QubitId(0));
    Program b("b", 2);
    b.x(QubitId(1));
    a.concat(b);
    EXPECT_EQ(a.size(), 2u);
}

TEST(ProgramDeath, OutOfRangeOperandPanics)
{
    Program p("t", 2);
    EXPECT_DEATH(p.x(QubitId(5)), "outside");
}

TEST(ProgramDeath, ConcatWiderProgramFails)
{
    Program a("a", 2);
    Program b("b", 5);
    EXPECT_EXIT(a.concat(b), ::testing::ExitedWithCode(1), "qubits");
}

} // namespace
} // namespace circuit
} // namespace qmh
