/**
 * @file
 * Cross-cutting property tests: schedule validity on random circuits,
 * metric monotonicity, and structural invariants that must hold for
 * every workload, not just the paper's.
 */

#include <gtest/gtest.h>

#include "circuit/dag.hh"
#include "common/random.hh"
#include "ecc/threshold.hh"
#include "gen/draper.hh"
#include "gen/random_circuit.hh"
#include "net/transfer.hh"
#include "sched/scheduler.hh"

namespace qmh {
namespace {

const iontrap::Params params = iontrap::Params::future();

/**
 * A schedule is valid iff (a) every instruction starts after all its
 * predecessors finish and (b) no block runs two instructions at once.
 */
::testing::AssertionResult
scheduleIsValid(const circuit::Program &prog,
                const circuit::DependencyGraph &dag,
                const sched::ScheduleResult &s,
                const sched::LatencyModel &lat)
{
    for (std::uint32_t i = 0; i < prog.size(); ++i) {
        const auto my_lat = lat.steps(prog[i].kind);
        for (const auto p : dag.predecessors(i)) {
            if (s.start[i] < s.start[p] + lat.steps(prog[p].kind))
                return ::testing::AssertionFailure()
                       << "instruction " << i << " starts before "
                       << "predecessor " << p << " finishes";
        }
        if (s.start[i] + my_lat > s.makespan)
            return ::testing::AssertionFailure()
                   << "instruction " << i << " exceeds makespan";
    }
    // Block occupancy: intervals on the same block must not overlap
    // (zero-latency barriers exempt).
    std::vector<std::uint32_t> order(prog.size());
    for (std::uint32_t i = 0; i < prog.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (s.block[a] != s.block[b])
                      return s.block[a] < s.block[b];
                  return s.start[a] < s.start[b];
              });
    for (std::size_t k = 1; k < order.size(); ++k) {
        const auto prev = order[k - 1];
        const auto cur = order[k];
        if (s.block[prev] != s.block[cur])
            continue;
        const auto prev_lat = lat.steps(prog[prev].kind);
        const auto cur_lat = lat.steps(prog[cur].kind);
        if (prev_lat == 0 || cur_lat == 0)
            continue;
        if (s.start[cur] < s.start[prev] + prev_lat)
            return ::testing::AssertionFailure()
                   << "block " << s.block[cur] << " overlaps: inst "
                   << prev << " and " << cur;
    }
    return ::testing::AssertionSuccess();
}

class ScheduleFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(ScheduleFuzz, ListScheduleValidOnRandomCircuits)
{
    Random rng(static_cast<std::uint64_t>(GetParam()));
    const auto prog = gen::randomMixed(12, 400, rng);
    const circuit::DependencyGraph dag(prog);
    const sched::LatencyModel lat;
    for (unsigned blocks : {1u, 3u, 7u, sched::unlimited_blocks}) {
        const auto s = sched::listSchedule(prog, dag, lat, blocks);
        ASSERT_TRUE(scheduleIsValid(prog, dag, s, lat))
            << "blocks=" << blocks;
    }
}

TEST_P(ScheduleFuzz, RoundScheduleValidOnRandomCircuits)
{
    Random rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    const auto prog = gen::randomMixed(10, 300, rng);
    const circuit::DependencyGraph dag(prog);
    const sched::LatencyModel lat;
    for (unsigned blocks : {1u, 4u, sched::unlimited_blocks}) {
        const auto s = sched::roundSchedule(prog, dag, lat, blocks);
        ASSERT_TRUE(scheduleIsValid(prog, dag, s, lat))
            << "blocks=" << blocks;
    }
}

TEST_P(ScheduleFuzz, GreedyNeverSlowerThanRoundSync)
{
    Random rng(static_cast<std::uint64_t>(GetParam()) + 2000);
    const auto prog = gen::randomMixed(10, 250, rng);
    const sched::LatencyModel lat;
    for (unsigned blocks : {2u, 5u, 9u}) {
        const auto greedy = sched::listSchedule(prog, lat, blocks);
        const auto rs = sched::roundSchedule(prog, lat, blocks);
        EXPECT_LE(greedy.makespan, rs.makespan) << "blocks=" << blocks;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Range(0, 8));

TEST(TransferProperties, TriangleInequality)
{
    // Going through an intermediate encoding never beats the direct
    // transfer (src cost + dst cost both reappear).
    const net::TransferNetwork net(params);
    std::vector<net::Encoding> encodings;
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913})
        for (ecc::Level l = 1; l <= 2; ++l)
            encodings.push_back({kind, l});
    for (const auto &a : encodings)
        for (const auto &b : encodings)
            for (const auto &c : encodings)
                EXPECT_LE(net.transferTime(a, c),
                          net.transferTime(a, b) +
                              net.transferTime(b, c) + 1e-12);
}

TEST(Eq1Properties, MonotoneInPhysicalRate)
{
    double prev = 0.0;
    for (double p0 = 1e-9; p0 < 1e-5; p0 *= 3.0) {
        const double pf = ecc::localFailureRate(2, p0, 7.5e-5);
        EXPECT_GT(pf, prev);
        prev = pf;
    }
}

TEST(Eq1Properties, BudgetTightensWithProblemSize)
{
    double prev = 2.0;
    for (int n : {64, 128, 256, 512, 1024, 2048}) {
        const ecc::FidelityBudget budget(ecc::Code::steane(), params,
                                         ecc::shorKqOps(n));
        const double f = budget.maxLevel1OpsFraction();
        EXPECT_LE(f, prev);
        prev = f;
    }
}

class AdderWidthSweep : public ::testing::TestWithParam<int>
{};

TEST_P(AdderWidthSweep, StructuralInvariants)
{
    const int n = GetParam();
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(n, true, &layout);
    // Register map covers the program.
    EXPECT_EQ(prog.qubitCount(), layout.total_qubits);
    // Toffoli count grows linearly (between 8n and 11n for n >= 8).
    const auto toffolis = prog.gateCount(circuit::GateKind::Toffoli);
    if (n >= 16) {
        EXPECT_GE(toffolis, static_cast<std::uint64_t>(8 * n));
        EXPECT_LE(toffolis, static_cast<std::uint64_t>(11 * n));
    }
    // Round depth grows logarithmically: <= 2 + 9(log2(n)+1) rounds.
    const sched::LatencyModel lat;
    const auto s =
        sched::roundSchedule(prog, lat, sched::unlimited_blocks);
    int log2n = 0;
    while ((n >> log2n) > 1)
        ++log2n;
    EXPECT_LE(s.makespan,
              static_cast<std::uint64_t>((9 * (log2n + 1) + 2) *
                                         lat.toffoli));
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidthSweep,
                         ::testing::Values(4, 8, 12, 16, 24, 32, 48,
                                           64, 96, 128, 192, 256, 512,
                                           1024));

} // namespace
} // namespace qmh
