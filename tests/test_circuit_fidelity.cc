/** @file Schedule-level fidelity analysis tests. */

#include <gtest/gtest.h>

#include "ecc/circuit_fidelity.hh"
#include "gen/draper.hh"

namespace qmh {
namespace ecc {
namespace {

const iontrap::Params params = iontrap::Params::future();

TEST(ScheduleFidelity, SlotAccountingMatchesLatencyModel)
{
    EXPECT_EQ(ScheduleFidelity::slotsFor(circuit::GateKind::Toffoli),
              15u);
    EXPECT_EQ(ScheduleFidelity::slotsFor(circuit::GateKind::Cnot), 1u);
    EXPECT_EQ(ScheduleFidelity::slotsFor(circuit::GateKind::Barrier),
              0u);
}

TEST(ScheduleFidelity, AdderAtLevel2SucceedsWithHighProbability)
{
    const ScheduleFidelity analyzer(Code::steane(), params);
    const auto adder = gen::draperAdder(1024);
    const auto report = analyzer.analyze(adder, 2);
    EXPECT_GT(report.success_probability, 0.999999);
    EXPECT_EQ(report.level1_slots, 0u);
    EXPECT_GT(report.logical_slots, 10000u);
}

TEST(ScheduleFidelity, Level1IsRiskierThanLevel2)
{
    const ScheduleFidelity analyzer(Code::steane(), params);
    const auto adder = gen::draperAdder(256);
    const auto l1 = analyzer.analyze(adder, 1);
    const auto l2 = analyzer.analyze(adder, 2);
    EXPECT_GT(l1.expected_failures, l2.expected_failures);
    EXPECT_LT(l1.success_probability, l2.success_probability);
}

TEST(ScheduleFidelity, MixedInterpolatesMonotonically)
{
    const ScheduleFidelity analyzer(Code::steane(), params);
    const auto adder = gen::draperAdder(128);
    double prev = -1.0;
    for (double f = 0.0; f <= 1.0; f += 0.25) {
        const auto report = analyzer.analyzeMixed(adder, f);
        EXPECT_GT(report.expected_failures, prev);
        prev = report.expected_failures;
        EXPECT_EQ(report.level1_slots + report.level2_slots,
                  report.logical_slots);
    }
}

TEST(ScheduleFidelity, PaperMixKeepsTimeShareNearTwoPercent)
{
    // Running half the slots at level 1 puts ~1% of wall-clock time
    // there (paper Section 5.2), inside the 2% budget.
    const ScheduleFidelity analyzer(Code::steane(), params);
    const auto adder = gen::draperAdder(512);
    const auto report = analyzer.analyzeMixed(adder, 0.5);
    EXPECT_LT(report.level1_time_fraction, 0.02);
    EXPECT_GT(report.level1_time_fraction, 0.005);
}

TEST(ScheduleFidelity, BaconShorSaferAtLevel1)
{
    const auto adder = gen::draperAdder(256);
    const ScheduleFidelity steane(Code::steane(), params);
    const ScheduleFidelity bs(Code::baconShor(), params);
    EXPECT_GT(bs.analyze(adder, 1).success_probability,
              steane.analyze(adder, 1).success_probability);
}

TEST(ScheduleFidelity, McAgreesWithAnalytic)
{
    // Use degraded physical parameters so failures are observable.
    auto noisy = params;
    noisy.single_gate_fail = 1e-4;
    noisy.double_gate_fail = 5e-4;
    noisy.measure_fail = 1e-4;
    noisy.move_fail_per_um = 1e-4;
    const ScheduleFidelity analyzer(Code::steane(), noisy);
    const auto adder = gen::draperAdder(64);
    const auto report = analyzer.analyze(adder, 1);
    ASSERT_GT(report.expected_failures, 0.01);
    ASSERT_LT(report.expected_failures, 5.0);

    Random rng(31);
    int successes = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t)
        successes += analyzer.sampleRun(adder, 1, rng) ? 1 : 0;
    const double measured =
        static_cast<double>(successes) / trials;
    EXPECT_NEAR(measured, report.success_probability, 0.03);
}

TEST(ScheduleFidelityDeath, BadFractionPanics)
{
    const ScheduleFidelity analyzer(Code::steane(), params);
    const auto adder = gen::draperAdder(16);
    EXPECT_DEATH(analyzer.analyzeMixed(adder, 1.5), "range");
}

} // namespace
} // namespace ecc
} // namespace qmh
