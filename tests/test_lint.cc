/**
 * @file
 * Self-tests for qmh_lint: every rule against a clean, a violating
 * and a suppressed fixture, the suppression meta-rules, and the
 * tokenizer traps. Fixtures live in tests/lint_fixtures/ (skipped by
 * lintTree, so their intentional violations never fail the tree
 * check); exact line numbers are asserted, so fixture edits must
 * keep lines stable or update the tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "qmh_lint/lint.hh"

namespace qmh {
namespace lint {
namespace {

std::string
fixturePath(const char *name)
{
    return std::string(QMH_LINT_FIXTURE_DIR) + "/" + name;
}

std::string
fixtureText(const char *name)
{
    std::ifstream in(fixturePath(name), std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The findings as (line, rule) pairs, in report order. */
std::vector<std::pair<int, std::string>>
findings(const Report &report)
{
    std::vector<std::pair<int, std::string>> out;
    for (const auto &diagnostic : report.diagnostics)
        out.emplace_back(diagnostic.line, diagnostic.rule);
    return out;
}

using Findings = std::vector<std::pair<int, std::string>>;

TEST(LintRegistry, NamesAndDescriptionsCoverEveryRule)
{
    const auto &names = ruleNames();
    const std::vector<std::string> expect = {
        "no-wallclock",      "no-raw-rand",
        "ordered-iteration", "typed-errors",
        "banned-headers",    "lock-discipline",
        "layering",          "unchecked-outcome",
        "bad-suppression",   "unused-suppression"};
    EXPECT_EQ(names, expect);
    for (const auto &name : names)
        EXPECT_NE(ruleDescription(name), nullptr) << name;
    EXPECT_EQ(ruleDescription("no-such-rule"), nullptr);
}

TEST(LintDiagnostic, FormatIsFileLineRuleMessageHint)
{
    const Diagnostic with_hint{"a.cc", 7, "no-wallclock", "msg",
                               "fix it"};
    EXPECT_EQ(with_hint.format(),
              "a.cc:7: [no-wallclock] msg (hint: fix it)");
    const Diagnostic bare{"a.cc", 7, "no-wallclock", "msg", ""};
    EXPECT_EQ(bare.format(), "a.cc:7: [no-wallclock] msg");
}

TEST(LintNoWallclock, ViolatingFixtureFlagsEveryClockRead)
{
    const auto report =
        lintFile(fixturePath("wallclock_violating.cc"));
    const Findings expect = {
        {8, "no-wallclock"},  {9, "no-wallclock"},
        {10, "no-wallclock"}, {11, "no-wallclock"},
        {12, "no-wallclock"}, {13, "no-wallclock"}};
    EXPECT_EQ(findings(report), expect);
}

TEST(LintNoWallclock, CleanFixtureHasNoFindings)
{
    const auto report = lintFile(fixturePath("wallclock_clean.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintNoWallclock, BothSuppressionPlacementsAreHonored)
{
    const auto report =
        lintFile(fixturePath("wallclock_suppressed.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintNoRawRand, ViolatingFixtureFlagsEnginesAndLibcCalls)
{
    const auto report = lintFile(fixturePath("rawrand_violating.cc"));
    const Findings expect = {
        {7, "no-raw-rand"},  {8, "no-raw-rand"}, {9, "no-raw-rand"},
        {10, "no-raw-rand"}, {11, "no-raw-rand"},
        {12, "no-raw-rand"}};
    EXPECT_EQ(findings(report), expect);
}

TEST(LintNoRawRand, CleanFixtureHasNoFindings)
{
    const auto report = lintFile(fixturePath("rawrand_clean.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintNoRawRand, PolicyWaivesTheSanctionedRandomHome)
{
    const auto text = fixtureText("rawrand_violating.cc");
    const auto report =
        lintText("src/common/random_fixture.cc", text);
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintOrderedIteration, ViolatingFixtureFlagsBothWalks)
{
    const auto report = lintFile(fixturePath("ordered_violating.cc"));
    const Findings expect = {{12, "ordered-iteration"},
                             {14, "ordered-iteration"}};
    EXPECT_EQ(findings(report), expect);
}

TEST(LintOrderedIteration, OrderedAndLookupOnlyUseIsClean)
{
    const auto report = lintFile(fixturePath("ordered_clean.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintOrderedIteration, SortedSnapshotPatternSuppressesCleanly)
{
    const auto report =
        lintFile(fixturePath("ordered_suppressed.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintOrderedIteration, MemberDeclaredInCompanionHeaderIsCaught)
{
    // The member map lives in member_map.hh; the walk in the .cc
    // must still be caught via the companion-header scan...
    const auto report = lintFile(fixturePath("member_map.cc"));
    const Findings expect = {{10, "ordered-iteration"}};
    EXPECT_EQ(findings(report), expect);

    // ...and is invisible to text-only analysis, which is exactly
    // the blind spot the header scan closes.
    const auto text_only =
        lintText("member_map.cc", fixtureText("member_map.cc"));
    EXPECT_TRUE(text_only.clean());

    // The header itself only declares; nothing iterates there.
    const auto header = lintFile(fixturePath("member_map.hh"));
    EXPECT_TRUE(header.clean()) << header.diagnostics[0].format();
}

TEST(LintOrderedIterationStrict, PortDequePatternIsCleanInSimDomain)
{
    // The sanctioned arbitration shape — FIFO deque + ordered
    // completion multimap — survives the strict src/sim/ policy,
    // iterator extraction from the ordered map included.
    const auto report = lintText("src/sim/simport_clean.cc",
                                 fixtureText("simport_clean.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintOrderedIterationStrict, IteratorExtractionFlaggedOnlyInSim)
{
    const auto text = fixtureText("simport_violating.cc");

    // Strict domain: both the begin() extraction and the range-for.
    const auto sim = lintText("src/sim/simport_violating.cc", text);
    const Findings expect_strict = {{14, "ordered-iteration"},
                                    {17, "ordered-iteration"}};
    EXPECT_EQ(findings(sim), expect_strict);

    // Everywhere else only the range-for is a finding: lookup-style
    // iterator use outside arbitration code stays sanctioned.
    const auto engine =
        lintText("src/trace/simport_violating.cc", text);
    const Findings expect_lax = {{17, "ordered-iteration"}};
    EXPECT_EQ(findings(engine), expect_lax);
}

TEST(LintTypedErrors, FiresOnlyInsideTheApiDomain)
{
    const auto text = fixtureText("typed_errors.cc");

    const auto api = lintText("src/api/fixture.cc", text);
    const Findings expect = {
        {10, "typed-errors"}, {12, "typed-errors"},
        {14, "typed-errors"}, {16, "typed-errors"}};
    EXPECT_EQ(findings(api), expect);

    // The same text outside src/api/ is policy-clean: qmh_panic IS
    // the documented failure mode for invariant violations there.
    const auto engine = lintText("src/cqla/fixture.cc", text);
    EXPECT_TRUE(engine.clean()) << engine.diagnostics[0].format();
}

TEST(LintTypedErrors, ServerDomainIsEnforcedLikeTheApi)
{
    const auto text = fixtureText("server_typed_errors.cc");

    const auto server = lintText("src/server/fixture.cc", text);
    const Findings expect = {{10, "typed-errors"},
                             {12, "typed-errors"},
                             {14, "typed-errors"}};
    EXPECT_EQ(findings(server), expect);

    // One rule, two domains: the same text labeled src/api/ yields
    // the identical findings.
    const auto api = lintText("src/api/fixture.cc", text);
    EXPECT_EQ(findings(api), expect);

    // Outside both domains the rule stays off.
    const auto engine = lintText("src/net/fixture.cc", text);
    EXPECT_TRUE(engine.clean()) << engine.diagnostics[0].format();
}

TEST(LintBannedHeaders, FlagsEachBannedIncludeOnceAndOnlyReal)
{
    const auto report = lintFile(fixturePath("banned_headers.cc"));
    const Findings expect = {
        {3, "banned-headers"}, {4, "banned-headers"},
        {5, "banned-headers"}, {6, "banned-headers"}};
    EXPECT_EQ(findings(report), expect);
}

TEST(LintTokenizer, RawStringsSplicesAndSeparatorsAreNotCode)
{
    const auto report = lintFile(fixturePath("tokenizer_edges.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintSuppression, StaleAllowanceExpiresLoudly)
{
    const auto report =
        lintFile(fixturePath("suppression_unused.cc"));
    const Findings expect = {{5, "unused-suppression"}};
    EXPECT_EQ(findings(report), expect);
}

TEST(LintSuppression, MalformedMarkersNeverSuppress)
{
    const auto report = lintFile(fixturePath("suppression_bad.cc"));
    const Findings expect = {
        {7, "bad-suppression"},  {8, "no-wallclock"},
        {9, "bad-suppression"},  {10, "no-wallclock"},
        {11, "bad-suppression"}, {12, "no-wallclock"}};
    EXPECT_EQ(findings(report), expect);
}

TEST(LintLockDiscipline, BlockingCallsUnderALiveLockAreFlagged)
{
    const auto text = fixtureText("lock_discipline.cc");

    // Both concurrent domains, same findings: the three blocking
    // calls under the guard and the foreign (non-cv) wait. The
    // released-scope read and the cv.wait(lock) stay clean.
    const Findings expect = {{12, "lock-discipline"},
                             {13, "lock-discipline"},
                             {14, "lock-discipline"},
                             {39, "lock-discipline"}};
    const auto server = lintText("src/server/fixture.cc", text);
    EXPECT_EQ(findings(server), expect);
    const auto sweep = lintText("src/sweep/fixture.cc", text);
    EXPECT_EQ(findings(sweep), expect);

    // Outside the concurrent domains the rule is off.
    const auto engine = lintText("src/sim/fixture.cc", text);
    EXPECT_TRUE(engine.clean()) << engine.diagnostics[0].format();
}

TEST(LintLockDiscipline, JustifiedAllowanceSuppresses)
{
    const auto report = lintText("src/server/fixture.cc",
                                 fixtureText("lock_suppressed.cc"));
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

/** Layer policy used by the layer_tree fixture tests. */
constexpr const char *kFixtureLayerPolicy =
    "layer low\n"
    "layer mid\n"
    "layer top\n"
    "forbid top: low\n";

TEST(LintLayering, UpwardIncludeAndFacadeBypassAreFindings)
{
    TreeOptions options;
    options.layer_policy = kFixtureLayerPolicy;
    const auto report =
        lintTree({fixturePath("layer_tree")}, options);

    // Exactly two findings: upward.hh's upward edge and the
    // forbidden top -> low skip. mid -> low (downward) and the
    // allow(layering)-covered upward_allowed.hh stay clean.
    ASSERT_EQ(report.diagnostics.size(), 2u);
    const auto &upward = report.diagnostics[0];
    EXPECT_NE(upward.file.find("low/upward.hh"), std::string::npos);
    EXPECT_EQ(upward.line, 4);
    EXPECT_EQ(upward.rule, "layering");
    EXPECT_NE(upward.message.find("upward dependency"),
              std::string::npos);
    const auto &bypass = report.diagnostics[1];
    EXPECT_NE(bypass.file.find("top/facade_bypass.cc"),
              std::string::npos);
    EXPECT_EQ(bypass.line, 3);
    EXPECT_EQ(bypass.rule, "layering");
    EXPECT_NE(bypass.message.find("facade bypass"),
              std::string::npos);
}

TEST(LintLayering, PeerIncludeCycleIsOneFinding)
{
    TreeOptions options;
    options.layer_policy = "layer alpha beta\n";
    const auto report =
        lintTree({fixturePath("cycle_tree")}, options);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    const auto &cycle = report.diagnostics[0];
    EXPECT_EQ(cycle.rule, "layering");
    EXPECT_NE(cycle.file.find("beta/b.hh"), std::string::npos);
    EXPECT_EQ(cycle.line, 4);
    EXPECT_NE(cycle.message.find("alpha -> beta -> alpha"),
              std::string::npos);
}

TEST(LintLayering, PolicyParseProblemsAreFindings)
{
    TreeOptions options;
    options.layer_policy =
        "layers low\n"          // unknown directive
        "layer low low\n"       // duplicate module
        "forbid ghost: low\n";  // undeclared module
    const auto report =
        lintTree({fixturePath("layer_tree")}, options);
    const Findings expect = {
        {1, "layering"}, {2, "layering"}, {3, "layering"}};
    EXPECT_EQ(findings(report), expect);
    for (const auto &diagnostic : report.diagnostics)
        EXPECT_EQ(diagnostic.file, "<layer-policy>");
}

TEST(LintLayering, DefaultPolicySkipsUndeclaredModules)
{
    // Under the built-in policy the fixture modules (alpha, beta)
    // are not declared, so even a blatant cycle is out of scope:
    // the policy governs the src/ tree, not arbitrary code.
    const auto report = lintTree({fixturePath("cycle_tree")});
    EXPECT_TRUE(report.clean()) << report.diagnostics[0].format();
}

TEST(LintUncheckedOutcome, DiscardFlaggedAmbiguousAndBoundSkipped)
{
    const auto report = lintTree({fixturePath("outcome_tree")});

    // use.cc:10 discards fetchThing's Outcome. The bound call, the
    // ambiguous name (void overload in beta/other.hh) and the plain
    // helper stay clean; use.cc:16 is covered by its allow(); the
    // stale marker in stale.cc expires as unused-suppression.
    ASSERT_EQ(report.diagnostics.size(), 2u);
    const auto &stale = report.diagnostics[0];
    EXPECT_NE(stale.file.find("alpha/stale.cc"), std::string::npos);
    EXPECT_EQ(stale.line, 11);
    EXPECT_EQ(stale.rule, "unused-suppression");
    const auto &discard = report.diagnostics[1];
    EXPECT_NE(discard.file.find("alpha/use.cc"), std::string::npos);
    EXPECT_EQ(discard.line, 10);
    EXPECT_EQ(discard.rule, "unchecked-outcome");
    EXPECT_NE(discard.message.find("fetchThing"), std::string::npos);
}

namespace {

std::string
renderReport(const Report &report)
{
    std::string out;
    for (const auto &diagnostic : report.diagnostics) {
        out += diagnostic.format();
        out += "\n";
    }
    return out;
}

std::vector<std::string>
realTreeRoots()
{
    return {QMH_LINT_SOURCE_DIR "/src", QMH_LINT_SOURCE_DIR "/bench",
            QMH_LINT_SOURCE_DIR "/examples",
            QMH_LINT_SOURCE_DIR "/tests"};
}

} // namespace

TEST(LintTreeEngine, ReportIsByteIdenticalAcrossThreadCounts)
{
    // The sweep determinism contract applied to the linter itself:
    // 1 worker and 8 workers must produce identical reports, down to
    // the SARIF bytes.
    TreeOptions one;
    one.threads = 1;
    TreeOptions eight;
    eight.threads = 8;
    const auto serial = lintTree(realTreeRoots(), one);
    const auto parallel = lintTree(realTreeRoots(), eight);
    EXPECT_EQ(serial.files_scanned, parallel.files_scanned);
    EXPECT_EQ(renderReport(serial), renderReport(parallel));
    EXPECT_EQ(toSarif(serial), toSarif(parallel));
}

TEST(LintTreeEngine, WarmCacheParsesZeroFilesAndMatchesCold)
{
    const std::string cache_path =
        ::testing::TempDir() + "qmh_lint_facts_cache.jsonl";
    std::remove(cache_path.c_str());

    TreeOptions options;
    options.cache_path = cache_path;
    const auto cold = lintTree(realTreeRoots(), options);
    EXPECT_EQ(cold.files_cached, 0u);
    EXPECT_EQ(cold.files_parsed, cold.files_scanned);

    // Second run over the unchanged tree: every file served from the
    // facts cache, zero parsed, identical report.
    const auto warm = lintTree(realTreeRoots(), options);
    EXPECT_EQ(warm.files_parsed, 0u);
    EXPECT_EQ(warm.files_cached, warm.files_scanned);
    EXPECT_EQ(warm.files_scanned, cold.files_scanned);
    EXPECT_EQ(renderReport(cold), renderReport(warm));
    std::remove(cache_path.c_str());
}

TEST(LintTreeEngine, CorruptCacheIsIgnoredNotTrusted)
{
    const std::string cache_path =
        ::testing::TempDir() + "qmh_lint_corrupt_cache.jsonl";
    {
        std::ofstream out(cache_path, std::ios::trunc);
        out << "{\"format\":\"qmh-lint-facts-v1\"}\n"
            << "this is not json\n"
            << "{\"path\":\"x\"}\n";
    }
    TreeOptions options;
    options.cache_path = cache_path;
    const auto report =
        lintTree({fixturePath("cycle_tree")}, options);
    // Unusable entries are cache misses, not failures.
    EXPECT_EQ(report.files_cached, 0u);
    EXPECT_EQ(report.files_parsed, report.files_scanned);
    std::remove(cache_path.c_str());
}

TEST(LintSarif, CarriesRuleMetadataAndFindings)
{
    TreeOptions options;
    options.layer_policy = kFixtureLayerPolicy;
    const auto report =
        lintTree({fixturePath("layer_tree")}, options);
    const auto sarif = toSarif(report);
    EXPECT_NE(sarif.find("\"version\":\"2.1.0\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"id\":\"layering\""), std::string::npos);
    EXPECT_NE(sarif.find("\"ruleId\":\"layering\""),
              std::string::npos);
    EXPECT_NE(sarif.find("facade bypass"), std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\":4"), std::string::npos);
    // Clean reports still carry the tool metadata.
    const auto clean = toSarif(Report{});
    EXPECT_NE(clean.find("\"results\":[]"), std::string::npos);
}

TEST(LintTree, SingleFileRootIsScanned)
{
    const auto report =
        lintTree({fixturePath("wallclock_clean.cc")});
    EXPECT_EQ(report.files_scanned, 1u);
    EXPECT_TRUE(report.clean());
}

TEST(LintTree, TheRealTreeIsCleanWithJustifiedSuppressionsOnly)
{
    // The same invariant the lint_tree ctest enforces, kept here too
    // so a plain `qmh_tests` run catches regressions without CTest.
    const auto report = lintTree({QMH_LINT_SOURCE_DIR "/src",
                                  QMH_LINT_SOURCE_DIR "/bench",
                                  QMH_LINT_SOURCE_DIR "/examples",
                                  QMH_LINT_SOURCE_DIR "/tests"});
    EXPECT_GT(report.files_scanned, 100u);
    for (const auto &diagnostic : report.diagnostics)
        ADD_FAILURE() << diagnostic.format();
}

} // namespace
} // namespace lint
} // namespace qmh
