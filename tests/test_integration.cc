/**
 * @file
 * Cross-module integration tests: generator -> text round trip ->
 * DAG -> scheduler -> cache -> models, end to end.
 */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"
#include "circuit/reversible.hh"
#include "circuit/text_format.hh"
#include "cqla/hierarchy.hh"
#include "gen/draper.hh"
#include "gen/qft.hh"
#include "sched/scheduler.hh"

namespace qmh {
namespace {

TEST(Integration, AdderSurvivesTextRoundTripAndStillAdds)
{
    gen::AdderLayout layout;
    const auto original = gen::draperAdder(10, true, &layout);
    const auto parsed = circuit::parseText(circuit::writeText(original));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_EQ(parsed.program.size(), original.size());

    circuit::ReversibleState st(layout.total_qubits);
    st.loadInteger(700, layout.a_offset, 10);
    st.loadInteger(450, layout.b_offset, 10);
    ASSERT_TRUE(st.run(parsed.program));
    EXPECT_EQ(st.readInteger(layout.b_offset, 10),
              (700u + 450u) & 1023u);
    EXPECT_TRUE(
        st.get(circuit::QubitId(layout.carryOutQubit())));
}

TEST(Integration, ScheduleAndCacheAgreeOnInstructionCount)
{
    const auto prog = gen::draperAdder(
        32, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    sched::LatencyModel lat;
    const auto schedule = sched::listSchedule(prog, lat, 9);
    const auto cache_run = cache::simulateCache(
        prog, 64, cache::FetchPolicy::OptimizedLookahead);
    EXPECT_EQ(schedule.start.size(), prog.size());
    EXPECT_EQ(cache_run.issue_order.size(), prog.size());
}

TEST(Integration, PaperHeadlineClaims)
{
    // The abstract's two headline numbers, end to end: ~13x area and
    // ~8x performance from specialization plus the memory hierarchy.
    const auto params = iontrap::Params::future();
    cqla::HierarchyModel hier(params);
    const auto row =
        hier.row(ecc::Code::baconShor(), 1024, 10, 100);
    EXPECT_GT(row.area_reduced, 11.0);
    EXPECT_GT(row.adder_speedup, 7.0);
    EXPECT_GT(row.gain_product, 80.0);
}

TEST(Integration, QftTextRoundTrip)
{
    const auto prog = gen::qft(16, true);
    const auto parsed = circuit::parseText(circuit::writeText(prog));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.program.gateCount(circuit::GateKind::Cphase),
              gen::qftCphaseCount(16));
}

TEST(Integration, RoundScheduleDeterministic)
{
    const auto prog = gen::draperAdder(64);
    sched::LatencyModel lat;
    const auto a = sched::roundSchedule(prog, lat, 16);
    const auto b = sched::roundSchedule(prog, lat, 16);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.start, b.start);
}

} // namespace
} // namespace qmh
