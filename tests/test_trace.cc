/** @file Trace-driven hierarchy engine tests: engine invariants,
 * text-format parity, and pickup by every spec-driven surface
 * (sweeps, sessions, the JSONL service, the cached runner). */

#include <gtest/gtest.h>

#include <sstream>

#include "api/experiment.hh"
#include "api/grid.hh"
#include "api/service.hh"
#include "api/session.hh"
#include "api/workload.hh"
#include "circuit/text_format.hh"
#include "opt/cached_sweep.hh"
#include "trace/engine.hh"

namespace qmh {
namespace trace {
namespace {

std::string
csvOf(const sweep::ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

api::Workload
draperWorkload(int n)
{
    Random rng(1);
    api::ExperimentSpec spec;
    spec.workload = "draper";
    spec.n = n;
    return api::buildWorkload(spec, rng);
}

TEST(TraceEngine, ReportsConsistentCounters)
{
    const auto workload = draperWorkload(32);
    TraceConfig config;
    config.blocks = 16;
    config.transfers = 4;
    config.capacity = 24;
    const auto result =
        runTrace(workload, config, iontrap::Params::future());

    EXPECT_EQ(result.instructions, workload.program.size());
    EXPECT_EQ(result.hits + result.misses, result.accesses);
    EXPECT_GT(result.accesses, 0u);
    EXPECT_GT(result.makespan_s, 0.0);
    EXPECT_GT(result.baseline_s, 0.0);
    EXPECT_DOUBLE_EQ(result.speedup,
                     result.baseline_s / result.makespan_s);
    EXPECT_DOUBLE_EQ(result.hit_rate,
                     static_cast<double>(result.hits) /
                         static_cast<double>(result.accesses));
    EXPECT_EQ(result.blocks_used, 16u);
    EXPECT_LE(result.peak_in_flight, 16u);
    EXPECT_GT(result.peak_in_flight, 0u);
    EXPECT_GT(result.mean_in_flight, 0.0);
    EXPECT_LE(result.block_utilization, 1.0 + 1e-9);
    EXPECT_LE(result.transfer_utilization, 1.0 + 1e-9);
    EXPECT_GT(result.events_executed, 0u);
}

TEST(TraceEngine, MoreChannelsAndCapacityNeverSlower)
{
    const auto workload = draperWorkload(64);
    TraceConfig starved;
    starved.blocks = 49;
    starved.transfers = 1;
    starved.capacity = 16;
    TraceConfig generous = starved;
    generous.transfers = 32;
    generous.capacity = 512;
    const auto params = iontrap::Params::future();
    const auto slow = runTrace(workload, starved, params);
    const auto fast = runTrace(workload, generous, params);
    EXPECT_LT(fast.makespan_s, slow.makespan_s);
    EXPECT_GE(fast.hit_rate, slow.hit_rate);
    // The flat baseline does not depend on cache or channels.
    EXPECT_DOUBLE_EQ(fast.baseline_s, slow.baseline_s);
}

TEST(TraceEngine, WholeProgramCachedMeansOnlyColdMisses)
{
    // Capacity >= qubit count: every miss is compulsory (first
    // touch), there are no evictions, and every later access hits.
    const auto workload = draperWorkload(16);
    TraceConfig config;
    config.blocks = 8;
    config.transfers = 4;
    config.capacity =
        static_cast<std::size_t>(workload.program.qubitCount());
    const auto result =
        runTrace(workload, config, iontrap::Params::future());
    EXPECT_EQ(result.evictions, 0u);
    // Cacheable qubits touched at least once = the compulsory misses.
    std::uint64_t cacheable = 0;
    for (const auto used : workload.cacheable)
        cacheable += used ? 1 : 0;
    EXPECT_LE(result.misses, cacheable);
}

TEST(TraceEngine, EmptyProgramIsAnEmptyRun)
{
    api::Workload workload;
    workload.program = circuit::Program("empty", 4);
    const auto result =
        runTrace(workload, TraceConfig{}, iontrap::Params::future());
    EXPECT_EQ(result.instructions, 0u);
    EXPECT_DOUBLE_EQ(result.makespan_s, 0.0);
    EXPECT_DOUBLE_EQ(result.speedup, 0.0);
}

TEST(TraceEngine, TextFormatCircuitMatchesGeneratorBuiltProgram)
{
    // A circuit that round-trips through the text format is the same
    // workload: parse -> run must reproduce the generator-built run
    // bit for bit.
    const auto original = draperWorkload(32);
    const auto text = circuit::writeText(original.program);
    const auto parsed = circuit::parseText(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;

    api::Workload from_text;
    from_text.program = parsed.program;
    from_text.cacheable = original.cacheable;
    from_text.pe_qubits = original.pe_qubits;

    TraceConfig config;
    config.blocks = 12;
    config.transfers = 3;
    config.capacity = 32;
    const auto params = iontrap::Params::future();
    const auto a = runTrace(original, config, params);
    const auto b = runTrace(from_text, config, params);

    EXPECT_EQ(a.makespan_s, b.makespan_s);
    EXPECT_EQ(a.baseline_s, b.baseline_s);
    EXPECT_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.evictions, b.evictions);
    EXPECT_EQ(a.transfer_utilization, b.transfer_utilization);
    EXPECT_EQ(a.peak_in_flight, b.peak_in_flight);
    EXPECT_EQ(a.mean_in_flight, b.mean_in_flight);
    EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(TraceExperimentApi, RowMatchesDirectEngineCall)
{
    // The facade is a veneer: a trace row must equal the engine's
    // result for the same config, text-format path included.
    const auto parsed = api::parseSpec(
        "experiment=trace workload=draper n=32 blocks=12 transfers=3 "
        "capacity=32");
    ASSERT_TRUE(parsed.ok());
    const auto table =
        api::runSpecSweep({parsed.spec}, {.threads = 1});

    TraceConfig config;
    config.blocks = 12;
    config.transfers = 3;
    config.capacity = 32;
    const auto direct = runTrace(draperWorkload(32), config,
                                 iontrap::Params::future());

    const auto speedup = table.findColumn("speedup");
    const auto hits = table.findColumn("hits");
    const auto events = table.findColumn("events_executed");
    ASSERT_TRUE(speedup && hits && events);
    EXPECT_EQ(table.cell(0, *speedup).asNumber().value(),
              direct.speedup);
    EXPECT_EQ(table.cell(0, *hits).toString(),
              std::to_string(direct.hits));
    EXPECT_EQ(table.cell(0, *events).toString(),
              std::to_string(direct.events_executed));
}

TEST(TraceExperimentApi, ValidateCatchesBadRanges)
{
    auto spec = api::parseSpec("experiment=trace").spec;
    spec.workload = "not-a-workload";
    EXPECT_FALSE(api::makeExperiment(spec)->validate().empty());
    spec = api::parseSpec("experiment=trace capacity_x=0").spec;
    EXPECT_FALSE(api::makeExperiment(spec)->validate().empty());
    // The parser bounds transfers, but a C++-built spec can hold 0;
    // it must stay a typed diagnostic, not an engine fatal.
    spec = api::parseSpec("experiment=trace").spec;
    spec.transfers = 0;
    EXPECT_FALSE(api::makeExperiment(spec)->validate().empty());
    spec = api::parseSpec("experiment=trace").spec;
    EXPECT_TRUE(api::makeExperiment(spec)->validate().empty());
}

api::SpecGrid
traceGrid()
{
    api::SpecGrid grid;
    // The random workload makes rows seed-sensitive, so determinism
    // failures cannot hide behind a seed-independent experiment.
    grid.base = api::parseSpec(
                    "experiment=trace workload=random n=24 gates=300 "
                    "blocks=8 capacity=12")
                    .spec;
    grid.axis("transfers", {"1", "4"});
    grid.axis("capacity", {"8", "16"});
    grid.axis("code", {"steane", "bacon-shor"});
    return grid;
}

TEST(TraceSweep, BitIdenticalAcrossThreadCounts)
{
    const auto specs = traceGrid().expand();
    ASSERT_EQ(specs.size(), 8u);
    const auto serial =
        api::runSpecSweep(specs, {.threads = 1, .base_seed = 21});
    for (const unsigned threads : {2u, 4u, 8u}) {
        const auto parallel = api::runSpecSweep(
            specs, {.threads = threads, .base_seed = 21});
        EXPECT_EQ(csvOf(serial), csvOf(parallel))
            << threads << " threads diverged";
    }
    // Seed sensitivity: a different base seed must change the table.
    const auto other =
        api::runSpecSweep(specs, {.threads = 2, .base_seed = 22});
    EXPECT_NE(csvOf(serial), csvOf(other));
}

TEST(TraceSweep, CancelledSessionJobReturnsDeterministicPrefix)
{
    const auto specs = traceGrid().expand();
    const std::uint64_t seed = 33;
    const auto reference =
        api::runSpecSweep(specs, {.threads = 1, .base_seed = seed});

    api::Session session({.threads = 4, .base_seed = seed});
    auto submitted = session.submit(specs);
    ASSERT_TRUE(submitted.ok());
    auto job = submitted.value();
    for (int consumed = 0; consumed < 2; ++consumed)
        ASSERT_TRUE(job.nextRow().has_value());
    job.cancel();
    const auto result = job.wait();

    ASSERT_GE(result.completed, 2u);
    for (std::size_t r = 0; r < result.completed; ++r)
        for (std::size_t c = 0; c < result.table.columns(); ++c)
            EXPECT_EQ(result.table.cell(r, c).toString(),
                      reference.cell(r, c).toString())
                << "prefix row " << r << " diverged";
}

TEST(TraceSweep, CachedRunnerReplaysWarmRunWithZeroSimulations)
{
    const auto specs = traceGrid().expand();
    sweep::SweepRunner runner({.threads = 2, .base_seed = 5});
    opt::ResultCache cache;
    const auto cold = opt::runSpecSweepCached(runner, specs, &cache);
    EXPECT_EQ(cold.simulated, specs.size());
    const auto warm = opt::runSpecSweepCached(runner, specs, &cache);
    EXPECT_EQ(warm.simulated, 0u);
    EXPECT_EQ(warm.cached, specs.size());
    EXPECT_EQ(csvOf(cold.table), csvOf(warm.table));
}

TEST(TraceService, SweepRequestStreamsRowsAndDone)
{
    api::Session session({.threads = 2});
    std::istringstream in(
        "{\"id\":\"t\",\"seed\":9,\"specs\":["
        "\"experiment=trace workload=draper n=16 blocks=4 "
        "transfers=2 capacity=16\","
        "\"experiment=trace workload=qft n=12 blocks=4 transfers=2 "
        "capacity=12\"]}\n");
    std::ostringstream out;
    api::runService(session, in, out);
    const auto output = out.str();
    EXPECT_NE(output.find("\"type\":\"accepted\",\"id\":\"t\","
                          "\"total\":2"),
              std::string::npos)
        << output;
    EXPECT_NE(output.find("\"type\":\"row\""), std::string::npos);
    EXPECT_NE(output.find("\"hit_rate\""), std::string::npos);
    EXPECT_NE(output.find("\"rows\":2,\"total\":2,"
                          "\"cancelled\":false"),
              std::string::npos)
        << output;
}

TEST(TraceErrors, UnknownWorkloadListsRegistryAndSuggests)
{
    // The typed Outcome path must make the mistake actionable: list
    // the registry and point at the nearest name.
    auto spec = api::parseSpec("experiment=trace").spec;
    spec.workload = "drapr";
    const auto outcome = api::validateExperiments({spec});
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, api::ErrorCode::InvalidSpec);
    ASSERT_EQ(outcome.error().details.size(), 1u);
    const auto &detail = outcome.error().details.front();
    EXPECT_NE(detail.find("unknown workload 'drapr'"),
              std::string::npos)
        << detail;
    EXPECT_NE(detail.find(
                  "draper, ripple, modexp, qft, random"),
              std::string::npos)
        << detail;
    EXPECT_NE(detail.find("did you mean 'draper'?"),
              std::string::npos)
        << detail;
}

TEST(TraceErrors, UnknownExperimentKindListsKindsAndSuggests)
{
    const auto parsed = api::parseSpec("experiment=tracee n=64");
    ASSERT_EQ(parsed.errors.size(), 1u);
    const auto &message = parsed.errors.front();
    EXPECT_NE(message.find("unknown experiment 'tracee'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("hierarchy, cache, bandwidth, montecarlo, "
                           "trace"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'trace'?"),
              std::string::npos)
        << message;
    // A name nothing like the vocabulary gets the list, no guess.
    const auto wild = api::parseSpec("experiment=zzzzzzzzz");
    ASSERT_EQ(wild.errors.size(), 1u);
    EXPECT_EQ(wild.errors.front().find("did you mean"),
              std::string::npos)
        << wild.errors.front();
}

TEST(TraceMemory, ConflictColumnIsZeroWithoutContention)
{
    // Structural zero, not luck: capacity >= qubit count means no
    // evictions (no writebacks), one bank per qubit means no two
    // concurrent fills share a bank, and ports cover every bank. The
    // conflict-stall column must be exactly zero on such a run.
    const auto workload = draperWorkload(16);
    const auto qubits = static_cast<unsigned>(
        workload.program.qubitCount());
    TraceConfig config;
    config.blocks = 8;
    config.transfers = 8;
    config.capacity = qubits;
    config.mem_banks = qubits;
    config.mem_ports = qubits;
    const auto result =
        runTrace(workload, config, iontrap::Params::future());
    EXPECT_GT(result.mem_requests, 0u);
    EXPECT_EQ(result.writebacks, 0u);
    EXPECT_EQ(result.bank_conflicts, 0u);
    EXPECT_EQ(result.mem_stall_ticks, 0u);
    EXPECT_EQ(result.mem_peak_queue, 0u);
}

TEST(TraceMemory, BankContentionSlowsTheRunAndIsCounted)
{
    // The acceptance pin for the banked path: the same workload under
    // a one-bank one-port memory runs measurably longer than under a
    // wide one, and the gap is visible in the conflict counters.
    const auto workload = draperWorkload(64);
    TraceConfig starved;
    starved.blocks = 16;
    starved.transfers = 8;
    starved.capacity = 16;  // small cache: misses and writebacks
    starved.mem_banks = 1;
    starved.mem_ports = 1;
    TraceConfig banked = starved;
    banked.mem_banks = 64;
    banked.mem_ports = 32;
    const auto params = iontrap::Params::future();
    const auto slow = runTrace(workload, starved, params);
    const auto fast = runTrace(workload, banked, params);

    EXPECT_LT(fast.makespan_s, slow.makespan_s);
    EXPECT_GT(slow.bank_conflicts, 0u);
    EXPECT_GT(slow.mem_stall_ticks, 0u);
    EXPECT_GT(slow.mem_peak_queue, 0u);
    EXPECT_GT(slow.writebacks, 0u);
    EXPECT_GT(slow.mem_requests, slow.writebacks);
    EXPECT_LT(fast.bank_conflicts, slow.bank_conflicts);
}

TEST(TraceMemoryApi, MemoryKnobsAndColumnsFlowThroughTheSpec)
{
    // One spec string drives every surface: the mem_* knobs must
    // reach the engine and the contention columns must round-trip the
    // engine's numbers untouched.
    const auto parsed = api::parseSpec(
        "experiment=trace workload=draper n=64 blocks=16 transfers=8 "
        "capacity=16 mem_banks=1 mem_ports=1");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.spec.mem_banks, 1u);
    EXPECT_EQ(parsed.spec.mem_ports, 1u);
    const auto table =
        api::runSpecSweep({parsed.spec}, {.threads = 1});

    TraceConfig config;
    config.blocks = 16;
    config.transfers = 8;
    config.capacity = 16;
    config.mem_banks = 1;
    config.mem_ports = 1;
    const auto direct = runTrace(draperWorkload(64), config,
                                 iontrap::Params::future());

    const auto banks = table.findColumn("mem_banks");
    const auto conflicts = table.findColumn("bank_conflicts");
    const auto stalls = table.findColumn("mem_stall_ticks");
    const auto writebacks = table.findColumn("writebacks");
    const auto mean_queue = table.findColumn("mem_mean_queue");
    ASSERT_TRUE(banks && conflicts && stalls && writebacks &&
                mean_queue);
    EXPECT_EQ(table.cell(0, *banks).toString(), "1");
    EXPECT_EQ(table.cell(0, *conflicts).toString(),
              std::to_string(direct.bank_conflicts));
    EXPECT_EQ(table.cell(0, *stalls).toString(),
              std::to_string(direct.mem_stall_ticks));
    EXPECT_EQ(table.cell(0, *writebacks).toString(),
              std::to_string(direct.writebacks));
    EXPECT_EQ(table.cell(0, *mean_queue).asNumber().value(),
              direct.mem_mean_queue);
    EXPECT_GT(direct.bank_conflicts, 0u);
    // The canonical spec cell reparses to the same knob values.
    const auto reparsed = api::parseSpec(
        table.cell(0, 0).toString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.spec.mem_banks, 1u);
    EXPECT_EQ(reparsed.spec.mem_ports, 1u);
}

TEST(TraceMemoryApi, ValidateCatchesBadMemoryKnobs)
{
    // A C++-built spec can hold zeros the parser would reject; the
    // facade must turn them into typed diagnostics, not engine
    // fatals, for both experiments that own a banked memory.
    for (const char *kind : {"trace", "hierarchy"}) {
        auto spec = api::parseSpec(std::string("experiment=") + kind)
                        .spec;
        spec.mem_banks = 0;
        EXPECT_FALSE(api::makeExperiment(spec)->validate().empty())
            << kind;
        spec = api::parseSpec(std::string("experiment=") + kind).spec;
        spec.mem_ports = 0;
        EXPECT_FALSE(api::makeExperiment(spec)->validate().empty())
            << kind;
        spec = api::parseSpec(std::string("experiment=") + kind).spec;
        spec.mem_buffer = 0;
        EXPECT_FALSE(api::makeExperiment(spec)->validate().empty())
            << kind;
    }
}

TEST(TraceGolden, MidSizeRunReproducesCheckedInRowExactly)
{
    // Golden-row determinism guard: the full CSV of a mid-size run —
    // every counter and every formatted double — is pinned against a
    // checked-in string, so *any* behavioral drift from a hot-path
    // data-structure swap fails loudly on its own, not only when it
    // happens to skew a 1-vs-N-thread comparison. The spec exercises
    // the whole pipeline: list-scheduler batching, cache misses and
    // evictions, bank contention (2 banks, 1 port) and transfer-
    // channel queueing.
    const auto parsed = api::parseSpec(
        "experiment=trace workload=draper n=48 blocks=16 transfers=4 "
        "capacity=40 mem_banks=2 mem_ports=1 mem_buffer=4");
    ASSERT_TRUE(parsed.errors.empty());
    const auto table =
        api::runSpecSweep({parsed.spec}, {.threads = 1, .base_seed = 9});
    const std::string golden =
        "spec,workload,n,blocks,transfers,capacity,mem_banks,"
        "mem_ports,makespan_s,baseline_s,speedup,accesses,hits,misses,"
        "evictions,hit_rate,transfer_utilization,mem_requests,"
        "writebacks,bank_conflicts,mem_stall_ticks,mem_peak_queue,"
        "mem_mean_queue,mem_utilization,block_utilization,"
        "peak_in_flight,mean_in_flight,events_executed,seed\n"
        "experiment=trace n=48 transfers=4 blocks=16 mem_banks=2 "
        "mem_ports=1 mem_buffer=4 capacity=40,draper,48,16,4,40,2,1,"
        "862.93227,123.31232999999999,0.1428991987980702,382,33,349,"
        "309,0.08638743455497382,0.1310531126620169,658,309,651,"
        "32053375620000,32,37.144717765624875,0.4941716225306999,"
        "0.0007917517385228855,12,0.012668027816366167,1354,"
        "12587370737594032228\n";
    EXPECT_EQ(csvOf(table), golden);
}

TEST(TraceSweep, MemoryAxesAreBitIdenticalAcrossThreadCounts)
{
    // The mem knobs join the determinism contract: sweeping them over
    // a seed-sensitive workload must stay bit-identical however many
    // threads run the grid.
    api::SpecGrid grid;
    grid.base = api::parseSpec(
                    "experiment=trace workload=random n=24 gates=300 "
                    "blocks=8 capacity=12")
                    .spec;
    grid.axis("mem_banks", {"1", "8"});
    grid.axis("mem_ports", {"1", "4"});
    grid.axis("cycles_per_line", {"0", "3"});
    const auto specs = grid.expand();
    ASSERT_EQ(specs.size(), 8u);
    const auto serial =
        api::runSpecSweep(specs, {.threads = 1, .base_seed = 17});
    for (const unsigned threads : {2u, 8u}) {
        const auto parallel = api::runSpecSweep(
            specs, {.threads = threads, .base_seed = 17});
        EXPECT_EQ(csvOf(serial), csvOf(parallel))
            << threads << " threads diverged";
    }
}

TEST(KindSweep, EveryExperimentKindIsBitIdenticalAcrossThreads)
{
    // The 1-vs-N contract holds for all five experiment kinds, not
    // just trace: each kind's small grid renders the same CSV from a
    // serial and a parallel run.
    const struct
    {
        const char *base;
        const char *axis;
    } kinds[] = {
        {"experiment=hierarchy n=64 adders=8 mem_banks=2 mem_ports=1",
         "blocks=4,9"},
        {"experiment=cache workload=random n=24 gates=300",
         "capacity=8,16"},
        {"experiment=bandwidth", "blocks=16,36"},
        {"experiment=montecarlo trials=500", "p0=0.001,0.01"},
        {"experiment=trace workload=random n=24 gates=300 blocks=8 "
         "capacity=12 mem_banks=1 mem_ports=1",
         "transfers=1,4"},
    };
    for (const auto &kind : kinds) {
        api::SpecGrid grid;
        grid.base = api::parseSpec(kind.base).spec;
        ASSERT_EQ(grid.addAxis(kind.axis), "") << kind.base;
        const auto specs = grid.expand();
        const auto serial = api::runSpecSweep(
            specs, {.threads = 1, .base_seed = 11});
        const auto wide = api::runSpecSweep(
            specs, {.threads = 4, .base_seed = 11});
        EXPECT_EQ(csvOf(serial), csvOf(wide)) << kind.base;
    }
}

TEST(TraceErrors, UnknownMemKnobSuggestsTheNearestKey)
{
    // Satellite of the banked-memory PR: a typo'd memory knob gets
    // the shared did-you-mean diagnostic, same as every other name
    // vocabulary in the api.
    const auto parsed = api::parseSpec("experiment=trace mem_bank=4");
    ASSERT_EQ(parsed.errors.size(), 1u);
    const auto &message = parsed.errors.front();
    EXPECT_NE(message.find("unknown spec key 'mem_bank'"),
              std::string::npos)
        << message;
    EXPECT_NE(message.find("mem_banks"), std::string::npos)
        << message;
    EXPECT_NE(message.find("did you mean 'mem_banks'?"),
              std::string::npos)
        << message;
}

TEST(TraceEngineDeath, MalformedConfigPanics)
{
    const auto workload = draperWorkload(16);
    TraceConfig config;
    config.capacity = 0;
    EXPECT_DEATH(
        runTrace(workload, config, iontrap::Params::future()),
        "capacity must be nonzero");
    config.capacity = 8;
    config.transfers = 0;
    EXPECT_DEATH(
        runTrace(workload, config, iontrap::Params::future()),
        "at least one transfer channel");
}

} // namespace
} // namespace trace
} // namespace qmh
