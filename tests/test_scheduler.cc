/** @file List and round-synchronous scheduler tests. */

#include <gtest/gtest.h>

#include "gen/draper.hh"
#include "sched/scheduler.hh"

namespace qmh {
namespace sched {
namespace {

using circuit::Program;
using circuit::QubitId;

Program
chainProgram(int gates)
{
    Program p("chain", 1);
    for (int i = 0; i < gates; ++i)
        p.x(QubitId(0));
    return p;
}

TEST(ListSchedule, RespectsDependencies)
{
    Program p("dep", 3);
    p.cnot(QubitId(0), QubitId(1));
    p.cnot(QubitId(1), QubitId(2));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, unlimited_blocks);
    EXPECT_GE(s.start[1], s.start[0] + lat.cnot);
}

TEST(ListSchedule, ChainMakespanIsSumOfLatencies)
{
    LatencyModel lat;
    const auto s = listSchedule(chainProgram(10), lat, 4);
    EXPECT_EQ(s.makespan, 10u * lat.single);
}

TEST(ListSchedule, UnlimitedEqualsCriticalPath)
{
    Program p("wide", 8);
    for (int i = 0; i < 4; ++i)
        p.toffoli(QubitId(2 * i), QubitId(2 * i + 1),
                  QubitId((2 * i + 2) % 8));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, unlimited_blocks);
    // All four Toffolis conflict pairwise through shared qubits; the
    // last one can only start after its predecessors release operands.
    EXPECT_GE(s.makespan, lat.toffoli);
}

TEST(ListSchedule, CapacityNeverExceeded)
{
    Program p("par", 12);
    for (int i = 0; i < 6; ++i)
        p.cnot(QubitId(2 * i), QubitId(2 * i + 1));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, 2);
    const auto profile = s.inFlightProfile();
    for (const auto in_flight : profile)
        EXPECT_LE(in_flight, 2u);
    EXPECT_EQ(s.makespan, 3u);  // 6 unit gates on 2 blocks
}

TEST(ListSchedule, WorkConservingOnIndependentGates)
{
    Program p("ind", 20);
    for (int i = 0; i < 10; ++i)
        p.cnot(QubitId(2 * i), QubitId(2 * i + 1));
    LatencyModel lat;
    for (unsigned blocks : {1u, 2u, 5u, 10u}) {
        const auto s = listSchedule(p, lat, blocks);
        EXPECT_EQ(s.makespan, (10 + blocks - 1) / blocks)
            << "blocks=" << blocks;
    }
}

TEST(ListSchedule, BusyStepsIndependentOfBlocks)
{
    const auto prog = gen::draperAdder(16);
    LatencyModel lat;
    const auto a = listSchedule(prog, lat, 4);
    const auto b = listSchedule(prog, lat, unlimited_blocks);
    EXPECT_EQ(a.busy_block_steps, b.busy_block_steps);
}

TEST(ListSchedule, UtilizationBounded)
{
    const auto prog = gen::draperAdder(32);
    LatencyModel lat;
    for (unsigned blocks : {1u, 4u, 16u}) {
        const auto s = listSchedule(prog, lat, blocks);
        EXPECT_GT(s.utilization(), 0.0);
        EXPECT_LE(s.utilization(), 1.0 + 1e-9);
    }
}

TEST(ListSchedule, MoreBlocksNeverSlower)
{
    const auto prog = gen::draperAdder(32, true, nullptr,
                                       gen::UncomputeMode::Full, false);
    LatencyModel lat;
    std::uint64_t prev = ~0ull;
    for (unsigned blocks : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto s = listSchedule(prog, lat, blocks);
        EXPECT_LE(s.makespan, prev);
        prev = s.makespan;
    }
}

TEST(RoundSchedule, StructuralRoundsAreBarriers)
{
    Program p("rounds", 4);
    p.x(QubitId(0));
    p.x(QubitId(1));
    p.x(QubitId(0));  // conflicts: opens round 2
    p.x(QubitId(2));  // joins round 2
    LatencyModel lat;
    const auto s = roundSchedule(p, lat, unlimited_blocks);
    EXPECT_EQ(s.makespan, 2u);
    EXPECT_EQ(s.start[0], 0u);
    EXPECT_EQ(s.start[1], 0u);
    EXPECT_EQ(s.start[2], 1u);
    EXPECT_EQ(s.start[3], 1u);
}

TEST(RoundSchedule, ExplicitBarrierSplitsRounds)
{
    Program p("b", 2);
    p.x(QubitId(0));
    p.barrier();
    p.x(QubitId(1));  // independent, but the barrier forces round 2
    LatencyModel lat;
    const auto s = roundSchedule(p, lat, unlimited_blocks);
    EXPECT_EQ(s.makespan, 2u);
}

TEST(RoundSchedule, BatchesWideRounds)
{
    Program p("wide", 12);
    for (int i = 0; i < 6; ++i)
        p.cnot(QubitId(2 * i), QubitId(2 * i + 1));
    LatencyModel lat;
    const auto two = roundSchedule(p, lat, 2);
    EXPECT_EQ(two.makespan, 3u);  // ceil(6/2) batches x 1 step
    const auto four = roundSchedule(p, lat, 4);
    EXPECT_EQ(four.makespan, 2u);
}

TEST(RoundSchedule, RoundSlotIsSlowestGate)
{
    Program p("mixed", 4);
    p.cnot(QubitId(0), QubitId(1));
    p.toffoli(QubitId(1), QubitId(2), QubitId(3));  // conflict: round 2
    LatencyModel lat;
    const auto s = roundSchedule(p, lat, unlimited_blocks);
    EXPECT_EQ(s.makespan, lat.cnot + lat.toffoli);
}

TEST(RoundSchedule, AdderCriticalPathMatchesPaperScale)
{
    // Fig. 2: the 64-bit adder spans roughly 20-25 Toffoli slots.
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    LatencyModel lat;
    const auto s = roundSchedule(prog, lat, unlimited_blocks);
    const double slots =
        static_cast<double>(s.makespan) / lat.toffoli;
    EXPECT_GE(slots, 20.0);
    EXPECT_LE(slots, 26.0);
}

TEST(RoundSchedule, FifteenBlocksMatchUnlimitedFor64Bit)
{
    // The paper's Fig. 2 claim: 15 compute blocks achieve the same
    // total runtime as unlimited resources for the 64-bit adder
    // (under the work-conserving bound).
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    LatencyModel lat;
    const auto unl = roundSchedule(prog, lat, unlimited_blocks);
    const double work_bound =
        static_cast<double>(unl.busy_block_steps) / 15.0;
    EXPECT_LE(work_bound, static_cast<double>(unl.makespan));
}

TEST(Schedules, ProfilesAccountForAllWork)
{
    const auto prog = gen::draperAdder(16);
    LatencyModel lat;
    for (const auto &s :
         {listSchedule(prog, lat, 4), roundSchedule(prog, lat, 4)}) {
        const auto profile = s.inFlightProfile();
        std::uint64_t area = 0;
        for (const auto v : profile)
            area += v;
        EXPECT_EQ(area, s.busy_block_steps);
    }
}

TEST(Schedules, WindowedProfileAverages)
{
    Program p("w", 2);
    p.toffoli(QubitId(0), QubitId(1), p.addQubit());
    LatencyModel lat;
    const auto s = listSchedule(p, lat, 1);
    const auto w = s.windowedProfile(15);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(SchedulesDeath, ZeroWindowPanics)
{
    Program p("w", 1);
    p.x(QubitId(0));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, 1);
    EXPECT_DEATH(s.windowedProfile(0), "zero window");
}

} // namespace
} // namespace sched
} // namespace qmh
