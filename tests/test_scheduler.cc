/** @file List and round-synchronous scheduler tests. */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "gen/draper.hh"
#include "sched/scheduler.hh"

namespace qmh {
namespace sched {
namespace {

using circuit::Program;
using circuit::QubitId;

Program
chainProgram(int gates)
{
    Program p("chain", 1);
    for (int i = 0; i < gates; ++i)
        p.x(QubitId(0));
    return p;
}

TEST(ListSchedule, RespectsDependencies)
{
    Program p("dep", 3);
    p.cnot(QubitId(0), QubitId(1));
    p.cnot(QubitId(1), QubitId(2));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, unlimited_blocks);
    EXPECT_GE(s.start[1], s.start[0] + lat.cnot);
}

TEST(ListSchedule, ChainMakespanIsSumOfLatencies)
{
    LatencyModel lat;
    const auto s = listSchedule(chainProgram(10), lat, 4);
    EXPECT_EQ(s.makespan, 10u * lat.single);
}

TEST(ListSchedule, UnlimitedEqualsCriticalPath)
{
    Program p("wide", 8);
    for (int i = 0; i < 4; ++i)
        p.toffoli(QubitId(2 * i), QubitId(2 * i + 1),
                  QubitId((2 * i + 2) % 8));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, unlimited_blocks);
    // All four Toffolis conflict pairwise through shared qubits; the
    // last one can only start after its predecessors release operands.
    EXPECT_GE(s.makespan, lat.toffoli);
}

TEST(ListSchedule, CapacityNeverExceeded)
{
    Program p("par", 12);
    for (int i = 0; i < 6; ++i)
        p.cnot(QubitId(2 * i), QubitId(2 * i + 1));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, 2);
    const auto profile = s.inFlightProfile();
    for (const auto in_flight : profile)
        EXPECT_LE(in_flight, 2u);
    EXPECT_EQ(s.makespan, 3u);  // 6 unit gates on 2 blocks
}

TEST(ListSchedule, WorkConservingOnIndependentGates)
{
    Program p("ind", 20);
    for (int i = 0; i < 10; ++i)
        p.cnot(QubitId(2 * i), QubitId(2 * i + 1));
    LatencyModel lat;
    for (unsigned blocks : {1u, 2u, 5u, 10u}) {
        const auto s = listSchedule(p, lat, blocks);
        EXPECT_EQ(s.makespan, (10 + blocks - 1) / blocks)
            << "blocks=" << blocks;
    }
}

TEST(ListSchedule, BusyStepsIndependentOfBlocks)
{
    const auto prog = gen::draperAdder(16);
    LatencyModel lat;
    const auto a = listSchedule(prog, lat, 4);
    const auto b = listSchedule(prog, lat, unlimited_blocks);
    EXPECT_EQ(a.busy_block_steps, b.busy_block_steps);
}

TEST(ListSchedule, UtilizationBounded)
{
    const auto prog = gen::draperAdder(32);
    LatencyModel lat;
    for (unsigned blocks : {1u, 4u, 16u}) {
        const auto s = listSchedule(prog, lat, blocks);
        EXPECT_GT(s.utilization(), 0.0);
        EXPECT_LE(s.utilization(), 1.0 + 1e-9);
    }
}

TEST(ListSchedule, MoreBlocksNeverSlower)
{
    const auto prog = gen::draperAdder(32, true, nullptr,
                                       gen::UncomputeMode::Full, false);
    LatencyModel lat;
    std::uint64_t prev = ~0ull;
    for (unsigned blocks : {1u, 2u, 4u, 8u, 16u, 32u}) {
        const auto s = listSchedule(prog, lat, blocks);
        EXPECT_LE(s.makespan, prev);
        prev = s.makespan;
    }
}

TEST(RoundSchedule, StructuralRoundsAreBarriers)
{
    Program p("rounds", 4);
    p.x(QubitId(0));
    p.x(QubitId(1));
    p.x(QubitId(0));  // conflicts: opens round 2
    p.x(QubitId(2));  // joins round 2
    LatencyModel lat;
    const auto s = roundSchedule(p, lat, unlimited_blocks);
    EXPECT_EQ(s.makespan, 2u);
    EXPECT_EQ(s.start[0], 0u);
    EXPECT_EQ(s.start[1], 0u);
    EXPECT_EQ(s.start[2], 1u);
    EXPECT_EQ(s.start[3], 1u);
}

TEST(RoundSchedule, ExplicitBarrierSplitsRounds)
{
    Program p("b", 2);
    p.x(QubitId(0));
    p.barrier();
    p.x(QubitId(1));  // independent, but the barrier forces round 2
    LatencyModel lat;
    const auto s = roundSchedule(p, lat, unlimited_blocks);
    EXPECT_EQ(s.makespan, 2u);
}

TEST(RoundSchedule, BatchesWideRounds)
{
    Program p("wide", 12);
    for (int i = 0; i < 6; ++i)
        p.cnot(QubitId(2 * i), QubitId(2 * i + 1));
    LatencyModel lat;
    const auto two = roundSchedule(p, lat, 2);
    EXPECT_EQ(two.makespan, 3u);  // ceil(6/2) batches x 1 step
    const auto four = roundSchedule(p, lat, 4);
    EXPECT_EQ(four.makespan, 2u);
}

TEST(RoundSchedule, RoundSlotIsSlowestGate)
{
    Program p("mixed", 4);
    p.cnot(QubitId(0), QubitId(1));
    p.toffoli(QubitId(1), QubitId(2), QubitId(3));  // conflict: round 2
    LatencyModel lat;
    const auto s = roundSchedule(p, lat, unlimited_blocks);
    EXPECT_EQ(s.makespan, lat.cnot + lat.toffoli);
}

TEST(RoundSchedule, AdderCriticalPathMatchesPaperScale)
{
    // Fig. 2: the 64-bit adder spans roughly 20-25 Toffoli slots.
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    LatencyModel lat;
    const auto s = roundSchedule(prog, lat, unlimited_blocks);
    const double slots =
        static_cast<double>(s.makespan) / lat.toffoli;
    EXPECT_GE(slots, 20.0);
    EXPECT_LE(slots, 26.0);
}

TEST(RoundSchedule, FifteenBlocksMatchUnlimitedFor64Bit)
{
    // The paper's Fig. 2 claim: 15 compute blocks achieve the same
    // total runtime as unlimited resources for the 64-bit adder
    // (under the work-conserving bound).
    const auto prog = gen::draperAdder(
        64, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    LatencyModel lat;
    const auto unl = roundSchedule(prog, lat, unlimited_blocks);
    const double work_bound =
        static_cast<double>(unl.busy_block_steps) / 15.0;
    EXPECT_LE(work_bound, static_cast<double>(unl.makespan));
}

TEST(Schedules, ProfilesAccountForAllWork)
{
    const auto prog = gen::draperAdder(16);
    LatencyModel lat;
    for (const auto &s :
         {listSchedule(prog, lat, 4), roundSchedule(prog, lat, 4)}) {
        const auto profile = s.inFlightProfile();
        std::uint64_t area = 0;
        for (const auto v : profile)
            area += v;
        EXPECT_EQ(area, s.busy_block_steps);
    }
}

TEST(Schedules, SegmentsMatchDenseProfile)
{
    const auto prog = gen::draperAdder(16);
    LatencyModel lat;
    const auto s = listSchedule(prog, lat, 4);
    const auto dense = s.inFlightProfile();
    const auto segments = s.inFlightSegments();
    ASSERT_FALSE(segments.empty());
    // Segments tile [0, makespan) contiguously...
    EXPECT_EQ(segments.front().begin, 0u);
    EXPECT_EQ(segments.back().end, s.makespan);
    for (std::size_t i = 1; i < segments.size(); ++i)
        EXPECT_EQ(segments[i].begin, segments[i - 1].end);
    // ...and agree with the dense expansion everywhere.
    for (const auto &segment : segments)
        for (auto t = segment.begin; t < segment.end; ++t)
            EXPECT_EQ(dense[t], segment.in_flight) << "t=" << t;
}

TEST(Schedules, HugeLatencyProfilesStaySparse)
{
    // A tick-resolution trace can have makespans in the billions; the
    // profile machinery must scale with the gate count, not the
    // schedule length. Before the segment refactor this test would
    // try to allocate makespan slots (tens of gigabytes) and die.
    Program p("huge", 2);
    for (int i = 0; i < 3; ++i)
        p.toffoli(QubitId(0), QubitId(1), p.addQubit());
    LatencyModel lat;
    lat.toffoli = 2'000'000'000;  // 2e9 steps per gate
    const auto s = listSchedule(p, lat, 1);
    EXPECT_EQ(s.makespan, 6'000'000'000ull);

    EXPECT_EQ(s.peakParallelism(), 1u);
    const auto segments = s.inFlightSegments();
    ASSERT_EQ(segments.size(), 1u);  // one constant run of 1
    EXPECT_EQ(segments[0].in_flight, 1u);
    // Segment area accounts for every block-step of real work.
    std::uint64_t area = 0;
    for (const auto &segment : segments)
        area += (segment.end - segment.begin) * segment.in_flight;
    EXPECT_EQ(area, s.busy_block_steps);

    const auto windows = s.windowedProfile(2'000'000'000);
    ASSERT_EQ(windows.size(), 3u);
    for (const auto w : windows)
        EXPECT_DOUBLE_EQ(w, 1.0);
    EXPECT_DOUBLE_EQ(s.utilization(), 1.0);
}

TEST(IncrementalSchedule, DrivesIdenticallyToBatch)
{
    // Claim-all / advance / complete-in-finish-order is exactly the
    // batch algorithm; driving the incremental form by hand must
    // reproduce listSchedule's decisions.
    const auto prog = gen::draperAdder(
        16, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    circuit::DependencyGraph dag(prog);
    LatencyModel lat;
    const auto batch = listSchedule(prog, dag, lat, 4);

    IncrementalScheduler inc(prog, dag, lat, 4);
    std::vector<std::uint64_t> start(prog.size(), 0);
    // (finish, index) ordered retirement, like the batch driver.
    std::vector<std::pair<std::uint64_t, IssueClaim>> running;
    std::uint64_t now = 0;
    while (!inc.finished()) {
        while (const auto claimed = inc.claim()) {
            start[claimed->index] = now;
            running.push_back({now + claimed->latency, *claimed});
        }
        ASSERT_FALSE(running.empty());
        std::sort(running.begin(), running.end(),
                  [](const auto &a, const auto &b) {
                      return std::make_pair(a.first, a.second.index) <
                             std::make_pair(b.first, b.second.index);
                  });
        now = running.front().first;
        while (!running.empty() && running.front().first == now) {
            inc.complete(running.front().second);
            running.erase(running.begin());
        }
    }
    EXPECT_EQ(now, batch.makespan);
    EXPECT_EQ(start, batch.start);
    EXPECT_EQ(inc.blocksUsed(), batch.blocks_used);
    EXPECT_EQ(inc.busyBlockSteps(), batch.busy_block_steps);
}

TEST(IncrementalSchedule, ClaimBatchMatchesRepeatedClaimExactly)
{
    // claimBatch is the engine's batch-issue path; it must hand out
    // the same (index, block, latency) sequence as looping claim()
    // until nullopt at every decision point of a real schedule.
    const auto prog = gen::draperAdder(
        16, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    circuit::DependencyGraph dag(prog);
    LatencyModel lat;
    for (const unsigned blocks : {0u, 3u, 8u}) {
        IncrementalScheduler one(prog, dag, lat, blocks);
        IncrementalScheduler batch(prog, dag, lat, blocks);
        std::vector<std::pair<std::uint64_t, IssueClaim>> running;
        std::uint64_t now = 0;
        while (!one.finished()) {
            std::vector<IssueClaim> singles;
            while (const auto claimed = one.claim())
                singles.push_back(*claimed);
            std::vector<IssueClaim> front;
            batch.claimBatch(front);
            ASSERT_EQ(front.size(), singles.size());
            for (std::size_t i = 0; i < front.size(); ++i) {
                EXPECT_EQ(front[i].index, singles[i].index);
                EXPECT_EQ(front[i].block, singles[i].block);
                EXPECT_EQ(front[i].latency, singles[i].latency);
                running.push_back(
                    {now + singles[i].latency, singles[i]});
            }
            ASSERT_FALSE(running.empty());
            std::sort(running.begin(), running.end(),
                      [](const auto &a, const auto &b) {
                          return std::make_pair(a.first,
                                                a.second.index) <
                                 std::make_pair(b.first,
                                                b.second.index);
                      });
            now = running.front().first;
            while (!running.empty() && running.front().first == now) {
                one.complete(running.front().second);
                batch.complete(running.front().second);
                running.erase(running.begin());
            }
        }
        EXPECT_TRUE(batch.finished());
        EXPECT_EQ(one.blocksUsed(), batch.blocksUsed());
    }
}

TEST(IncrementalSchedule, ClaimRespectsBlockCapAndReadiness)
{
    Program p("cap", 4);
    p.cnot(QubitId(0), QubitId(1));
    p.cnot(QubitId(2), QubitId(3));
    p.cnot(QubitId(1), QubitId(2));  // depends on both
    circuit::DependencyGraph dag(p);
    LatencyModel lat;
    IncrementalScheduler inc(p, dag, lat, 1);

    const auto first = inc.claim();
    ASSERT_TRUE(first.has_value());
    EXPECT_FALSE(inc.claim().has_value());  // single block busy
    inc.complete(*first);
    const auto second = inc.claim();
    ASSERT_TRUE(second.has_value());
    EXPECT_NE(second->index, first->index);
    inc.complete(*second);
    const auto third = inc.claim();
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->index, 2u);  // only ready after both parents
    inc.complete(*third);
    EXPECT_TRUE(inc.finished());
    EXPECT_FALSE(inc.claim().has_value());
}

TEST(Schedules, WindowedProfileAverages)
{
    Program p("w", 2);
    p.toffoli(QubitId(0), QubitId(1), p.addQubit());
    LatencyModel lat;
    const auto s = listSchedule(p, lat, 1);
    const auto w = s.windowedProfile(15);
    ASSERT_EQ(w.size(), 1u);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
}

TEST(SchedulesDeath, ZeroWindowPanics)
{
    Program p("w", 1);
    p.x(QubitId(0));
    LatencyModel lat;
    const auto s = listSchedule(p, lat, 1);
    EXPECT_DEATH(s.windowedProfile(0), "zero window");
}

} // namespace
} // namespace sched
} // namespace qmh
