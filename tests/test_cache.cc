/** @file Quantum cache simulator tests (paper Fig. 7). */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"
#include "gen/draper.hh"

namespace qmh {
namespace cache {
namespace {

using circuit::Program;
using circuit::QubitId;

TEST(QubitCache, LruEviction)
{
    QubitCache c(2);
    EXPECT_FALSE(c.touch(QubitId(0)));
    EXPECT_FALSE(c.touch(QubitId(1)));
    EXPECT_TRUE(c.touch(QubitId(0)));   // refresh 0: LRU is now 1
    EXPECT_FALSE(c.touch(QubitId(2)));  // evicts 1
    EXPECT_TRUE(c.contains(QubitId(0)));
    EXPECT_FALSE(c.contains(QubitId(1)));
    EXPECT_TRUE(c.contains(QubitId(2)));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(QubitCache, CapacityRespected)
{
    QubitCache c(3);
    for (int i = 0; i < 10; ++i)
        c.touch(QubitId(static_cast<unsigned>(i)));
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.evictions(), 7u);
}

TEST(CacheSim, SequentialReuseHits)
{
    Program p("reuse", 2);
    for (int i = 0; i < 10; ++i)
        p.cnot(QubitId(0), QubitId(1));
    const auto r = simulateCache(p, 4, FetchPolicy::InOrder);
    EXPECT_EQ(r.accesses, 20u);
    EXPECT_EQ(r.misses, 2u);  // only the compulsory misses
    EXPECT_EQ(r.hits, 18u);
}

TEST(CacheSim, ThrashingWhenWorkingSetExceedsCapacity)
{
    Program p("thrash", 8);
    for (int round = 0; round < 4; ++round)
        for (int q = 0; q < 8; ++q)
            p.x(QubitId(static_cast<unsigned>(q)));
    const auto r = simulateCache(p, 4, FetchPolicy::InOrder);
    // Cyclic access with LRU and half-size cache: every access misses.
    EXPECT_EQ(r.hits, 0u);
}

TEST(CacheSim, OptimizedBeatsInOrderOnAdder)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        128, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    const std::size_t capacity = 128;
    const auto in_order =
        simulateCache(prog, capacity, FetchPolicy::InOrder);
    const auto optimized =
        simulateCache(prog, capacity, FetchPolicy::OptimizedLookahead);
    EXPECT_GT(optimized.hitRate(), in_order.hitRate());
    EXPECT_EQ(optimized.accesses, in_order.accesses);
}

TEST(CacheSim, IssueOrderIsAValidTopologicalOrder)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(16, true, &layout);
    const auto r =
        simulateCache(prog, 8, FetchPolicy::OptimizedLookahead);
    ASSERT_EQ(r.issue_order.size(), prog.size());
    // Verify via per-qubit last-position tracking: an instruction must
    // come after every earlier instruction sharing a qubit.
    std::vector<int> position(prog.size());
    for (std::size_t pos = 0; pos < r.issue_order.size(); ++pos)
        position[r.issue_order[pos]] = static_cast<int>(pos);
    std::vector<int> last(static_cast<std::size_t>(prog.qubitCount()),
                          -1);
    for (std::uint32_t i = 0; i < prog.size(); ++i) {
        for (const auto &q : prog[i].operands()) {
            if (last[q.value()] >= 0) {
                EXPECT_LT(position[static_cast<std::size_t>(
                              last[q.value()])],
                          position[i]);
            }
            last[q.value()] = static_cast<int>(i);
        }
    }
}

TEST(CacheSim, WarmStartImprovesHitRate)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        64, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 64; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    const auto cold = simulateCache(prog, 96,
                                    FetchPolicy::OptimizedLookahead,
                                    false, mask);
    const auto warm = simulateCache(prog, 96,
                                    FetchPolicy::OptimizedLookahead,
                                    true, mask);
    EXPECT_GE(warm.hitRate(), cold.hitRate());
}

TEST(CacheSim, MaskExcludesScratchQubits)
{
    Program p("mask", 3);
    p.toffoli(QubitId(0), QubitId(1), QubitId(2));
    std::vector<bool> mask = {true, true, false};
    const auto r =
        simulateCache(p, 2, FetchPolicy::InOrder, false, mask);
    EXPECT_EQ(r.accesses, 2u);  // q2 never counted
}

TEST(CacheSim, PaperFig7Separation)
{
    // The headline Fig. 7 behaviour: on the big adder with the data
    // registers cached, optimized lookahead sits far above in-order.
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        1024, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 1024; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    const std::size_t capacity = 1800;  // 2x the 100-block PE count
    const auto in_order = simulateCache(prog, capacity,
                                        FetchPolicy::InOrder, true,
                                        mask);
    const auto optimized =
        simulateCache(prog, capacity, FetchPolicy::OptimizedLookahead,
                      true, mask);
    EXPECT_GT(optimized.hitRate(), 0.80);
    EXPECT_LT(in_order.hitRate(), 0.65);
}

TEST(CacheSimDeath, ZeroCapacityRejected)
{
    Program p("x", 1);
    p.x(QubitId(0));
    EXPECT_EXIT(simulateCache(p, 0, FetchPolicy::InOrder),
                ::testing::ExitedWithCode(1), "capacity");
}

TEST(CacheSimDeath, BadMaskSizeRejected)
{
    Program p("x", 2);
    p.x(QubitId(0));
    std::vector<bool> mask = {true};
    EXPECT_EXIT(simulateCache(p, 2, FetchPolicy::InOrder, false, mask),
                ::testing::ExitedWithCode(1), "mask");
}

} // namespace
} // namespace cache
} // namespace qmh
