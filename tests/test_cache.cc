/** @file Quantum cache simulator tests (paper Fig. 7). */

#include <gtest/gtest.h>

#include "cache/cache_sim.hh"
#include "gen/draper.hh"

namespace qmh {
namespace cache {
namespace {

using circuit::Program;
using circuit::QubitId;

TEST(QubitCache, LruEviction)
{
    QubitCache c(2);
    EXPECT_FALSE(c.touch(QubitId(0)));
    EXPECT_FALSE(c.touch(QubitId(1)));
    EXPECT_TRUE(c.touch(QubitId(0)));   // refresh 0: LRU is now 1
    EXPECT_FALSE(c.touch(QubitId(2)));  // evicts 1
    EXPECT_TRUE(c.contains(QubitId(0)));
    EXPECT_FALSE(c.contains(QubitId(1)));
    EXPECT_TRUE(c.contains(QubitId(2)));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(QubitCache, ResidentsReportRecencyOrderNotHashOrder)
{
    // Determinism regression: the residency snapshot must be a pure
    // function of the access history (MRU first), never of the
    // unordered index's bucket layout.
    QubitCache c(3);
    c.touch(QubitId(5));
    c.touch(QubitId(9));
    c.touch(QubitId(1));
    const std::vector<QubitId> fresh = {QubitId(1), QubitId(9),
                                        QubitId(5)};
    EXPECT_EQ(c.residents(), fresh);

    c.touch(QubitId(9));                 // refresh: 9 becomes MRU
    c.touch(QubitId(7));                 // evicts 5, the LRU entry
    const std::vector<QubitId> after = {QubitId(7), QubitId(9),
                                        QubitId(1)};
    EXPECT_EQ(c.residents(), after);
}

TEST(QubitCache, ResidentsTrackInterleavedHitMissEvictSequences)
{
    // The recency order is the observable any replacement-structure
    // swap must reproduce exactly: walk a sequence that interleaves
    // compulsory misses, refreshing hits, evicting misses and repeat
    // touches of the current MRU, checking the full snapshot (and the
    // eviction victims) at every step.
    QubitCache c(3);
    std::vector<QubitId> evicted;
    const struct
    {
        unsigned touch;
        bool hit;
        std::vector<QubitId> residents;
    } steps[] = {
        {4, false, {QubitId(4)}},
        {2, false, {QubitId(2), QubitId(4)}},
        {4, true, {QubitId(4), QubitId(2)}},
        {4, true, {QubitId(4), QubitId(2)}},           // MRU self-touch
        {8, false, {QubitId(8), QubitId(4), QubitId(2)}},
        {6, false, {QubitId(6), QubitId(8), QubitId(4)}},  // evicts 2
        {2, false, {QubitId(2), QubitId(6), QubitId(8)}},  // evicts 4
        {8, true, {QubitId(8), QubitId(2), QubitId(6)}},
        {6, true, {QubitId(6), QubitId(8), QubitId(2)}},
        {4, false, {QubitId(4), QubitId(6), QubitId(8)}},  // evicts 2
        {6, true, {QubitId(6), QubitId(4), QubitId(8)}},
    };
    for (const auto &step : steps) {
        EXPECT_EQ(c.touch(QubitId(step.touch), &evicted), step.hit)
            << "touch " << step.touch;
        EXPECT_EQ(c.residents(), step.residents)
            << "after touch " << step.touch;
    }
    const std::vector<QubitId> victims = {QubitId(2), QubitId(4),
                                          QubitId(2)};
    EXPECT_EQ(evicted, victims);
    EXPECT_EQ(c.evictions(), 3u);
}

TEST(QubitCache, CapacityRespected)
{
    QubitCache c(3);
    for (int i = 0; i < 10; ++i)
        c.touch(QubitId(static_cast<unsigned>(i)));
    EXPECT_EQ(c.size(), 3u);
    EXPECT_EQ(c.evictions(), 7u);
}

TEST(CacheSim, SequentialReuseHits)
{
    Program p("reuse", 2);
    for (int i = 0; i < 10; ++i)
        p.cnot(QubitId(0), QubitId(1));
    const auto r = simulateCache(p, 4, FetchPolicy::InOrder);
    EXPECT_EQ(r.accesses, 20u);
    EXPECT_EQ(r.misses, 2u);  // only the compulsory misses
    EXPECT_EQ(r.hits, 18u);
}

TEST(CacheSim, ThrashingWhenWorkingSetExceedsCapacity)
{
    Program p("thrash", 8);
    for (int round = 0; round < 4; ++round)
        for (int q = 0; q < 8; ++q)
            p.x(QubitId(static_cast<unsigned>(q)));
    const auto r = simulateCache(p, 4, FetchPolicy::InOrder);
    // Cyclic access with LRU and half-size cache: every access misses.
    EXPECT_EQ(r.hits, 0u);
}

TEST(CacheSim, OptimizedBeatsInOrderOnAdder)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        128, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    const std::size_t capacity = 128;
    const auto in_order =
        simulateCache(prog, capacity, FetchPolicy::InOrder);
    const auto optimized =
        simulateCache(prog, capacity, FetchPolicy::OptimizedLookahead);
    EXPECT_GT(optimized.hitRate(), in_order.hitRate());
    EXPECT_EQ(optimized.accesses, in_order.accesses);
}

TEST(CacheSim, IssueOrderIsAValidTopologicalOrder)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(16, true, &layout);
    const auto r =
        simulateCache(prog, 8, FetchPolicy::OptimizedLookahead);
    ASSERT_EQ(r.issue_order.size(), prog.size());
    // Verify via per-qubit last-position tracking: an instruction must
    // come after every earlier instruction sharing a qubit.
    std::vector<int> position(prog.size());
    for (std::size_t pos = 0; pos < r.issue_order.size(); ++pos)
        position[r.issue_order[pos]] = static_cast<int>(pos);
    std::vector<int> last(static_cast<std::size_t>(prog.qubitCount()),
                          -1);
    for (std::uint32_t i = 0; i < prog.size(); ++i) {
        for (const auto &q : prog[i].operands()) {
            if (last[q.value()] >= 0) {
                EXPECT_LT(position[static_cast<std::size_t>(
                              last[q.value()])],
                          position[i]);
            }
            last[q.value()] = static_cast<int>(i);
        }
    }
}

TEST(CacheSim, WarmStartImprovesHitRate)
{
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        64, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 64; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    const auto cold = simulateCache(prog, 96,
                                    FetchPolicy::OptimizedLookahead,
                                    false, mask);
    const auto warm = simulateCache(prog, 96,
                                    FetchPolicy::OptimizedLookahead,
                                    true, mask);
    EXPECT_GE(warm.hitRate(), cold.hitRate());
}

TEST(CacheSim, MaskExcludesScratchQubits)
{
    Program p("mask", 3);
    p.toffoli(QubitId(0), QubitId(1), QubitId(2));
    std::vector<bool> mask = {true, true, false};
    const auto r =
        simulateCache(p, 2, FetchPolicy::InOrder, false, mask);
    EXPECT_EQ(r.accesses, 2u);  // q2 never counted
}

TEST(CacheSim, PaperFig7Separation)
{
    // The headline Fig. 7 behaviour: on the big adder with the data
    // registers cached, optimized lookahead sits far above in-order.
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        1024, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 1024; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    const std::size_t capacity = 1800;  // 2x the 100-block PE count
    const auto in_order = simulateCache(prog, capacity,
                                        FetchPolicy::InOrder, true,
                                        mask);
    const auto optimized =
        simulateCache(prog, capacity, FetchPolicy::OptimizedLookahead,
                      true, mask);
    EXPECT_GT(optimized.hitRate(), 0.80);
    EXPECT_LT(in_order.hitRate(), 0.65);
}

TEST(CacheSim, WarmStartNeverHurtsWhenTheOrderIsFixed)
{
    // Monotonicity: with a fixed access order, a warmed LRU cache can
    // only turn the first touch of a resident qubit from a compulsory
    // miss into a hit — every cold hit's reuse distance is unchanged.
    // (OptimizedLookahead re-chooses the order from cache contents,
    // so its mid-capacity hit rates are not provably monotone; see
    // the test below for where the guarantee does hold.)
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        48, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 48; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    for (const std::size_t capacity : {8u, 24u, 48u, 96u, 192u}) {
        const auto cold = simulateCache(prog, capacity,
                                        FetchPolicy::InOrder, false,
                                        mask);
        const auto warm = simulateCache(prog, capacity,
                                        FetchPolicy::InOrder, true,
                                        mask);
        EXPECT_GE(warm.hitRate(), cold.hitRate())
            << "capacity " << capacity;
        EXPECT_EQ(warm.accesses, cold.accesses);
    }
}

TEST(CacheSim, WarmStartNeverHurtsOptimizedOnceTheWorkingSetFits)
{
    // For the lookahead policy the guarantee holds when ordering
    // effects vanish: the whole cacheable working set is resident
    // after the warm pass.
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        48, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 48; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    for (const std::size_t capacity : {96u, 128u, 192u}) {
        const auto cold = simulateCache(
            prog, capacity, FetchPolicy::OptimizedLookahead, false,
            mask);
        const auto warm = simulateCache(
            prog, capacity, FetchPolicy::OptimizedLookahead, true,
            mask);
        EXPECT_GE(warm.hitRate(), cold.hitRate())
            << "capacity " << capacity;
        EXPECT_EQ(warm.accesses, cold.accesses);
    }
}

TEST(CacheSim, WarmStartAtFullCapacityHasNoMisses)
{
    // When every cacheable qubit fits, the warm run starts with the
    // whole working set resident: zero misses, zero evictions.
    gen::AdderLayout layout;
    const auto prog = gen::draperAdder(
        32, true, &layout, gen::UncomputeMode::CarriesLeftDirty);
    std::vector<bool> mask(
        static_cast<std::size_t>(layout.total_qubits), false);
    for (int i = 0; i < 2 * 32; ++i)
        mask[static_cast<std::size_t>(i)] = true;
    const auto warm = simulateCache(
        prog, 64, FetchPolicy::OptimizedLookahead, true, mask);
    EXPECT_EQ(warm.misses, 0u);
    EXPECT_EQ(warm.evictions, 0u);
    EXPECT_DOUBLE_EQ(warm.hitRate(), 1.0);
}

TEST(CacheSim, MaskedScratchNeverMissesOrEvicts)
{
    // Heavy traffic on masked scratch qubits must be invisible to the
    // hierarchy: no accesses, no misses, no evictions — even with a
    // cache far smaller than the scratch working set.
    Program p("scratch-heavy", 34);
    for (int round = 0; round < 6; ++round)
        for (unsigned q = 2; q < 34; ++q)
            p.toffoli(QubitId(0), QubitId(1), QubitId(q));
    std::vector<bool> mask(34, false);
    mask[0] = mask[1] = true;
    for (const bool warm : {false, true}) {
        const auto r =
            simulateCache(p, 2, FetchPolicy::InOrder, warm, mask);
        // Only the two data qubits are ever counted...
        EXPECT_EQ(r.accesses, 2u * 6u * 32u);
        // ...and they fit, so nothing beyond their compulsory misses.
        EXPECT_LE(r.misses, 2u);
        EXPECT_EQ(r.evictions, 0u);
        if (warm) {
            EXPECT_EQ(r.misses, 0u);
        }
    }
}

TEST(CacheSim, AllMaskedProgramTouchesNothing)
{
    Program p("all-scratch", 4);
    for (int i = 0; i < 8; ++i)
        p.cnot(QubitId(0), QubitId(1));
    const std::vector<bool> mask(4, false);
    const auto r =
        simulateCache(p, 2, FetchPolicy::OptimizedLookahead, true,
                      mask);
    EXPECT_EQ(r.accesses, 0u);
    EXPECT_EQ(r.misses, 0u);
    EXPECT_EQ(r.evictions, 0u);
    EXPECT_DOUBLE_EQ(r.hitRate(), 0.0);
    // Every instruction still issues exactly once.
    EXPECT_EQ(r.issue_order.size(), p.size());
}

TEST(CacheState, SteppingInProgramOrderMatchesInOrderDriver)
{
    // CacheState is the residency truth the drivers and the trace
    // engine share: stepping it by hand in program order must match
    // the in-order whole-program driver's counters exactly.
    const auto prog = gen::draperAdder(16);
    const std::size_t capacity = 12;
    CacheState state(capacity, {});
    for (const auto &inst : prog.instructions())
        state.access(inst);
    const auto driver =
        simulateCache(prog, capacity, FetchPolicy::InOrder);
    EXPECT_EQ(state.accesses(), driver.accesses);
    EXPECT_EQ(state.hits(), driver.hits);
    EXPECT_EQ(state.misses(), driver.misses);
    EXPECT_EQ(state.evictions(), driver.evictions);
}

TEST(CacheState, MissingOperandsPredictsAccessOutcome)
{
    Program p("m", 3);
    p.toffoli(QubitId(0), QubitId(1), QubitId(2));
    CacheState state(2, {});
    const auto &inst = p.instructions().front();
    // Cold: every operand missing; missingOperands does not mutate.
    EXPECT_EQ(state.missingOperands(inst).size(), 3u);
    EXPECT_EQ(state.missingOperands(inst).size(), 3u);
    state.access(inst);
    EXPECT_EQ(state.misses(), 3u);
    // Capacity 2: qubit 0 was evicted while 1 and 2 are resident.
    EXPECT_FALSE(state.resident(QubitId(0)));
    EXPECT_TRUE(state.resident(QubitId(1)));
    EXPECT_TRUE(state.resident(QubitId(2)));
    EXPECT_EQ(state.missingOperands(inst).size(), 1u);
}

TEST(CacheState, MaskedQubitsNeverMissOrOccupy)
{
    Program p("mask", 2);
    p.cnot(QubitId(0), QubitId(1));
    std::vector<bool> mask = {true, false};
    CacheState state(1, mask);
    EXPECT_FALSE(state.isCacheable(QubitId(1)));
    EXPECT_EQ(state.missingOperands(p.instructions().front()).size(),
              1u);
    state.access(p.instructions().front());
    EXPECT_EQ(state.accesses(), 1u);  // only the cacheable operand
    EXPECT_TRUE(state.resident(QubitId(0)));
    EXPECT_FALSE(state.resident(QubitId(1)));
}

TEST(CacheState, ResetCountersKeepsResidency)
{
    Program p("r", 1);
    p.x(QubitId(0));
    CacheState state(1, {});
    state.access(p.instructions().front());
    EXPECT_EQ(state.misses(), 1u);
    state.resetCounters();
    EXPECT_EQ(state.accesses(), 0u);
    state.access(p.instructions().front());
    EXPECT_EQ(state.hits(), 1u);  // still resident: warm start
}

TEST(CacheSimDeath, ZeroCapacityRejected)
{
    Program p("x", 1);
    p.x(QubitId(0));
    EXPECT_EXIT(simulateCache(p, 0, FetchPolicy::InOrder),
                ::testing::ExitedWithCode(1), "capacity");
}

TEST(CacheSimDeath, BadMaskSizeRejected)
{
    Program p("x", 2);
    p.x(QubitId(0));
    std::vector<bool> mask = {true};
    EXPECT_EXIT(simulateCache(p, 2, FetchPolicy::InOrder, false, mask),
                ::testing::ExitedWithCode(1), "mask");
}

} // namespace
} // namespace cache
} // namespace qmh
