/**
 * @file
 * Component-kernel tests: Port arbitration determinism, TokenPool
 * FIFO wake order, bounded-buffer backpressure, the banked memory's
 * conflict accounting, and the division guards on every utilization
 * and mean-queue report.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/banked_memory.hh"
#include "sim/component.hh"
#include "sim/event_queue.hh"
#include "sim/transfer_channels.hh"

namespace qmh {
namespace sim {
namespace {

TEST(SimPort, UncontendedRequestIsNeverAConflict)
{
    EventQueue eq;
    Component owner(eq, "memory");
    Port port(owner, "p0", /*width=*/2, /*buffer_limit=*/4);

    int done = 0;
    eq.schedule(0, [&]() {
        port.submit(10, [&]() { ++done; });
        port.submit(10, [&]() { ++done; });
    });
    eq.run();

    EXPECT_EQ(done, 2);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(port.stats().requests, 2u);
    EXPECT_EQ(port.stats().served, 2u);
    EXPECT_EQ(port.stats().conflict_stalls, 0u);
    EXPECT_EQ(port.stats().stall_ticks, 0u);
    EXPECT_EQ(port.stats().buffer_overflows, 0u);
    // Both requests went straight into service: the queue never held
    // a waiting request, so peak occupancy is zero by construction.
    EXPECT_EQ(port.stats().peak_queue, 0u);
    EXPECT_EQ(port.stats().busy_ticks, 20u);
    EXPECT_DOUBLE_EQ(port.utilization(10), 1.0);
}

TEST(SimPort, SameTickRequestsGrantInSubmissionOrder)
{
    // Deterministic FIFO arbitration: four same-tick submissions to a
    // width-1 port complete in exactly submission order, with the
    // delayed three counted as conflict stalls. No seed, no hash
    // order, nothing to vary between runs or hosts.
    EventQueue eq;
    Component owner(eq, "memory");
    Port port(owner, "p0", /*width=*/1, /*buffer_limit=*/8);

    std::vector<int> order;
    std::vector<Tick> completed;
    eq.schedule(0, [&]() {
        for (int id = 0; id < 4; ++id)
            port.submit(10, [&, id]() {
                order.push_back(id);
                completed.push_back(eq.now());
            });
    });
    eq.run();

    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(completed, (std::vector<Tick>{10, 20, 30, 40}));
    EXPECT_EQ(port.stats().conflict_stalls, 3u);
    // Waits of 10, 20 and 30 ticks for requests 1..3.
    EXPECT_EQ(port.stats().stall_ticks, 60u);
    EXPECT_EQ(port.stats().peak_queue, 3u);
    EXPECT_GT(port.meanQueue(40), 0.0);
}

TEST(SimPort, BoundedBufferBackpressuresFifo)
{
    EventQueue eq;
    Component owner(eq, "memory");
    // Width 1, buffer 1: the third same-tick submission finds the
    // buffer full and waits in the overflow queue.
    Port port(owner, "p0", /*width=*/1, /*buffer_limit=*/1);

    std::vector<int> order;
    eq.schedule(0, [&]() {
        for (int id = 0; id < 3; ++id)
            port.submit(5, [&, id]() { order.push_back(id); });
    });
    eq.run();

    // Backpressure must not reorder: service is submission order even
    // across the buffer/overflow boundary.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(port.stats().buffer_overflows, 1u);
    EXPECT_EQ(port.stats().served, 3u);
    EXPECT_EQ(eq.now(), 15u);
}

TEST(SimPort, FireAndForgetSubmissionCompletes)
{
    EventQueue eq;
    Component owner(eq, "memory");
    Port port(owner, "p0", 1, 4);
    eq.schedule(0, [&]() { port.submit(7, {}); });
    eq.run();
    EXPECT_EQ(port.stats().served, 1u);
    EXPECT_EQ(eq.now(), 7u);
    EXPECT_EQ(port.inService(), 0u);
    EXPECT_EQ(port.inFlight(), 0u);
}

TEST(SimPort, UtilizationAndMeanQueueGuardZeroMakespan)
{
    // A port that never ran reports 0, not a division by zero.
    EventQueue eq;
    Component owner(eq, "memory");
    Port port(owner, "p0", 3, 4);
    EXPECT_DOUBLE_EQ(port.utilization(0), 0.0);
    EXPECT_DOUBLE_EQ(port.meanQueue(0), 0.0);
}

TEST(SimPortDeath, ZeroWidthOrBufferIsFatal)
{
    EventQueue eq;
    Component owner(eq, "memory");
    EXPECT_DEATH(Port(owner, "p0", 0, 4), "nonzero width");
    EXPECT_DEATH(Port(owner, "p0", 1, 0), "nonzero buffer limit");
    EXPECT_DEATH(TokenPool(0), "nonzero capacity");
}

TEST(SimTokenPool, ParkedPortsWakeInParkingOrder)
{
    // Two width-1 ports sharing one token: grants must alternate in
    // parking order (a, b, a, b), never by pointer or hash order.
    EventQueue eq;
    Component owner(eq, "memory");
    TokenPool tokens(1);
    Port a(owner, "a", 1, 8, &tokens);
    Port b(owner, "b", 1, 8, &tokens);

    std::vector<std::string> order;
    eq.schedule(0, [&]() {
        a.submit(5, [&]() { order.push_back("a0"); });
        b.submit(5, [&]() { order.push_back("b0"); });
        a.submit(5, [&]() { order.push_back("a1"); });
        b.submit(5, [&]() { order.push_back("b1"); });
    });
    eq.run();

    EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "a1",
                                               "b1"}));
    // One token fully serializes the four services.
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(tokens.inUse(), 0u);
    // The pool, not the ports' own width, caused the waits.
    EXPECT_EQ(a.stats().conflict_stalls + b.stats().conflict_stalls,
              3u);
}

TEST(SimBankedMemory, AddressesHashToBanksByModulo)
{
    EventQueue eq;
    BankedMemoryConfig config;
    config.banks = 4;
    BankedMemory memory(eq, "mem", config);
    EXPECT_EQ(memory.banks(), 4u);
    EXPECT_EQ(memory.bankOf(0), 0u);
    EXPECT_EQ(memory.bankOf(5), 1u);
    EXPECT_EQ(memory.bankOf(7), 3u);

    eq.schedule(0, [&]() { memory.request(6, 1, {}); });
    eq.run();
    EXPECT_EQ(memory.bank(2).stats().requests, 1u);
    EXPECT_EQ(memory.requests(), 1u);
    EXPECT_EQ(memory.served(), 1u);
}

TEST(SimBankedMemory, ServiceTimeIsPerRequestPlusPerLine)
{
    EventQueue eq;
    BankedMemoryConfig config;
    config.banks = 2;
    config.cycles_per_request = 10;
    config.cycles_per_line = 3;
    BankedMemory memory(eq, "mem", config);
    eq.schedule(0, [&]() { memory.request(1, 4, {}); });
    eq.run();
    EXPECT_EQ(eq.now(), 22u);  // 10 + 3 * 4
    EXPECT_EQ(memory.busyTicks(), 22u);
}

TEST(SimBankedMemory, ConflictsAreZeroWithoutContention)
{
    // Distinct banks, enough ports: same-tick requests all start
    // immediately — the conflict-stall column is structurally zero.
    EventQueue eq;
    BankedMemoryConfig config;
    config.banks = 4;
    config.ports = 4;
    config.cycles_per_request = 10;
    BankedMemory memory(eq, "mem", config);
    eq.schedule(0, [&]() {
        for (std::uint64_t address = 0; address < 4; ++address)
            memory.request(address, 1, {});
    });
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(memory.bankConflicts(), 0u);
    EXPECT_EQ(memory.stallTicks(), 0u);
    EXPECT_EQ(memory.peakQueue(), 0u);
    EXPECT_DOUBLE_EQ(memory.utilization(10), 1.0);
}

TEST(SimBankedMemory, SingleBankSinglePortSerializesAndCounts)
{
    // The conflict storm: everything lands in bank 0 behind one
    // port. Makespan quadruples and every delayed request is counted.
    EventQueue eq;
    BankedMemoryConfig config;
    config.banks = 1;
    config.ports = 1;
    config.cycles_per_request = 10;
    BankedMemory memory(eq, "mem", config);
    eq.schedule(0, [&]() {
        for (std::uint64_t address = 0; address < 4; ++address)
            memory.request(address, 1, {});
    });
    eq.run();
    EXPECT_EQ(eq.now(), 40u);
    EXPECT_EQ(memory.bankConflicts(), 3u);
    EXPECT_EQ(memory.stallTicks(), 60u);  // 10 + 20 + 30
    EXPECT_EQ(memory.peakQueue(), 3u);
    EXPECT_GT(memory.meanQueue(40), 0.0);
    EXPECT_EQ(memory.bufferOverflows(), 0u);
}

TEST(SimBankedMemory, SharedPortsCapCrossBankParallelism)
{
    // Eight banks but two ports: same-tick requests to eight distinct
    // banks still issue at most two at a time.
    EventQueue eq;
    BankedMemoryConfig config;
    config.banks = 8;
    config.ports = 2;
    config.cycles_per_request = 10;
    BankedMemory memory(eq, "mem", config);
    eq.schedule(0, [&]() {
        for (std::uint64_t address = 0; address < 8; ++address)
            memory.request(address, 1, {});
    });
    eq.run();
    EXPECT_EQ(eq.now(), 40u);  // ceil(8 / 2) waves of 10
    EXPECT_EQ(memory.bankConflicts(), 6u);
    EXPECT_EQ(memory.served(), 8u);
}

TEST(SimBankedMemory, FullBankBufferBackpressures)
{
    EventQueue eq;
    BankedMemoryConfig config;
    config.banks = 1;
    config.ports = 1;
    config.buffer = 2;
    config.cycles_per_request = 5;
    BankedMemory memory(eq, "mem", config);
    std::vector<int> order;
    eq.schedule(0, [&]() {
        for (int id = 0; id < 5; ++id)
            memory.request(0, 1, [&, id]() { order.push_back(id); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    // In service + 2 buffered; the remaining 2 overflowed.
    EXPECT_EQ(memory.bufferOverflows(), 2u);
    EXPECT_EQ(memory.served(), 5u);
}

TEST(SimBankedMemory, ReportsGuardZeroMakespan)
{
    EventQueue eq;
    BankedMemory memory(eq, "mem", {});
    EXPECT_DOUBLE_EQ(memory.utilization(0), 0.0);
    EXPECT_DOUBLE_EQ(memory.meanQueue(0), 0.0);
}

TEST(SimBankedMemoryDeath, MalformedConfigIsFatal)
{
    EventQueue eq;
    BankedMemoryConfig no_banks;
    no_banks.banks = 0;
    EXPECT_DEATH(BankedMemory(eq, "mem", no_banks),
                 "at least one bank");
    BankedMemoryConfig free_service;
    free_service.cycles_per_request = 0;
    EXPECT_DEATH(BankedMemory(eq, "mem", free_service),
                 "at least one tick per request");
}

TEST(SimTransferChannels, UtilizationGuardsZeroMakespan)
{
    // The regression the refactor must not lose: utilization of an
    // empty run is 0.0, never a division by zero.
    EventQueue eq;
    TransferChannels channels(eq, 4);
    EXPECT_DOUBLE_EQ(channels.utilization(0), 0.0);
    EXPECT_DOUBLE_EQ(channels.meanQueue(0), 0.0);
    EXPECT_EQ(channels.transfers(), 0u);
}

TEST(SimTransferChannels, SurfacesPortContentionStats)
{
    EventQueue eq;
    TransferChannels channels(eq, 1);
    std::vector<int> order;
    eq.schedule(0, [&]() {
        for (int id = 0; id < 3; ++id)
            channels.transfer(10, 10,
                              [&, id]() { order.push_back(id); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(channels.transfers(), 3u);
    EXPECT_EQ(channels.conflicts(), 2u);
    EXPECT_EQ(channels.stallTicks(), 30u);  // 10 + 20
    EXPECT_EQ(channels.peakQueue(), 2u);
    EXPECT_EQ(channels.busyTicks(), 30u);
    EXPECT_DOUBLE_EQ(channels.utilization(30), 1.0);
}

} // namespace
} // namespace sim
} // namespace qmh
