/** @file Monte-Carlo validation of concatenated error correction. */

#include <gtest/gtest.h>

#include "ecc/montecarlo.hh"

namespace qmh {
namespace ecc {
namespace {

TEST(EcMonteCarlo, AnalyticQuadraticSuppression)
{
    const EcMonteCarlo mc(Code::steane());
    // Level-1 logical rate ~ A p^2: quartering p cuts the rate ~16x.
    const double hi = mc.analytic(1, 1e-3);
    const double lo = mc.analytic(1, 0.25e-3);
    EXPECT_NEAR(hi / lo, 16.0, 1.0);
}

TEST(EcMonteCarlo, AnalyticDoubleExponentialWithLevel)
{
    const EcMonteCarlo mc(Code::steane());
    const double p0 = 1e-3;
    const double l1 = mc.analytic(1, p0);
    const double l2 = mc.analytic(2, p0);
    // Level 2 rate ~ (level-1 rate)^2 x combinatorial factor.
    EXPECT_LT(l2, l1 * l1 * 50.0);
    EXPECT_GT(l2, l1 * l1 / 50.0);
}

TEST(EcMonteCarlo, McMatchesAnalyticWithinError)
{
    const EcMonteCarlo mc(Code::steane());
    Random rng(101);
    const double p0 = 5e-3;
    const auto est = mc.estimate(1, p0, 200000, rng);
    const double expected = mc.analytic(1, p0);
    EXPECT_NEAR(est.rate, expected,
                5.0 * est.std_error + 0.1 * expected);
}

TEST(EcMonteCarlo, McLevel2Suppressed)
{
    const EcMonteCarlo mc(Code::baconShor());
    Random rng(202);
    // Probe below the model's pseudo-threshold (~6.5e-3 for the
    // 18-location Bacon-Shor block) so encoding actually helps.
    const double p0 = 3e-3;
    ASSERT_LT(p0, mc.pseudoThreshold());
    const auto l1 = mc.estimate(1, p0, 60000, rng);
    const auto l2 = mc.estimate(2, p0, 60000, rng);
    EXPECT_LT(l2.rate, l1.rate);
}

TEST(EcMonteCarlo, PseudoThresholdIsFixedPoint)
{
    for (const auto kind :
         {CodeKind::Steane713, CodeKind::BaconShor913}) {
        const EcMonteCarlo mc(Code::byKind(kind));
        const double pth = mc.pseudoThreshold();
        EXPECT_GT(pth, 1e-5);
        EXPECT_LT(pth, 0.5);
        EXPECT_NEAR(mc.analytic(1, pth), pth, 0.05 * pth);
        // Below threshold encoding helps; above it hurts.
        EXPECT_LT(mc.analytic(1, pth / 10.0), pth / 10.0);
        EXPECT_GT(mc.analytic(1, pth * 5.0), pth * 5.0);
    }
}

TEST(EcMonteCarlo, DeterministicUnderSeed)
{
    const EcMonteCarlo mc(Code::steane());
    Random a(7), b(7);
    const auto ra = mc.estimate(1, 1e-2, 5000, a);
    const auto rb = mc.estimate(1, 1e-2, 5000, b);
    EXPECT_EQ(ra.failures, rb.failures);
}

TEST(EcMonteCarlo, MoreNoiseLocationsRaiseRate)
{
    const EcMonteCarlo lean(Code::steane(), 1.0);
    const EcMonteCarlo noisy(Code::steane(), 4.0);
    EXPECT_GT(noisy.analytic(1, 1e-3), lean.analytic(1, 1e-3));
    EXPECT_LT(noisy.pseudoThreshold(), lean.pseudoThreshold());
}

} // namespace
} // namespace ecc
} // namespace qmh
