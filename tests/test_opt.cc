/** @file Unit and property tests for the opt:: optimizer stack. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "api/grid.hh"
#include "opt/cached_sweep.hh"
#include "opt/frontier.hh"
#include "opt/result_cache.hh"

namespace qmh {
namespace opt {
namespace {

std::string
csvOf(const sweep::ResultTable &table)
{
    std::ostringstream os;
    table.writeCsv(os);
    return os.str();
}

std::string
tempPath(const char *name)
{
    const auto path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

TEST(SpecSeed, IsAFunctionOfTheSpecAlone)
{
    const auto seed = specSeed(42, "experiment=cache n=64");
    EXPECT_EQ(seed, specSeed(42, "experiment=cache n=64"));
    EXPECT_NE(seed, specSeed(43, "experiment=cache n=64"));
    EXPECT_NE(seed, specSeed(42, "experiment=cache n=65"));
}

TEST(CellTags, RoundTripEveryAlternative)
{
    const sweep::Cell cells[] = {
        sweep::Cell(std::string("text, with \"quotes\"\n")),
        sweep::Cell(0.1), sweep::Cell(-0.0),
        sweep::Cell(std::int64_t(-7)),
        sweep::Cell(std::uint64_t(18446744073709551615ULL))};
    for (const auto &cell : cells) {
        const auto back =
            sweep::Cell::fromTagged(cell.typeTag(), cell.toString());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->typeTag(), cell.typeTag());
        EXPECT_EQ(back->toString(), cell.toString());
    }
    EXPECT_FALSE(sweep::Cell::fromTagged('i', "12abc").has_value());
    EXPECT_FALSE(sweep::Cell::fromTagged('u', "-1").has_value());
    EXPECT_FALSE(sweep::Cell::fromTagged('x', "1").has_value());
}

TEST(ResultCache, InMemoryInsertAndLookup)
{
    ResultCache cache;
    EXPECT_FALSE(cache.backed());
    EXPECT_EQ(cache.lookup("k"), nullptr);
    EXPECT_TRUE(cache.insert("k", 7, {sweep::Cell(1.5)}));
    EXPECT_FALSE(cache.insert("k", 7, {sweep::Cell(9.9)}));
    const auto *hit = cache.lookup("k");
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->seed, 7u);
    EXPECT_EQ(hit->row.at(0).toString(), "1.5");
    EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, PersistsAndReloadsJsonl)
{
    const auto path = tempPath("opt_cache_roundtrip.jsonl");
    const std::string key = "experiment=cache n=64";
    const std::string nasty = "experiment=cache workload=x\"y,z";
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, 42), "");
        cache.insert(key, specSeed(42, key),
                     {sweep::Cell("Steane [[7,1,3]]"), sweep::Cell(0.1),
                      sweep::Cell(std::int64_t(-3)),
                      sweep::Cell(std::uint64_t(11))});
        cache.insert(nasty, specSeed(42, nasty),
                     {sweep::Cell("line\nbreak\tand \"quotes\"")});
    }
    // Every line of the backing file must be standalone JSON.
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
    EXPECT_EQ(lines, 3u);  // header + two entries

    ResultCache warm;
    ASSERT_EQ(warm.open(path, 42), "");
    EXPECT_EQ(warm.size(), 2u);
    const auto *hit = warm.lookup(key);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->seed, specSeed(42, key));
    ASSERT_EQ(hit->row.size(), 4u);
    EXPECT_EQ(hit->row[0].toString(), "Steane [[7,1,3]]");
    EXPECT_EQ(hit->row[1].typeTag(), 'd');
    EXPECT_EQ(hit->row[1].toString(), "0.1");
    EXPECT_EQ(hit->row[2].typeTag(), 'i');
    EXPECT_EQ(hit->row[3].typeTag(), 'u');
    const auto *other = warm.lookup(nasty);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->row[0].toString(),
              "line\nbreak\tand \"quotes\"");
}

TEST(ResultCache, RefusesForeignAndMismatchedFiles)
{
    const auto path = tempPath("opt_cache_bad.jsonl");
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, 1), "");
        cache.insert("k", specSeed(1, "k"), {sweep::Cell(1.0)});
    }
    ResultCache wrong_seed;
    EXPECT_NE(wrong_seed.open(path, 2), "");

    const auto foreign = tempPath("opt_cache_foreign.jsonl");
    std::ofstream(foreign) << "{\"not\":\"a cache\"}\n";
    ResultCache not_ours;
    EXPECT_NE(not_ours.open(foreign, 1), "");

    const auto corrupt = tempPath("opt_cache_corrupt.jsonl");
    {
        std::ifstream src(path);
        std::ofstream dst(corrupt);
        std::string line;
        std::getline(src, line);
        dst << line << "\n" << "{\"spec\":oops}\n";
    }
    ResultCache truncated;
    EXPECT_NE(truncated.open(corrupt, 1), "");

    // A cache opened once cannot be re-pointed.
    ResultCache once;
    ASSERT_EQ(once.open(path, 1), "");
    EXPECT_NE(once.open(path, 1), "");

    // A directory must be refused up front, not treated as an empty
    // cache that silently never persists anything.
    ResultCache dir;
    EXPECT_NE(dir.open(::testing::TempDir(), 1), "");
}

TEST(ResultCache, StaleEntryIsRepairedNotShadowedForever)
{
    // An entry written before a schema change (wrong row width) must
    // be re-simulated once and then *replaced* — otherwise it forces
    // a re-simulation on every future run while the file pretends to
    // be warm.
    const auto path = tempPath("opt_cache_stale.jsonl");
    api::SpecGrid grid;
    grid.base = api::parseSpec("experiment=bandwidth").spec;
    grid.axis("blocks", {"10", "20"});
    const auto specs = grid.expand();
    sweep::SweepRunner runner({.threads = 2});
    const auto key = api::printSpec(specs.front());
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        cache.insert(key,
                     specSeed(runner.options().base_seed, key),
                     {sweep::Cell("stale")});  // wrong width
        const auto outcome = runSpecSweepCached(runner, specs, &cache);
        EXPECT_EQ(outcome.simulated, specs.size());  // stale = miss
    }
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        const auto *hit = cache.lookup(key);
        ASSERT_NE(hit, nullptr);
        EXPECT_GT(hit->row.size(), 1u);  // the repaired row won
        const auto outcome = runSpecSweepCached(runner, specs, &cache);
        EXPECT_EQ(outcome.simulated, 0u);
    }
}

TEST(ResultCache, SortedKeysAreAnOrderedSnapshot)
{
    ResultCache cache;
    cache.insert("m", 1, {sweep::Cell(1.0)});
    cache.insert("a", 2, {sweep::Cell(2.0)});
    cache.insert("z", 3, {sweep::Cell(3.0)});
    cache.insert("b", 4, {sweep::Cell(4.0)});
    const std::vector<std::string> expect = {"a", "b", "m", "z"};
    EXPECT_EQ(cache.sortedKeys(), expect);
}

TEST(ResultCache, CompactIsByteIdenticalAcrossInsertHistories)
{
    // Determinism regression: the persisted cache must be a function
    // of its *contents*, never of hash-map layout or insertion
    // history. Build the same cache two ways — different insert
    // orders, one with a superseded upsert line — compact both, and
    // require the files to match byte for byte.
    const auto path_a = tempPath("opt_cache_compact_a.jsonl");
    const auto path_b = tempPath("opt_cache_compact_b.jsonl");
    const std::vector<std::string> keys = {
        "experiment=cache n=64", "experiment=cache n=128",
        "experiment=cache n=256", "experiment=cache n=512"};

    ResultCache a;
    ASSERT_EQ(a.open(path_a, 42), "");
    for (const auto &key : keys)
        a.insert(key, specSeed(42, key), {sweep::Cell(0.5)});
    ASSERT_EQ(a.compact(), "");

    ResultCache b;
    ASSERT_EQ(b.open(path_b, 42), "");
    for (auto it = keys.rbegin(); it != keys.rend(); ++it)
        b.insert(*it, specSeed(42, *it), {sweep::Cell("stale")});
    // Repair every entry; the appended duplicates must vanish.
    for (const auto &key : keys)
        b.upsert(key, specSeed(42, key), {sweep::Cell(0.5)});
    ASSERT_EQ(b.compact(), "");

    const auto bytes = fileBytes(path_a);
    EXPECT_FALSE(bytes.empty());
    EXPECT_EQ(bytes, fileBytes(path_b));

    // The compacted file is still a valid cache and still appendable.
    ResultCache warm;
    ASSERT_EQ(warm.open(path_a, 42), "");
    EXPECT_EQ(warm.size(), keys.size());
    for (const auto &key : keys) {
        const auto *hit = warm.lookup(key);
        ASSERT_NE(hit, nullptr);
        EXPECT_EQ(hit->seed, specSeed(42, key));
        EXPECT_EQ(hit->row.at(0).toString(), "0.5");
    }
    warm.insert("experiment=cache n=1024",
                specSeed(42, "experiment=cache n=1024"),
                {sweep::Cell(0.25)});
    ResultCache again;
    ASSERT_EQ(again.open(path_a, 42), "");
    EXPECT_EQ(again.size(), keys.size() + 1);
}

TEST(ResultCache, CompactRequiresABackingFile)
{
    ResultCache cache;
    cache.insert("k", 1, {sweep::Cell(1.0)});
    EXPECT_NE(cache.compact(), "");
}

std::vector<api::ExperimentSpec>
montecarloSpecs()
{
    api::SpecGrid grid;
    grid.base =
        api::parseSpec("experiment=montecarlo trials=300 level=1")
            .spec;
    grid.axis("p0", {"0.0001", "0.001"});
    grid.axis("code", {"steane", "bacon-shor"});
    return grid.expand();
}

TEST(CachedSweep, WarmRunReplaysColdRowsBitIdentically)
{
    const auto path = tempPath("opt_cache_replay.jsonl");
    const auto specs = montecarloSpecs();

    sweep::SweepRunner runner({.threads = 2});
    std::string cold_csv;
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        const auto cold = runSpecSweepCached(runner, specs, &cache);
        EXPECT_EQ(cold.simulated, specs.size());
        EXPECT_EQ(cold.cached, 0u);
        cold_csv = csvOf(cold.table);
    }
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        EXPECT_EQ(cache.size(), specs.size());
        const auto warm = runSpecSweepCached(runner, specs, &cache);
        EXPECT_EQ(warm.simulated, 0u);
        EXPECT_EQ(warm.cached, specs.size());
        EXPECT_EQ(csvOf(warm.table), cold_csv);
    }
}

TEST(CachedSweep, RowsAreIndependentOfThreadCountAndBatchOrder)
{
    const auto specs = montecarloSpecs();
    sweep::SweepRunner one({.threads = 1});
    sweep::SweepRunner many({.threads = 4});
    const auto a = runSpecSweepCached(one, specs, nullptr);
    const auto b = runSpecSweepCached(many, specs, nullptr);
    EXPECT_EQ(csvOf(a.table), csvOf(b.table));

    // Spec-addressed seeding: the same spec must produce the same row
    // when evaluated from a differently ordered (and smaller) batch —
    // the property index-addressed runSpecSweep does not have, and
    // the one that makes cached replay sound.
    std::vector<api::ExperimentSpec> reversed(specs.rbegin(),
                                              specs.rend());
    const auto c = runSpecSweepCached(many, reversed, nullptr);
    const auto spec_col = *a.table.findColumn("spec");
    for (std::size_t r = 0; r < specs.size(); ++r) {
        const std::size_t rr = specs.size() - 1 - r;
        for (std::size_t col = 0; col < a.table.columns(); ++col)
            EXPECT_EQ(a.table.cell(r, col).toString(),
                      c.table.cell(rr, col).toString())
                << a.table.cell(r, spec_col).toString();
    }
}

TEST(CachedSweep, DuplicateSpecsEvaluateOnce)
{
    auto specs = montecarloSpecs();
    const auto unique_points = specs.size();
    specs.push_back(specs.front());
    specs.push_back(specs.front());
    sweep::SweepRunner runner({.threads = 2});
    const auto outcome = runSpecSweepCached(runner, specs, nullptr);
    EXPECT_EQ(outcome.simulated, unique_points);
    EXPECT_EQ(outcome.cached, 2u);
    for (std::size_t col = 0; col < outcome.table.columns(); ++col) {
        EXPECT_EQ(outcome.table.cell(0, col).toString(),
                  outcome.table.cell(unique_points, col).toString());
        EXPECT_EQ(outcome.table.cell(0, col).toString(),
                  outcome.table.cell(unique_points + 1, col).toString());
    }
}

TEST(CachedSweep, RowLimitCutsADeterministicPrefix)
{
    const auto specs = montecarloSpecs();
    sweep::SweepRunner runner({.threads = 4});
    const auto full = runSpecSweepCached(runner, specs, nullptr);
    ASSERT_EQ(full.table.rows(), specs.size());
    EXPECT_FALSE(full.cancelled);

    CachedSweepControl control;
    control.row_limit = 2;
    const auto cut =
        runSpecSweepCached(runner, specs, nullptr, control);
    EXPECT_TRUE(cut.cancelled);
    EXPECT_EQ(cut.simulated, 2u);
    ASSERT_EQ(cut.table.rows(), 2u);
    // The cut result is exactly the leading rows of the full sweep,
    // bit for bit — the in-flight points beyond the limit were
    // discarded, not reordered in.
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < full.table.columns(); ++c)
            EXPECT_EQ(cut.table.cell(r, c).toString(),
                      full.table.cell(r, c).toString());
}

TEST(CachedSweep, OnRowObservesAndCancels)
{
    const auto specs = montecarloSpecs();
    sweep::SweepRunner runner({.threads = 2});
    std::vector<std::size_t> seen;
    CachedSweepControl control;
    control.on_row = [&seen, &specs](std::size_t done,
                                     std::size_t total) {
        EXPECT_EQ(total, specs.size());
        seen.push_back(done);
        return done < 3;  // cancel after the third row
    };
    const auto outcome =
        runSpecSweepCached(runner, specs, nullptr, control);
    EXPECT_EQ(seen, (std::vector<std::size_t>{1, 2, 3}));
    EXPECT_TRUE(outcome.cancelled);
    EXPECT_EQ(outcome.table.rows(), 3u);
}

TEST(CachedSweep, CancelledRunCachesOnlyTheIncorporatedPrefix)
{
    // Cache content must be a function of the incorporated prefix
    // alone: points that were in flight when the cutoff hit are
    // never upserted, so a warm rerun of the same limited sweep is
    // all hits and a rerun of the full sweep simulates exactly the
    // tail.
    const auto path = tempPath("opt_cache_cutoff.jsonl");
    const auto specs = montecarloSpecs();
    sweep::SweepRunner runner({.threads = 4});
    CachedSweepControl control;
    control.row_limit = 2;
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        const auto cold =
            runSpecSweepCached(runner, specs, &cache, control);
        EXPECT_EQ(cold.simulated, 2u);
    }
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        EXPECT_EQ(cache.size(), 2u);
        const auto warm =
            runSpecSweepCached(runner, specs, &cache, control);
        EXPECT_EQ(warm.simulated, 0u);
        EXPECT_EQ(warm.cached, 2u);
        const auto rest = runSpecSweepCached(runner, specs, &cache);
        EXPECT_EQ(rest.simulated, specs.size() - 2);
        EXPECT_EQ(rest.cached, 2u);
    }
}

TEST(Frontier, LatticeIsTheCoarseGridPlusDyadicMidpoints)
{
    const FrontierAxis real{"l1_fraction", 0.25, 1.0, 3};
    const auto lattice = frontierAxisLattice(real, false, 2);
    ASSERT_EQ(lattice.size(), 9u);
    EXPECT_EQ(lattice.front(), 0.25);
    EXPECT_EQ(lattice.back(), 1.0);
    for (std::size_t i = 0; i + 1 < lattice.size(); ++i)
        EXPECT_LT(lattice[i], lattice[i + 1]);

    const FrontierAxis ints{"transfers", 2, 16, 3};
    const auto int_lattice = frontierAxisLattice(ints, true, 10);
    for (const double v : int_lattice)
        EXPECT_EQ(v, std::floor(v));
    // Depth 10 far exceeds what [2, 16] can absorb; integer rounding
    // must terminate the refinement instead of duplicating values.
    EXPECT_LE(int_lattice.size(), 15u);
}

TEST(Frontier, ValidationCatchesBadConfigurations)
{
    const auto base = api::parseSpec("experiment=hierarchy").spec;
    FrontierOptions options;
    options.objective = "mean_adder_speedup";
    EXPECT_FALSE(validateFrontier(base, {}, options).empty());
    EXPECT_FALSE(
        validateFrontier(base, {{"bogus", 0, 1, 3}}, options).empty());
    EXPECT_FALSE(
        validateFrontier(base, {{"policy", 0, 1, 3}}, options).empty());
    EXPECT_FALSE(
        validateFrontier(base, {{"l1_fraction", 0.8, 0.2, 3}}, options)
            .empty());
    FrontierOptions bad_objective = options;
    bad_objective.objective = "hit_rate";  // a cache column
    EXPECT_FALSE(
        validateFrontier(base, {{"l1_fraction", 0.2, 0.8, 3}},
                         bad_objective)
            .empty());
    FrontierOptions deep = options;
    deep.max_depth = 20;  // 64 * 2^20 + 1 lattice values: rejected
    EXPECT_FALSE(
        validateFrontier(base, {{"l1_fraction", 0.0, 1.0, 65}}, deep)
            .empty());
    // The same depth is fine on an integer axis with a narrow range:
    // the lattice saturates at the integer spacing.
    EXPECT_TRUE(
        validateFrontier(base, {{"transfers", 2, 16, 3}}, deep)
            .empty());
    EXPECT_TRUE(
        validateFrontier(base, {{"l1_fraction", 0.2, 0.8, 3}}, options)
            .empty());
}

/**
 * The exhaustive-mode property from the issue: with frontier = 0 and
 * a budget covering the whole lattice, the adaptive search must
 * enumerate exactly the brute-force SpecGrid over the per-axis
 * lattices and return its optimum.
 */
TEST(Frontier, ExhaustiveBudgetEqualsBruteForce)
{
    const auto base = api::parseSpec("experiment=bandwidth").spec;
    const FrontierAxis util{"utilization", 0.25, 1.0, 3};
    const FrontierAxis blocks{"blocks", 10, 80, 3};
    FrontierOptions options;
    options.objective = "required_draper_qps";
    options.max_depth = 2;
    options.budget = 10000;
    options.frontier = 0;  // refine everything: exhaustive mode

    api::SpecGrid brute;
    brute.base = base;
    std::vector<std::string> util_values;
    for (const double v :
         frontierAxisLattice(util, false, options.max_depth))
        util_values.push_back(frontierAxisValueText(v, false));
    std::vector<std::string> block_values;
    for (const double v :
         frontierAxisLattice(blocks, true, options.max_depth))
        block_values.push_back(frontierAxisValueText(v, true));
    brute.axis("utilization", util_values);
    brute.axis("blocks", block_values);

    sweep::SweepRunner runner({.threads = 2});
    const auto brute_table =
        runSpecSweepCached(runner, brute.expand(), nullptr).table;
    const auto obj = *brute_table.findColumn("required_draper_qps");
    const auto spec_col = *brute_table.findColumn("spec");
    double brute_best = -1.0;
    std::string brute_best_key;
    for (std::size_t r = 0; r < brute_table.rows(); ++r) {
        const double v = *brute_table.cell(r, obj).asNumber();
        if (v > brute_best) {
            brute_best = v;
            brute_best_key = brute_table.cell(r, spec_col).toString();
        }
    }

    const auto found =
        frontierSearch(runner, base, {util, blocks}, options, nullptr);
    EXPECT_EQ(found.evaluated, brute_table.rows());
    EXPECT_EQ(found.simulated, brute_table.rows());
    EXPECT_EQ(found.rounds > 1, true);
    EXPECT_DOUBLE_EQ(found.best_objective, brute_best);
    EXPECT_EQ(found.best_key, brute_best_key);
}

/**
 * The acceptance property: on the reference hierarchy design space
 * the default greedy frontier reaches the brute-force optimum with
 * strictly fewer simulated points than the exhaustive sweep.
 */
TEST(Frontier, GreedySearchReachesBruteOptimumWithFewerPoints)
{
    const auto base =
        api::parseSpec("experiment=hierarchy adders=60 n=64").spec;
    const FrontierAxis fraction{"l1_fraction", 0.2, 0.8, 3};
    const FrontierAxis transfers{"transfers", 2, 16, 3};
    FrontierOptions options;
    options.objective = "mean_adder_speedup";
    options.max_depth = 2;
    options.budget = 40;
    options.frontier = 3;

    api::SpecGrid brute;
    brute.base = base;
    std::vector<std::string> fraction_values;
    for (const double v :
         frontierAxisLattice(fraction, false, options.max_depth))
        fraction_values.push_back(frontierAxisValueText(v, false));
    std::vector<std::string> transfer_values;
    for (const double v :
         frontierAxisLattice(transfers, true, options.max_depth))
        transfer_values.push_back(frontierAxisValueText(v, true));
    brute.axis("l1_fraction", fraction_values);
    brute.axis("transfers", transfer_values);

    sweep::SweepRunner runner({.threads = 2});
    const auto brute_table =
        runSpecSweepCached(runner, brute.expand(), nullptr).table;
    const auto obj = *brute_table.findColumn("mean_adder_speedup");
    double brute_best = -1.0;
    for (std::size_t r = 0; r < brute_table.rows(); ++r)
        brute_best =
            std::max(brute_best, *brute_table.cell(r, obj).asNumber());

    const auto found = frontierSearch(runner, base,
                                      {fraction, transfers}, options,
                                      nullptr);
    EXPECT_DOUBLE_EQ(found.best_objective, brute_best);
    EXPECT_LT(found.simulated, brute_table.rows());
}

TEST(Frontier, ProgressStreamsMonotonicallyAndObservesEveryPoint)
{
    const auto base = api::parseSpec("experiment=bandwidth").spec;
    const std::vector<FrontierAxis> axes = {
        {"utilization", 0.25, 1.0, 3}, {"blocks", 10, 80, 3}};
    FrontierOptions options;
    options.objective = "required_draper_qps";
    options.max_depth = 2;
    options.budget = 30;

    std::size_t calls = 0;
    std::size_t last_evaluated = 0;
    options.on_progress = [&](const FrontierProgress &p) {
        ++calls;
        EXPECT_GE(p.round, 1u);
        EXPECT_GE(p.evaluated, last_evaluated);
        EXPECT_LE(p.round_done, p.round_total);
        last_evaluated = p.evaluated;
        return true;
    };
    sweep::SweepRunner runner({.threads = 2});
    const auto found =
        frontierSearch(runner, base, axes, options, nullptr);
    EXPECT_FALSE(found.cancelled);
    EXPECT_EQ(calls, found.evaluated);
    EXPECT_EQ(last_evaluated, found.evaluated);

    // A pure observer does not change the search: same table as the
    // callback-free run.
    FrontierOptions plain = options;
    plain.on_progress = nullptr;
    const auto reference =
        frontierSearch(runner, base, axes, plain, nullptr);
    EXPECT_EQ(csvOf(found.table), csvOf(reference.table));
}

TEST(Frontier, ProgressCallbackCancelsDeterministically)
{
    const auto base = api::parseSpec("experiment=bandwidth").spec;
    const std::vector<FrontierAxis> axes = {
        {"utilization", 0.25, 1.0, 3}, {"blocks", 10, 80, 3}};
    FrontierOptions options;
    options.objective = "required_draper_qps";
    options.max_depth = 2;
    options.budget = 30;

    constexpr std::size_t stop_after = 13;  // mid-round, on purpose
    options.on_progress = [](const FrontierProgress &p) {
        return p.evaluated < stop_after;
    };
    sweep::SweepRunner one({.threads = 1});
    sweep::SweepRunner many({.threads = 4});
    const auto a = frontierSearch(one, base, axes, options, nullptr);
    const auto b = frontierSearch(many, base, axes, options, nullptr);
    EXPECT_TRUE(a.cancelled);
    EXPECT_TRUE(b.cancelled);
    EXPECT_EQ(a.evaluated, stop_after);
    // Cancellation cuts in incorporation order, so the search is as
    // thread-count-independent cancelled as it is when it finishes.
    EXPECT_EQ(a.evaluated, b.evaluated);
    EXPECT_EQ(a.best_key, b.best_key);
    EXPECT_EQ(csvOf(a.table), csvOf(b.table));
}

TEST(Frontier, WarmCacheRerunSimulatesNothingAndMatches)
{
    const auto path = tempPath("opt_frontier_warm.jsonl");
    const auto base = api::parseSpec("experiment=bandwidth").spec;
    const std::vector<FrontierAxis> axes = {
        {"utilization", 0.25, 1.0, 3}, {"blocks", 10, 80, 3}};
    FrontierOptions options;
    options.objective = "required_draper_qps";
    options.max_depth = 2;
    options.budget = 30;

    sweep::SweepRunner runner({.threads = 2});
    std::string cold_csv;
    std::size_t cold_evaluated = 0;
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        const auto cold =
            frontierSearch(runner, base, axes, options, &cache);
        EXPECT_GT(cold.simulated, 0u);
        cold_csv = csvOf(cold.table);
        cold_evaluated = cold.evaluated;
    }
    {
        ResultCache cache;
        ASSERT_EQ(cache.open(path, runner.options().base_seed), "");
        const auto warm =
            frontierSearch(runner, base, axes, options, &cache);
        EXPECT_EQ(warm.simulated, 0u);
        EXPECT_EQ(warm.cached, warm.evaluated);
        EXPECT_EQ(warm.evaluated, cold_evaluated);
        EXPECT_EQ(csvOf(warm.table), cold_csv);
    }
}

} // namespace
} // namespace opt
} // namespace qmh
