/** @file Interconnect tests: teleport, transfer (Table 3), bandwidth
 * (Fig. 6b) and the mesh all-to-all. */

#include <gtest/gtest.h>

#include "net/bandwidth.hh"
#include "net/mesh.hh"
#include "net/teleport.hh"
#include "net/transfer.hh"

namespace qmh {
namespace net {
namespace {

const iontrap::Params params = iontrap::Params::future();

TEST(Teleport, ArrivalEcDominates)
{
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const auto code = ecc::Code::byKind(kind);
        for (ecc::Level level = 1; level <= 2; ++level) {
            const TeleportModel model(code, level, params);
            EXPECT_GT(model.teleportTime(),
                      code.ecTime(level, params));
            EXPECT_LT(model.transportTime(),
                      0.5 * code.ecTime(level, params))
                << "transport should be cheap vs EC";
        }
    }
}

TEST(Teleport, NoMemoryWall)
{
    // Paper Section 6: a communication step does not exceed a gate
    // step (gate + EC), so communication hides behind computation.
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const auto code = ecc::Code::byKind(kind);
        const TeleportModel model(code, 2, params);
        EXPECT_LE(model.teleportTime(),
                  1.1 * code.gateStepTime(2, params));
    }
}

TEST(Teleport, BaconShorTransportSlower)
{
    const TeleportModel steane(ecc::Code::steane(), 2, params);
    const TeleportModel bs(ecc::Code::baconShor(), 2, params);
    // More data ions to shuttle (81 vs 49).
    EXPECT_GT(bs.transportTime(), steane.transportTime());
}

TEST(Transfer, DiagonalIsZero)
{
    const TransferNetwork net(params);
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913})
        for (ecc::Level level = 1; level <= 2; ++level)
            EXPECT_EQ(net.transferTime({kind, level}, {kind, level}),
                      0.0);
}

TEST(Transfer, Table3Values)
{
    // Paper Table 3 (values rounded to one digit there).
    const TransferNetwork net(params);
    const Encoding s1{ecc::CodeKind::Steane713, 1};
    const Encoding s2{ecc::CodeKind::Steane713, 2};
    const Encoding b1{ecc::CodeKind::BaconShor913, 1};
    const Encoding b2{ecc::CodeKind::BaconShor913, 2};
    EXPECT_NEAR(net.transferTime(s1, s2), 0.6, 0.05);   // paper 0.6
    EXPECT_NEAR(net.transferTime(s2, s1), 1.3, 0.05);   // paper 1.3
    EXPECT_NEAR(net.transferTime(s1, b1), 0.016, 0.005);// paper 0.02
    EXPECT_NEAR(net.transferTime(b1, s1), 0.011, 0.005);// paper 0.01
    EXPECT_NEAR(net.transferTime(s1, b2), 0.21, 0.02);  // paper 0.2
    EXPECT_NEAR(net.transferTime(b1, s2), 0.61, 0.11);  // paper 0.5
    EXPECT_NEAR(net.transferTime(s2, b2), 1.5, 0.1);    // paper 1.5
    EXPECT_NEAR(net.transferTime(b2, s2), 1.03, 0.15);  // paper 0.9
    EXPECT_NEAR(net.transferTime(s2, b1), 1.3, 0.05);   // paper 1.3
    EXPECT_NEAR(net.transferTime(b2, s1), 0.44, 0.05);  // paper 0.4
    EXPECT_NEAR(net.transferTime(b2, b1), 0.43, 0.05);  // paper 0.4
}

TEST(Transfer, UpTransfersCheaperThanDown)
{
    // Leaving a level-2 source costs more (cat prep at L2) than
    // landing on a level-2 destination from L1.
    const TransferNetwork net(params);
    for (const auto kind : {ecc::CodeKind::Steane713,
                            ecc::CodeKind::BaconShor913}) {
        const Encoding l1{kind, 1};
        const Encoding l2{kind, 2};
        EXPECT_GT(net.transferTime(l2, l1), net.transferTime(l1, l2));
    }
}

TEST(Transfer, MatrixShape)
{
    const TransferNetwork net(params);
    const std::vector<Encoding> encodings = {
        {ecc::CodeKind::Steane713, 1},
        {ecc::CodeKind::Steane713, 2},
        {ecc::CodeKind::BaconShor913, 1},
        {ecc::CodeKind::BaconShor913, 2}};
    const auto matrix = net.latencyMatrix(encodings);
    ASSERT_EQ(matrix.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_EQ(matrix[i].size(), 4u);
        EXPECT_EQ(matrix[i][i], 0.0);
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_GE(matrix[i][j], 0.0);
    }
}

TEST(Bandwidth, CrossoverAt36Blocks)
{
    // Paper Fig. 6b: the optimal superblock is 36 compute blocks.
    const BandwidthModel model(ecc::Code::steane(), 2, params);
    EXPECT_NEAR(model.crossoverBlocks(), 36u, 1u);
}

TEST(Bandwidth, CrossoverCodeIndependent)
{
    // "immaterial of what error correction code is used".
    // Both demand and supply scale with the gate step, so the
    // crossover moves by at most a block or two between codes and
    // levels (the residual physical-gate constant breaks exact
    // equality).
    const BandwidthModel steane(ecc::Code::steane(), 2, params);
    const BandwidthModel bs(ecc::Code::baconShor(), 2, params);
    EXPECT_NEAR(static_cast<double>(steane.crossoverBlocks()),
                static_cast<double>(bs.crossoverBlocks()), 2.0);
    const BandwidthModel l1(ecc::Code::steane(), 1, params);
    EXPECT_NEAR(static_cast<double>(steane.crossoverBlocks()),
                static_cast<double>(l1.crossoverBlocks()), 2.0);
}

TEST(Bandwidth, SupplySqrtDemandLinear)
{
    const BandwidthModel model(ecc::Code::steane(), 2, params);
    EXPECT_NEAR(model.availablePerSuperblock(64) /
                    model.availablePerSuperblock(16),
                2.0, 1e-9);
    EXPECT_NEAR(model.requiredDraper(64) / model.requiredDraper(16),
                4.0, 1e-9);
}

TEST(Bandwidth, WorstCaseAboveDraper)
{
    const BandwidthModel model(ecc::Code::baconShor(), 2, params);
    for (double b : {4.0, 16.0, 36.0, 80.0})
        EXPECT_GT(model.requiredWorstCase(b), model.requiredDraper(b));
}

TEST(Mesh, HopsAndMeanDistance)
{
    const Mesh mesh(4);
    EXPECT_EQ(mesh.nodes(), 16);
    EXPECT_EQ(mesh.hops(0, 15), 6);
    EXPECT_EQ(mesh.hops(5, 5), 0);
    EXPECT_NEAR(mesh.meanDistance(), 2.0 * 15.0 / 12.0, 1e-9);
}

TEST(Mesh, AllToAllScalesQuadratically)
{
    const Mesh mesh(8);
    const double t1 = mesh.allToAllTime(100, 1.0);
    const double t2 = mesh.allToAllTime(200, 1.0);
    EXPECT_NEAR(t2 / t1, 4.0, 0.1);
    EXPECT_EQ(mesh.allToAllTime(1, 1.0), 0.0);
}

TEST(Mesh, BiggerMeshMovesFaster)
{
    const Mesh small(4), big(16);
    EXPECT_LT(big.allToAllTime(500, 1.0), small.allToAllTime(500, 1.0));
}

} // namespace
} // namespace net
} // namespace qmh
