/** @file Reversible-logic simulator tests. */

#include <gtest/gtest.h>

#include "circuit/reversible.hh"

namespace qmh {
namespace circuit {
namespace {

TEST(ReversibleState, GateSemantics)
{
    ReversibleState st(3);
    st.apply(Instruction::makeOne(GateKind::X, QubitId(0)));
    EXPECT_TRUE(st.get(QubitId(0)));

    // CNOT fires only when control set.
    st.apply(Instruction::makeTwo(GateKind::Cnot, QubitId(0), QubitId(1)));
    EXPECT_TRUE(st.get(QubitId(1)));
    st.apply(Instruction::makeTwo(GateKind::Cnot, QubitId(2), QubitId(1)));
    EXPECT_TRUE(st.get(QubitId(1)));  // control q2 is 0

    // Toffoli needs both controls.
    st.apply(Instruction::makeThree(GateKind::Toffoli, QubitId(0),
                                    QubitId(1), QubitId(2)));
    EXPECT_TRUE(st.get(QubitId(2)));
    // Swap.
    st.set(QubitId(0), false);
    st.apply(Instruction::makeTwo(GateKind::Swap, QubitId(0), QubitId(2)));
    EXPECT_TRUE(st.get(QubitId(0)));
    EXPECT_FALSE(st.get(QubitId(2)));
    // Barrier is a no-op.
    st.apply(Instruction::makeBarrier());
    EXPECT_TRUE(st.get(QubitId(0)));
}

TEST(ReversibleState, IntegerWindows)
{
    ReversibleState st(16);
    st.loadInteger(0xA5, 4, 8);
    EXPECT_EQ(st.readInteger(4, 8), 0xA5u);
    EXPECT_EQ(st.readInteger(0, 4), 0u);
    // Little-endian: bit 0 of the value goes to the lowest qubit.
    EXPECT_TRUE(st.get(QubitId(4)));   // 0xA5 bit0 = 1
    EXPECT_FALSE(st.get(QubitId(5)));  // bit1 = 0
}

TEST(ReversibleState, RunExecutesClassicalProgram)
{
    Program p("inc", 3);
    p.x(QubitId(0));
    p.cnot(QubitId(0), QubitId(1));
    ReversibleState st(3);
    EXPECT_TRUE(st.run(p));
    EXPECT_EQ(st.readInteger(0, 3), 3u);
}

TEST(ReversibleState, RunRejectsQuantumGates)
{
    Program p("q", 2);
    p.x(QubitId(0));
    p.h(QubitId(1));
    ReversibleState st(2);
    EXPECT_FALSE(st.run(p));
    // The classical prefix executed.
    EXPECT_TRUE(st.get(QubitId(0)));
}

TEST(ReversibleStateDeath, OutOfRangePanics)
{
    ReversibleState st(2);
    EXPECT_DEATH(st.get(QubitId(5)), "out of range");
    EXPECT_DEATH(st.loadInteger(1, 1, 9), "window");
    EXPECT_DEATH(st.loadInteger(4, 0, 2), "fit");
}

} // namespace
} // namespace circuit
} // namespace qmh
