/**
 * @file
 * Functional verification of the generated adders: the reversible
 * simulator *proves* b <- a + b on exhaustive small cases and random
 * large cases, for both the Draper carry-lookahead and the ripple
 * baseline, in every uncompute mode.
 */

#include <gtest/gtest.h>

#include "circuit/dag.hh"
#include "circuit/reversible.hh"
#include "common/random.hh"
#include "gen/draper.hh"
#include "gen/ripple.hh"

namespace qmh {
namespace gen {
namespace {

using circuit::QubitId;

enum class AdderKind { Draper, Ripple };

circuit::Program
makeAdder(AdderKind kind, int n, bool keep_carry, AdderLayout *layout)
{
    if (kind == AdderKind::Draper)
        return draperAdder(n, keep_carry, layout);
    return rippleAdder(n, keep_carry, layout);
}

/** Run one addition and check sum, carry and ancilla cleanliness. */
::testing::AssertionResult
checkAddition(const circuit::Program &prog, const AdderLayout &layout,
              std::uint64_t a, std::uint64_t b)
{
    const int n = layout.bits;
    circuit::ReversibleState st(layout.total_qubits);
    st.loadInteger(a, layout.a_offset, n);
    st.loadInteger(b, layout.b_offset, n);
    if (!st.run(prog))
        return ::testing::AssertionFailure() << "non-classical gate";

    const std::uint64_t mask = n == 64 ? ~0ULL : (1ULL << n) - 1;
    const std::uint64_t sum = st.readInteger(layout.b_offset, n);
    if (sum != ((a + b) & mask))
        return ::testing::AssertionFailure()
               << a << "+" << b << " gave " << sum;
    if (st.readInteger(layout.a_offset, n) != a)
        return ::testing::AssertionFailure() << "operand a corrupted";

    if (layout.keeps_carry) {
        const bool carry = st.get(QubitId(layout.carryOutQubit()));
        // For n = 64 the true carry is the unsigned-add overflow.
        const bool expected =
            n < 64 ? ((a + b) >> n) != 0 : (a + b) < a;
        if (carry != expected)
            return ::testing::AssertionFailure() << "carry wrong";
    }
    // Ancilla cleanliness (skip carry-out qubit when kept).
    for (int i = 0; i < n; ++i) {
        if (layout.keeps_carry && i == n - 1)
            continue;
        if (st.get(QubitId(layout.carry_offset + i)))
            return ::testing::AssertionFailure()
                   << "carry ancilla " << i << " dirty";
    }
    for (int i = 0; i < layout.tree_size; ++i)
        if (st.get(QubitId(layout.tree_offset + i)))
            return ::testing::AssertionFailure()
                   << "tree ancilla " << i << " dirty";
    return ::testing::AssertionSuccess();
}

class ExhaustiveSmallAdders
    : public ::testing::TestWithParam<std::tuple<AdderKind, int, bool>>
{};

TEST_P(ExhaustiveSmallAdders, AllInputsCorrect)
{
    const auto [kind, n, keep_carry] = GetParam();
    AdderLayout layout;
    const auto prog = makeAdder(kind, n, keep_carry, &layout);
    for (std::uint64_t a = 0; a < (1ULL << n); ++a)
        for (std::uint64_t b = 0; b < (1ULL << n); ++b)
            ASSERT_TRUE(checkAddition(prog, layout, a, b))
                << "n=" << n << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    UpTo6Bits, ExhaustiveSmallAdders,
    ::testing::Combine(::testing::Values(AdderKind::Draper,
                                         AdderKind::Ripple),
                       ::testing::Values(1, 2, 3, 4, 5, 6),
                       ::testing::Bool()));

class RandomLargeAdders
    : public ::testing::TestWithParam<std::tuple<AdderKind, int>>
{};

TEST_P(RandomLargeAdders, RandomInputsCorrect)
{
    const auto [kind, n] = GetParam();
    AdderLayout layout;
    const auto prog = makeAdder(kind, n, true, &layout);
    Random rng(0xC0FFEE + n);
    for (int trial = 0; trial < 64; ++trial) {
        const std::uint64_t bound = n >= 64 ? 0 : (1ULL << n);
        const std::uint64_t a =
            bound ? rng.uniformInt(bound) : rng.next();
        const std::uint64_t b =
            bound ? rng.uniformInt(bound) : rng.next();
        ASSERT_TRUE(checkAddition(prog, layout, a, b))
            << "n=" << n << " a=" << a << " b=" << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    WideWidths, RandomLargeAdders,
    ::testing::Combine(::testing::Values(AdderKind::Draper,
                                         AdderKind::Ripple),
                       ::testing::Values(7, 8, 13, 16, 23, 32, 48, 64)));

TEST(DraperAdder, ForwardOnlyModeStillAdds)
{
    // CarriesLeftDirty keeps the sum correct; the carry register holds
    // the (deterministic) carry string instead of zero.
    AdderLayout layout;
    const auto prog = draperAdder(16, true, &layout,
                                  UncomputeMode::CarriesLeftDirty);
    Random rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        const auto a = rng.uniformInt(1u << 16);
        const auto b = rng.uniformInt(1u << 16);
        circuit::ReversibleState st(layout.total_qubits);
        st.loadInteger(a, layout.a_offset, 16);
        st.loadInteger(b, layout.b_offset, 16);
        ASSERT_TRUE(st.run(prog));
        EXPECT_EQ(st.readInteger(layout.b_offset, 16),
                  (a + b) & 0xFFFFu);
        // Carry register holds the carry string: bit i = carry out of
        // bits [0..i].
        std::uint64_t carries = 0;
        std::uint64_t c = 0;
        for (int i = 0; i < 16; ++i) {
            const std::uint64_t ai = (a >> i) & 1;
            const std::uint64_t bi = (b >> i) & 1;
            c = (ai & bi) | (ai & c) | (bi & c);
            carries |= c << i;
        }
        EXPECT_EQ(st.readInteger(layout.carry_offset, 16), carries);
        // Tree ancilla must still be clean.
        for (int i = 0; i < layout.tree_size; ++i)
            ASSERT_FALSE(st.get(QubitId(layout.tree_offset + i)));
    }
}

TEST(DraperAdder, BarriersDoNotChangeSemantics)
{
    AdderLayout with_layout, without_layout;
    const auto with = draperAdder(12, true, &with_layout,
                                  UncomputeMode::Full, true);
    const auto without = draperAdder(12, true, &without_layout,
                                     UncomputeMode::Full, false);
    EXPECT_GT(with.size(), without.size());
    EXPECT_EQ(with.gateCount(circuit::GateKind::Toffoli),
              without.gateCount(circuit::GateKind::Toffoli));
    Random rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        const auto a = rng.uniformInt(1u << 12);
        const auto b = rng.uniformInt(1u << 12);
        ASSERT_TRUE(checkAddition(with, with_layout, a, b));
        ASSERT_TRUE(checkAddition(without, without_layout, a, b));
    }
}

TEST(DraperAdder, StructuralCounts)
{
    // ~10n Toffolis for the full adder, ~5n forward-only, and
    // logarithmic round depth (Toffoli depth ~4 log2 n + O(1)).
    AdderLayout layout;
    const auto full = draperAdder(64, true, &layout);
    const auto toffolis =
        full.gateCount(circuit::GateKind::Toffoli);
    EXPECT_GE(toffolis, 550u);
    EXPECT_LE(toffolis, 680u);
    EXPECT_EQ(layout.tree_size, draperTreeSize(64));
    EXPECT_EQ(draperTreeSize(64), 63);
    EXPECT_EQ(draperTreeSize(1), 0);
    EXPECT_EQ(layout.total_qubits, 3 * 64 + 63);

    const auto forward = draperAdder(64, true, nullptr,
                                     UncomputeMode::CarriesLeftDirty);
    EXPECT_LT(forward.gateCount(circuit::GateKind::Toffoli), toffolis);
}

TEST(DraperAdder, LogDepthBeatsRippleLinearDepth)
{
    for (int n : {16, 32, 64}) {
        const auto cla = draperAdder(n, true, nullptr,
                                     UncomputeMode::CarriesLeftDirty,
                                     false);
        const auto rip = rippleAdder(n, true, nullptr);
        circuit::DependencyGraph cla_dag(cla);
        circuit::DependencyGraph rip_dag(rip);
        EXPECT_LT(cla_dag.depth() * 2, rip_dag.depth())
            << "CLA should be much shallower at n=" << n;
    }
}

TEST(DraperAdder, PeakParallelismIsOperandWidth)
{
    const auto prog = draperAdder(64, true, nullptr,
                                  UncomputeMode::CarriesLeftDirty);
    circuit::DependencyGraph dag(prog);
    EXPECT_EQ(dag.maxParallelism(), 64u);
}

TEST(AdderDeath, RejectsZeroWidth)
{
    EXPECT_EXIT(draperAdder(0), ::testing::ExitedWithCode(1), ">= 1");
    EXPECT_EXIT(rippleAdder(0), ::testing::ExitedWithCode(1), ">= 1");
}

} // namespace
} // namespace gen
} // namespace qmh
