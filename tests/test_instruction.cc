/** @file Instruction set unit tests. */

#include <gtest/gtest.h>

#include "circuit/instruction.hh"

namespace qmh {
namespace circuit {
namespace {

TEST(GateKindMeta, ArityTable)
{
    EXPECT_EQ(gateArity(GateKind::X), 1);
    EXPECT_EQ(gateArity(GateKind::H), 1);
    EXPECT_EQ(gateArity(GateKind::Cnot), 2);
    EXPECT_EQ(gateArity(GateKind::Cphase), 2);
    EXPECT_EQ(gateArity(GateKind::Swap), 2);
    EXPECT_EQ(gateArity(GateKind::Toffoli), 3);
    EXPECT_EQ(gateArity(GateKind::Measure), 1);
    EXPECT_EQ(gateArity(GateKind::Barrier), 0);
}

TEST(GateKindMeta, ClassicalSubset)
{
    EXPECT_TRUE(isClassicalGate(GateKind::X));
    EXPECT_TRUE(isClassicalGate(GateKind::Cnot));
    EXPECT_TRUE(isClassicalGate(GateKind::Swap));
    EXPECT_TRUE(isClassicalGate(GateKind::Toffoli));
    EXPECT_TRUE(isClassicalGate(GateKind::Barrier));
    EXPECT_FALSE(isClassicalGate(GateKind::H));
    EXPECT_FALSE(isClassicalGate(GateKind::T));
    EXPECT_FALSE(isClassicalGate(GateKind::Cphase));
    EXPECT_FALSE(isClassicalGate(GateKind::Measure));
}

TEST(Instruction, FactoriesSetOperands)
{
    const auto x = Instruction::makeOne(GateKind::X, QubitId(4));
    EXPECT_EQ(x.arity, 1);
    EXPECT_EQ(x.ops[0], QubitId(4));

    const auto cnot =
        Instruction::makeTwo(GateKind::Cnot, QubitId(1), QubitId(2));
    EXPECT_EQ(cnot.arity, 2);
    EXPECT_EQ(cnot.operands().size(), 2u);

    const auto tof = Instruction::makeThree(GateKind::Toffoli, QubitId(0),
                                            QubitId(1), QubitId(2));
    EXPECT_EQ(tof.arity, 3);

    const auto barrier = Instruction::makeBarrier();
    EXPECT_EQ(barrier.arity, 0);
    EXPECT_TRUE(barrier.operands().empty());
}

TEST(Instruction, ToStringMatchesAssembly)
{
    EXPECT_EQ(Instruction::makeOne(GateKind::H, QubitId(3)).toString(),
              "h q3");
    EXPECT_EQ(Instruction::makeTwo(GateKind::Cphase, QubitId(0),
                                   QubitId(9), 4)
                  .toString(),
              "cphase 4 q0 q9");
    EXPECT_EQ(Instruction::makeThree(GateKind::Toffoli, QubitId(1),
                                     QubitId(2), QubitId(3))
                  .toString(),
              "toffoli q1 q2 q3");
    EXPECT_EQ(Instruction::makeBarrier().toString(), "barrier");
}

TEST(InstructionDeath, WrongArityFactoryPanics)
{
    EXPECT_DEATH(Instruction::makeOne(GateKind::Cnot, QubitId(0)),
                 "not a 1-qubit gate");
    EXPECT_DEATH(Instruction::makeTwo(GateKind::X, QubitId(0),
                                      QubitId(1)),
                 "not a 2-qubit gate");
}

TEST(InstructionDeath, DuplicateOperandsPanic)
{
    EXPECT_DEATH(Instruction::makeTwo(GateKind::Cnot, QubitId(1),
                                      QubitId(1)),
                 "duplicate");
    EXPECT_DEATH(Instruction::makeThree(GateKind::Toffoli, QubitId(1),
                                        QubitId(2), QubitId(1)),
                 "duplicate");
}

} // namespace
} // namespace circuit
} // namespace qmh
