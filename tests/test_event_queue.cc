/** @file Unit tests for the discrete-event kernel. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace qmh {
namespace sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, Priority::Default);
    eq.schedule(5, [&] { order.push_back(3); }, Priority::Late);
    eq.schedule(5, [&] { order.push_back(1); }, Priority::Stat);
    eq.schedule(5, [&] { order.push_back(20); }, Priority::Default);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 20, 3}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, ZeroDelaySelfScheduleRunsSameTick)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 5)
            eq.scheduleAfter(0, again);
    };
    eq.schedule(7, again);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueueDeath, EmptyHandlerPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.schedule(1, EventQueue::Handler{}), "empty handler");
}

TEST(Resource, GrantsUpToCapacity)
{
    EventQueue eq;
    Resource res(eq, "r", 2);
    int granted = 0;
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });  // must wait
    eq.run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(res.inUse(), 2u);
    EXPECT_EQ(res.waiting(), 1u);
    res.release();
    eq.run();
    EXPECT_EQ(granted, 3);
}

TEST(Resource, FifoOrderAmongWaiters)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    std::vector<int> order;
    res.acquire([&] { order.push_back(0); });
    res.acquire([&] { order.push_back(1); });
    res.acquire([&] { order.push_back(2); });
    eq.run();
    res.release();
    eq.run();
    res.release();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(res.grants(), 3u);
}

TEST(ResourceDeath, ReleaseWithoutAcquirePanics)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    EXPECT_DEATH(res.release(), "release without acquire");
}

} // namespace
} // namespace sim
} // namespace qmh
