/** @file Unit tests for the discrete-event kernel. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace qmh {
namespace sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, Priority::Default);
    eq.schedule(5, [&] { order.push_back(3); }, Priority::Late);
    eq.schedule(5, [&] { order.push_back(1); }, Priority::Stat);
    eq.schedule(5, [&] { order.push_back(20); }, Priority::Default);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 20, 3}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, ZeroDelaySelfScheduleRunsSameTick)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 5)
            eq.scheduleAfter(0, again);
    };
    eq.schedule(7, again);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunExecutesEventsExactlyAtLimit)
{
    // The limit is inclusive: "run until time would pass limit" means
    // an event scheduled exactly at the limit still belongs to this
    // run() call, including same-tick events it schedules in turn.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(50, [&] {
        order.push_back(2);
        eq.scheduleAfter(0, [&] { order.push_back(3); });
        eq.scheduleAfter(1, [&] { order.push_back(4); });
    });
    eq.schedule(90, [&] { order.push_back(5); });
    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, RunToLimitAdvancesTimeWithNothingToDo)
{
    // An explicit finite limit is a statement that simulated time
    // passed, so now() lands on the limit even when no event was due;
    // the default run() (drain) never invents time beyond the last
    // executed event.
    EventQueue eq;
    EXPECT_EQ(eq.run(25), 25u);
    EXPECT_EQ(eq.now(), 25u);
    EXPECT_EQ(eq.run(), 25u);
    EXPECT_EQ(eq.now(), 25u);
}

TEST(EventQueue, RunReentryAfterLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(60, [&] { ++fired; });
    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_EQ(fired, 1);
    // A later, smaller limit must not move time backwards or execute
    // anything.
    EXPECT_EQ(eq.run(20), 50u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    // Re-entering with the default limit drains the remainder and
    // leaves now() at the last executed event.
    EXPECT_EQ(eq.run(), 60u);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickStatScheduledDynamicallyStillPrecedesDefault)
{
    // A Stat event scheduled *during* the tick (by a Default handler)
    // must still run before the remaining Default and Late events of
    // that tick: priority outranks insertion order within a tick, so
    // late-scheduled samplers cannot be starved behind state changes
    // that were enqueued earlier.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(1);
        eq.schedule(5, [&] { order.push_back(2); }, Priority::Stat);
    });
    eq.schedule(5, [&] { order.push_back(3); }, Priority::Default);
    eq.schedule(5, [&] { order.push_back(4); }, Priority::Late);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, RunToLimitThenSchedulingAtNowIsLegal)
{
    // After run(limit) advanced time to the limit, the present tick
    // must remain schedulable (only the strict past panics).
    EventQueue eq;
    eq.run(40);
    int fired = 0;
    eq.schedule(40, [&] { ++fired; });
    eq.run(40);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueueDeath, EmptyHandlerPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.schedule(1, EventQueue::Handler{}), "empty handler");
}

TEST(Resource, GrantsUpToCapacity)
{
    EventQueue eq;
    Resource res(eq, "r", 2);
    int granted = 0;
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });  // must wait
    eq.run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(res.inUse(), 2u);
    EXPECT_EQ(res.waiting(), 1u);
    res.release();
    eq.run();
    EXPECT_EQ(granted, 3);
}

TEST(Resource, FifoOrderAmongWaiters)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    std::vector<int> order;
    res.acquire([&] { order.push_back(0); });
    res.acquire([&] { order.push_back(1); });
    res.acquire([&] { order.push_back(2); });
    eq.run();
    res.release();
    eq.run();
    res.release();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(res.grants(), 3u);
}

TEST(ResourceDeath, ReleaseWithoutAcquirePanics)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    EXPECT_DEATH(res.release(), "release without acquire");
}

} // namespace
} // namespace sim
} // namespace qmh
