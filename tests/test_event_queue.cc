/** @file Unit tests for the discrete-event kernel. */

#include <algorithm>
#include <array>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim/event_queue.hh"
#include "sim/resource.hh"

namespace qmh {
namespace sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, Priority::Default);
    eq.schedule(5, [&] { order.push_back(3); }, Priority::Late);
    eq.schedule(5, [&] { order.push_back(1); }, Priority::Stat);
    eq.schedule(5, [&] { order.push_back(20); }, Priority::Default);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 20, 3}));
}

TEST(EventQueue, HandlersCanScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleAfter(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, ZeroDelaySelfScheduleRunsSameTick)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> again = [&] {
        if (++count < 5)
            eq.scheduleAfter(0, again);
    };
    eq.schedule(7, again);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunExecutesEventsExactlyAtLimit)
{
    // The limit is inclusive: "run until time would pass limit" means
    // an event scheduled exactly at the limit still belongs to this
    // run() call, including same-tick events it schedules in turn.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(50, [&] {
        order.push_back(2);
        eq.scheduleAfter(0, [&] { order.push_back(3); });
        eq.scheduleAfter(1, [&] { order.push_back(4); });
    });
    eq.schedule(90, [&] { order.push_back(5); });
    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_EQ(eq.executed(), 3u);
}

TEST(EventQueue, RunToLimitAdvancesTimeWithNothingToDo)
{
    // An explicit finite limit is a statement that simulated time
    // passed, so now() lands on the limit even when no event was due;
    // the default run() (drain) never invents time beyond the last
    // executed event.
    EventQueue eq;
    EXPECT_EQ(eq.run(25), 25u);
    EXPECT_EQ(eq.now(), 25u);
    EXPECT_EQ(eq.run(), 25u);
    EXPECT_EQ(eq.now(), 25u);
}

TEST(EventQueue, RunReentryAfterLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(60, [&] { ++fired; });
    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_EQ(fired, 1);
    // A later, smaller limit must not move time backwards or execute
    // anything.
    EXPECT_EQ(eq.run(20), 50u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    // Re-entering with the default limit drains the remainder and
    // leaves now() at the last executed event.
    EXPECT_EQ(eq.run(), 60u);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SameTickStatScheduledDynamicallyStillPrecedesDefault)
{
    // A Stat event scheduled *during* the tick (by a Default handler)
    // must still run before the remaining Default and Late events of
    // that tick: priority outranks insertion order within a tick, so
    // late-scheduled samplers cannot be starved behind state changes
    // that were enqueued earlier.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] {
        order.push_back(1);
        eq.schedule(5, [&] { order.push_back(2); }, Priority::Stat);
    });
    eq.schedule(5, [&] { order.push_back(3); }, Priority::Default);
    eq.schedule(5, [&] { order.push_back(4); }, Priority::Late);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueue, InsertionOrderBreaksTiesWithinOnePriority)
{
    // Within one (tick, priority) class, dispatch order is insertion
    // order — the contract every queue implementation must reproduce
    // exactly, whatever its internal layout.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(9, [&] { order.push_back(0); }, Priority::Late);
    for (int i = 1; i <= 6; ++i)
        eq.schedule(9, [&, i] { order.push_back(i); });
    eq.schedule(9, [&] { order.push_back(7); }, Priority::Late);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 0, 7}));
}

TEST(EventQueue, DynamicCurrentTickEventsKeepPriorityThenFifo)
{
    // Events scheduled *at the current tick while it is dispatching*
    // join that tick's remaining events in (priority, insertion)
    // order: a later Default lands after pending Defaults, a Late
    // lands after pending Lates, and a Stat jumps ahead of both.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3, [&] {
        order.push_back(1);
        eq.scheduleAfter(0, [&] { order.push_back(4); });
        eq.schedule(3, [&] { order.push_back(6); }, Priority::Late);
        eq.schedule(3, [&] { order.push_back(2); }, Priority::Stat);
    });
    eq.schedule(3, [&] { order.push_back(3); });
    eq.schedule(3, [&] { order.push_back(5); }, Priority::Late);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(EventQueue, MatchesReferenceOrderUnderMixedHorizonStress)
{
    // Contract stress: several hundred events over wildly mixed
    // horizons (same-tick, near, and millions of ticks out) must
    // dispatch in exactly (tick, priority, insertion-order) — the
    // order of a stable sort over the schedule log. Handlers also
    // schedule follow-on events mid-run, covering insertions into
    // already-active regions of the timeline.
    EventQueue eq;
    Random rng(2026);
    const Tick deltas[] = {0,     1,      2,       7,       63,
                           1024,  4097,   65536,   1000000, 33554432,
                           12345, 999983, 5000000, 250000001};
    const Priority prios[] = {Priority::Stat, Priority::Default,
                              Priority::Default, Priority::Default,
                              Priority::Late};

    // (when, prio, seq) -> id, appended in schedule order.
    std::vector<std::tuple<Tick, int, std::uint64_t, int>> log;
    std::vector<int> order;
    int next_id = 0;

    // A same-tick event spawned from inside a handler cannot outrank
    // work that already ran this tick, so a zero-delay spawn is
    // clamped to its parent's priority; every other (delta, priority)
    // combination is fair game for the sort-order comparison.
    std::function<void(int, Priority)> plant = [&](int depth,
                                                   Priority parent) {
        const auto delta =
            deltas[rng.uniformInt(std::size(deltas))];
        auto prio = prios[rng.uniformInt(std::size(prios))];
        if (delta == 0 && prio < parent)
            prio = parent;
        const auto id = next_id++;
        const Tick when = eq.now() + delta;
        const auto spawn = depth > 0 && rng.bernoulli(0.25);
        const auto seq = eq.schedule(
            when,
            [&order, &plant, id, spawn, depth, prio] {
                order.push_back(id);
                if (spawn)
                    plant(depth - 1, prio);
            },
            prio);
        log.emplace_back(when, static_cast<int>(prio), seq, id);
    };
    for (int i = 0; i < 400; ++i)
        plant(3, Priority::Stat);
    eq.run();

    std::stable_sort(log.begin(), log.end());
    std::vector<int> expected;
    expected.reserve(log.size());
    for (const auto &entry : log)
        expected.push_back(std::get<3>(entry));
    ASSERT_EQ(order.size(), log.size());
    EXPECT_EQ(order, expected);
    EXPECT_EQ(eq.executed(), log.size());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, SteadyStateDispatchReusesArenaFrames)
{
    // The no-allocation acceptance pin: a long self-renewing event
    // chain keeps only a couple of events in flight while executing
    // tens of thousands, so the arena must never grow past its first
    // block (frames recycle through the free list) and no handler may
    // spill past the inline closure budget.
    EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void()> chain = [&] {
        if (++fired < 50000)
            eq.scheduleAfter(3, chain);
    };
    eq.schedule(1, chain);
    eq.run();
    EXPECT_EQ(fired, 50000u);
    EXPECT_EQ(eq.arenaBlocks(), 1u);
    EXPECT_EQ(eq.spilledHandlers(), 0u);
}

TEST(EventQueue, OversizedClosuresSpillAndAreCounted)
{
    EventQueue eq;
    std::array<std::uint64_t, 12> payload{};  // 96 B > inline budget
    payload[11] = 7;
    std::uint64_t seen = 0;
    eq.schedule(1, [payload, &seen] { seen = payload[11]; });
    eq.run();
    EXPECT_EQ(seen, 7u);
    EXPECT_EQ(eq.spilledHandlers(), 1u);
}

TEST(EventQueue, RunToLimitThenSchedulingAtNowIsLegal)
{
    // After run(limit) advanced time to the limit, the present tick
    // must remain schedulable (only the strict past panics).
    EventQueue eq;
    eq.run(40);
    int fired = 0;
    eq.schedule(40, [&] { ++fired; });
    eq.run(40);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueueDeath, EmptyHandlerPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.schedule(1, EventQueue::Handler{}), "empty handler");
}

TEST(Resource, GrantsUpToCapacity)
{
    EventQueue eq;
    Resource res(eq, "r", 2);
    int granted = 0;
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });
    res.acquire([&] { ++granted; });  // must wait
    eq.run();
    EXPECT_EQ(granted, 2);
    EXPECT_EQ(res.inUse(), 2u);
    EXPECT_EQ(res.waiting(), 1u);
    res.release();
    eq.run();
    EXPECT_EQ(granted, 3);
}

TEST(Resource, FifoOrderAmongWaiters)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    std::vector<int> order;
    res.acquire([&] { order.push_back(0); });
    res.acquire([&] { order.push_back(1); });
    res.acquire([&] { order.push_back(2); });
    eq.run();
    res.release();
    eq.run();
    res.release();
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(res.grants(), 3u);
}

TEST(ResourceDeath, ReleaseWithoutAcquirePanics)
{
    EventQueue eq;
    Resource res(eq, "r", 1);
    EXPECT_DEATH(res.release(), "release without acquire");
}

} // namespace
} // namespace sim
} // namespace qmh
