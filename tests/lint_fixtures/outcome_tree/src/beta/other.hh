// Declares ambiguousThing with a different return type: the name is
// ambiguous tree-wide, so its call sites cannot be typed by a token
// scan and are left to the [[nodiscard]] attribute.
#ifndef FIXTURE_BETA_OTHER_HH
#define FIXTURE_BETA_OTHER_HH
namespace fixture {
void ambiguousThing(double key);
}
#endif
