// A stale tree-rule allowance must expire loudly via lintTree.
#include "alpha/things.hh"

namespace fixture {

void
nothingDiscardedHere()
{
    auto kept = fetchThing(7);
    (void)kept;
    // qmh-lint: allow(unchecked-outcome): stale marker, nothing to cover
}

} // namespace fixture
