// Call sites: one discarded Outcome (flagged), one bound (clean),
// one ambiguous (skipped), one suppressed.
#include "alpha/things.hh"

namespace fixture {

void
driver()
{
    fetchThing(1);
    auto kept = fetchThing(2);
    (void)kept;
    ambiguousThing(3);
    plainHelper(4);
    // qmh-lint: allow(unchecked-outcome): fixture demonstrating a justified discard
    fetchThing(5);
}

} // namespace fixture
