// Outcome-returning declarations for the unchecked-outcome index.
#ifndef FIXTURE_ALPHA_THINGS_HH
#define FIXTURE_ALPHA_THINGS_HH
namespace fixture {
template <typename T> class Outcome {};
Outcome<int> fetchThing(int key);
Outcome<int> ambiguousThing(int key);
int plainHelper(int key);
}
#endif
