// Fixture: failure modes banned inside the typed-error domain.
// test_lint.cc lints this text twice: labeled as src/api/ (every
// finding fires) and as src/cqla/ (rule off, zero findings).
#include <cstdlib>

int
fixtureTypedErrors(int value)
{
    if (value < 0)
        throw value;                     // line 10
    if (value == 0)
        qmh_panic("zero is invalid");    // line 12
    if (value > 100)
        exit(1);                         // line 14
    if (value > 50)
        std::abort();                    // line 16
    return value;
}
