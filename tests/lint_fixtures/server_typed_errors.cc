// Fixture: the typed-error rule covers the experiment server too.
// test_lint.cc lints this text three ways: labeled as src/server/
// (every finding fires), as src/api/ (same findings — one rule, two
// domains), and as src/net/ (rule off, zero findings).

int
fixtureServerTypedErrors(int fd)
{
    if (fd < 0)
        throw fd;                        // line 10
    if (fd == 0)
        qmh_panic("bad listener fd");    // line 12
    if (fd > 1024)
        abort();                         // line 14
    return fd;
}
