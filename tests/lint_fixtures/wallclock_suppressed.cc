// Fixture: both suppression placements against real findings.
#include <chrono>

double
fixtureSuppressedWallclock()
{
    // qmh-lint: allow(no-wallclock): fixture — comment-above placement covers the next line
    auto start = std::chrono::steady_clock::now();
    auto stop = std::chrono::steady_clock::now();  // qmh-lint: allow(no-wallclock): fixture — trailing placement covers its own line
    return std::chrono::duration<double>(stop - start).count();
}
