// Fixture: raw randomness qmh-lint must catch.
#include <cstdlib>

int
fixtureRawRand()
{
    std::mt19937 gen(42);                    // line 7
    std::mt19937_64 wide(42);                // line 8
    std::default_random_engine basic(1);     // line 9
    int a = std::rand();                     // line 10
    srand(7);                                // line 11
    long b = drand48() > 0.5 ? 1 : 0;        // line 12
    (void)gen; (void)wide; (void)basic;
    return a + static_cast<int>(b);
}
