// Fixture: includes of the banned headers, plus look-alikes that
// must NOT fire.
#include <ctime>        // line 3
#include <random>       // line 4
#include <sys/time.h>   // line 5
#include "time.h"       // line 6 — quoted form counts too
// #include <ctime>     — commented out, must not fire
#include <chrono>       // allowed: duration math is deterministic
#include <cstdlib>      // allowed
