// Fixture: a stale allowance — the finding it covered is gone.
int
fixtureNothingToSuppress()
{
    // qmh-lint: allow(no-wallclock): fixture — this marker covers nothing and must expire loudly
    int not_a_clock = 7;
    return not_a_clock;
}
