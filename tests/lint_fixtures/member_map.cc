// Fixture: implementation half of the companion-header test. The
// range-for below walks a member declared only in member_map.hh;
// lintFile must still catch it.
#include "member_map.hh"

int
FixtureRegistry::total() const
{
    int sum = 0;
    for (const auto &kv : _by_name)      // line 10
        sum += kv.second;
    return sum;
}
