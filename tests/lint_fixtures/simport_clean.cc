// Fixture: the port-deque arbitration pattern done right — a bounded
// FIFO deque of requests plus an ordered completion-time multimap.
// Strict src/sim/ policy: nothing here touches hash order.
#include <cstdint>
#include <deque>
#include <map>

int
fixturePortDeque()
{
    std::deque<int> buffer;
    std::multimap<std::uint64_t, int> in_flight;
    buffer.push_back(1);
    in_flight.emplace(7, 2);
    int total = 0;
    for (const auto &kv : in_flight)
        total += kv.second;
    auto first = in_flight.begin();
    if (first != in_flight.end())
        total += first->second;
    while (!buffer.empty()) {
        total += buffer.front();
        buffer.pop_front();
    }
    return total;
}
