// Top tier: mid is fine; low is declared forbidden (facade bypass).
#include "mid/mid.hh"
#include "low/base.hh"
