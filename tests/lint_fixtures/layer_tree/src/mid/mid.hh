// Middle tier: the downward include is fine.
#ifndef FIXTURE_MID_MID_HH
#define FIXTURE_MID_MID_HH
#include "low/base.hh"
namespace fixture { struct Mid : Base {}; }
#endif
