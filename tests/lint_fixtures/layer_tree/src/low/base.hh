// Bottom tier: includes nothing.
#ifndef FIXTURE_LOW_BASE_HH
#define FIXTURE_LOW_BASE_HH
namespace fixture { struct Base {}; }
#endif
