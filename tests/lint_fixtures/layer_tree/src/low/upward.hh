// Upward dependency: a bottom-tier module reaching into the middle.
#ifndef FIXTURE_LOW_UPWARD_HH
#define FIXTURE_LOW_UPWARD_HH
#include "mid/mid.hh"
#endif
