// Suppressed upward edge: the justified allow() covers the include.
#ifndef FIXTURE_LOW_UPWARD_ALLOWED_HH
#define FIXTURE_LOW_UPWARD_ALLOWED_HH
// qmh-lint: allow(layering): fixture demonstrating a justified exception
#include "mid/mid.hh"
#endif
