// Fixture: tokenizer traps. Everything in this file is CLEAN; any
// finding here is a scrubber or tokenizer bug.
#include <string>

std::string
fixtureTokenizerEdges()
{
    // Raw string: banned names inside are literal data, not code.
    std::string raw = R"(time(nullptr) and std::rand() and
        std::chrono::steady_clock::now() span two lines)";
    // Custom-delimiter raw string containing the plain closer.
    std::string tricky = R"x(almost closed: )" but not )x";
    // Escaped quote inside an ordinary string.
    std::string quoted = "she said \"rand()\" loudly";
    // Char literals, including an escaped quote and a banned name...
    char q = '\'';
    char t = 't';
    // ...and digit separators, which are NOT char literals.
    long big = 1'000'000;
    long hex = 0xFF'FF;
    // A line comment spliced onto a second physical line: rand() \
       time(nullptr) is still inside this comment
    return raw + tricky + quoted + q + t +
           std::to_string(big + hex);
}
