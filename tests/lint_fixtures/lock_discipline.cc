// lock-discipline fixture: blocking calls while a scoped lock is
// live. The self-tests lint this text labeled into src/server/ and
// src/sweep/ (rule on) and into an engine domain (rule off).
#include <mutex>

namespace fixture {

void
blockingUnderLock(std::mutex &m, int fd)
{
    std::lock_guard<std::mutex> guard(m);
    read(fd);
    write(fd);
    poll(fd);
}

void
releasedBeforeBlocking(std::mutex &m, int fd)
{
    {
        std::lock_guard<std::mutex> guard(m);
        touch(fd);
    }
    read(fd);
}

void
conditionWaitOnTheLockIsSanctioned(std::mutex &m,
                                   std::condition_variable &cv)
{
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock);
}

void
foreignWaitUnderLockIsNot(std::mutex &m, std::future<int> &task)
{
    std::scoped_lock guard(m);
    task.wait();
}

} // namespace fixture
