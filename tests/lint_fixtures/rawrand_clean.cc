// Fixture: randomness-adjacent code that is sanctioned.
// (Fixtures are linted, never compiled; Rng is intentionally opaque.)
struct Rng;

unsigned
fixtureSanctionedRand(const Rng &rng, Rng *prng)
{
    // Member calls are somebody's API, not the libc global.
    unsigned a = rng.rand();
    unsigned b = prng->rand();
    // Identifiers merely containing the names are fine.
    unsigned randomize_count = 3;
    unsigned operand = a;
    const char *text = "std::mt19937 in a string is fine";
    (void)text;
    return a + b + randomize_count + operand;
}
