// Fixture: hash-order leaks qmh-lint must catch.
#include <string>
#include <unordered_map>
#include <unordered_set>

int
fixtureHashOrderLeak()
{
    std::unordered_map<std::string, int> counts;
    std::unordered_set<int> seen;
    int total = 0;
    for (const auto &kv : counts)        // line 12
        total += kv.second;
    for (int value : seen)               // line 14
        total += value;
    return total;
}
