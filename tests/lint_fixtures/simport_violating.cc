// Fixture: the port-deque arbitration pattern done wrong — waiters
// keyed by hash. The range-for is a finding in any domain; the
// iterator extraction is a finding only under the strict src/sim/
// policy, where grant order must never come from hash layout.
#include <cstdint>
#include <unordered_map>

int
fixtureHashOrderArbitration()
{
    std::unordered_map<std::uint64_t, int> waiters;
    waiters[3] = 1;
    int granted = 0;
    auto next = waiters.begin();
    if (next != waiters.end())
        granted += next->second;
    for (const auto &kv : waiters)
        granted += kv.second;
    return granted;
}
