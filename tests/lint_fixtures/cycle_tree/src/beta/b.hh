// The other half of the peer-module include cycle.
#ifndef FIXTURE_BETA_B_HH
#define FIXTURE_BETA_B_HH
#include "alpha/a.hh"
#endif
