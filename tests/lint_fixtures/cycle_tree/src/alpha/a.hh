// Half of a peer-module include cycle.
#ifndef FIXTURE_ALPHA_A_HH
#define FIXTURE_ALPHA_A_HH
#include "beta/b.hh"
#endif
