// Suppressed lock-discipline variant: a justified allowance on the
// blocking call keeps the file clean in the concurrent domains.
#include <mutex>

namespace fixture {

void
justified(std::mutex &m, int fd)
{
    std::lock_guard<std::mutex> guard(m);
    // qmh-lint: allow(lock-discipline): startup path, no concurrent clients exist yet
    read(fd);
}

} // namespace fixture
