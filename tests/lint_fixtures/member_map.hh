// Fixture: header half of the companion-header test — the unordered
// member is declared here, iterated in member_map.cc.
#include <string>
#include <unordered_map>

class FixtureRegistry
{
  public:
    int total() const;

  private:
    std::unordered_map<std::string, int> _by_name;
};
