// Fixture: the one sanctioned unordered walk — an order-erasing
// snapshot whose result is sorted before anybody iterates it.
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string>
fixtureSortedSnapshot()
{
    std::unordered_map<std::string, int> entries;
    std::vector<std::string> keys;
    // qmh-lint: allow(ordered-iteration): fixture — keys are sorted below before anything iterates them
    for (const auto &kv : entries)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}
