// Fixture: every flavour of wall-clock read qmh-lint must catch.
// Line numbers are asserted by test_lint.cc — append only.
#include <chrono>

double
fixtureWallclock()
{
    auto a = std::chrono::steady_clock::now();            // line 8
    auto b = std::chrono::system_clock::now();            // line 9
    auto c = std::chrono::high_resolution_clock::now();   // line 10
    long t = time(nullptr);                               // line 11
    std::random_device entropy;                           // line 12
    auto g = gettimeofday(nullptr, nullptr);              // line 13
    (void)a; (void)b; (void)c; (void)t; (void)entropy;
    return static_cast<double>(g);
}
