// Fixture: things that look clock-adjacent but are sanctioned.
#include <cstdint>

struct FakeQueue
{
    std::uint64_t now() const { return _t; }  // simulated clock
    std::uint64_t _t = 0;
};

std::uint64_t
fixtureSimulatedTime(const FakeQueue &queue)
{
    // Instance calls are the simulated clock, never flagged.
    auto t1 = queue.now();
    FakeQueue *ptr = nullptr;
    auto t2 = ptr ? ptr->now() : 0;
    // Words containing the banned names are not calls.
    int timeout = 5;
    int lifetime = timeout;
    const char *label = "time(nullptr) inside a string is fine";
    (void)label;
    return t1 + t2 + static_cast<std::uint64_t>(lifetime);
}
