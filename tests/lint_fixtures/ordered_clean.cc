// Fixture: ordered or lookup-only container use that is sanctioned.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

int
fixtureOrderedUse(const std::vector<std::string> &keys)
{
    std::unordered_map<std::string, int> index;  // lookup only
    std::map<std::string, int> ordered;
    int total = 0;
    // Ordered container: iteration order is the key order.
    for (const auto &kv : ordered)
        total += kv.second;
    // The unordered map is probed through an ordered key list.
    for (const auto &key : keys)
        total += index.count(key) ? index.at(key) : 0;
    return total;
}
