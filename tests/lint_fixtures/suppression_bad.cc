// Fixture: malformed allow() markers, one per failure mode.
#include <chrono>

double
fixtureBadSuppressions()
{
    // qmh-lint: allow(no-wallclock)
    auto a = std::chrono::steady_clock::now();           // line 8
    // qmh-lint: allow(not-a-rule): the rule id does not exist
    auto b = std::chrono::steady_clock::now();           // line 10
    // qmh-lint: allowance(no-wallclock): wrong verb
    auto c = std::chrono::steady_clock::now();           // line 12
    return std::chrono::duration<double>(a - b + (c - c)).count();
}
