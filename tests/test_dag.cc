/** @file Dependency-graph tests. */

#include <gtest/gtest.h>

#include "circuit/dag.hh"

namespace qmh {
namespace circuit {
namespace {

TEST(DependencyGraph, ChainIsSequential)
{
    Program p("chain", 2);
    p.x(QubitId(0));
    p.x(QubitId(0));
    p.cnot(QubitId(0), QubitId(1));
    DependencyGraph dag(p);
    EXPECT_EQ(dag.depth(), 3u);
    EXPECT_EQ(dag.inDegree(0), 0);
    EXPECT_EQ(dag.inDegree(1), 1);
    EXPECT_EQ(dag.inDegree(2), 1);
    EXPECT_EQ(dag.successors(0).size(), 1u);
}

TEST(DependencyGraph, IndependentGatesShareLevel)
{
    Program p("par", 4);
    p.x(QubitId(0));
    p.x(QubitId(1));
    p.cnot(QubitId(2), QubitId(3));
    DependencyGraph dag(p);
    EXPECT_EQ(dag.depth(), 1u);
    EXPECT_EQ(dag.maxParallelism(), 3u);
}

TEST(DependencyGraph, SharedOperandCreatesEdgeEvenControlControl)
{
    // Quantum data cannot be copied: two gates reading the same qubit
    // still serialize.
    Program p("cc", 3);
    p.cnot(QubitId(0), QubitId(1));
    p.cnot(QubitId(0), QubitId(2));
    DependencyGraph dag(p);
    EXPECT_EQ(dag.depth(), 2u);
}

TEST(DependencyGraph, DuplicatePredecessorsDeduped)
{
    Program p("dup", 3);
    p.cnot(QubitId(0), QubitId(1));
    p.cnot(QubitId(0), QubitId(1));
    DependencyGraph dag(p);
    EXPECT_EQ(dag.predecessors(1).size(), 1u);
    EXPECT_EQ(dag.inDegree(1), 1);
}

TEST(DependencyGraph, ParallelismProfileCountsPerLevel)
{
    Program p("prof", 4);
    p.x(QubitId(0));
    p.x(QubitId(1));
    p.cnot(QubitId(0), QubitId(1));
    p.x(QubitId(2));
    DependencyGraph dag(p);
    const auto profile = dag.parallelismProfile();
    ASSERT_EQ(profile.size(), 2u);
    EXPECT_EQ(profile[0], 3u);  // two X's + the independent x q2
    EXPECT_EQ(profile[1], 1u);
}

TEST(DependencyGraph, BarrierSynchronizesEverything)
{
    Program p("bar", 3);
    p.x(QubitId(0));
    p.barrier();
    p.x(QubitId(1));  // independent of x q0, but behind the barrier
    DependencyGraph dag(p);
    EXPECT_EQ(dag.depth(), 3u);
    EXPECT_EQ(dag.inDegree(2), 1);
}

TEST(DependencyGraph, BarrierDependsOnAllTouchedQubits)
{
    Program p("bar2", 4);
    p.x(QubitId(0));
    p.x(QubitId(1));
    p.barrier();
    DependencyGraph dag(p);
    EXPECT_EQ(dag.predecessors(2).size(), 2u);
}

TEST(DependencyGraph, EmptyProgram)
{
    Program p("empty", 2);
    DependencyGraph dag(p);
    EXPECT_EQ(dag.size(), 0u);
    EXPECT_EQ(dag.depth(), 0u);
    EXPECT_TRUE(dag.parallelismProfile().empty());
}

} // namespace
} // namespace circuit
} // namespace qmh
