/** @file Tests of Eq. 1 and the fidelity budget (paper Section 5.2). */

#include <gtest/gtest.h>

#include "ecc/threshold.hh"

namespace qmh {
namespace ecc {
namespace {

const iontrap::Params params = iontrap::Params::future();

TEST(Eq1, BelowThresholdEncodingHelps)
{
    const double pth = 7.5e-5;
    const double p0 = params.averageFailure();
    ASSERT_LT(p0, pth);
    EXPECT_LT(localFailureRate(1, p0, pth), p0);
    EXPECT_LT(localFailureRate(2, p0, pth), localFailureRate(1, p0, pth));
}

TEST(Eq1, DoubleExponentialSuppression)
{
    const double pth = 7.5e-5;
    const double p0 = 1e-8;
    const double p1 = localFailureRate(1, p0, pth);
    const double p2 = localFailureRate(2, p0, pth);
    // Pf(2)/Pf(1) ~ (p0/pth)^2 / r, far more than the level-1 gain.
    EXPECT_LT(p2 / p1, p1 / p0);
}

TEST(Eq1, LevelZeroIsPhysicalRate)
{
    EXPECT_DOUBLE_EQ(localFailureRate(0, 1e-6, 7.5e-5), 1e-6);
}

TEST(Eq1, AboveThresholdEncodingHurts)
{
    const double pth = 7.5e-5;
    const double p0 = 10.0 * pth;
    EXPECT_GT(localFailureRate(1, p0, pth) / 1.0,
              p0 / 12.0);  // grows despite the 1/r factor
}

TEST(FidelityBudget, SteaneTwoPercentTimeAtLevel1)
{
    // The paper's headline: for 1024-bit factoring the system "can
    // spend only 2% of the total execution time in level 1".
    const FidelityBudget budget(Code::steane(), params,
                                shorKqOps(1024));
    EXPECT_NEAR(budget.maxLevel1TimeFraction(), 0.02, 0.005);
    EXPECT_NEAR(budget.maxLevel1OpsFraction(), 2.0 / 3.0, 0.05);
}

TEST(FidelityBudget, SteaneEqualOpsSplitIsSafe)
{
    // Paper: "if all operations performed by the CQLA were equally
    // divided between level 1 and level 2 operations, the system will
    // maintain its fidelity".
    const FidelityBudget budget(Code::steane(), params,
                                shorKqOps(1024));
    EXPECT_GT(budget.maxLevel1OpsFraction(), 0.5);
    EXPECT_LT(budget.level1TimeFraction(0.5),
              budget.maxLevel1TimeFraction());
}

TEST(FidelityBudget, BaconShorMoreFavourable)
{
    const FidelityBudget steane(Code::steane(), params,
                                shorKqOps(1024));
    const FidelityBudget bs(Code::baconShor(), params,
                            shorKqOps(1024));
    EXPECT_GT(bs.maxLevel1OpsFraction(),
              steane.maxLevel1OpsFraction());
    EXPECT_GT(bs.recommendedLevel1AddFraction(),
              steane.recommendedLevel1AddFraction());
}

TEST(FidelityBudget, Level2AlwaysFeasibleAtDesignPoint)
{
    for (const auto kind :
         {CodeKind::Steane713, CodeKind::BaconShor913}) {
        const FidelityBudget budget(Code::byKind(kind), params,
                                    shorKqOps(1024));
        EXPECT_TRUE(budget.feasible(2));
    }
    // Steane cannot run everything at level 1; Bacon-Shor's higher
    // threshold just barely can ("more favourable").
    const FidelityBudget steane(Code::steane(), params,
                                shorKqOps(1024));
    EXPECT_FALSE(steane.feasible(1));
    const FidelityBudget bs(Code::baconShor(), params,
                            shorKqOps(1024));
    EXPECT_TRUE(bs.feasible(1));
}

TEST(FidelityBudget, TimeFractionMonotoneInOpsFraction)
{
    const FidelityBudget budget(Code::steane(), params,
                                shorKqOps(256));
    double prev = -1.0;
    for (double f = 0.0; f <= 1.0; f += 0.1) {
        const double t = budget.level1TimeFraction(f);
        EXPECT_GT(t, prev);
        prev = t;
    }
    EXPECT_DOUBLE_EQ(budget.level1TimeFraction(0.0), 0.0);
    EXPECT_DOUBLE_EQ(budget.level1TimeFraction(1.0), 1.0);
}

TEST(FidelityBudget, SmallerProblemsLoosenTheBudget)
{
    const FidelityBudget big(Code::steane(), params, shorKqOps(1024));
    const FidelityBudget small(Code::steane(), params, shorKqOps(64));
    EXPECT_GE(small.maxLevel1OpsFraction(),
              big.maxLevel1OpsFraction());
}

TEST(ShorKq, GrowsSuperQuadratically)
{
    EXPECT_GT(shorKqOps(2048) / shorKqOps(1024), 8.0);
    EXPECT_GT(shorKqOps(1024), 1e11);
    EXPECT_LT(shorKqOps(1024), 1e13);
}

TEST(Eq1Death, RejectsBadParameters)
{
    EXPECT_DEATH(localFailureRate(1, 0.0, 7.5e-5), "positive");
    EXPECT_DEATH(localFailureRate(-1, 1e-8, 7.5e-5), "negative");
}

} // namespace
} // namespace ecc
} // namespace qmh
