/** @file Unit tests for the JSON reader and the JSONL service. */

#include <gtest/gtest.h>

#include <sstream>

#include "api/service.hh"
#include "common/json.hh"

namespace qmh {
namespace {

// ---------------------------------------------------------------------------
// json::parse
// ---------------------------------------------------------------------------

TEST(Json, ParsesEveryValueKind)
{
    const auto parsed = json::parse(
        R"({"null":null,"t":true,"f":false,"n":-12.5e2,)"
        R"("s":"hi","a":[1,2,3],"o":{"k":"v"}})");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const auto &root = parsed.value;
    ASSERT_TRUE(root.isObject());
    EXPECT_TRUE(root.find("null")->isNull());
    EXPECT_TRUE(root.find("t")->boolean());
    EXPECT_FALSE(root.find("f")->boolean());
    EXPECT_DOUBLE_EQ(root.find("n")->number(), -1250.0);
    EXPECT_EQ(root.find("s")->string(), "hi");
    ASSERT_EQ(root.find("a")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(root.find("a")->items()[1].number(), 2.0);
    EXPECT_EQ(root.find("o")->find("k")->string(), "v");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, DecodesStringEscapes)
{
    const auto parsed = json::parse(
        R"(["q\"q","b\\b","\/","\b\f\n\r\t","\u0041","\u00e9",)"
        R"("\u20ac","\ud83d\ude00"])");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const auto &items = parsed.value.items();
    EXPECT_EQ(items[0].string(), "q\"q");
    EXPECT_EQ(items[1].string(), "b\\b");
    EXPECT_EQ(items[2].string(), "/");
    EXPECT_EQ(items[3].string(), "\b\f\n\r\t");
    EXPECT_EQ(items[4].string(), "A");
    EXPECT_EQ(items[5].string(), "\xc3\xa9");          // é
    EXPECT_EQ(items[6].string(), "\xe2\x82\xac");      // €
    EXPECT_EQ(items[7].string(), "\xf0\x9f\x98\x80");  // emoji
}

TEST(Json, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01",
          "1.", "1e", "+1", "\"unterminated", "\"bad\\escape\"",
          "\"\\u12G4\"", "\"\\ud800\"", "\"\\ud800\\u0041\"",
          "{} trailing", "nan", "[1] [2]",
          "\"ctrl\tchar\""}) {
        const auto parsed = json::parse(bad);
        EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    }
    // Last duplicate key wins, matching common JSON semantics.
    const auto dup = json::parse(R"({"k":1,"k":2})");
    ASSERT_TRUE(dup.ok());
    EXPECT_DOUBLE_EQ(dup.value.find("k")->number(), 2.0);
}

TEST(Json, RejectsPathologicalNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    EXPECT_FALSE(json::parse(deep).ok());
}

// ---------------------------------------------------------------------------
// parseServiceRequest
// ---------------------------------------------------------------------------

TEST(Service, ParsesAFullRequest)
{
    const auto parsed = api::parseServiceRequest(
        R"({"op":"sweep","id":"r7","seed":12,"limit":3,)"
        R"("specs":["experiment=cache n=64","experiment=cache"]})");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    const auto &request = parsed.value();
    EXPECT_EQ(request.id, "r7");
    ASSERT_EQ(request.specs.size(), 2u);
    EXPECT_EQ(request.specs[0].n, 64);
    EXPECT_EQ(request.seed, std::uint64_t(12));
    EXPECT_EQ(request.limit, 3u);
}

TEST(Service, RequestErrorsAreTyped)
{
    using api::ErrorCode;
    const auto code = [](const char *line) {
        return api::parseServiceRequest(line).error().code;
    };
    EXPECT_EQ(code("nonsense"), ErrorCode::BadRequest);
    EXPECT_EQ(code("[1,2]"), ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"specs":"not an array"})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"specs":[42]})"), ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"op":"drop","specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"seed":-1,"specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"seed":1.5,"specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"specs":["experiment=nope"]})"),
              ErrorCode::InvalidSpec);
    // Seeds beyond 2^53 must arrive as strings to survive doubles.
    const auto big = api::parseServiceRequest(
        R"({"seed":"18446744073709551615","specs":[]})");
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(big.value().seed, std::uint64_t(-1));
}

// ---------------------------------------------------------------------------
// runService
// ---------------------------------------------------------------------------

std::string
serve(const std::string &requests, unsigned threads = 2)
{
    api::Session session({.threads = threads});
    std::istringstream in(requests);
    std::ostringstream out;
    api::runService(session, in, out);
    return out.str();
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> result;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        result.push_back(line);
    return result;
}

TEST(Service, StreamsRowsFramedByAcceptedAndDone)
{
    const auto output = serve(
        "{\"id\":\"a\",\"specs\":[\"experiment=bandwidth blocks=10\","
        "\"experiment=bandwidth blocks=20\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_NE(records[0].find("\"type\":\"accepted\""),
              std::string::npos);
    EXPECT_NE(records[0].find("\"total\":2"), std::string::npos);
    EXPECT_NE(records[1].find("\"type\":\"row\""), std::string::npos);
    EXPECT_NE(records[1].find("\"index\":0"), std::string::npos);
    EXPECT_NE(records[1].find("blocks=10"), std::string::npos);
    EXPECT_NE(records[2].find("\"index\":1"), std::string::npos);
    EXPECT_NE(records[3].find(
                  "\"rows\":2,\"total\":2,\"cancelled\":false"),
              std::string::npos);
    // Every record is itself valid JSON.
    for (const auto &record : records)
        EXPECT_TRUE(json::parse(record).ok()) << record;
}

TEST(Service, LimitCancelsAndReportsTruncation)
{
    const auto output = serve(
        "{\"id\":\"lim\",\"limit\":1,\"specs\":["
        "\"experiment=bandwidth blocks=10\","
        "\"experiment=bandwidth blocks=20\","
        "\"experiment=bandwidth blocks=30\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 3u);  // accepted, one row, done
    EXPECT_NE(records[2].find(
                  "\"rows\":1,\"total\":3,\"cancelled\":true"),
              std::string::npos);
}

TEST(Service, ErrorsAreRecordsAndTheLoopKeepsServing)
{
    const auto output = serve(
        "this is not json\n"
        "\n"
        "{\"id\":\"bad\",\"specs\":[\"experiment=hierarchy "
        "n=5000\"]}\n"
        "{\"id\":\"ok\",\"specs\":[\"experiment=bandwidth\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 5u);
    EXPECT_NE(records[0].find("\"code\":\"bad_request\""),
              std::string::npos);
    EXPECT_NE(records[1].find("\"code\":\"invalid_spec\""),
              std::string::npos);
    EXPECT_NE(records[1].find("\"id\":\"bad\""), std::string::npos);
    // The loop recovered and served the valid request.
    EXPECT_NE(records[2].find("\"type\":\"accepted\""),
              std::string::npos);
    EXPECT_NE(records[4].find("\"cancelled\":false"),
              std::string::npos);
}

TEST(Service, IdenticalRequestsStreamIdenticalBytes)
{
    const std::string request =
        "{\"id\":\"d\",\"seed\":5,\"specs\":["
        "\"experiment=montecarlo trials=400\","
        "\"experiment=montecarlo trials=401\","
        "\"experiment=montecarlo trials=402\"]}\n";
    EXPECT_EQ(serve(request, 1), serve(request, 4));
}

} // namespace
} // namespace qmh
