/** @file Unit tests for the JSON reader and the JSONL service. */

#include <gtest/gtest.h>

#include <sstream>

#include "api/service.hh"
#include "common/json.hh"
#include "opt/result_cache.hh"

namespace qmh {
namespace {

// ---------------------------------------------------------------------------
// json::parse
// ---------------------------------------------------------------------------

TEST(Json, ParsesEveryValueKind)
{
    const auto parsed = json::parse(
        R"({"null":null,"t":true,"f":false,"n":-12.5e2,)"
        R"("s":"hi","a":[1,2,3],"o":{"k":"v"}})");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const auto &root = parsed.value;
    ASSERT_TRUE(root.isObject());
    EXPECT_TRUE(root.find("null")->isNull());
    EXPECT_TRUE(root.find("t")->boolean());
    EXPECT_FALSE(root.find("f")->boolean());
    EXPECT_DOUBLE_EQ(root.find("n")->number(), -1250.0);
    EXPECT_EQ(root.find("s")->string(), "hi");
    ASSERT_EQ(root.find("a")->items().size(), 3u);
    EXPECT_DOUBLE_EQ(root.find("a")->items()[1].number(), 2.0);
    EXPECT_EQ(root.find("o")->find("k")->string(), "v");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(Json, DecodesStringEscapes)
{
    const auto parsed = json::parse(
        R"(["q\"q","b\\b","\/","\b\f\n\r\t","\u0041","\u00e9",)"
        R"("\u20ac","\ud83d\ude00"])");
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const auto &items = parsed.value.items();
    EXPECT_EQ(items[0].string(), "q\"q");
    EXPECT_EQ(items[1].string(), "b\\b");
    EXPECT_EQ(items[2].string(), "/");
    EXPECT_EQ(items[3].string(), "\b\f\n\r\t");
    EXPECT_EQ(items[4].string(), "A");
    EXPECT_EQ(items[5].string(), "\xc3\xa9");          // é
    EXPECT_EQ(items[6].string(), "\xe2\x82\xac");      // €
    EXPECT_EQ(items[7].string(), "\xf0\x9f\x98\x80");  // emoji
}

TEST(Json, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru", "01",
          "1.", "1e", "+1", "\"unterminated", "\"bad\\escape\"",
          "\"\\u12G4\"", "\"\\ud800\"", "\"\\ud800\\u0041\"",
          "{} trailing", "nan", "[1] [2]",
          "\"ctrl\tchar\""}) {
        const auto parsed = json::parse(bad);
        EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    }
    // Last duplicate key wins, matching common JSON semantics.
    const auto dup = json::parse(R"({"k":1,"k":2})");
    ASSERT_TRUE(dup.ok());
    EXPECT_DOUBLE_EQ(dup.value.find("k")->number(), 2.0);
}

TEST(Json, RejectsPathologicalNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    EXPECT_FALSE(json::parse(deep).ok());
}

// ---------------------------------------------------------------------------
// json::LineSplitter
// ---------------------------------------------------------------------------

/** Every line ready so far, as text ("<oversized>" marks the flag). */
std::vector<std::string>
drained(json::LineSplitter &splitter)
{
    std::vector<std::string> out;
    while (auto line = splitter.next())
        out.push_back(line->oversized ? "<oversized>" : line->text);
    return out;
}

TEST(LineSplitter, ReassemblesRecordsSplitAcrossArbitraryReads)
{
    json::LineSplitter splitter;
    // One JSONL record sliced mid-token, plus a second record sharing
    // its final chunk — the shapes socket reads actually produce.
    splitter.feed(R"({"op":"swe)");
    EXPECT_EQ(drained(splitter), std::vector<std::string>{});
    EXPECT_EQ(splitter.pending(), 10u);
    splitter.feed(R"(ep","id":"a"})" "\n" R"({"op":)");
    EXPECT_EQ(drained(splitter),
              std::vector<std::string>{R"({"op":"sweep","id":"a"})"});
    splitter.feed("\"shutdown\"}\n");
    EXPECT_EQ(drained(splitter),
              std::vector<std::string>{R"({"op":"shutdown"})"});
    EXPECT_EQ(splitter.pending(), 0u);
}

TEST(LineSplitter, ManyLinesInOneChunkComeOutInOrder)
{
    json::LineSplitter splitter;
    splitter.feed("one\ntwo\nthree\n\nfive\n");
    const std::vector<std::string> expect = {"one", "two", "three",
                                             "", "five"};
    EXPECT_EQ(drained(splitter), expect);
    EXPECT_FALSE(splitter.finish().has_value());
}

TEST(LineSplitter, CrlfClientsLoseExactlyOneCarriageReturn)
{
    json::LineSplitter splitter;
    splitter.feed("dos\r\nunix\nodd\r\r\n");
    const std::vector<std::string> expect = {"dos", "unix", "odd\r"};
    EXPECT_EQ(drained(splitter), expect);

    // The CR is stripped even when the CRLF pair itself is split
    // across two reads.
    splitter.feed("split\r");
    splitter.feed("\n");
    EXPECT_EQ(drained(splitter), std::vector<std::string>{"split"});
}

TEST(LineSplitter, OversizedRecordIsDiscardedNeverBuffered)
{
    json::LineSplitter splitter(8);
    // 9 bytes before the newline: one past the cap.
    splitter.feed("012345678");
    // The partial was dropped, not accumulated — this is the
    // no-unbounded-buffering guarantee a hostile writer hits.
    EXPECT_EQ(splitter.pending(), 0u);
    splitter.feed("... megabytes more ...");
    EXPECT_EQ(splitter.pending(), 0u);
    EXPECT_EQ(drained(splitter), std::vector<std::string>{});

    // The newline finally lands: one oversized marker, then the
    // stream resumes cleanly with the next record.
    splitter.feed("\nok\n");
    const std::vector<std::string> expect = {"<oversized>", "ok"};
    EXPECT_EQ(drained(splitter), expect);
}

TEST(LineSplitter, CapIsExclusiveAtExactlyMaxLine)
{
    json::LineSplitter splitter(8);
    splitter.feed("01234567\n");  // exactly max_line: fine
    EXPECT_EQ(drained(splitter),
              std::vector<std::string>{"01234567"});
    // A single oversized feed is also caught, not just accumulation.
    splitter.feed("012345678\n");
    EXPECT_EQ(drained(splitter),
              std::vector<std::string>{"<oversized>"});
}

TEST(LineSplitter, FinishFlushesTheUnterminatedTail)
{
    json::LineSplitter splitter;
    splitter.feed("complete\npartial");
    EXPECT_EQ(drained(splitter),
              std::vector<std::string>{"complete"});
    const auto tail = splitter.finish();
    ASSERT_TRUE(tail.has_value());
    EXPECT_FALSE(tail->oversized);
    EXPECT_EQ(tail->text, "partial");
    // At most one flush; the splitter is then empty.
    EXPECT_FALSE(splitter.finish().has_value());
    EXPECT_EQ(splitter.pending(), 0u);
}

TEST(LineSplitter, FinishReportsAnOversizedTail)
{
    json::LineSplitter splitter(4);
    splitter.feed("too long, never terminated");
    const auto tail = splitter.finish();
    ASSERT_TRUE(tail.has_value());
    EXPECT_TRUE(tail->oversized);
    EXPECT_TRUE(tail->text.empty());
    EXPECT_FALSE(splitter.finish().has_value());
}

// ---------------------------------------------------------------------------
// parseServiceRequest
// ---------------------------------------------------------------------------

TEST(Service, ParsesAFullRequest)
{
    const auto parsed = api::parseServiceRequest(
        R"({"op":"sweep","id":"r7","seed":12,"limit":3,)"
        R"("seed_mode":"spec",)"
        R"("specs":["experiment=cache n=64","experiment=cache"]})");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    const auto &request = parsed.value();
    EXPECT_EQ(request.op, api::ServiceOp::Sweep);
    EXPECT_EQ(request.id, "r7");
    ASSERT_EQ(request.specs.size(), 2u);
    EXPECT_EQ(request.specs[0].n, 64);
    EXPECT_EQ(request.seed, std::uint64_t(12));
    EXPECT_EQ(request.seed_mode, api::SeedMode::Spec);
    EXPECT_EQ(request.limit, 3u);
}

TEST(Service, ParsesAShutdownRequestWithoutSpecs)
{
    const auto parsed = api::parseServiceRequest(
        R"({"op":"shutdown","id":"bye"})");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    EXPECT_EQ(parsed.value().op, api::ServiceOp::Shutdown);
    EXPECT_EQ(parsed.value().id, "bye");
}

TEST(Service, RequestSeedsFollowTheSeedMode)
{
    const auto parsed = api::parseServiceRequest(
        R"({"seed":9,"seed_mode":"spec",)"
        R"("specs":["experiment=cache n=64","experiment=cache"]})");
    ASSERT_TRUE(parsed.ok());
    const auto seeds = api::requestSeeds(parsed.value(), 1);
    ASSERT_EQ(seeds.size(), 2u);
    // Spec mode: each seed is a function of the spec alone, so it
    // must agree with opt::specSeed over the canonical print.
    EXPECT_EQ(seeds[0],
              opt::specSeed(9,
                            api::printSpec(parsed.value().specs[0])));
    EXPECT_EQ(seeds[1],
              opt::specSeed(9,
                            api::printSpec(parsed.value().specs[1])));
    EXPECT_NE(seeds[0], seeds[1]);

    // Index mode (the default) leaves derivation to the session.
    const auto indexed = api::parseServiceRequest(
        R"({"specs":["experiment=cache n=64"]})");
    ASSERT_TRUE(indexed.ok());
    EXPECT_TRUE(api::requestSeeds(indexed.value(), 1).empty());
}

TEST(Service, RequestErrorsAreTyped)
{
    using api::ErrorCode;
    const auto code = [](const char *line) {
        return api::parseServiceRequest(line).error().code;
    };
    EXPECT_EQ(code("nonsense"), ErrorCode::BadRequest);
    EXPECT_EQ(code("[1,2]"), ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"specs":"not an array"})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"specs":[42]})"), ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"op":"drop","specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"seed":-1,"specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"seed":1.5,"specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"seed_mode":"banana","specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"seed_mode":7,"specs":[]})"),
              ErrorCode::BadRequest);
    EXPECT_EQ(code(R"({"specs":["experiment=nope"]})"),
              ErrorCode::InvalidSpec);
    // Seeds beyond 2^53 must arrive as strings to survive doubles.
    const auto big = api::parseServiceRequest(
        R"({"seed":"18446744073709551615","specs":[]})");
    ASSERT_TRUE(big.ok());
    EXPECT_EQ(big.value().seed, std::uint64_t(-1));
}

// ---------------------------------------------------------------------------
// runService
// ---------------------------------------------------------------------------

std::string
serve(const std::string &requests, unsigned threads = 2)
{
    api::Session session({.threads = threads});
    std::istringstream in(requests);
    std::ostringstream out;
    api::runService(session, in, out);
    return out.str();
}

std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> result;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line))
        result.push_back(line);
    return result;
}

TEST(Service, StreamsRowsFramedByAcceptedAndDone)
{
    const auto output = serve(
        "{\"id\":\"a\",\"specs\":[\"experiment=bandwidth blocks=10\","
        "\"experiment=bandwidth blocks=20\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 4u);
    EXPECT_NE(records[0].find("\"type\":\"accepted\""),
              std::string::npos);
    EXPECT_NE(records[0].find("\"total\":2"), std::string::npos);
    EXPECT_NE(records[1].find("\"type\":\"row\""), std::string::npos);
    EXPECT_NE(records[1].find("\"index\":0"), std::string::npos);
    EXPECT_NE(records[1].find("blocks=10"), std::string::npos);
    EXPECT_NE(records[2].find("\"index\":1"), std::string::npos);
    EXPECT_NE(records[3].find(
                  "\"rows\":2,\"total\":2,\"cancelled\":false"),
              std::string::npos);
    // Every record is itself valid JSON.
    for (const auto &record : records)
        EXPECT_TRUE(json::parse(record).ok()) << record;
}

TEST(Service, LimitCancelsAndReportsTruncation)
{
    const auto output = serve(
        "{\"id\":\"lim\",\"limit\":1,\"specs\":["
        "\"experiment=bandwidth blocks=10\","
        "\"experiment=bandwidth blocks=20\","
        "\"experiment=bandwidth blocks=30\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 3u);  // accepted, one row, done
    EXPECT_NE(records[2].find(
                  "\"rows\":1,\"total\":3,\"cancelled\":true"),
              std::string::npos);
}

TEST(Service, ErrorsAreRecordsAndTheLoopKeepsServing)
{
    const auto output = serve(
        "this is not json\n"
        "\n"
        "{\"id\":\"bad\",\"specs\":[\"experiment=hierarchy "
        "n=5000\"]}\n"
        "{\"id\":\"ok\",\"specs\":[\"experiment=bandwidth\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 5u);
    EXPECT_NE(records[0].find("\"code\":\"bad_request\""),
              std::string::npos);
    EXPECT_NE(records[1].find("\"code\":\"invalid_spec\""),
              std::string::npos);
    EXPECT_NE(records[1].find("\"id\":\"bad\""), std::string::npos);
    // The loop recovered and served the valid request.
    EXPECT_NE(records[2].find("\"type\":\"accepted\""),
              std::string::npos);
    EXPECT_NE(records[4].find("\"cancelled\":false"),
              std::string::npos);
}

TEST(Service, IdenticalRequestsStreamIdenticalBytes)
{
    const std::string request =
        "{\"id\":\"d\",\"seed\":5,\"specs\":["
        "\"experiment=montecarlo trials=400\","
        "\"experiment=montecarlo trials=401\","
        "\"experiment=montecarlo trials=402\"]}\n";
    EXPECT_EQ(serve(request, 1), serve(request, 4));
}

TEST(Service, ShutdownAnswersDoneAndEndsTheLoop)
{
    const auto output = serve(
        "{\"op\":\"shutdown\",\"id\":\"bye\"}\n"
        "{\"id\":\"never\",\"specs\":[\"experiment=bandwidth\"]}\n");
    const auto records = lines(output);
    ASSERT_EQ(records.size(), 1u);  // the request after it is unread
    EXPECT_EQ(records[0],
              "{\"type\":\"done\",\"id\":\"bye\",\"rows\":0,"
              "\"total\":0,\"cancelled\":false}");
}

TEST(Service, SpecSeedModeRowsAreIndependentOfListPosition)
{
    // The same two specs in both orders, spec-addressed seeds: each
    // spec's cells (seed column included) must not move with its
    // position — that independence is what lets a shared server
    // cache replay a row into any client's request.
    const auto forward = lines(serve(
        "{\"id\":\"s\",\"seed\":5,\"seed_mode\":\"spec\",\"specs\":["
        "\"experiment=montecarlo trials=400\","
        "\"experiment=montecarlo trials=401\"]}\n"));
    const auto backward = lines(serve(
        "{\"id\":\"s\",\"seed\":5,\"seed_mode\":\"spec\",\"specs\":["
        "\"experiment=montecarlo trials=401\","
        "\"experiment=montecarlo trials=400\"]}\n"));
    ASSERT_EQ(forward.size(), 4u);
    ASSERT_EQ(backward.size(), 4u);
    const auto cells = [](const std::string &record) {
        const auto at = record.find("\"cells\"");
        EXPECT_NE(at, std::string::npos) << record;
        return record.substr(at);
    };
    EXPECT_EQ(cells(forward[1]), cells(backward[2]));
    EXPECT_EQ(cells(forward[2]), cells(backward[1]));
    EXPECT_NE(cells(forward[1]), cells(forward[2]));
}

} // namespace
} // namespace qmh
