/**
 * @file
 * End-to-end tests for the experiment server: byte-identity with the
 * stdio service, per-client fairness under a stalled reader, the
 * shared cache across a client population, capacity refusals, and
 * disconnect cancellation. serve() runs on a background thread; every
 * server binds port 0 and is reached through its resolved port.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/service.hh"
#include "server/client.hh"
#include "server/event_loop.hh"
#include "server/server.hh"
#include "sweep/emit.hh"

namespace qmh {
namespace {

constexpr std::uint64_t kSeed = 42;

/** serve() on its own thread; always stopped and joined on exit. */
class Serving
{
  public:
    explicit Serving(server::Server &server)
        : _server(server), _thread([&server]() { server.serve(); })
    {
    }
    ~Serving() { finish(); }

    /** Stop and join; stats() is only safe once this returned (the
     *  loop thread owns the connection list while serve() runs). */
    void finish()
    {
        _server.stop();
        if (_thread.joinable())
            _thread.join();
    }

  private:
    server::Server &_server;
    std::thread _thread;
};

/** The reference bytes: the same lines through stdio qmh_service. */
std::string
stdioReference(const std::string &lines, unsigned threads = 2)
{
    api::Session session({.threads = threads, .base_seed = kSeed});
    std::istringstream in(lines);
    std::ostringstream out;
    api::runService(session, in, out);
    return out.str();
}

std::string
requestLine(const std::string &id,
            const std::vector<std::string> &specs,
            const std::string &extra = "")
{
    std::string line = "{\"id\":" + sweep::jsonQuote(id);
    if (!extra.empty())
        line += "," + extra;
    line += ",\"specs\":[";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i)
            line += ",";
        line += sweep::jsonQuote(specs[i]);
    }
    return line + "]}";
}

/** Records joined back into the byte stream stdio would produce. */
std::string
joined(const std::vector<std::string> &records)
{
    std::string bytes;
    for (const auto &record : records)
        bytes += record + "\n";
    return bytes;
}

server::ServerConfig
testConfig()
{
    server::ServerConfig config;
    config.port = 0;
    config.threads = 2;
    config.base_seed = kSeed;
    return config;
}

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

TEST(EventLoop, StopFromAnotherThreadEndsRun)
{
    server::EventLoop loop;
    ASSERT_TRUE(loop.valid());
    std::thread runner([&]() { loop.run([]() {}); });
    // If stop() could not end a (possibly sleeping) run(), this join
    // would hang the test.
    loop.stop();
    runner.join();
    EXPECT_EQ(loop.watchedCount(), 0u);
}

TEST(EventLoop, WakeupReachesTheCycleHook)
{
    server::EventLoop loop;
    ASSERT_TRUE(loop.valid());
    std::atomic<std::size_t> cycles{0};
    std::thread runner([&]() { loop.run([&]() { ++cycles; }); });
    // Each wakeup must eventually produce a cycle; coalescing is
    // fine, losing them forever is not.
    while (cycles.load() < 3)
        loop.wakeup();
    loop.stop();
    runner.join();
    EXPECT_GE(cycles.load(), 3u);
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

TEST(Server, RefusesAnUnparseableHostWithATypedError)
{
    auto config = testConfig();
    config.host = "not-a-host";
    auto created = server::Server::create(config);
    ASSERT_FALSE(created.ok());
    EXPECT_EQ(created.error().code, api::ErrorCode::Unavailable);
    EXPECT_EQ(api::errorCodeName(api::ErrorCode::Unavailable),
              "unavailable");
}

TEST(Server, ShutdownRequestAnswersDoneAndStopsServe)
{
    auto created = server::Server::create(testConfig());
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();
    Serving serving(server);

    auto client = server::Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.error().describe();
    const auto records = client.value().shutdownServer("bye");
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records.value().size(), 1u);
    EXPECT_EQ(records.value()[0],
              "{\"type\":\"done\",\"id\":\"bye\",\"rows\":0,"
              "\"total\":0,\"cancelled\":false}");
    // ~Serving would end the loop anyway; the point is that the
    // request alone already did, so this join cannot hang.
}

TEST(Server, EightConcurrentClientsMatchTheStdioBytes)
{
    auto created = server::Server::create(testConfig());
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();
    Serving serving(server);

    // Overlapping grids: client k sweeps caches n=2^k..2^(k+2) in
    // spec mode (shared-cache traffic) plus one index-mode request —
    // both must be byte-identical to a lone stdio run.
    std::vector<std::thread> clients;
    for (std::size_t k = 0; k < 8; ++k) {
        clients.emplace_back([k, &server]() {
            std::vector<std::string> specs;
            for (std::size_t step = 0; step < 3; ++step)
                specs.push_back(
                    "experiment=cache n=" +
                    std::to_string(1u << (k + step + 1)));
            const auto spec_line = requestLine(
                "spec-" + std::to_string(k), specs,
                "\"seed_mode\":\"spec\"");
            const auto index_line = requestLine(
                "index-" + std::to_string(k),
                {"experiment=bandwidth blocks=" +
                     std::to_string(10 * (k + 1)),
                 "experiment=bandwidth blocks=7"});

            auto client =
                server::Client::connect("127.0.0.1", server.port());
            ASSERT_TRUE(client.ok()) << client.error().describe();
            std::string bytes;
            for (const auto *line : {&spec_line, &index_line}) {
                const auto records = client.value().request(*line);
                ASSERT_TRUE(records.ok())
                    << records.error().describe();
                bytes += joined(records.value());
            }
            EXPECT_EQ(bytes,
                      stdioReference(spec_line + "\n" + index_line +
                                     "\n"));
        });
    }
    for (auto &client : clients)
        client.join();
}

TEST(Server, StalledReaderDoesNotBlockOtherClients)
{
    auto config = testConfig();
    config.connection.max_buffered = 2048; // tiny high-water mark
    auto created = server::Server::create(config);
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();
    Serving serving(server);

    // The stalled reader: a raw socket with a tiny receive buffer
    // that requests ~5 MB of rows and then refuses to read — enough
    // to fill its kernel buffers and pin the connection against the
    // server's high-water mark.
    std::string specs;
    for (std::size_t i = 0; i < 20000; ++i) {
        if (i)
            specs += ",";
        specs += "\"experiment=bandwidth blocks=" +
                 std::to_string(i + 1) + "\"";
    }
    const std::string big_line =
        "{\"id\":\"big\",\"specs\":[" + specs + "]}";

    const int stalled = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(stalled, 0);
    const int rcvbuf = 4096;
    ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &rcvbuf,
                 sizeof rcvbuf);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(stalled,
                        reinterpret_cast<const sockaddr *>(&addr),
                        sizeof addr),
              0);
    const std::string wire = big_line + "\n";
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const auto put = ::send(stalled, wire.data() + sent,
                                wire.size() - sent, 0);
        ASSERT_GT(put, 0);
        sent += static_cast<std::size_t>(put);
    }

    // While the reader stalls, three other clients run complete
    // requests. If the stalled connection could block the loop or
    // the pool, these would never finish and the test would time
    // out — completion IS the fairness proof.
    for (int k = 0; k < 3; ++k) {
        const auto line = requestLine(
            "fair-" + std::to_string(k),
            {"experiment=cache n=64", "experiment=bandwidth"});
        auto client =
            server::Client::connect("127.0.0.1", server.port());
        ASSERT_TRUE(client.ok()) << client.error().describe();
        const auto records = client.value().request(line);
        ASSERT_TRUE(records.ok()) << records.error().describe();
        EXPECT_EQ(joined(records.value()),
                  stdioReference(line + "\n"));
    }

    // The stalled reader lost nothing: drain it now and compare
    // every byte against the stdio run of the same request.
    const std::string expected = stdioReference(big_line + "\n");
    std::string received;
    received.reserve(expected.size());
    char buffer[64 * 1024];
    while (received.size() < expected.size()) {
        const auto got = ::recv(stalled, buffer, sizeof buffer, 0);
        ASSERT_GT(got, 0) << "server closed the stalled reader early";
        received.append(buffer, static_cast<std::size_t>(got));
    }
    EXPECT_EQ(received, expected);
    ::close(stalled);
}

TEST(Server, WarmCacheServesTheRepeatPopulationWithoutSimulating)
{
    auto created = server::Server::create(testConfig());
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();

    // 8 clients x 3 specs stepping by 1: 10 distinct specs overall.
    std::vector<std::string> lines;
    for (std::size_t k = 0; k < 8; ++k) {
        std::vector<std::string> specs;
        for (std::size_t step = 0; step < 3; ++step)
            specs.push_back("experiment=cache n=" +
                            std::to_string(8 * (k + step + 1)));
        lines.push_back(requestLine("warm-" + std::to_string(k),
                                    specs,
                                    "\"seed_mode\":\"spec\""));
    }
    constexpr std::size_t kDistinct = 10;

    {
        Serving serving(server);
        std::vector<std::string> first_wave;
        for (int wave = 0; wave < 2; ++wave) {
            for (std::size_t k = 0; k < lines.size(); ++k) {
                auto client = server::Client::connect(
                    "127.0.0.1", server.port());
                ASSERT_TRUE(client.ok())
                    << client.error().describe();
                const auto records =
                    client.value().request(lines[k]);
                ASSERT_TRUE(records.ok())
                    << records.error().describe();
                if (wave == 0)
                    first_wave.push_back(joined(records.value()));
                else
                    // Replayed bytes are the simulated bytes.
                    EXPECT_EQ(joined(records.value()),
                              first_wave[k]);
            }
        }
    }

    const auto stats = server.stats();
    EXPECT_EQ(stats.simulated, kDistinct);
    EXPECT_EQ(stats.cache.inserts, kDistinct);
    EXPECT_GE(stats.cache.hits, 8u * 3u); // 2nd wave never simulates
    EXPECT_EQ(stats.rows, 2u * 8u * 3u);
}

TEST(Server, OverflowingMaxClientsGetsATypedRefusal)
{
    auto config = testConfig();
    config.max_clients = 1;
    auto created = server::Server::create(config);
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();
    Serving serving(server);

    auto first =
        server::Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(first.ok()) << first.error().describe();
    // A served request proves the slot is actually occupied.
    const auto held = first.value().request(
        requestLine("hold", {"experiment=cache n=32"}));
    ASSERT_TRUE(held.ok());

    auto second =
        server::Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(second.ok()) << second.error().describe();
    const auto refused = second.value().request(
        requestLine("late", {"experiment=cache n=32"}));
    ASSERT_TRUE(refused.ok()) << refused.error().describe();
    ASSERT_EQ(refused.value().size(), 1u);
    EXPECT_NE(refused.value()[0].find("\"code\":\"unavailable\""),
              std::string::npos)
        << refused.value()[0];
    EXPECT_NE(refused.value()[0].find("server at capacity"),
              std::string::npos);

    ASSERT_TRUE(first.value().shutdownServer().ok());
    serving.finish();
    const auto stats = server.stats();
    EXPECT_EQ(stats.accepted, 1u);
    EXPECT_EQ(stats.rejected, 1u);
}

TEST(Server, OversizedRequestLineIsRefusedInBand)
{
    auto config = testConfig();
    config.connection.max_line = 128;
    auto created = server::Server::create(config);
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();
    Serving serving(server);

    auto client = server::Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.error().describe();
    const std::string oversized =
        "{\"id\":\"fat\",\"specs\":[\"experiment=cache n=" +
        std::string(200, '9') + "\"]}";
    const auto refused = client.value().request(oversized);
    ASSERT_TRUE(refused.ok()) << refused.error().describe();
    ASSERT_EQ(refused.value().size(), 1u);
    EXPECT_NE(refused.value()[0].find(
                  "request line exceeds 128 bytes"),
              std::string::npos)
        << refused.value()[0];
    EXPECT_NE(refused.value()[0].find("\"code\":\"bad_request\""),
              std::string::npos);

    // The connection survives its client's mistake.
    const auto line = requestLine("ok", {"experiment=cache n=16"});
    const auto records = client.value().request(line);
    ASSERT_TRUE(records.ok()) << records.error().describe();
    EXPECT_EQ(joined(records.value()), stdioReference(line + "\n"));
}

TEST(Server, DisconnectCancelsTheJobAndFreesTheClient)
{
    auto created = server::Server::create(testConfig());
    ASSERT_TRUE(created.ok()) << created.error().describe();
    auto &server = *created.value();
    Serving serving(server);

    // A client submits a large job and vanishes without reading.
    {
        auto doomed = server::connectTcp("127.0.0.1", server.port());
        ASSERT_TRUE(doomed.ok()) << doomed.error().describe();
        std::string specs;
        for (std::size_t i = 0; i < 5000; ++i) {
            if (i)
                specs += ",";
            specs += "\"experiment=bandwidth blocks=" +
                     std::to_string(i + 1) + "\"";
        }
        const std::string wire =
            "{\"id\":\"doomed\",\"specs\":[" + specs + "]}\n";
        std::size_t sent = 0;
        while (sent < wire.size()) {
            const auto put = server::sendSome(
                doomed.value().get(), wire.data() + sent,
                wire.size() - sent);
            ASSERT_EQ(put.status, server::IoStatus::Ready);
            sent += put.bytes;
        }
    } // Fd closes here: the peer is gone.

    // The pool and the loop must shrug it off: a fresh client gets
    // exact bytes, and shutdown still drains cleanly.
    const auto line =
        requestLine("alive", {"experiment=cache n=64"});
    auto client = server::Client::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok()) << client.error().describe();
    const auto records = client.value().request(line);
    ASSERT_TRUE(records.ok()) << records.error().describe();
    EXPECT_EQ(joined(records.value()), stdioReference(line + "\n"));
    ASSERT_TRUE(client.value().shutdownServer().ok());
}

} // namespace
} // namespace qmh
