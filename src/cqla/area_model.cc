#include "area_model.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace qmh {
namespace cqla {

AreaModel::AreaModel(const iontrap::Params &params) : _params(params)
{
}

double
AreaModel::memoryLayoutFactor(const ecc::Code &code) const
{
    // Calibrated against the memory coefficient of the paper's
    // Table 4 (DESIGN.md section 4.3).
    switch (code.kind()) {
      case ecc::CodeKind::Steane713:
        return 2.08;
      case ecc::CodeKind::BaconShor913:
        return 1.17;
    }
    qmh_panic("unknown code kind");
}

double
AreaModel::memoryQubitAreaMm2(const ecc::Code &code,
                              ecc::Level level) const
{
    const double ions =
        code.ionsPerDataQubit(level, memory_ancilla_ratio);
    return units::um2ToMm2(ions * _params.regionAreaUm2()) *
           memoryLayoutFactor(code);
}

double
AreaModel::computeBlockAreaMm2(const ecc::Code &code,
                               ecc::Level level) const
{
    const double tile =
        code.qubitAreaMm2(level, _params, compute_ancilla_ratio);
    return qubits_per_block * tile * block_routing;
}

double
AreaModel::qlaAreaMm2(int n_bits) const
{
    if (n_bits < 1)
        qmh_fatal("qlaAreaMm2: problem size must be >= 1 bit");
    const auto steane = ecc::Code::steane();
    const double tile =
        steane.qubitAreaMm2(2, _params, compute_ancilla_ratio);
    return memoryQubits(n_bits) * tile * qla_provisioning;
}

AreaBreakdown
AreaModel::cqlaArea(const ecc::Code &code, int n_bits, unsigned blocks,
                    unsigned cache_qubits,
                    unsigned transfer_channels) const
{
    if (n_bits < 1)
        qmh_fatal("cqlaArea: problem size must be >= 1 bit");
    if (blocks == 0)
        qmh_fatal("cqlaArea: at least one compute block required");

    AreaBreakdown area;
    area.memory_mm2 =
        memoryQubits(n_bits) * memoryQubitAreaMm2(code, 2);
    area.compute_mm2 = blocks * computeBlockAreaMm2(code, 2);
    if (cache_qubits > 0) {
        // The cache mirrors the compute-region tile design one level
        // down (level 1, full ancilla for fast error correction).
        const double l1_tile =
            code.qubitAreaMm2(1, _params, compute_ancilla_ratio);
        area.cache_mm2 = cache_qubits * l1_tile * block_routing;
    }
    if (transfer_channels > 0) {
        // A transfer strip holds one level-2 and one level-1 ancilla
        // qubit pair plus verification workspace per channel.
        const double strip =
            code.qubitAreaMm2(2, _params, compute_ancilla_ratio) +
            2.0 * code.qubitAreaMm2(1, _params, compute_ancilla_ratio);
        area.transfer_mm2 = transfer_channels * strip;
    }
    return area;
}

double
AreaModel::areaReductionFactor(const ecc::Code &code, int n_bits,
                               unsigned blocks) const
{
    return qlaAreaMm2(n_bits) / cqlaArea(code, n_bits, blocks).total();
}

} // namespace cqla
} // namespace qmh
