/**
 * @file
 * Application models for the two components of Shor's algorithm
 * (paper Section 6, Fig. 8): modular exponentiation (computation
 * dominated) and the quantum Fourier transform (communication heavy,
 * all-to-all personalized traffic).
 */

#ifndef QMH_CQLA_APPS_HH
#define QMH_CQLA_APPS_HH

#include "ecc/code.hh"
#include "iontrap/params.hh"
#include "net/teleport.hh"
#include "perf_model.hh"

namespace qmh {
namespace cqla {

/** Computation/communication split of one application run. */
struct AppTimes
{
    double computation_s = 0.0;
    double communication_s = 0.0;
};

/**
 * Modular exponentiation at adder granularity (paper: "AdderTime is
 * the average time per adder for modular exponentiation").
 */
class ModExpModel
{
  public:
    ModExpModel(const ecc::Code &code, const iontrap::Params &params);

    /**
     * Sequential adder slots on the critical path of n-bit modular
     * exponentiation: parallelized partial-product accumulation gives
     * adder_depth_coeff * n * log2(n) dependent additions (calibrated
     * to the paper's Fig. 8a hours scale; DESIGN.md section 4.5).
     */
    static double sequentialAdders(int n_bits);

    /** Calibrated critical-path coefficient. */
    static constexpr double adder_depth_coeff = 2.8;

    /** Fig. 8a point: total computation and communication time. */
    AppTimes totalTimes(int n_bits, unsigned blocks);

    /** Per-adder operand traffic in logical qubit moves. */
    double adderTraffic(int n_bits);

  private:
    ecc::Code _code;
    iontrap::Params _params;
    PerformanceModel _perf;
};

/**
 * Quantum Fourier transform model. Computation follows the paper's
 * serialized execution (each controlled rotation is followed by error
 * correction; communication per gate costs almost as much as the gate
 * because transport is cheap but the arrival EC is not).
 */
class QftModel
{
  public:
    QftModel(const ecc::Code &code, const iontrap::Params &params);

    /** Controlled rotations in the n-qubit QFT: n(n-1)/2. */
    static std::uint64_t gateCount(int n_bits);

    /** Gate-steps per controlled rotation. */
    static constexpr double steps_per_cphase = 2.0;

    /** Teleports per gate: both operands travel to a meeting block. */
    static constexpr double teleports_per_gate = 2.0;

    /** Fraction of teleport latency not hidden behind the gate's EC. */
    static constexpr double overlap_discount = 0.9;

    /** Fig. 8b point. */
    AppTimes totalTimes(int n_bits) const;

  private:
    ecc::Code _code;
    iontrap::Params _params;
};

} // namespace cqla
} // namespace qmh

#endif // QMH_CQLA_APPS_HH
