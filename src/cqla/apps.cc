#include "apps.hh"

#include <cmath>

#include "common/logging.hh"
#include "net/bandwidth.hh"

namespace qmh {
namespace cqla {

ModExpModel::ModExpModel(const ecc::Code &code,
                         const iontrap::Params &params)
    : _code(code), _params(params), _perf(params)
{
}

double
ModExpModel::sequentialAdders(int n_bits)
{
    if (n_bits < 2)
        qmh_fatal("sequentialAdders: width must be >= 2");
    const double n = n_bits;
    return adder_depth_coeff * n * std::log2(n);
}

double
ModExpModel::adderTraffic(int n_bits)
{
    // Six operand moves per busy block per Toffoli slot (three in,
    // three out), over the adder's Toffoli-slot work.
    const auto &timing = _perf.adderTiming(n_bits);
    const double toffoli_slots =
        static_cast<double>(timing.work_steps) /
        net::BandwidthModel::toffoli_steps;
    return toffoli_slots * net::BandwidthModel::draper_qubits_per_toffoli;
}

AppTimes
ModExpModel::totalTimes(int n_bits, unsigned blocks)
{
    AppTimes times;
    const double adders = sequentialAdders(n_bits);
    const double adder_s = _perf.adderSeconds(_code, 2, n_bits, blocks);
    times.computation_s = adders * adder_s;

    // Communication: operand teleports served by the superblock
    // perimeter channels, aggregated over the run. It overlaps with
    // computation in the real machine; the figure reports raw totals.
    const net::TeleportModel teleport(_code, 2, _params);
    const double channels =
        4.0 * std::sqrt(static_cast<double>(blocks)) *
        net::BandwidthModel::channels_per_edge;
    times.communication_s = adders * adderTraffic(n_bits) *
                            teleport.teleportTime() / channels;
    return times;
}

QftModel::QftModel(const ecc::Code &code, const iontrap::Params &params)
    : _code(code), _params(params)
{
}

std::uint64_t
QftModel::gateCount(int n_bits)
{
    const auto n = static_cast<std::uint64_t>(n_bits);
    return n * (n - 1) / 2;
}

AppTimes
QftModel::totalTimes(int n_bits) const
{
    if (n_bits < 2)
        qmh_fatal("QftModel: width must be >= 2");
    AppTimes times;
    const double gates = static_cast<double>(gateCount(n_bits));
    const double step = _code.gateStepTime(2, _params);
    times.computation_s = gates * steps_per_cphase * step;

    const net::TeleportModel teleport(_code, 2, _params);
    times.communication_s = gates * teleports_per_gate *
                            overlap_discount * teleport.teleportTime();
    return times;
}

} // namespace cqla
} // namespace qmh
