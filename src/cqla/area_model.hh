/**
 * @file
 * CQLA area model (paper Sections 3 and 5.1, Table 4 area columns).
 *
 * Bottom-up construction: ion counts per logical qubit (ecc::Code) x
 * trapping-region area (iontrap::Params) x a region-specific layout
 * factor. Three region classes exist:
 *
 *  - QLA baseline tiles: every logical qubit carries full (1:2)
 *    ancilla plus the homogeneous teleportation infrastructure that
 *    supports computation anywhere (large provisioning factor);
 *  - CQLA dense memory: (8:1) data:ancilla, minimal channels;
 *  - CQLA compute blocks: nine data qubits with (1:2) ancilla, full
 *    teleportation islands and intra-block routing.
 *
 * The provisioning factors are calibrated once against the coefficient
 * structure of the paper's Table 4 (see DESIGN.md section 4.3) and
 * then every row of the table is a prediction.
 */

#ifndef QMH_CQLA_AREA_MODEL_HH
#define QMH_CQLA_AREA_MODEL_HH

#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace cqla {

/** Area of each CQLA region, in mm^2. */
struct AreaBreakdown
{
    double memory_mm2 = 0.0;
    double compute_mm2 = 0.0;
    double cache_mm2 = 0.0;
    double transfer_mm2 = 0.0;

    double
    total() const
    {
        return memory_mm2 + compute_mm2 + cache_mm2 + transfer_mm2;
    }
};

/** Area model for QLA and CQLA configurations. */
class AreaModel
{
  public:
    explicit AreaModel(const iontrap::Params &params);

    /** Logical data qubits a compute block holds (paper: 9). */
    static constexpr int qubits_per_block = 9;

    /** Logical ancilla per data qubit in compute regions. */
    static constexpr double compute_ancilla_ratio = 2.0;

    /** Logical ancilla per data qubit in dense memory (8:1). */
    static constexpr double memory_ancilla_ratio = 1.0 / 8.0;

    /**
     * Application footprint: logical data qubits resident in memory
     * for n-bit modular exponentiation (the two operand registers;
     * workspace lives in the compute blocks and cache).
     */
    static int memoryQubits(int n_bits) { return 2 * n_bits; }

    /**
     * QLA homogeneous-tile provisioning over the bare Table-2 tile:
     * teleportation islands, EPR purification and full-parallelism
     * channels at every logical qubit.
     */
    static constexpr double qla_provisioning = 6.0;

    /** Compute-block routing overhead over its nine bare tiles. */
    static constexpr double block_routing = 1.3;

    /**
     * Memory layout factor over bare ion packing, per code (Steane /
     * Bacon-Shor). Memory drops the per-tile channel infrastructure;
     * the Bacon-Shor gauge structure packs additionally tighter.
     */
    double memoryLayoutFactor(const ecc::Code &code) const;

    /** Area of one logical qubit in the dense memory, mm^2. */
    double memoryQubitAreaMm2(const ecc::Code &code,
                              ecc::Level level) const;

    /** Area of one compute block (9 data + 18 ancilla), mm^2. */
    double computeBlockAreaMm2(const ecc::Code &code,
                               ecc::Level level) const;

    /** Area of the homogeneous QLA for @p n_bits, mm^2 (Steane L2). */
    double qlaAreaMm2(int n_bits) const;

    /**
     * Full CQLA breakdown: dense memory for the application footprint,
     * @p blocks level-2 compute blocks, an optional level-1 cache of
     * @p cache_qubits logical qubits (hierarchy configurations), and
     * the code-transfer region (one strip per transfer channel).
     */
    AreaBreakdown cqlaArea(const ecc::Code &code, int n_bits,
                           unsigned blocks, unsigned cache_qubits = 0,
                           unsigned transfer_channels = 0) const;

    /** Table 4 metric: QLA area / CQLA area. */
    double areaReductionFactor(const ecc::Code &code, int n_bits,
                               unsigned blocks) const;

    const iontrap::Params &params() const { return _params; }

  private:
    iontrap::Params _params;
};

} // namespace cqla
} // namespace qmh

#endif // QMH_CQLA_AREA_MODEL_HH
