#include "hierarchy.hh"

#include <algorithm>

#include "area_model.hh"
#include "common/logging.hh"

namespace qmh {
namespace cqla {

HierarchyModel::HierarchyModel(const iontrap::Params &params)
    : _params(params), _perf(params), _transfer(params)
{
}

double
HierarchyModel::criticalTransferSeconds(
    const ecc::Code &code, unsigned parallel_transfers) const
{
    if (parallel_transfers == 0)
        qmh_fatal("hierarchy needs at least one transfer channel");
    const net::Encoding src{code.kind(), 2};
    const net::Encoding dst{code.kind(), 1};
    const double per_qubit = _transfer.transferTime(src, dst) *
                             code.transferChannelCost();
    return critical_transfer_qubits * per_qubit /
           static_cast<double>(parallel_transfers);
}

double
HierarchyModel::level1Speedup(const ecc::Code &code, int n_bits,
                              unsigned parallel_transfers)
{
    const auto &timing = _perf.adderTiming(n_bits);
    const double cp = static_cast<double>(timing.critical_path_steps);
    const double t_l2 = cp * code.gateStepTime(2, _params);
    const double t_l1 = cp * code.gateStepTime(1, _params) +
                        criticalTransferSeconds(code, parallel_transfers);
    return t_l2 / t_l1;
}

double
HierarchyModel::level1AddFraction(const ecc::Code &code,
                                  int n_bits) const
{
    // The CQLA is provisioned for the 1024-bit factoring design point;
    // the addition mix is fixed by the budget there, not relaxed for
    // smaller runs (the paper uses one level-1 addition per two
    // level-2 additions for Steane at every size).
    const int design_point = std::max(n_bits, 1024);
    const ecc::FidelityBudget budget(code, _params,
                                     ecc::shorKqOps(design_point));
    return budget.recommendedLevel1AddFraction();
}

double
HierarchyModel::adderSpeedup(const ecc::Code &code, int n_bits,
                             unsigned parallel_transfers,
                             unsigned blocks)
{
    const double s1 = level1Speedup(code, n_bits, parallel_transfers);
    const double s2 = _perf.speedup(code, n_bits, blocks);
    const double f = level1AddFraction(code, n_bits);
    // Throughput-weighted mix: the level-1 stream overlaps with
    // level-2 execution, so the sustained per-adder speedup is the
    // add-count-weighted average of the two speedups.
    return f * s1 + (1.0 - f) * s2;
}

Table5Row
HierarchyModel::row(const ecc::Code &code, int n_bits,
                    unsigned parallel_transfers, unsigned blocks)
{
    Table5Row out;
    out.code = code.kind();
    out.n_bits = n_bits;
    out.parallel_transfers = parallel_transfers;
    out.blocks = blocks;
    out.level1_speedup =
        level1Speedup(code, n_bits, parallel_transfers);
    out.level2_speedup = _perf.speedup(code, n_bits, blocks);
    out.level1_add_fraction = level1AddFraction(code, n_bits);
    out.adder_speedup =
        adderSpeedup(code, n_bits, parallel_transfers, blocks);
    const AreaModel area(_params);
    out.area_reduced = area.areaReductionFactor(code, n_bits, blocks);
    out.gain_product = out.area_reduced * out.adder_speedup;
    return out;
}

unsigned
HierarchyModel::paperBlocks(int n_bits)
{
    // Table 5 pairs 256 and 512 with the larger Table-4 block count
    // and 1024 with the smaller one (its Area Reduced column).
    switch (n_bits) {
      case 256:  return 49;
      case 512:  return 81;
      case 1024: return 100;
      default:
        return PerformanceModel::paperBlockCounts(n_bits).second;
    }
}

} // namespace cqla
} // namespace qmh
