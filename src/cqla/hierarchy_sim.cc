#include "hierarchy_sim.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.hh"
#include "common/units.hh"
#include "hierarchy.hh"
#include "net/transfer.hh"
#include "sim/banked_memory.hh"
#include "sim/event_queue.hh"
#include "sim/transfer_channels.hh"

namespace qmh {
namespace cqla {

HierarchySimResult
runHierarchySim(const HierarchySimConfig &config,
                const iontrap::Params &params)
{
    if (config.total_adders == 0)
        qmh_fatal("hierarchy sim needs at least one addition");
    if (config.level1_fraction < 0.0 || config.level1_fraction > 1.0)
        qmh_fatal("level1_fraction out of range");
    if (config.chain_dependent_fraction < 0.0 ||
        config.chain_dependent_fraction > 1.0)
        qmh_fatal("chain_dependent_fraction out of range");

    const auto code = ecc::Code::byKind(config.code);
    HierarchyModel model(params);
    const auto &timing = model.perf().adderTiming(config.n_bits);

    // Per-adder durations.
    const double t2_s = timing.boundedMakespanSteps(config.blocks) *
                        code.gateStepTime(2, params);
    const double t1_compute_s =
        static_cast<double>(timing.critical_path_steps) *
        code.gateStepTime(1, params);
    const net::TransferNetwork transfer(params);
    const double per_qubit_s =
        transfer.transferTime({config.code, 2}, {config.code, 1}) *
        code.transferChannelCost();
    const auto critical_qubits = static_cast<unsigned>(
        HierarchyModel::critical_transfer_qubits);

    const Tick t2 = units::secondsToTicks(t2_s);
    const Tick t1_compute = units::secondsToTicks(t1_compute_s);
    const Tick per_qubit = units::secondsToTicks(per_qubit_s);

    sim::EventQueue eq;
    sim::TransferChannels channels(eq, config.parallel_transfers);
    sim::BankedMemoryConfig mem_config;
    mem_config.banks = config.mem_banks;
    mem_config.ports = config.mem_ports;
    mem_config.buffer = config.mem_buffer;
    // The bank stages one critical set per request: the base charge
    // is one qubit-transfer time (never zero), plus the configured
    // per-line cost for each critical qubit in the set.
    mem_config.cycles_per_request = std::max<Tick>(1, per_qubit);
    mem_config.cycles_per_line = config.cycles_per_line;
    sim::BankedMemory memory(eq, "l2-memory", mem_config);

    HierarchySimResult result;
    const auto l1_target = static_cast<std::uint64_t>(std::llround(
        config.level1_fraction *
        static_cast<double>(config.total_adders)));
    result.level1_adds = l1_target;
    result.level2_adds = config.total_adders - l1_target;

    Tick l2_busy_until = 0;
    std::uint64_t l2_remaining = result.level2_adds;
    std::uint64_t l1_remaining = result.level1_adds;
    std::uint64_t l1_started = 0;

    // Level-2 region: back-to-back additions.
    std::function<void()> dispatch_l2 = [&]() {
        if (l2_remaining == 0)
            return;
        --l2_remaining;
        l2_busy_until = std::max(l2_busy_until, eq.now()) + t2;
        eq.schedule(l2_busy_until, [&]() { dispatch_l2(); });
    };

    // Level-1 pipeline: pull the critical set through the transfer
    // channels (ceil(critical/channels) serial waves), then compute.
    // A chain-dependent addition additionally waits for the level-2
    // accumulator to catch up before its compute phase may start.
    const unsigned waves =
        (critical_qubits + config.parallel_transfers - 1) /
        config.parallel_transfers;
    const Tick transfer_latency = static_cast<Tick>(waves) * per_qubit;

    std::function<void()> dispatch_l1 = [&]() {
        if (l1_remaining == 0)
            return;
        --l1_remaining;
        const bool chained =
            config.chain_dependent_fraction > 0.0 &&
            static_cast<double>(l1_started % 100) <
                config.chain_dependent_fraction * 100.0;
        // Successive additions walk the banks round-robin, the
        // natural interleaving of a striped accumulator layout.
        const std::uint64_t address = l1_started;
        ++l1_started;
        // The owning bank stages the critical set, then one channel
        // pipelines the batch for its wave latency while all critical
        // qubits charge the busy accounting.
        memory.request(address, critical_qubits, [&, chained]() {
            channels.transfer(
                transfer_latency,
                static_cast<Tick>(critical_qubits) * per_qubit,
                [&, chained]() {
                    const Tick compute_start =
                        chained ? std::max(eq.now(), l2_busy_until)
                                : eq.now();
                    eq.schedule(compute_start + t1_compute,
                                [&]() { dispatch_l1(); });
                });
        });
    };

    eq.schedule(0, [&]() { dispatch_l2(); });
    eq.schedule(0, [&]() { dispatch_l1(); });
    eq.run();

    result.makespan_s = units::ticksToSeconds(eq.now());
    result.baseline_s =
        static_cast<double>(config.total_adders) * t2_s;
    result.makespan_speedup =
        result.makespan_s > 0.0 ? result.baseline_s / result.makespan_s
                                : 0.0;

    // Add-weighted mean speedup (the paper's Table-5 metric).
    const double s1 =
        t2_s / (t1_compute_s +
                static_cast<double>(critical_qubits) * per_qubit_s /
                    config.parallel_transfers);
    const double qla_t2 =
        static_cast<double>(timing.critical_path_steps) *
        ecc::Code::steane().gateStepTime(2, params);
    const double s2 = qla_t2 / t2_s;
    const double f = config.level1_fraction;
    result.mean_adder_speedup = f * s1 + (1.0 - f) * s2;

    if (eq.executed() == 0)
        qmh_panic("hierarchy sim executed no events");
    result.events_executed = eq.executed();
    result.transfer_utilization = channels.utilization(eq.now());
    result.mem_requests = memory.requests();
    result.bank_conflicts = memory.bankConflicts();
    result.mem_stall_ticks = memory.stallTicks();
    result.mem_peak_queue = memory.peakQueue();
    result.mem_mean_queue = memory.meanQueue(eq.now());
    result.mem_utilization = memory.utilization(eq.now());
    return result;
}

} // namespace cqla
} // namespace qmh
