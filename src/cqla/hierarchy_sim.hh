/**
 * @file
 * Event-driven simulation of the CQLA memory hierarchy.
 *
 * A stream of addition tasks (modular exponentiation at adder
 * granularity) is dispatched to two execution regions: the level-2
 * compute region and the level-1 cache + compute region behind the
 * code-transfer network (a counted channel resource). Level-1 adds
 * must first pull their immediate-dependence set through the transfer
 * channels; bulk operands prefetch in the background.
 *
 * The simulator reports both the end-to-end makespan speedup and the
 * add-weighted mean speedup (the paper's Table-5 "Adder SpeedUp"
 * metric); EXPERIMENTS.md discusses the difference.
 *
 * Relationship to the trace engine (trace/engine.hh): this model is
 * the paper-faithful *abstract* pipeline — work arrives as whole
 * additions with closed-form per-adder times, which is exactly the
 * granularity of Table 5. The trace engine executes real gate-level
 * circuits through the same transfer-channel resource
 * (sim::TransferChannels, shared by both) with cache residency per
 * instruction; use it when the question is about a specific circuit
 * rather than the steady-state adder stream. The two deliberately
 * stay separate experiment kinds ("hierarchy" vs "trace").
 */

#ifndef QMH_CQLA_HIERARCHY_SIM_HH
#define QMH_CQLA_HIERARCHY_SIM_HH

#include <cstdint>

#include "common/units.hh"
#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace cqla {

/** Configuration of one hierarchy simulation. */
struct HierarchySimConfig
{
    ecc::CodeKind code = ecc::CodeKind::Steane713;
    int n_bits = 256;
    unsigned parallel_transfers = 10;
    unsigned blocks = 49;
    std::uint64_t total_adders = 300;
    /** Fraction of additions routed to level 1 (fidelity budget). */
    double level1_fraction = 1.0 / 3.0;
    /**
     * Fraction of additions that depend on the immediately preceding
     * addition (serial chains of the accumulator); the rest come from
     * independent partial products and overlap freely across regions.
     */
    double chain_dependent_fraction = 0.0;

    // Banked level-2 memory in front of the transfer network
    // (sim::BankedMemory): every level-1 addition's critical set is
    // first served by a bank before its transfer wave departs.
    unsigned mem_banks = 8;       ///< independent banks
    unsigned mem_ports = 4;       ///< concurrent requests in service
    std::size_t mem_buffer = 8;   ///< bounded request deque per bank
    Tick cycles_per_line = 0;     ///< extra bank ticks per qubit line
};

/** Measured outcomes. */
struct HierarchySimResult
{
    double makespan_s = 0.0;
    double baseline_s = 0.0;        ///< all additions at level 2
    double makespan_speedup = 0.0;  ///< baseline / makespan
    double mean_adder_speedup = 0.0;///< add-weighted mean (paper metric)
    std::uint64_t level1_adds = 0;
    std::uint64_t level2_adds = 0;
    double transfer_utilization = 0.0;

    // Banked level-2 memory contention (one request per level-1 add).
    std::uint64_t mem_requests = 0;
    /** Requests whose bank-service start was delayed by contention. */
    std::uint64_t bank_conflicts = 0;
    Tick mem_stall_ticks = 0;       ///< total bank-queue waiting time
    std::size_t mem_peak_queue = 0; ///< deepest single-bank queue
    double mem_mean_queue = 0.0;    ///< time-weighted mean queued
    double mem_utilization = 0.0;   ///< busy fraction of bank capacity

    std::uint64_t events_executed = 0;
};

/** Run the hierarchy simulation. */
HierarchySimResult runHierarchySim(const HierarchySimConfig &config,
                                   const iontrap::Params &params);

} // namespace cqla
} // namespace qmh

#endif // QMH_CQLA_HIERARCHY_SIM_HH
