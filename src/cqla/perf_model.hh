/**
 * @file
 * CQLA performance model (paper Section 5.1, Table 4).
 *
 * The QLA baseline executes the Draper adder's structural rounds with
 * unlimited parallelism; the CQLA executes the same circuit on B
 * compute blocks. The compressed makespan follows the work-conserving
 * bound max(critical path, work / B) — blocks pipeline ahead through
 * round slack, so the bound is tight (the paper's measured speedups
 * match it across every table entry; see EXPERIMENTS.md).
 *
 * Both quantities are *measured* from the generated gate-level adder
 * with the round-synchronous scheduler, not closed forms.
 */

#ifndef QMH_CQLA_PERF_MODEL_HH
#define QMH_CQLA_PERF_MODEL_HH

#include <cstdint>
#include <map>

#include "ecc/code.hh"
#include "iontrap/params.hh"
#include "sched/scheduler.hh"

namespace qmh {
namespace cqla {

/** Gate-step accounting of one generated adder circuit. */
struct AdderTiming
{
    std::uint64_t critical_path_steps = 0; ///< structural-round CP
    std::uint64_t work_steps = 0;          ///< total block-steps of work
    std::uint64_t toffoli_count = 0;
    std::uint64_t gate_count = 0;

    /** Work-conserving makespan bound on @p blocks (0 = unlimited). */
    double boundedMakespanSteps(unsigned blocks) const;
};

/** Table-4 style evaluation row. */
struct Table4Row
{
    int n_bits = 0;
    unsigned blocks = 0;
    double area_reduced_steane = 0.0;
    double area_reduced_bacon_shor = 0.0;
    double speedup_steane = 0.0;
    double speedup_bacon_shor = 0.0;
    double gain_product_steane = 0.0;
    double gain_product_bacon_shor = 0.0;
};

/** Timing engine over generated adders; memoizes per width. */
class PerformanceModel
{
  public:
    explicit PerformanceModel(const iontrap::Params &params);

    /** Measure (and cache) the n-bit Draper adder's timing profile. */
    const AdderTiming &adderTiming(int n_bits);

    /**
     * Seconds per adder under @p code at @p level on @p blocks blocks
     * (0 = unlimited).
     */
    double adderSeconds(const ecc::Code &code, ecc::Level level,
                        int n_bits, unsigned blocks);

    /** QLA baseline: Steane level 2, unlimited parallelism. */
    double qlaAdderSeconds(int n_bits);

    /** Table 4 speedup: QLA adder time over CQLA adder time. */
    double speedup(const ecc::Code &code, int n_bits, unsigned blocks);

    /** Utilization at @p blocks under the work-conserving bound. */
    double utilization(int n_bits, unsigned blocks);

    /**
     * Detailed utilization from the batched round-synchronous
     * schedule (used for Fig. 6a; slightly below the bound).
     */
    double scheduledUtilization(int n_bits, unsigned blocks);

    /** Complete Table-4 row (areas and gain products included). */
    Table4Row table4Row(int n_bits, unsigned blocks);

    /** The paper's block counts per input size (Table 4 column 2). */
    static std::pair<unsigned, unsigned> paperBlockCounts(int n_bits);

    const iontrap::Params &params() const { return _params; }

  private:
    iontrap::Params _params;
    std::map<int, AdderTiming> _timings;
    std::map<std::pair<int, unsigned>, double> _sched_util;
};

} // namespace cqla
} // namespace qmh

#endif // QMH_CQLA_PERF_MODEL_HH
