#include "perf_model.hh"

#include <algorithm>

#include "area_model.hh"
#include "common/logging.hh"
#include "gen/draper.hh"

namespace qmh {
namespace cqla {

double
AdderTiming::boundedMakespanSteps(unsigned blocks) const
{
    const auto cp = static_cast<double>(critical_path_steps);
    if (blocks == sched::unlimited_blocks)
        return cp;
    const double work_bound =
        static_cast<double>(work_steps) / static_cast<double>(blocks);
    return std::max(cp, work_bound);
}

PerformanceModel::PerformanceModel(const iontrap::Params &params)
    : _params(params)
{
}

const AdderTiming &
PerformanceModel::adderTiming(int n_bits)
{
    auto it = _timings.find(n_bits);
    if (it != _timings.end())
        return it->second;

    // The evaluation adder is the forward carry-lookahead circuit
    // (see gen::UncomputeMode::CarriesLeftDirty).
    const auto program = gen::draperAdder(
        n_bits, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    const sched::LatencyModel latency;
    const auto schedule =
        sched::roundSchedule(program, latency, sched::unlimited_blocks);

    AdderTiming timing;
    timing.critical_path_steps = schedule.makespan;
    timing.work_steps = schedule.busy_block_steps;
    timing.toffoli_count =
        program.gateCount(circuit::GateKind::Toffoli);
    timing.gate_count = program.size();
    return _timings.emplace(n_bits, timing).first->second;
}

double
PerformanceModel::adderSeconds(const ecc::Code &code, ecc::Level level,
                               int n_bits, unsigned blocks)
{
    const auto &timing = adderTiming(n_bits);
    return timing.boundedMakespanSteps(blocks) *
           code.gateStepTime(level, _params);
}

double
PerformanceModel::qlaAdderSeconds(int n_bits)
{
    return adderSeconds(ecc::Code::steane(), 2, n_bits,
                        sched::unlimited_blocks);
}

double
PerformanceModel::speedup(const ecc::Code &code, int n_bits,
                          unsigned blocks)
{
    return qlaAdderSeconds(n_bits) /
           adderSeconds(code, 2, n_bits, blocks);
}

double
PerformanceModel::utilization(int n_bits, unsigned blocks)
{
    if (blocks == sched::unlimited_blocks)
        qmh_panic("utilization needs a finite block count");
    const auto &timing = adderTiming(n_bits);
    const double makespan = timing.boundedMakespanSteps(blocks);
    return static_cast<double>(timing.work_steps) /
           (static_cast<double>(blocks) * makespan);
}

double
PerformanceModel::scheduledUtilization(int n_bits, unsigned blocks)
{
    if (blocks == sched::unlimited_blocks)
        qmh_panic("scheduledUtilization needs a finite block count");
    const auto key = std::make_pair(n_bits, blocks);
    const auto it = _sched_util.find(key);
    if (it != _sched_util.end())
        return it->second;

    const auto program = gen::draperAdder(
        n_bits, true, nullptr, gen::UncomputeMode::CarriesLeftDirty);
    const sched::LatencyModel latency;
    const auto schedule = sched::roundSchedule(program, latency, blocks);
    const double util = schedule.utilization();
    _sched_util.emplace(key, util);
    return util;
}

Table4Row
PerformanceModel::table4Row(int n_bits, unsigned blocks)
{
    const AreaModel area(_params);
    const auto steane = ecc::Code::steane();
    const auto bacon_shor = ecc::Code::baconShor();

    Table4Row row;
    row.n_bits = n_bits;
    row.blocks = blocks;
    row.area_reduced_steane =
        area.areaReductionFactor(steane, n_bits, blocks);
    row.area_reduced_bacon_shor =
        area.areaReductionFactor(bacon_shor, n_bits, blocks);
    row.speedup_steane = speedup(steane, n_bits, blocks);
    row.speedup_bacon_shor = speedup(bacon_shor, n_bits, blocks);
    row.gain_product_steane =
        row.area_reduced_steane * row.speedup_steane;
    row.gain_product_bacon_shor =
        row.area_reduced_bacon_shor * row.speedup_bacon_shor;
    return row;
}

std::pair<unsigned, unsigned>
PerformanceModel::paperBlockCounts(int n_bits)
{
    switch (n_bits) {
      case 32:   return {4, 9};
      case 64:   return {9, 16};
      case 128:  return {16, 25};
      case 256:  return {36, 49};
      case 512:  return {64, 81};
      case 1024: return {100, 121};
      default:
        qmh_fatal("paperBlockCounts: size ", n_bits,
                  " not in the paper's Table 4");
    }
}

} // namespace cqla
} // namespace qmh
