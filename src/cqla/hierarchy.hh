/**
 * @file
 * Quantum memory hierarchy model (paper Sections 3.3 and 5.2,
 * Table 5): memory at level 2, cache and a compute region at level 1,
 * joined by the code-transfer network.
 *
 * Level-1 additions are fast but each consumes transfer-network
 * bandwidth: operands prefetch during the preceding level-2 additions,
 * and only the immediate-dependence set (the sum/carry segment the
 * previous addition produced last) serializes with the level-1
 * execution. The admissible mix of level-1 and level-2 additions comes
 * from the Eq. 1 fidelity budget (Steane: one in three; Bacon-Shor:
 * two in three).
 */

#ifndef QMH_CQLA_HIERARCHY_HH
#define QMH_CQLA_HIERARCHY_HH

#include "ecc/code.hh"
#include "ecc/threshold.hh"
#include "iontrap/params.hh"
#include "net/transfer.hh"
#include "perf_model.hh"

namespace qmh {
namespace cqla {

/** Table-5 style evaluation row. */
struct Table5Row
{
    ecc::CodeKind code{};
    int n_bits = 0;
    unsigned parallel_transfers = 0;
    unsigned blocks = 0;
    double level1_speedup = 0.0;
    double level2_speedup = 0.0;
    double level1_add_fraction = 0.0;
    double adder_speedup = 0.0;
    double area_reduced = 0.0;
    double gain_product = 0.0;
};

/** Analytic hierarchy model. */
class HierarchyModel
{
  public:
    explicit HierarchyModel(const iontrap::Params &params);

    /**
     * Logical qubits that cannot be prefetched ahead of a level-1
     * addition: the sum/carry segment produced at the tail of the
     * preceding dependent addition. Calibrated to the paper's
     * Table 5 level-1 speedups (DESIGN.md section 4.8).
     */
    static constexpr double critical_transfer_qubits = 55.0;

    /**
     * Speedup of one adder executed at level 1 (with its transfer
     * cost) over the same adder at level 2, using
     * @p parallel_transfers transfer-network channels.
     */
    double level1Speedup(const ecc::Code &code, int n_bits,
                         unsigned parallel_transfers);

    /** Non-overlapped transfer time charged to one level-1 adder. */
    double criticalTransferSeconds(const ecc::Code &code,
                                   unsigned parallel_transfers) const;

    /** Fidelity-admissible fraction of additions run at level 1. */
    double level1AddFraction(const ecc::Code &code, int n_bits) const;

    /**
     * Combined per-adder speedup of the full hierarchy: the
     * throughput-weighted mix of level-1 and level-2 additions.
     */
    double adderSpeedup(const ecc::Code &code, int n_bits,
                        unsigned parallel_transfers, unsigned blocks);

    /** Complete Table-5 row. */
    Table5Row row(const ecc::Code &code, int n_bits,
                  unsigned parallel_transfers, unsigned blocks);

    /** Block counts the paper's Table 5 pairs with each size. */
    static unsigned paperBlocks(int n_bits);

    PerformanceModel &perf() { return _perf; }

  private:
    iontrap::Params _params;
    PerformanceModel _perf;
    net::TransferNetwork _transfer;
};

} // namespace cqla
} // namespace qmh

#endif // QMH_CQLA_HIERARCHY_HH
