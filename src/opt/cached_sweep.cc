#include "cached_sweep.hh"

#include <unordered_map>

#include "api/session.hh"
#include "common/logging.hh"

namespace qmh {
namespace opt {

CachedSweepOutcome
runSpecSweepCached(sweep::SweepRunner &runner,
                   const std::vector<api::ExperimentSpec> &specs,
                   ResultCache *cache,
                   const CachedSweepControl &control)
{
    CachedSweepOutcome outcome;
    if (specs.empty())
        return outcome;

    // Validation keeps the legacy panic contract and yields the
    // experiments themselves; the misses are moved into the session
    // below rather than rebuilt from their specs.
    auto experiments = api::makeValidatedExperiments(specs);
    const auto columns = experiments.front()->columns();
    const std::uint64_t base_seed = runner.options().base_seed;
    if (cache && cache->backed() && cache->baseSeed() != base_seed)
        qmh_panic("runSpecSweepCached: cache '", cache->path(),
                  "' is bound to base seed ", cache->baseSeed(),
                  " but the runner uses ", base_seed);

    // Resolve every point to a row source first: cache hit, duplicate
    // of an earlier point in this very list, or a fresh simulation.
    struct Source
    {
        std::uint64_t seed = 0;
        const CachedResult *hit = nullptr;  // cache replay
        std::size_t dup_of = 0;             // earlier identical spec
        bool dup = false;
    };
    // Rows are incorporated strictly in spec order below, so a
    // row_limit statically caps which specs can ever be consumed:
    // misses past the cap are not even submitted (on_row can only
    // cut *earlier* than the limit, never later).
    const std::size_t incorporable =
        control.row_limit
            ? std::min(control.row_limit, specs.size())
            : specs.size();

    std::vector<Source> sources(specs.size());
    std::vector<std::string> keys(specs.size());
    std::unordered_map<std::string, std::size_t> first_index;
    std::vector<std::unique_ptr<api::Experiment>> miss_experiments;
    std::vector<std::uint64_t> miss_seeds;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        keys[i] = api::printSpec(specs[i]);
        auto &source = sources[i];
        source.seed = specSeed(base_seed, keys[i]);
        if (const auto *hit = cache ? cache->lookup(keys[i]) : nullptr;
            hit && hit->row.size() == columns.size() &&
            hit->seed == source.seed) {
            // A width or seed mismatch means the entry predates a
            // schema or seeding change; fall through and re-simulate
            // rather than replay a row that a cold run could not
            // reproduce.
            source.hit = hit;
            continue;
        }
        if (const auto [it, fresh] = first_index.emplace(keys[i], i);
            !fresh) {
            source.dup = true;
            source.dup_of = it->second;
            continue;
        }
        if (i < incorporable) {
            miss_experiments.push_back(std::move(experiments[i]));
            miss_seeds.push_back(source.seed);
        }
    }

    // Fan only the misses across the pool, as one session job with
    // spec-addressed seeds so a row does not depend on this batch's
    // composition, ordering, or the grid index it came from.
    api::Session session(runner);
    api::SubmitOptions submit_options;
    submit_options.seeds = std::move(miss_seeds);
    auto submitted = session.submit(std::move(miss_experiments),
                                    std::move(submit_options));
    if (!submitted.ok())
        qmh_panic("runSpecSweepCached: ",
                  submitted.error().describe());
    auto job = submitted.value();

    auto labelled = columns;
    labelled.emplace_back("seed");
    sweep::ResultTable table(std::move(labelled));

    // Incorporate rows strictly in spec order. Misses stream from
    // the job in exactly that order (they were submitted in it), so
    // a cutoff leaves a deterministic prefix; upserts happen at
    // incorporation time, which keeps the cache content a function
    // of the incorporated prefix alone.
    std::size_t incorporated = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &source = sources[i];
        std::vector<sweep::Cell> row;
        if (source.hit) {
            row = source.hit->row;
            row.emplace_back(source.seed);
            ++outcome.cached;
        } else if (source.dup) {
            // One row per spec in spec order: the first occurrence
            // already sits at table row dup_of, so read it back
            // rather than keeping a parallel copy of every row.
            row.reserve(table.columns());
            for (std::size_t c = 0; c < table.columns(); ++c)
                row.push_back(table.cell(source.dup_of, c));
            ++outcome.cached;
        } else {
            auto streamed = job.nextRow();
            if (!streamed) {
                const auto failure = job.wait().failure;
                qmh_panic(
                    "runSpecSweepCached: the sweep job ended before "
                    "spec ", i, " ('", keys[i], "')",
                    failure ? ": " + failure->describe()
                            : std::string());
            }
            row = std::move(*streamed);
            if (cache) {
                // Strip the trailing seed column the session appends;
                // the cache stores bare kind rows keyed by (spec,
                // seed), exactly as a cold engine run produces them.
                std::vector<sweep::Cell> bare(row.begin(),
                                              row.end() - 1);
                cache->upsert(keys[i], source.seed, std::move(bare));
            }
            ++outcome.simulated;
        }
        table.addRow(std::move(row));
        ++incorporated;
        // Observe before cutting: the callback sees every
        // incorporated row, the limit row included.
        if (control.on_row &&
            !control.on_row(incorporated, specs.size()))
            break;
        if (control.row_limit && incorporated >= control.row_limit)
            break;
    }
    outcome.cancelled = incorporated < specs.size();
    if (outcome.cancelled)
        job.cancel();

    outcome.table = std::move(table);
    return outcome;
}

} // namespace opt
} // namespace qmh
