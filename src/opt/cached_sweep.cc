#include "cached_sweep.hh"

#include <unordered_map>

#include "common/logging.hh"

namespace qmh {
namespace opt {

CachedSweepOutcome
runSpecSweepCached(sweep::SweepRunner &runner,
                   const std::vector<api::ExperimentSpec> &specs,
                   ResultCache *cache)
{
    CachedSweepOutcome outcome;
    if (specs.empty())
        return outcome;

    auto experiments = api::makeValidatedExperiments(specs);
    const auto columns = experiments.front()->columns();
    const std::uint64_t base_seed = runner.options().base_seed;
    if (cache && cache->backed() && cache->baseSeed() != base_seed)
        qmh_panic("runSpecSweepCached: cache '", cache->path(),
                  "' is bound to base seed ", cache->baseSeed(),
                  " but the runner uses ", base_seed);

    // Resolve every point to a row source first: cache hit, duplicate
    // of an earlier point in this very list, or a fresh simulation.
    struct Source
    {
        std::uint64_t seed = 0;
        const CachedResult *hit = nullptr;  // cache replay
        std::size_t dup_of = 0;             // earlier identical spec
        bool dup = false;
        std::size_t miss_slot = 0;          // index into the sim batch
    };
    std::vector<Source> sources(specs.size());
    std::vector<std::string> keys(specs.size());
    std::unordered_map<std::string, std::size_t> first_index;
    std::vector<std::size_t> misses;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        keys[i] = api::printSpec(specs[i]);
        auto &source = sources[i];
        source.seed = specSeed(base_seed, keys[i]);
        if (const auto *hit = cache ? cache->lookup(keys[i]) : nullptr;
            hit && hit->row.size() == columns.size() &&
            hit->seed == source.seed) {
            // A width or seed mismatch means the entry predates a
            // schema or seeding change; fall through and re-simulate
            // rather than replay a row that a cold run could not
            // reproduce.
            source.hit = hit;
            continue;
        }
        if (const auto [it, fresh] = first_index.emplace(keys[i], i);
            !fresh) {
            source.dup = true;
            source.dup_of = it->second;
            continue;
        }
        source.miss_slot = misses.size();
        misses.push_back(i);
    }

    // Fan only the misses across the pool. The Random the runner
    // hands out is index-addressed; replace it with the spec-addressed
    // stream so the row does not depend on this batch's composition.
    const auto simulated = runner.map(
        misses.size(),
        [&](std::size_t slot, Random &) {
            const std::size_t i = misses[slot];
            Random rng(sources[i].seed);
            return experiments[i]->run(rng);
        });
    outcome.simulated = misses.size();
    outcome.cached = specs.size() - misses.size();

    // Upsert rather than insert: a miss caused by a stale entry
    // (width/seed mismatch above) must replace that entry, or every
    // future run would re-simulate the point forever.
    for (const std::size_t i : misses)
        if (cache)
            cache->upsert(keys[i], sources[i].seed,
                          simulated[sources[i].miss_slot]);

    auto labelled = columns;
    labelled.emplace_back("seed");
    sweep::ResultTable table(std::move(labelled));
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto &source = sources[i];
        auto row = source.hit ? source.hit->row
                   : source.dup
                       ? simulated[sources[source.dup_of].miss_slot]
                       : simulated[source.miss_slot];
        row.emplace_back(source.seed);
        table.addRow(std::move(row));
    }
    outcome.table = std::move(table);
    return outcome;
}

} // namespace opt
} // namespace qmh
