#include "frontier.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_set>

#include "common/logging.hh"

namespace qmh {
namespace opt {

namespace {

double
roundIfInteger(double v, bool integer_axis)
{
    return integer_axis ? static_cast<double>(std::llround(v)) : v;
}

/** Coarse samples: endpoints exact, interior linearly spaced. */
std::vector<double>
initialValues(const FrontierAxis &axis, bool integer_axis)
{
    std::vector<double> values;
    for (int t = 0; t < axis.coarse; ++t) {
        double v;
        if (t == 0)
            v = axis.lo;
        else if (t == axis.coarse - 1)
            v = axis.hi;
        else
            v = axis.lo + (axis.hi - axis.lo) * t / (axis.coarse - 1);
        values.push_back(roundIfInteger(v, integer_axis));
    }
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()),
                 values.end());
    return values;
}

/** One generation of adjacent-pair midpoints folded into @p values. */
void
refineOnce(std::vector<double> &values, bool integer_axis)
{
    std::vector<double> next;
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
        const double a = values[i];
        const double b = values[i + 1];
        const double mid = roundIfInteger(a + (b - a) / 2.0,
                                          integer_axis);
        if (mid != a && mid != b)
            next.push_back(mid);
    }
    values.insert(values.end(), next.begin(), next.end());
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()),
                 values.end());
}

/** Lattice index of @p value; panics when off-lattice (all explored
 *  values are constructed from the lattice, so a miss is a bug). */
std::size_t
latticeIndex(const std::vector<double> &lattice, double value)
{
    const auto it =
        std::lower_bound(lattice.begin(), lattice.end(), value);
    if (it == lattice.end() || *it != value)
        qmh_panic("frontierSearch: value ", value,
                  " is not on the axis lattice");
    return static_cast<std::size_t>(it - lattice.begin());
}

struct AxisState
{
    FrontierAxis axis;
    bool integer = false;
    std::vector<double> lattice;       ///< full dyadic value universe
    std::vector<std::size_t> coarse;   ///< lattice indices of round 0
    std::set<std::size_t> seen;        ///< explored lattice indices
};

struct Candidate
{
    api::ExperimentSpec spec;
    std::string key;
    std::vector<std::size_t> coord;  ///< lattice index per axis
};

} // namespace

std::vector<double>
frontierAxisLattice(const FrontierAxis &axis, bool integer_axis,
                    int max_depth)
{
    auto values = initialValues(axis, integer_axis);
    for (int depth = 0; depth < max_depth; ++depth) {
        const std::size_t before = values.size();
        refineOnce(values, integer_axis);
        // Integer axes saturate once every gap is 1; further
        // generations would only re-sort the same values.
        if (values.size() == before)
            break;
    }
    return values;
}

std::string
frontierAxisValueText(double value, bool integer_axis)
{
    if (integer_axis)
        return std::to_string(std::llround(value));
    return api::formatDouble(value);
}

bool
frontierAxisIsInteger(const std::string &key)
{
    const auto kind = api::specKeyKind(key);
    if (!kind)
        qmh_panic("frontierAxisIsInteger: unknown spec key '", key,
                  "'");
    if (*kind == api::SpecKeyKind::Int ||
        *kind == api::SpecKeyKind::UInt)
        return true;
    if (*kind == api::SpecKeyKind::Real)
        return false;
    qmh_panic("frontierAxisIsInteger: key '", key,
              "' is not a numeric axis");
}

namespace {

/** Axis states (lattice, coarse indices, empty seen-set); the axis
 *  keys must already be known numeric. */
std::vector<AxisState>
buildAxisStates(const std::vector<FrontierAxis> &axes, int max_depth)
{
    std::vector<AxisState> states;
    for (const auto &axis : axes) {
        AxisState state;
        state.axis = axis;
        state.integer = frontierAxisIsInteger(axis.key);
        state.lattice =
            frontierAxisLattice(axis, state.integer, max_depth);
        for (const double v : initialValues(axis, state.integer))
            state.coarse.push_back(latticeIndex(state.lattice, v));
        states.push_back(std::move(state));
    }
    return states;
}

/** Hard ceiling on round-0 enumeration: every coarse point is built
 *  and validated even when skipped (skipped points do not consume
 *  budget), so the cross product must stay bounded no matter what
 *  the budget says. */
constexpr std::size_t max_coarse_points = 100000;

/** Hard ceiling on one axis's materialized lattice: real axes grow
 *  as (coarse-1)*2^depth + 1, so otherwise-accepted flag values
 *  could demand gigabytes before the first simulation. */
constexpr std::uint64_t max_axis_lattice = 262145;  // 64 * 2^12 + 1

/** Upper bound on an axis's lattice size without building it. */
std::uint64_t
axisLatticeBound(const FrontierAxis &axis, bool integer_axis,
                 int max_depth)
{
    // (coarse-1) * 2^depth + 1; depth <= 20 and coarse <= 65 keep
    // this well inside 64 bits.
    std::uint64_t bound =
        ((static_cast<std::uint64_t>(axis.coarse) - 1)
         << std::min(max_depth, 40)) +
        1;
    if (integer_axis) {
        const double span =
            std::floor(axis.hi) - std::ceil(axis.lo) + 1.0;
        if (span < static_cast<double>(bound))
            bound = span <= 1.0 ? 1
                                : static_cast<std::uint64_t>(span);
    }
    return bound;
}

/** Coarse cross-product size, saturating at max_coarse_points + 1. */
std::size_t
coarseGridPoints(const std::vector<AxisState> &states)
{
    std::size_t total = 1;
    for (const auto &state : states) {
        if (total > (max_coarse_points + 1) / state.coarse.size())
            return max_coarse_points + 1;
        total *= state.coarse.size();
    }
    return total;
}

/** Build the round-0 candidates in grid order (first axis slowest);
 *  invalid points are skipped and counted. */
std::vector<Candidate>
initialCandidates(const api::ExperimentSpec &base,
                  const std::vector<AxisState> &axes,
                  std::size_t budget,
                  std::unordered_set<std::string> &known,
                  std::size_t &skipped_invalid)
{
    const std::size_t total = coarseGridPoints(axes);
    if (total > max_coarse_points)
        qmh_panic("frontierSearch: coarse grid exceeds ",
                  max_coarse_points,
                  " points (checked in validateFrontier)");

    std::vector<Candidate> batch;
    for (std::size_t index = 0; index < total; ++index) {
        if (known.size() >= budget)
            break;
        Candidate candidate;
        candidate.spec = base;
        candidate.coord.resize(axes.size());
        std::size_t stride = total;
        bool ok = true;
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const auto &state = axes[a];
            stride /= state.coarse.size();
            const std::size_t pick =
                (index / stride) % state.coarse.size();
            candidate.coord[a] = state.coarse[pick];
            const auto error = api::specSet(
                candidate.spec, state.axis.key,
                frontierAxisValueText(
                    state.lattice[candidate.coord[a]],
                    state.integer));
            if (!error.empty()) {
                ok = false;
                break;
            }
        }
        if (!ok ||
            !api::makeExperiment(candidate.spec)->validate().empty()) {
            ++skipped_invalid;
            continue;
        }
        candidate.key = api::printSpec(candidate.spec);
        if (!known.insert(candidate.key).second)
            continue;
        batch.push_back(std::move(candidate));
    }
    return batch;
}

/** Every diagnostic that does not require evaluating the grid. */
std::vector<std::string>
staticFrontierErrors(const api::ExperimentSpec &base,
                     const std::vector<FrontierAxis> &axes,
                     const FrontierOptions &options)
{
    std::vector<std::string> errors;
    if (axes.empty())
        errors.push_back("frontier: at least one --axis is required");
    std::unordered_set<std::string> axis_keys;
    for (const auto &axis : axes) {
        const auto kind = api::specKeyKind(axis.key);
        if (!kind) {
            errors.push_back("frontier: unknown axis key '" +
                             axis.key + "'");
            continue;
        }
        if (*kind != api::SpecKeyKind::Int &&
            *kind != api::SpecKeyKind::UInt &&
            *kind != api::SpecKeyKind::Real) {
            errors.push_back("frontier: axis '" + axis.key +
                             "' is not numeric — only Int/UInt/Real "
                             "keys can be refined");
            continue;
        }
        if (!(axis.lo < axis.hi))
            errors.push_back("frontier: axis '" + axis.key +
                             "' needs lo < hi");
        if (axis.coarse < 2 || axis.coarse > 65)
            errors.push_back("frontier: axis '" + axis.key +
                             "' coarse must be in [2, 65]");
        else if (axisLatticeBound(axis,
                                  *kind != api::SpecKeyKind::Real,
                                  std::clamp(options.max_depth, 0,
                                             20)) > max_axis_lattice)
            errors.push_back(
                "frontier: axis '" + axis.key +
                "' would materialize more than " +
                std::to_string(max_axis_lattice) +
                " lattice values — lower --depth or coarse");
        if (!axis_keys.insert(axis.key).second)
            errors.push_back("frontier: axis '" + axis.key +
                             "' given twice");
    }
    if (options.budget < 1)
        errors.push_back("frontier: budget must be >= 1");
    if (options.max_depth < 0 || options.max_depth > 20)
        errors.push_back("frontier: depth must be in [0, 20]");
    if (options.objective.empty()) {
        errors.push_back("frontier: an objective column is required");
    } else {
        const auto columns = api::makeExperiment(base)->columns();
        if (std::find(columns.begin(), columns.end(),
                      options.objective) == columns.end())
            errors.push_back("frontier: " +
                             std::string(api::kindName(base.kind)) +
                             " experiments have no column '" +
                             options.objective + "'");
        else if (options.objective == "spec")
            errors.push_back("frontier: 'spec' is not a numeric "
                             "objective");
    }
    if (!errors.empty())
        return errors;
    if (coarseGridPoints(buildAxisStates(axes, options.max_depth)) >
        max_coarse_points)
        errors.push_back("frontier: the coarse grid exceeds " +
                         std::to_string(max_coarse_points) +
                         " points — lower the axis coarse counts");
    return errors;
}

constexpr const char *no_valid_point_error =
    "frontier: no point of the coarse grid passes validation — "
    "adjust the axis ranges or the base spec";

} // namespace

std::vector<std::string>
validateFrontier(const api::ExperimentSpec &base,
                 const std::vector<FrontierAxis> &axes,
                 const FrontierOptions &options)
{
    auto errors = staticFrontierErrors(base, axes, options);
    if (!errors.empty())
        return errors;

    // The search can start only if the coarse grid contains at least
    // one valid point (individual invalid points are skipped).
    const auto states = buildAxisStates(axes, options.max_depth);
    std::unordered_set<std::string> known;
    std::size_t skipped = 0;
    if (initialCandidates(base, states, options.budget, known, skipped)
            .empty())
        errors.push_back(no_valid_point_error);
    return errors;
}

FrontierOutcome
frontierSearch(sweep::SweepRunner &runner,
               const api::ExperimentSpec &base,
               const std::vector<FrontierAxis> &axes,
               const FrontierOptions &options, ResultCache *cache)
{
    {
        const auto errors = staticFrontierErrors(base, axes, options);
        if (!errors.empty())
            qmh_panic("frontierSearch: ", errors.front());
    }

    auto states = buildAxisStates(axes, options.max_depth);

    const auto columns = api::makeExperiment(base)->columns();
    const std::size_t objective_col = static_cast<std::size_t>(
        std::find(columns.begin(), columns.end(), options.objective) -
        columns.begin());

    auto labelled = columns;
    labelled.emplace_back("seed");
    FrontierOutcome outcome;
    outcome.table = sweep::ResultTable(labelled);

    struct Eval
    {
        api::ExperimentSpec spec;
        std::string key;
        std::vector<std::size_t> coord;
        double raw = 0.0;    ///< objective as reported
        double score = 0.0;  ///< sign-adjusted, NaN mapped to -inf
    };
    std::vector<Eval> evals;
    std::unordered_set<std::string> known;

    auto batch = initialCandidates(base, states, options.budget, known,
                                   outcome.skipped_invalid);
    if (batch.empty())
        qmh_panic("frontierSearch: ", no_valid_point_error);

    while (!batch.empty()) {
        ++outcome.rounds;
        std::vector<api::ExperimentSpec> specs;
        specs.reserve(batch.size());
        for (const auto &candidate : batch)
            specs.push_back(candidate.spec);

        // Stream the round through a cancellable sweep: stop after
        // exactly the budget's remainder (proposal order, so the cut
        // is deterministic on any thread count), or when the caller's
        // observer asks out.
        CachedSweepControl control;
        control.row_limit = options.budget - evals.size();
        bool user_cancelled = false;
        if (options.on_progress) {
            const std::size_t round = outcome.rounds;
            const std::size_t before = evals.size();
            const std::size_t proposed = batch.size();
            control.on_row = [&options, &user_cancelled, round, before,
                              proposed](std::size_t done,
                                        std::size_t) {
                FrontierProgress progress;
                progress.round = round;
                progress.evaluated = before + done;
                progress.round_done = done;
                progress.round_total = proposed;
                if (options.on_progress(progress))
                    return true;
                user_cancelled = true;
                return false;
            };
        }
        const auto swept =
            runSpecSweepCached(runner, specs, cache, control);
        outcome.simulated += swept.simulated;
        outcome.cached += swept.cached;

        for (std::size_t j = 0; j < swept.table.rows(); ++j) {
            Eval eval;
            eval.spec = std::move(batch[j].spec);
            eval.key = std::move(batch[j].key);
            eval.coord = std::move(batch[j].coord);
            const auto number =
                swept.table.cell(j, objective_col).asNumber();
            eval.raw = number ? *number
                              : std::numeric_limits<double>::quiet_NaN();
            eval.score = number && !std::isnan(*number)
                             ? (options.maximize ? *number : -*number)
                             : -std::numeric_limits<double>::infinity();
            for (std::size_t a = 0; a < states.size(); ++a)
                states[a].seen.insert(eval.coord[a]);
            std::vector<sweep::Cell> row;
            row.reserve(labelled.size());
            for (std::size_t c = 0; c < labelled.size(); ++c)
                row.push_back(swept.table.cell(j, c));
            outcome.table.addRow(std::move(row));
            evals.push_back(std::move(eval));
        }
        if (user_cancelled) {
            outcome.cancelled = true;
            break;
        }
        if (evals.size() >= options.budget)
            break;

        // Rank everything evaluated so far; ties break on the
        // canonical spec string so the frontier is deterministic.
        std::vector<std::size_t> order(evals.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&evals](std::size_t a, std::size_t b) {
                      if (evals[a].score != evals[b].score)
                          return evals[a].score > evals[b].score;
                      return evals[a].key < evals[b].key;
                  });
        const std::size_t n_pick =
            options.frontier == 0
                ? order.size()
                : std::min(options.frontier, order.size());

        // Propose, per frontier point and axis, the adjacent explored
        // values (pattern-search moves) and the lattice midpoints
        // toward them (refinement); everything else stays fixed. The
        // batch is not trimmed to the budget here — the next round's
        // row_limit cuts it at exactly the remainder (the sweep
        // neither submits nor simulates past a static limit), which
        // evaluates the same prefix in the same order.
        batch.clear();
        for (std::size_t p = 0; p < n_pick; ++p) {
            const auto &eval = evals[order[p]];
            for (std::size_t a = 0; a < states.size(); ++a) {
                auto &state = states[a];
                const auto here = state.seen.find(eval.coord[a]);
                std::vector<std::size_t> proposals;
                if (here != state.seen.begin()) {
                    const std::size_t prev = *std::prev(here);
                    proposals.push_back(prev);
                    if (eval.coord[a] - prev >= 2)
                        proposals.push_back(
                            prev + (eval.coord[a] - prev) / 2);
                }
                if (const auto next = std::next(here);
                    next != state.seen.end()) {
                    if (*next - eval.coord[a] >= 2)
                        proposals.push_back(
                            eval.coord[a] +
                            (*next - eval.coord[a]) / 2);
                    proposals.push_back(*next);
                }
                for (const std::size_t q : proposals) {
                    Candidate candidate;
                    candidate.spec = eval.spec;
                    candidate.coord = eval.coord;
                    candidate.coord[a] = q;
                    const auto error = api::specSet(
                        candidate.spec, state.axis.key,
                        frontierAxisValueText(state.lattice[q],
                                              state.integer));
                    if (!error.empty()) {
                        ++outcome.skipped_invalid;
                        continue;
                    }
                    candidate.key = api::printSpec(candidate.spec);
                    if (known.count(candidate.key))
                        continue;
                    if (!api::makeExperiment(candidate.spec)
                             ->validate()
                             .empty()) {
                        ++outcome.skipped_invalid;
                        known.insert(candidate.key);
                        continue;
                    }
                    known.insert(candidate.key);
                    batch.push_back(std::move(candidate));
                }
            }
        }
    }

    outcome.evaluated = evals.size();
    if (evals.empty())
        qmh_panic("frontierSearch: no point was evaluated despite a "
                  "validated configuration");
    const auto best = std::min_element(
        evals.begin(), evals.end(), [](const Eval &a, const Eval &b) {
            if (a.score != b.score)
                return a.score > b.score;
            return a.key < b.key;
        });
    outcome.best = best->spec;
    outcome.best_key = best->key;
    outcome.best_objective = best->raw;
    outcome.table.sortRowsByColumn(objective_col, options.maximize);
    return outcome;
}

} // namespace opt
} // namespace qmh
