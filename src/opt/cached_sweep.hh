/**
 * @file
 * Cache-aware spec sweeps.
 *
 * runSpecSweepCached() is api::runSpecSweep with a memo in front:
 * points whose canonical spec string is already in the ResultCache
 * replay their stored rows; only the misses fan across the worker
 * pool, and their results are inserted afterwards. Per-point RNG
 * streams come from opt::specSeed — a function of the spec string
 * rather than the grid index — so a row is the same no matter which
 * sweep, ordering or refinement round requests it, which is what
 * makes replay bit-identical (the one deliberate difference from the
 * index-seeded api::runSpecSweep).
 */

#ifndef QMH_OPT_CACHED_SWEEP_HH
#define QMH_OPT_CACHED_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "api/experiment.hh"
#include "opt/result_cache.hh"

namespace qmh {
namespace opt {

/** A cached sweep's table plus where its rows came from. */
struct CachedSweepOutcome
{
    /** Kind columns plus a trailing "seed" column, rows in spec order. */
    sweep::ResultTable table{{"spec", "seed"}};
    /** Points executed by an engine this call. */
    std::size_t simulated = 0;
    /** Points replayed from the cache (or repeated within the list). */
    std::size_t cached = 0;
    /** True when the sweep stopped before incorporating every spec. */
    bool cancelled = false;
};

/**
 * Mid-sweep control: progress observation and early termination.
 * Rows are *incorporated* — appended to the outcome table, counted,
 * and (for simulated points) upserted into the cache — strictly in
 * spec order, so both cutoffs are deterministic for a fixed spec
 * list on any thread count: the outcome is always a prefix of the
 * uncontrolled sweep. Points already in flight when the cutoff hits
 * finish but are discarded un-incorporated (and never cached).
 */
struct CachedSweepControl
{
    /** Incorporate at most this many rows; 0 = no limit. */
    std::size_t row_limit = 0;
    /**
     * Called after each incorporated row with (rows done so far,
     * total specs); return false to cancel the rest of the sweep.
     */
    std::function<bool(std::size_t done, std::size_t total)> on_row;
};

/**
 * Run every spec, consulting (and filling) @p cache. All specs must
 * validate and share one kind — violations panic, like runSpecSweep.
 * @p cache may be null (every point simulates; nothing persists).
 * Rows land in spec order and are bit-identical across thread counts
 * and across cold/warm invocations with the same base seed. Misses
 * run as an api::Session job, so @p control can watch rows stream in
 * and cut the sweep short with a deterministic prefix.
 */
CachedSweepOutcome
runSpecSweepCached(sweep::SweepRunner &runner,
                   const std::vector<api::ExperimentSpec> &specs,
                   ResultCache *cache = nullptr,
                   const CachedSweepControl &control = {});

} // namespace opt
} // namespace qmh

#endif // QMH_OPT_CACHED_SWEEP_HH
