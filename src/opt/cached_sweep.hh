/**
 * @file
 * Cache-aware spec sweeps.
 *
 * runSpecSweepCached() is api::runSpecSweep with a memo in front:
 * points whose canonical spec string is already in the ResultCache
 * replay their stored rows; only the misses fan across the worker
 * pool, and their results are inserted afterwards. Per-point RNG
 * streams come from opt::specSeed — a function of the spec string
 * rather than the grid index — so a row is the same no matter which
 * sweep, ordering or refinement round requests it, which is what
 * makes replay bit-identical (the one deliberate difference from the
 * index-seeded api::runSpecSweep).
 */

#ifndef QMH_OPT_CACHED_SWEEP_HH
#define QMH_OPT_CACHED_SWEEP_HH

#include <cstddef>
#include <vector>

#include "api/experiment.hh"
#include "opt/result_cache.hh"

namespace qmh {
namespace opt {

/** A cached sweep's table plus where its rows came from. */
struct CachedSweepOutcome
{
    /** Kind columns plus a trailing "seed" column, rows in spec order. */
    sweep::ResultTable table{{"spec", "seed"}};
    /** Points executed by an engine this call. */
    std::size_t simulated = 0;
    /** Points replayed from the cache (or repeated within the list). */
    std::size_t cached = 0;
};

/**
 * Run every spec, consulting (and filling) @p cache. All specs must
 * validate and share one kind — violations panic, like runSpecSweep.
 * @p cache may be null (every point simulates; nothing persists).
 * Rows land in spec order and are bit-identical across thread counts
 * and across cold/warm invocations with the same base seed.
 */
CachedSweepOutcome
runSpecSweepCached(sweep::SweepRunner &runner,
                   const std::vector<api::ExperimentSpec> &specs,
                   ResultCache *cache = nullptr);

} // namespace opt
} // namespace qmh

#endif // QMH_OPT_CACHED_SWEEP_HH
