#include "result_cache.hh"

#include <algorithm>
#include <filesystem>

#include "common/logging.hh"
#include "sweep/sweep.hh"

namespace qmh {
namespace opt {

namespace {

constexpr int format_version = 1;

/**
 * Minimal scanner over one JSONL line. The cache only ever reads
 * files it wrote, so the grammar is exactly the writer's output
 * (fixed key order, no insignificant whitespace); anything else is
 * reported as corruption rather than guessed at.
 */
class LineScanner
{
  public:
    explicit LineScanner(std::string_view line) : _rest(line) {}

    bool literal(std::string_view expect)
    {
        if (_rest.substr(0, expect.size()) != expect)
            return false;
        _rest.remove_prefix(expect.size());
        return true;
    }

    /** JSON string literal (the escapes jsonQuote emits). */
    bool string(std::string &out)
    {
        out.clear();
        if (!literal("\""))
            return false;
        while (!_rest.empty() && _rest.front() != '"') {
            char c = _rest.front();
            _rest.remove_prefix(1);
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_rest.empty())
                return false;
            const char esc = _rest.front();
            _rest.remove_prefix(1);
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                // jsonQuote only emits \u00XX for control bytes.
                if (_rest.size() < 4 || _rest[0] != '0' ||
                    _rest[1] != '0')
                    return false;
                int value = 0;
                for (int i = 2; i < 4; ++i) {
                    const char h = _rest[i];
                    value <<= 4;
                    if (h >= '0' && h <= '9')
                        value += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        value += h - 'a' + 10;
                    else
                        return false;
                }
                out += static_cast<char>(value);
                _rest.remove_prefix(4);
                break;
            }
            default:
                return false;
            }
        }
        return literal("\"");
    }

    bool uint(std::uint64_t &out)
    {
        std::string digits;
        if (!string(digits) || digits.empty())
            return false;
        out = 0;
        for (const char c : digits) {
            if (c < '0' || c > '9')
                return false;
            const std::uint64_t next = out * 10 + (c - '0');
            if (next / 10 != out)
                return false;
            out = next;
        }
        return true;
    }

    bool done() const { return _rest.empty(); }

  private:
    std::string_view _rest;
};

std::string
quotedUint(std::uint64_t v)
{
    // Full 64-bit values do not survive as JSON numbers in common
    // tooling (doubles carry 53 bits), so seeds travel as strings.
    return "\"" + std::to_string(v) + "\"";
}

std::string
entryLine(const std::string &spec_key, const CachedResult &entry)
{
    std::string tags;
    for (const auto &cell : entry.row)
        tags += cell.typeTag();
    std::string out = "{\"spec\":" + sweep::jsonQuote(spec_key) +
                      ",\"seed\":" + quotedUint(entry.seed) +
                      ",\"tags\":" + sweep::jsonQuote(tags) +
                      ",\"row\":[";
    for (std::size_t i = 0; i < entry.row.size(); ++i) {
        if (i)
            out += ',';
        out += sweep::jsonQuote(entry.row[i].toString());
    }
    out += "]}";
    return out;
}

std::string
headerLine(std::uint64_t base_seed)
{
    return "{\"qmh_result_cache\":" + std::to_string(format_version) +
           ",\"base_seed\":" + quotedUint(base_seed) + "}";
}

bool
parseEntry(std::string_view line, std::string &spec_key,
           CachedResult &entry)
{
    LineScanner scan(line);
    std::string tags;
    if (!scan.literal("{\"spec\":") || !scan.string(spec_key) ||
        !scan.literal(",\"seed\":") || !scan.uint(entry.seed) ||
        !scan.literal(",\"tags\":") || !scan.string(tags) ||
        !scan.literal(",\"row\":["))
        return false;
    entry.row.clear();
    entry.row.reserve(tags.size());
    for (std::size_t i = 0; i < tags.size(); ++i) {
        if (i && !scan.literal(","))
            return false;
        std::string text;
        if (!scan.string(text))
            return false;
        auto cell = sweep::Cell::fromTagged(tags[i], std::move(text));
        if (!cell)
            return false;
        entry.row.push_back(std::move(*cell));
    }
    return scan.literal("]}") && scan.done();
}

} // namespace

std::uint64_t
specSeed(std::uint64_t base_seed, std::string_view canonical_spec)
{
    // Forwarder kept as the documented spec-addressed name; the FNV
    // fold itself lives with the other seeding primitives in sweep.
    return sweep::keySeed(base_seed, canonical_spec);
}

std::string
ResultCache::open(const std::string &path, std::uint64_t base_seed)
{
    if (_backed)
        return "ResultCache: already open on '" + _path + "'";

    // Load into locals and commit only on success: a rejected file
    // must leave the cache untouched (still usable in memory, still
    // openable elsewhere), and must never be appended to with state
    // its header does not declare.
    std::unordered_map<std::string, CachedResult> entries;
    bool saw_header = false;

    if (std::filesystem::exists(path)) {
        // A directory "opens" fine and then fails every read, which
        // would masquerade as an empty cache that never persists.
        if (!std::filesystem::is_regular_file(path))
            return "cache path '" + path + "' is not a regular file";
        std::ifstream in(path);
        if (!in)
            return "cannot read cache file '" + path + "'";

        std::string line;
        std::size_t line_no = 0;
        while (std::getline(in, line)) {
            ++line_no;
            if (line.empty())
                continue;
            if (!saw_header) {
                LineScanner scan(line);
                std::uint64_t file_seed = 0;
                if (!scan.literal("{\"qmh_result_cache\":" +
                                  std::to_string(format_version)) ||
                    !scan.literal(",\"base_seed\":") ||
                    !scan.uint(file_seed) || !scan.literal("}") ||
                    !scan.done())
                    return "'" + path + "' is not a qmh result " +
                           "cache (bad header)";
                if (file_seed != base_seed)
                    return "cache file '" + path +
                           "' was built with base seed " +
                           std::to_string(file_seed) +
                           ", this run uses " +
                           std::to_string(base_seed) +
                           " — cached rows would not replay "
                           "bit-identically";
                saw_header = true;
                continue;
            }
            std::string spec_key;
            CachedResult entry;
            if (!parseEntry(line, spec_key, entry))
                return "corrupt cache entry at " + path + ":" +
                       std::to_string(line_no);
            if (entry.seed != specSeed(base_seed, spec_key))
                return "cache entry at " + path + ":" +
                       std::to_string(line_no) +
                       " carries a seed that does not match its spec";
            // Last-wins: upsert() appends the repaired version of a
            // stale entry, so a later line for a key supersedes an
            // earlier one.
            entries[std::move(spec_key)] = std::move(entry);
        }
        if (in.bad())
            return "read error while loading cache file '" + path +
                   "'";
    }

    // Entries memoized before open() (in-memory phase) are kept; a
    // key present in both stays with the file's row, which the seed
    // check above proved replayable.
    entries.merge(_entries);
    _entries = std::move(entries);
    _path = path;
    _base_seed = base_seed;
    _backed = true;
    _needs_header = !saw_header;
    return "";
}

const CachedResult *
ResultCache::lookup(const std::string &spec_key) const
{
    const auto it = _entries.find(spec_key);
    return it == _entries.end() ? nullptr : &it->second;
}

bool
ResultCache::insert(const std::string &spec_key, std::uint64_t seed,
                    std::vector<sweep::Cell> row)
{
    if (_entries.count(spec_key))
        return false;
    upsert(spec_key, seed, std::move(row));
    return true;
}

std::vector<std::string>
ResultCache::sortedKeys() const
{
    std::vector<std::string> keys;
    keys.reserve(_entries.size());
    // qmh-lint: allow(ordered-iteration): order-erasing walk — the keys are sorted below before anything iterates them
    for (const auto &kv : _entries)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

std::string
ResultCache::compact()
{
    if (!_backed)
        return "ResultCache: compact() needs an open backing file";

    // The append handle may hold buffered state on some platforms;
    // close it so the rename below swaps in a complete file.
    if (_append.is_open())
        _append.close();

    const std::string tmp = _path + ".compact.tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            return "ResultCache: cannot write '" + tmp + "'";
        out << headerLine(_base_seed) << '\n';
        for (const auto &key : sortedKeys())
            out << entryLine(key, _entries.at(key)) << '\n';
        out.flush();
        if (!out)
            return "ResultCache: write to '" + tmp + "' failed";
    }

    std::error_code ec;
    std::filesystem::rename(tmp, _path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return "ResultCache: cannot replace '" + _path +
               "' with its compacted form";
    }
    _needs_header = false;
    return "";
}

void
ResultCache::upsert(const std::string &spec_key, std::uint64_t seed,
                    std::vector<sweep::Cell> row)
{
    auto &entry = _entries[spec_key];
    entry.seed = seed;
    entry.row = std::move(row);
    if (_backed) {
        if (!_append.is_open()) {
            _append.open(_path, std::ios::app);
            if (_append && _needs_header) {
                _append << headerLine(_base_seed) << '\n';
                _needs_header = false;
            }
        }
        if (_append) {
            // Flush per entry: a cancelled sweep keeps every point it
            // already paid for.
            _append << entryLine(spec_key, entry) << '\n';
            _append.flush();
        }
        if (!_append)
            warn("ResultCache: append to '", _path,
                 "' failed; results from this run will not persist");
    }
}

} // namespace opt
} // namespace qmh
