/**
 * @file
 * Spec-keyed memoization of experiment results.
 *
 * Every row an api::Experiment produces is a pure function of
 * (canonical spec string, RNG seed) — the facade's exact-round-trip
 * printer makes the spec string a sound identity, and specSeed()
 * derives the seed from that same string. A ResultCache therefore
 * memoizes rows under the canonical spec string alone and replays
 * them bit-identically: repeated CLI / bench / optimizer invocations
 * skip every already-simulated point.
 *
 * Persistence is JSON-lines: one header object naming the format and
 * the base seed, then one object per cached row. The file is loaded
 * on open() and appended on every insert, so a cache is durable
 * across processes without a rewrite step. Cells are stored as
 * (type-tag, exact text) pairs — doubles in shortest round-trip form
 * — so a replayed row is indistinguishable from a fresh one down to
 * the variant alternative.
 */

#ifndef QMH_OPT_RESULT_CACHE_HH
#define QMH_OPT_RESULT_CACHE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sweep/emit.hh"

namespace qmh {
namespace opt {

/**
 * Deterministic spec-addressed seed: sweep::pointSeed over an FNV-1a
 * hash of the canonical spec string instead of a grid index. Unlike
 * index-addressed seeds, the stream a spec receives is independent of
 * which sweep, grid order or refinement round asked for it — the
 * property that makes cached rows replayable at all.
 */
std::uint64_t specSeed(std::uint64_t base_seed,
                       std::string_view canonical_spec);

/** One memoized experiment row (engine columns, no seed column). */
struct CachedResult
{
    std::uint64_t seed = 0;
    std::vector<sweep::Cell> row;
};

/**
 * In-memory spec-string -> row map with optional JSONL backing.
 * Single-writer: the sweep coordinators look up and insert from one
 * thread; worker threads never touch the cache.
 */
class ResultCache
{
  public:
    /** An unbacked, in-memory-only cache. */
    ResultCache() = default;

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Bind to @p path and load any existing entries. A missing file
     * is an empty cache (created on first insert). Returns the empty
     * string on success, otherwise a diagnostic: unreadable or
     * corrupt lines, a foreign header, a base-seed mismatch, or an
     * entry whose stored seed disagrees with specSeed() — any of
     * which would silently break bit-identical replay if ignored.
     */
    std::string open(const std::string &path, std::uint64_t base_seed);

    bool backed() const { return _backed; }
    const std::string &path() const { return _path; }
    std::uint64_t baseSeed() const { return _base_seed; }
    std::size_t size() const { return _entries.size(); }

    /** Cached result for @p spec_key; nullptr on miss. */
    const CachedResult *lookup(const std::string &spec_key) const;

    /**
     * Memoize @p row for @p spec_key (appending to the backing file
     * when there is one). Returns false — and changes nothing — when
     * the key is already present.
     */
    bool insert(const std::string &spec_key, std::uint64_t seed,
                std::vector<sweep::Cell> row);

    /**
     * Like insert(), but an existing entry is overwritten (and the
     * replacement appended; reload is last-wins). This is how a
     * stale entry — one whose row no longer matches the experiment's
     * schema — gets repaired instead of shadowing every future run.
     */
    void upsert(const std::string &spec_key, std::uint64_t seed,
                std::vector<sweep::Cell> row);

    /**
     * Ordered snapshot of every memoized spec key. The entry map is
     * unordered (lookup is the hot path); any walk that can reach an
     * output channel goes through this sorted copy so hash-map layout
     * never leaks into bytes (the ordered-iteration lint contract).
     */
    std::vector<std::string> sortedKeys() const;

    /**
     * Rewrite the backing file in one pass: header, then one line per
     * live entry in sorted key order. Drops the superseded lines that
     * upsert()'s append-only repair leaves behind, so equal cache
     * contents produce byte-identical files no matter what
     * insert/upsert history built them. The rewrite goes through a
     * temp file and an atomic rename — a crash mid-compact leaves the
     * original file intact. Returns "" on success, else a diagnostic
     * (unbacked cache, unwritable temp file, failed rename).
     */
    std::string compact();

  private:
    std::unordered_map<std::string, CachedResult> _entries;
    std::string _path;
    std::uint64_t _base_seed = 0;
    bool _backed = false;
    bool _needs_header = false;
    std::ofstream _append;
};

} // namespace opt
} // namespace qmh

#endif // QMH_OPT_RESULT_CACHE_HH
