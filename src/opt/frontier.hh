/**
 * @file
 * Coarse-to-fine adaptive search over numeric spec axes.
 *
 * The paper's design exercise — pick the hierarchy parameters that
 * match available parallelism — is a search, not a table: most of an
 * exhaustive SpecGrid is spent simulating points far from the
 * optimum. frontierSearch() starts from a coarse grid, ranks the
 * evaluated points by an objective column, and repeatedly refines
 * around the current frontier (the top-ranked points): each round
 * proposes, per frontier point and axis, the adjacent explored
 * values and the midpoints toward them on a fixed dyadic lattice.
 * Refinement stops when the lattice is exhausted (adjacent indices),
 * the point budget is hit, or no new candidate survives validation.
 *
 * Every candidate value lives on the axis lattice — the initial
 * coarse samples plus max_depth generations of interval bisection —
 * so the reachable design space is exactly the cross product of
 * per-axis lattices: with frontier = 0 ("refine everything") and an
 * exhaustive budget the search enumerates that whole grid and its
 * optimum equals brute force by construction, while the default
 * greedy frontier reaches the same optimum on well-behaved
 * objectives with a fraction of the simulations.
 *
 * Evaluation goes through runSpecSweepCached: points are keyed and
 * seeded by canonical spec string, so a ResultCache makes repeated
 * searches incremental and results are bit-identical on 1 or N
 * threads.
 */

#ifndef QMH_OPT_FRONTIER_HH
#define QMH_OPT_FRONTIER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "opt/cached_sweep.hh"

namespace qmh {
namespace opt {

/** One numeric interval the search may refine. */
struct FrontierAxis
{
    std::string key;  ///< spec key of kind Int, UInt or Real
    double lo = 0.0;
    double hi = 0.0;
    int coarse = 3;   ///< initial samples across [lo, hi] (>= 2)
};

/** Live search state, reported once per incorporated point. */
struct FrontierProgress
{
    std::size_t round = 0;        ///< 1-based refinement round
    std::size_t evaluated = 0;    ///< points incorporated, all rounds
    std::size_t round_done = 0;   ///< points incorporated this round
    std::size_t round_total = 0;  ///< points proposed this round
};

/** Search configuration. */
struct FrontierOptions
{
    std::string objective;    ///< result column to optimize
    bool maximize = true;
    int max_depth = 4;        ///< bisection generations per interval
    std::size_t budget = 256; ///< max unique points evaluated
    /** Top-ranked points refined per round; 0 = refine every point
     *  (exhaustive lattice enumeration under a generous budget). */
    std::size_t frontier = 3;
    /**
     * Streamed per incorporated point; return false to cancel the
     * search (the in-flight round's remaining points are abandoned
     * and the outcome ranks what was incorporated so far, which is
     * deterministic for a deterministic callback). Not part of the
     * search's identity: a pure observer changes nothing.
     */
    std::function<bool(const FrontierProgress &)> on_progress;
};

/** What the search found and what it cost. */
struct FrontierOutcome
{
    /** Every evaluated point (kind columns + "seed"), best first. */
    sweep::ResultTable table{{"spec", "seed"}};
    api::ExperimentSpec best;
    std::string best_key;           ///< canonical spec of best
    double best_objective = 0.0;    ///< raw objective value of best
    std::size_t evaluated = 0;      ///< unique points evaluated
    std::size_t simulated = 0;      ///< of those, engine executions
    std::size_t cached = 0;         ///< of those, cache replays
    std::size_t rounds = 0;
    std::size_t skipped_invalid = 0; ///< candidates failing validate()
    bool cancelled = false;          ///< on_progress stopped the search
};

/**
 * The full dyadic value lattice of @p axis: its coarse samples plus
 * @p max_depth generations of adjacent-pair midpoints, sorted.
 * Integer axes round every value and drop collisions. This is the
 * exact value universe frontierSearch() explores — a SpecGrid over
 * these values is the matching brute force.
 */
std::vector<double> frontierAxisLattice(const FrontierAxis &axis,
                                        bool integer_axis,
                                        int max_depth);

/** Canonical spec text for @p value on this axis. */
std::string frontierAxisValueText(double value, bool integer_axis);

/** True for Int/UInt spec keys; panics on unknown or non-numeric. */
bool frontierAxisIsInteger(const std::string &key);

/**
 * Static diagnostics for a search: unknown / non-numeric axis keys,
 * empty or inverted intervals, degenerate options, oversized coarse
 * grids or lattices, an objective the experiment kind does not emit,
 * or an initial grid with no valid point. Empty means
 * frontierSearch() will run. The no-valid-point check enumerates the
 * coarse grid the same way the search's first round will (both are
 * capped at 100k points), so CLI-style validate-then-run pays that
 * bounded enumeration twice by design.
 */
std::vector<std::string>
validateFrontier(const api::ExperimentSpec &base,
                 const std::vector<FrontierAxis> &axes,
                 const FrontierOptions &options);

/**
 * Run the adaptive search (panics on validateFrontier diagnostics;
 * call it first for recoverable errors). @p cache may be null.
 * Deterministic for a fixed (base spec, axes, options, base seed):
 * the same points are evaluated in the same order on any thread
 * count, and a warm cache changes only simulated/cached counts.
 * Rounds run as cancellable session sweeps: when a round would
 * overrun the point budget it is cut off mid-flight after exactly
 * the budgeted number of rows (in proposal order), instead of
 * simulating the whole round and discarding the excess.
 */
FrontierOutcome
frontierSearch(sweep::SweepRunner &runner,
               const api::ExperimentSpec &base,
               const std::vector<FrontierAxis> &axes,
               const FrontierOptions &options,
               ResultCache *cache = nullptr);

} // namespace opt
} // namespace qmh

#endif // QMH_OPT_FRONTIER_HH
