#include "server.hh"

#include <poll.h>

#include "api/service.hh"

namespace qmh {
namespace server {

Server::Server(ServerConfig config)
    : _config(std::move(config)),
      _session(sweep::SweepOptions{_config.threads,
                                   _config.base_seed}),
      _cache(_config.base_seed, _config.cache)
{
}

Server::~Server() = default;

api::Outcome<std::unique_ptr<Server>>
Server::create(ServerConfig config)
{
    std::unique_ptr<Server> server(new Server(std::move(config)));
    if (!server->_loop.valid())
        return api::Error{api::ErrorCode::Unavailable,
                          "cannot create the event-loop wakeup pipe",
                          {}};
    if (!server->_config.cache_path.empty()) {
        const auto problem =
            server->_cache.open(server->_config.cache_path);
        if (!problem.empty())
            return api::Error{api::ErrorCode::Unavailable,
                              "cache '" +
                                  server->_config.cache_path +
                                  "': " + problem,
                              {}};
    }
    auto listener = Listener::create(server->_config.host,
                                     server->_config.port);
    if (!listener.ok())
        return listener.error();
    server->_listener = std::move(listener).value();
    return server;
}

void
Server::acceptPending()
{
    for (;;) {
        Fd client = _listener.accept();
        if (!client.valid())
            return;
        if (_connections.size() >= _config.max_clients) {
            // A typed refusal the client can parse; one best-effort
            // send — a refused client gets no flow control.
            const auto record =
                api::recordError(
                    "", api::Error{api::ErrorCode::Unavailable,
                                   "server at capacity (" +
                                       std::to_string(
                                           _config.max_clients) +
                                       " clients)",
                                   {}}) +
                "\n";
            sendSome(client.get(), record.data(), record.size());
            ++_stats.rejected;
            continue;
        }
        ++_stats.accepted;
        auto connection = std::make_unique<Connection>(
            std::move(client), _session, _loop, &_cache,
            _config.connection);
        Connection *raw = connection.get();
        _loop.add(raw->fd(), raw->wantedEvents(),
                  [raw](short revents) { raw->onEvent(revents); });
        _connections.push_back(std::move(connection));
    }
}

void
Server::absorb(const ConnectionStats &stats)
{
    _stats.requests += stats.requests;
    _stats.rows += stats.rows;
    _stats.errors += stats.errors;
    _stats.simulated += stats.simulated;
}

void
Server::cycle()
{
    bool shutdown = false;
    std::vector<std::unique_ptr<Connection>> alive;
    alive.reserve(_connections.size());
    for (auto &connection : _connections) {
        connection->pump();
        if (connection->shutdownFlushed())
            shutdown = true;
        if (connection->finished()) {
            absorb(connection->stats());
            _loop.remove(connection->fd());
            continue; // destroys the connection (cancels its job)
        }
        _loop.setEvents(connection->fd(),
                        connection->wantedEvents());
        alive.push_back(std::move(connection));
    }
    _connections = std::move(alive);
    if (shutdown)
        _loop.stop();
}

void
Server::serve()
{
    _loop.add(_listener.fd(), POLLIN,
              [this](short) { acceptPending(); });
    _loop.run([this]() { cycle(); });
    _loop.remove(_listener.fd());
}

void
Server::stop()
{
    _loop.stop();
}

ServerStats
Server::stats() const
{
    ServerStats stats = _stats;
    for (const auto &connection : _connections) {
        const auto &live = connection->stats();
        stats.requests += live.requests;
        stats.rows += live.rows;
        stats.errors += live.errors;
        stats.simulated += live.simulated;
    }
    stats.cache = _cache.stats();
    return stats;
}

} // namespace server
} // namespace qmh
