/**
 * @file
 * The experiment server: many concurrent JSONL clients over one
 * api::Session worker pool and one SharedCache.
 *
 * Composition (single loop thread, workers only simulate):
 *
 *   Listener ──accept──▶ Connection (one per client)
 *       │                    │  parse → Session jobs → records
 *   EventLoop ◀─wakeup()─ pool workers (SubmitOptions::on_retire)
 *       │                    │
 *       └── cycle(): every connection pumps — bounded work each,
 *           registration order, so no client can starve another.
 *
 * Capacity: at most max_clients concurrent connections; an accept
 * beyond that is answered with a single "unavailable" error record
 * and closed — a typed refusal, not a silent drop. Every client's
 * bytes follow the api/service.hh protocol exactly (same formatters
 * as stdio qmh_service), and a {"op":"shutdown"} request from any
 * client stops serve() once its done record is flushed.
 *
 * Destruction order matters and is pinned by member order: the
 * EventLoop is declared first (destroyed last) because pool workers
 * ring its wakeup pipe from on_retire hooks; the Session is
 * destroyed before the loop, and its teardown cancels jobs and joins
 * the pool, after which nothing can touch the pipe.
 */

#ifndef QMH_SERVER_SERVER_HH
#define QMH_SERVER_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/session.hh"
#include "server/connection.hh"
#include "server/event_loop.hh"
#include "server/shared_cache.hh"
#include "server/socket.hh"

namespace qmh {
namespace server {

struct ServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral; see Server::port()
    unsigned threads = 0;   ///< pool size; 0 = hardware threads
    std::uint64_t base_seed = 0x243F6A8885A308D3ULL;
    std::size_t max_clients = 64;
    std::string cache_path;  ///< persistent tier; "" = memory only
    SharedCacheConfig cache; ///< memory-tier shape
    ConnectionConfig connection;
};

/** Lifetime totals (finished connections included). */
struct ServerStats
{
    std::size_t accepted = 0;  ///< connections admitted
    std::size_t rejected = 0;  ///< refused at max_clients
    std::size_t requests = 0;  ///< well-formed requests served
    std::size_t rows = 0;      ///< row records written
    std::size_t errors = 0;    ///< error records written
    std::size_t simulated = 0; ///< points actually run
    SharedCacheStats cache;
};

class Server
{
  public:
    /**
     * Bind and get ready to serve. Typed errors (Unavailable) for a
     * refused bind, an unparseable host, an unopenable cache file or
     * a failed self-pipe; never a panic for environment problems.
     */
    [[nodiscard]] static api::Outcome<std::unique_ptr<Server>>
    create(ServerConfig config);

    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (resolves port 0 to the real ephemeral one). */
    std::uint16_t port() const { return _listener.boundPort(); }

    /**
     * Serve until a client's shutdown request (or stop()). Runs on
     * the calling thread; everything socket-side happens here.
     */
    void serve();

    /** Thread-safe: end serve() after its current cycle. */
    void stop();

    /** Totals so far (call after serve() for the final numbers). */
    ServerStats stats() const;

    SharedCache &cache() { return _cache; }

  private:
    explicit Server(ServerConfig config);

    void acceptPending();
    void cycle();
    /** Fold a finished connection's counters into the totals. */
    void absorb(const ConnectionStats &stats);

    ServerConfig _config;

    // Destroyed last: workers ring its pipe until the Session (and
    // with it the pool) is torn down below.
    EventLoop _loop;
    api::Session _session;
    SharedCache _cache;
    Listener _listener;
    std::vector<std::unique_ptr<Connection>> _connections;
    ServerStats _stats;
};

} // namespace server
} // namespace qmh

#endif // QMH_SERVER_SERVER_HH
