/**
 * @file
 * opt::ResultCache promoted to a concurrent, bounded, shared tier.
 *
 * The optimizer's ResultCache is single-writer by design: one sweep
 * coordinator looks up and inserts from one thread. A multi-client
 * server breaks both assumptions — every connection consults the
 * cache, and worker retirement feeds it from the loop thread while
 * other requests read — so SharedCache layers two tiers:
 *
 *  - a sharded in-memory LRU front (key-hash striping picks the
 *    shard, each shard holds its own mutex and recency list, so
 *    concurrent lookups of different keys never contend), bounded to
 *    capacity_per_shard entries — eviction drops the least recently
 *    used entry of the full shard;
 *  - the persistent opt::ResultCache behind one mutex, unchanged
 *    JSONL format (a qmh_serve cache file and an optimizer --cache
 *    file are interchangeable). Eviction never touches this tier: a
 *    backed entry evicted from memory reloads on the next lookup; an
 *    unbacked one is re-simulated.
 *
 * Keys are canonical spec strings and rows are spec-seeded
 * (opt::specSeed), the same identity ResultCache documents — only
 * requests with seed_mode "spec" and a base seed equal to baseSeed()
 * may consult a SharedCache, which is what keeps a cache-served row
 * byte-identical to a freshly simulated one.
 */

#ifndef QMH_SERVER_SHARED_CACHE_HH
#define QMH_SERVER_SHARED_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "opt/result_cache.hh"

namespace qmh {
namespace server {

/** Shape of the in-memory tier. */
struct SharedCacheConfig
{
    std::size_t shards = 8;             ///< lock stripes (min 1)
    std::size_t capacity_per_shard = 512; ///< LRU bound (min 1)
};

/** Monotonic counters (aggregated over shards on read). */
struct SharedCacheStats
{
    std::size_t hits = 0;       ///< lookup served (either tier)
    std::size_t misses = 0;     ///< lookup found nothing
    std::size_t inserts = 0;    ///< new entries accepted
    std::size_t evictions = 0;  ///< LRU drops from the memory tier
    std::size_t promotions = 0; ///< persistent-tier hits re-homed
    std::size_t resident = 0;   ///< entries in memory now
    std::size_t persisted = 0;  ///< entries in the backing cache
};

class SharedCache
{
  public:
    explicit SharedCache(std::uint64_t base_seed,
                         SharedCacheConfig config = {});

    /**
     * Bind the persistent tier to @p path (opt::ResultCache::open
     * semantics: load existing entries, verify header and seeds).
     * Empty string on success, else the diagnostic. Call before the
     * cache is shared; open() itself is not concurrency-safe.
     */
    std::string open(const std::string &path);

    std::uint64_t baseSeed() const { return _base_seed; }
    bool backed() const;

    /**
     * Cached row for @p spec_key (engine columns, no seed cell), or
     * nullopt. A persistent-tier hit is promoted into the shard so
     * repeat traffic stays off the big lock. Thread-safe.
     */
    std::optional<opt::CachedResult>
    lookup(const std::string &spec_key);

    /**
     * Memoize @p row under @p spec_key; first writer wins (a
     * concurrent duplicate insert is dropped, matching ResultCache).
     * Returns whether the entry was new. Thread-safe.
     */
    bool insert(const std::string &spec_key, std::uint64_t seed,
                std::vector<sweep::Cell> row);

    SharedCacheStats stats() const;

    /**
     * Memory-tier keys, most recent first per shard, shards in
     * index order — the deterministic recency walk the eviction
     * tests pin (use shards = 1 for a total order).
     */
    std::vector<std::string> residentKeys() const;

  private:
    struct Entry
    {
        std::string key;
        opt::CachedResult result;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< front = most recently used
        std::unordered_map<std::string, std::list<Entry>::iterator>
            index;
        std::size_t hits = 0;
        std::size_t misses = 0;
        std::size_t inserts = 0;
        std::size_t evictions = 0;
        std::size_t promotions = 0;
    };

    Shard &shardFor(const std::string &spec_key);
    /** Insert into @p shard's LRU (lock held), evicting past cap. */
    void placeLocked(Shard &shard, const std::string &spec_key,
                     opt::CachedResult result);

    std::uint64_t _base_seed;
    SharedCacheConfig _config;
    std::vector<std::unique_ptr<Shard>> _shards;

    mutable std::mutex _persistent_mutex;
    opt::ResultCache _persistent;
};

} // namespace server
} // namespace qmh

#endif // QMH_SERVER_SHARED_CACHE_HH
