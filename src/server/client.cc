#include "client.hh"

#include <sys/socket.h>

#include "sweep/emit.hh"

namespace qmh {
namespace server {

namespace {

api::Error
unavailable(std::string message)
{
    return api::Error{api::ErrorCode::Unavailable,
                      std::move(message),
                      {}};
}

} // namespace

api::Outcome<Client>
Client::connect(const std::string &host, std::uint16_t port)
{
    auto socket = connectTcp(host, port);
    if (!socket.ok())
        return socket.error();
    return Client(std::move(socket).value());
}

api::Outcome<std::string>
Client::nextRecord()
{
    for (;;) {
        if (auto line = _splitter.next()) {
            if (line->oversized)
                return unavailable(
                    "server sent an oversized record");
            return std::move(line->text);
        }
        char buffer[16 * 1024];
        // The socket is blocking: recv waits for the server.
        const auto got =
            recvSome(_socket.get(), buffer, sizeof buffer);
        if (got.status == IoStatus::Closed) {
            if (auto tail = _splitter.finish();
                tail && !tail->oversized && !tail->text.empty())
                return std::move(tail->text);
            return unavailable(
                "server closed the connection mid-request");
        }
        _splitter.feed(std::string_view(buffer, got.bytes));
    }
}

api::Outcome<std::vector<std::string>>
Client::request(
    const std::string &line,
    const std::function<void(const std::string &)> &on_record)
{
    std::string wire = line;
    if (wire.empty() || wire.back() != '\n')
        wire.push_back('\n');
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const auto put = sendSome(_socket.get(), wire.data() + sent,
                                  wire.size() - sent);
        if (put.status != IoStatus::Ready || put.bytes == 0)
            return unavailable("cannot send the request");
        sent += put.bytes;
    }

    // A blank request line answers with nothing at all; waiting for
    // a record would hang forever.
    if (line.find_first_not_of(" \t\r\n") == std::string::npos)
        return std::vector<std::string>{};

    std::vector<std::string> records;
    bool accepted = false;
    for (;;) {
        auto record = nextRecord();
        if (!record.ok())
            return record.error();
        const auto parsed = json::parse(record.value());
        std::string type;
        if (parsed.ok())
            if (const auto *field = parsed.value.find("type");
                field && field->isString())
                type = field->string();
        if (on_record)
            on_record(record.value());
        records.push_back(std::move(record).value());
        if (type == "accepted")
            accepted = true;
        else if (type == "done")
            return records;
        else if (type == "error" && !accepted)
            return records; // rejected before acceptance: terminal
    }
}

api::Outcome<std::vector<std::string>>
Client::shutdownServer(const std::string &id)
{
    return request("{\"op\":\"shutdown\",\"id\":" +
                   sweep::jsonQuote(id) + "}");
}

} // namespace server
} // namespace qmh
