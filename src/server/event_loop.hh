/**
 * @file
 * Single-threaded poll(2) event loop for the experiment server.
 *
 * One thread owns the loop and every handler runs on it; the only
 * cross-thread entry points are wakeup() and stop(), which write one
 * byte to a self-pipe so a sleeping poll() returns. That is exactly
 * the hook SubmitOptions::on_retire needs: sweep workers retire
 * points on pool threads, ring the pipe, and the loop thread drains
 * job rows on its next cycle — no busy-polling, no locks around
 * connection state.
 *
 * Fairness is structural: every cycle polls every registered fd and
 * dispatches the ready ones in registration order, and handlers do
 * bounded work per call (the Connection caps how many bytes it reads
 * and writes per cycle), so one hot or stalled client cannot starve
 * the rest.
 */

#ifndef QMH_SERVER_EVENT_LOOP_HH
#define QMH_SERVER_EVENT_LOOP_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

#include "server/socket.hh"

namespace qmh {
namespace server {

class EventLoop
{
  public:
    /** Handler for one fd; @p revents is the poll() result mask. */
    using Handler = std::function<void(short revents)>;

    EventLoop();

    /** Self-pipe creation can fail; an invalid loop must not run. */
    bool valid() const { return _wake_read.valid(); }

    /**
     * Watch @p fd with @p events (POLLIN/POLLOUT). One handler per
     * fd; registration order is dispatch order.
     */
    void add(int fd, short events, Handler handler);

    /** Change the event mask of a registered fd (0 = parked). */
    void setEvents(int fd, short events);

    /** Stop watching @p fd (safe from inside its own handler). */
    void remove(int fd);

    /**
     * Ring the self-pipe so a blocked poll() returns and the cycle
     * hook runs. Thread-safe; the only EventLoop method that is.
     */
    void wakeup();

    /**
     * Dispatch until stop(). @p cycle runs after each dispatch round
     * — wakeups with no fd activity still reach it, which is how
     * job-row progress flows to connections.
     */
    void run(const std::function<void()> &cycle);

    /** End run() after the current cycle. Thread-safe. */
    void stop();

    std::size_t watchedCount() const { return _entries.size(); }

  private:
    struct Entry
    {
        int fd = -1;
        short events = 0;
        Handler handler;
        bool dead = false; ///< removed mid-dispatch; swept per cycle
    };

    Entry *find(int fd);
    void drainWakePipe();

    Fd _wake_read;
    Fd _wake_write;
    std::vector<Entry> _entries;   ///< registration order = fairness
    std::atomic<bool> _stop{false}; ///< set anywhere; pipe wakes poll
};

} // namespace server
} // namespace qmh

#endif // QMH_SERVER_EVENT_LOOP_HH
