#include "socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0 // platforms without it get best-effort EPIPE
#endif

namespace qmh {
namespace server {

namespace {

api::Error
unavailable(std::string step)
{
    return api::Error{api::ErrorCode::Unavailable,
                      step + ": " + std::strerror(errno),
                      {}};
}

/**
 * Numeric IPv4 text (or "localhost") to network order. The server is
 * a loopback/LAN tool; a resolver dependency would buy nothing the
 * tests or the CLI need.
 */
bool
parseHost(const std::string &host, in_addr &out)
{
    if (host.empty() || host == "localhost")
        return inet_pton(AF_INET, "127.0.0.1", &out) == 1;
    return inet_pton(AF_INET, host.c_str(), &out) == 1;
}

} // namespace

void
Fd::reset()
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

IoResult
recvSome(int fd, char *buffer, std::size_t capacity)
{
    for (;;) {
        const ssize_t n = ::recv(fd, buffer, capacity, 0);
        if (n > 0)
            return {IoStatus::Ready, static_cast<std::size_t>(n)};
        if (n == 0)
            return {IoStatus::Closed, 0};
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return {IoStatus::WouldBlock, 0};
        return {IoStatus::Closed, 0};
    }
}

IoResult
sendSome(int fd, const char *data, std::size_t size)
{
    for (;;) {
        const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n >= 0)
            return {IoStatus::Ready, static_cast<std::size_t>(n)};
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return {IoStatus::WouldBlock, 0};
        return {IoStatus::Closed, 0};
    }
}

api::Outcome<Listener>
Listener::create(const std::string &host, std::uint16_t port,
                 int backlog)
{
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (!parseHost(host, address.sin_addr))
        return api::Error{api::ErrorCode::Unavailable,
                          "cannot parse listen host '" + host +
                              "' (numeric IPv4 or \"localhost\")",
                          {}};

    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return unavailable("socket()");
    const int enable = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &enable,
                 sizeof enable);
    if (::bind(fd.get(),
               reinterpret_cast<const sockaddr *>(&address),
               sizeof address) != 0)
        return unavailable("bind()");
    if (::listen(fd.get(), backlog) != 0)
        return unavailable("listen()");
    if (!setNonBlocking(fd.get()))
        return unavailable("fcntl(O_NONBLOCK)");

    sockaddr_in bound{};
    socklen_t length = sizeof bound;
    if (::getsockname(fd.get(),
                      reinterpret_cast<sockaddr *>(&bound),
                      &length) != 0)
        return unavailable("getsockname()");

    Listener listener;
    listener._fd = std::move(fd);
    listener._port = ntohs(bound.sin_port);
    return listener;
}

Fd
Listener::accept() const
{
    for (;;) {
        const int fd = ::accept(_fd.get(), nullptr, nullptr);
        if (fd >= 0) {
            if (!setNonBlocking(fd)) {
                ::close(fd);
                return Fd();
            }
            const int enable = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable,
                         sizeof enable);
            return Fd(fd);
        }
        if (errno == EINTR)
            continue;
        return Fd();
    }
}

api::Outcome<Fd>
connectTcp(const std::string &host, std::uint16_t port)
{
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (!parseHost(host, address.sin_addr))
        return api::Error{api::ErrorCode::Unavailable,
                          "cannot parse host '" + host +
                              "' (numeric IPv4 or \"localhost\")",
                          {}};

    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid())
        return unavailable("socket()");
    for (;;) {
        if (::connect(fd.get(),
                      reinterpret_cast<const sockaddr *>(&address),
                      sizeof address) == 0)
            break;
        if (errno == EINTR)
            continue;
        return unavailable("connect()");
    }
    const int enable = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &enable,
                 sizeof enable);
    return fd;
}

} // namespace server
} // namespace qmh
