/**
 * @file
 * Thin portable layer over POSIX stream sockets for the experiment
 * server: an owning descriptor, a bound listener, and non-blocking
 * send/recv wrappers that fold errno into three caller-visible
 * states. Everything a request path can hit is a typed Outcome
 * (ErrorCode::Unavailable — the transport refused, nothing about the
 * experiment was wrong); no call here throws or aborts.
 *
 * Only this file and socket.cc touch <sys/socket.h>; the event loop,
 * connections and clients above it deal in Fd values and IoStatus.
 */

#ifndef QMH_SERVER_SOCKET_HH
#define QMH_SERVER_SOCKET_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "api/outcome.hh"

namespace qmh {
namespace server {

/** Owning socket/pipe descriptor (move-only, closes on destruction). */
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : _fd(fd) {}
    ~Fd() { reset(); }

    Fd(Fd &&other) noexcept : _fd(other.release()) {}
    Fd &
    operator=(Fd &&other) noexcept
    {
        if (this != &other) {
            reset();
            _fd = other.release();
        }
        return *this;
    }
    Fd(const Fd &) = delete;
    Fd &operator=(const Fd &) = delete;

    bool valid() const { return _fd >= 0; }
    int get() const { return _fd; }

    /** Give up ownership without closing. */
    int
    release()
    {
        return std::exchange(_fd, -1);
    }

    /** Close now (idempotent). */
    void reset();

  private:
    int _fd = -1;
};

/** Outcome of one non-blocking send/recv attempt. */
enum class IoStatus {
    Ready,      ///< moved >= 1 byte
    WouldBlock, ///< no progress now; wait for poll readiness
    Closed      ///< peer closed (recv: EOF; send: EPIPE/ECONNRESET)
};

/** One non-blocking IO attempt: status plus bytes moved (Ready). */
struct IoResult
{
    IoStatus status = IoStatus::WouldBlock;
    std::size_t bytes = 0;
};

/** Mark @p fd non-blocking; false (with errno intact) on failure. */
bool setNonBlocking(int fd);

/**
 * recv() into @p buffer, at most @p capacity bytes, without blocking.
 * Hard transport errors report as Closed — for a server, an unusable
 * peer and a departed one need the same response (drop the client).
 */
IoResult recvSome(int fd, char *buffer, std::size_t capacity);

/**
 * send() up to @p size bytes without blocking and without SIGPIPE;
 * partial sends report Ready with the short count.
 */
IoResult sendSome(int fd, const char *data, std::size_t size);

/**
 * A bound, listening, non-blocking TCP socket. create() resolves
 * @p host (numeric or "localhost"), binds (@p port 0 picks an
 * ephemeral port — boundPort() reports the real one), listens, and
 * returns Unavailable with the failing step in the message when any
 * of that is refused.
 */
class Listener
{
  public:
    [[nodiscard]] static api::Outcome<Listener>
    create(const std::string &host, std::uint16_t port,
           int backlog = 64);

    int fd() const { return _fd.get(); }
    std::uint16_t boundPort() const { return _port; }

    /**
     * Accept one pending connection, already non-blocking; an
     * invalid Fd means nothing was pending (or the attempt must be
     * retried), never a fatal condition.
     */
    Fd accept() const;

  private:
    Fd _fd;
    std::uint16_t _port = 0;
};

/**
 * Blocking connect to @p host:@p port (the client side; servers never
 * call this). The returned socket stays blocking — Client does
 * lockstep request/response IO.
 */
[[nodiscard]] api::Outcome<Fd> connectTcp(const std::string &host,
                                          std::uint16_t port);

} // namespace server
} // namespace qmh

#endif // QMH_SERVER_SOCKET_HH
