#include "event_loop.hh"

#include <cerrno>

#include <poll.h>
#include <unistd.h>

namespace qmh {
namespace server {

EventLoop::EventLoop()
{
    int fds[2] = {-1, -1};
    if (::pipe(fds) != 0)
        return; // valid() stays false; Server::create refuses to run
    _wake_read = Fd(fds[0]);
    _wake_write = Fd(fds[1]);
    setNonBlocking(_wake_read.get());
    setNonBlocking(_wake_write.get());
}

EventLoop::Entry *
EventLoop::find(int fd)
{
    for (auto &entry : _entries)
        if (entry.fd == fd && !entry.dead)
            return &entry;
    return nullptr;
}

void
EventLoop::add(int fd, short events, Handler handler)
{
    _entries.push_back(Entry{fd, events, std::move(handler), false});
}

void
EventLoop::setEvents(int fd, short events)
{
    if (auto *entry = find(fd))
        entry->events = events;
}

void
EventLoop::remove(int fd)
{
    // Mark, don't erase: remove() may run inside a handler while the
    // dispatch walk holds indexes into _entries.
    if (auto *entry = find(fd)) {
        entry->dead = true;
        entry->handler = nullptr;
    }
}

void
EventLoop::wakeup()
{
    const char byte = 0;
    // A full pipe already guarantees a pending wakeup; EAGAIN is
    // success for this purpose, and other failures only cost latency
    // (the next poll timeout or fd event still runs the cycle hook).
    [[maybe_unused]] const auto ignored =
        ::write(_wake_write.get(), &byte, 1);
}

void
EventLoop::drainWakePipe()
{
    char sink[256];
    while (::read(_wake_read.get(), sink, sizeof sink) > 0) {
    }
}

void
EventLoop::run(const std::function<void()> &cycle)
{
    while (!_stop.load(std::memory_order_acquire)) {
        std::vector<pollfd> fds;
        fds.reserve(_entries.size() + 1);
        fds.push_back(pollfd{_wake_read.get(), POLLIN, 0});
        for (const auto &entry : _entries)
            if (!entry.dead)
                fds.push_back(pollfd{entry.fd, entry.events, 0});

        const int ready = ::poll(fds.data(),
                                 static_cast<nfds_t>(fds.size()), -1);
        if (ready < 0 && errno != EINTR)
            break; // poll itself failed: unrecoverable loop state

        if (ready > 0 && (fds[0].revents & POLLIN))
            drainWakePipe();

        // Dispatch against the polled snapshot: handlers may add or
        // remove entries, so re-find each fd before calling.
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fds[i].revents == 0)
                continue;
            if (_stop.load(std::memory_order_acquire))
                break;
            if (auto *entry = find(fds[i].fd))
                if (entry->handler)
                    entry->handler(fds[i].revents);
        }

        std::erase_if(_entries, [](const Entry &entry) {
            return entry.dead;
        });

        if (cycle)
            cycle();
    }
}

void
EventLoop::stop()
{
    _stop.store(true, std::memory_order_release);
    wakeup();
}

} // namespace server
} // namespace qmh
