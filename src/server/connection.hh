/**
 * @file
 * One client of the experiment server: a non-blocking socket speaking
 * the JSONL protocol of api/service.hh, mapped onto api::Session jobs
 * and the server's SharedCache.
 *
 * Byte contract: for any input a client could also pipe into
 * `qmh_service` on stdio, the records this connection writes are
 * byte-identical to that stdio run — same formatters (api::record*),
 * same framing, same error text, same prefix semantics when a point
 * fails. The only divergences are wire-only conditions stdio cannot
 * hit (an oversized line, the max-clients rejection), which surface
 * as "unavailable"/"bad_request" error records.
 *
 * Requests are served strictly in arrival order, one at a time per
 * connection (the stdio loop is sequential; matching it is what makes
 * the byte contract testable), but many connections interleave freely
 * on the shared pool. Per-cycle work is bounded — one recv, a capped
 * emission batch, one send — and the outbound buffer has a high-water
 * mark: when a slow reader stops draining, emission pauses for that
 * connection only; job rows keep landing in the JobState and other
 * clients keep streaming.
 *
 * Cache path: a request with seed_mode "spec" whose effective base
 * seed equals the cache's consults SharedCache per spec — hits and
 * intra-request duplicates replay without simulating, misses run as
 * one job whose rows are inserted as they are incorporated. Emission
 * order is request order; it stalls at the first unresolved slot, so
 * a failed miss truncates the stream exactly where stdio would.
 */

#ifndef QMH_SERVER_CONNECTION_HH
#define QMH_SERVER_CONNECTION_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "api/service.hh"
#include "api/session.hh"
#include "common/json.hh"
#include "server/event_loop.hh"
#include "server/shared_cache.hh"
#include "server/socket.hh"

namespace qmh {
namespace server {

/** Per-connection knobs (Server fills these from its config). */
struct ConnectionConfig
{
    std::size_t max_line = 1u << 20;      ///< request line cap
    std::size_t max_buffered = 1u << 20;  ///< out high-water mark
    std::size_t max_pending_lines = 8;    ///< parsed-but-unserved cap
};

/** What one connection contributed (read after it finishes). */
struct ConnectionStats
{
    std::size_t requests = 0;  ///< well-formed requests served
    std::size_t rows = 0;      ///< row records written
    std::size_t errors = 0;    ///< error records written
    std::size_t simulated = 0; ///< points actually run (not replayed)
};

class Connection
{
  public:
    /** @p cache may be null (no shared cache configured). */
    Connection(Fd socket, api::Session &session, EventLoop &loop,
               SharedCache *cache, ConnectionConfig config);

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Cancels the active job; pending rows are simply dropped. */
    ~Connection();

    int fd() const { return _socket.get(); }

    /** poll() handler: bounded read and/or write for this cycle. */
    void onEvent(short revents);

    /**
     * Make all progress that needs no fresh socket readiness: serve
     * queued lines, harvest retired job rows, emit records up to the
     * buffer watermark, attempt a send. Runs every loop cycle (job
     * retirement wakeups land here).
     */
    void pump();

    /** Event mask this connection currently needs. */
    short wantedEvents() const;

    /** Nothing left to do: the Server should drop this connection. */
    bool finished() const;

    /**
     * A shutdown request was served and its done record fully
     * flushed; the Server should stop its loop.
     */
    bool shutdownFlushed() const;

    const ConnectionStats &stats() const { return _stats; }

  private:
    /** One point of the active request, in request order. */
    struct Slot
    {
        enum class Kind { Job, Cached, Dup };
        Kind kind = Kind::Job;
        std::size_t job_ordinal = 0; ///< Kind::Job: index among misses
        std::size_t dup_of = 0;      ///< Kind::Dup: earlier slot
        std::vector<sweep::Cell> row; ///< full row, seed cell included
        bool resolved = false;
    };

    /** The in-flight request (one at a time, arrival order). */
    struct Active
    {
        api::ServiceRequest request;
        std::vector<std::string> columns;
        std::vector<Slot> slots;
        std::vector<std::string> keys;       ///< canonical specs
        std::vector<std::uint64_t> seeds;    ///< per-slot seed
        std::optional<api::JobHandle> job;   ///< misses (may be none)
        std::vector<std::size_t> job_slots;  ///< ordinal -> slot
        std::size_t harvested = 0;           ///< job rows taken
        std::size_t next_emit = 0;
        std::size_t streamed = 0;
        bool use_cache = false;
        bool limit_cancelled = false;
    };

    void readSome();
    void queueLine(json::LineSplitter::Line line);
    void serveNextLine();
    void startRequest(api::ServiceRequest request);
    void advanceActive();
    void harvestJobRows();
    void finalizeActive(bool stream_ended);
    void emitRow(const std::vector<sweep::Cell> &row);
    void emit(const std::string &record);
    void flushSome();
    void dropPeer();

    Fd _socket;
    api::Session &_session;
    EventLoop &_loop;
    SharedCache *_cache;
    ConnectionConfig _config;

    json::LineSplitter _splitter;
    std::deque<json::LineSplitter::Line> _lines;
    std::optional<Active> _active;
    std::string _out;          ///< bytes awaiting the socket
    std::size_t _out_head = 0; ///< sent prefix of _out
    std::size_t _emitted = 0;  ///< lifetime bytes emitted
    std::size_t _flushed = 0;  ///< lifetime bytes sent

    bool _read_closed = false; ///< EOF or reading intentionally over
    bool _peer_gone = false;   ///< socket unusable; drop everything
    bool _shutdown = false;    ///< shutdown op served
    ConnectionStats _stats;
};

} // namespace server
} // namespace qmh

#endif // QMH_SERVER_CONNECTION_HH
