#include "connection.hh"

#include <unordered_map>
#include <utility>

#include <poll.h>

#include "opt/result_cache.hh"

namespace qmh {
namespace server {

namespace {

constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::size_t kSendBurst = 4; ///< send() attempts per cycle

api::Error
badRequest(std::string message)
{
    return api::Error{api::ErrorCode::BadRequest,
                      std::move(message),
                      {}};
}

} // namespace

Connection::Connection(Fd socket, api::Session &session,
                       EventLoop &loop, SharedCache *cache,
                       ConnectionConfig config)
    : _socket(std::move(socket)), _session(session), _loop(loop),
      _cache(cache), _config(config), _splitter(config.max_line)
{
}

Connection::~Connection()
{
    if (_active && _active->job)
        _active->job->cancel();
}

void
Connection::onEvent(short revents)
{
    if (revents & (POLLERR | POLLNVAL)) {
        dropPeer();
        return;
    }
    // POLLHUP still allows draining buffered input; recv reports the
    // definitive EOF.
    if (revents & (POLLIN | POLLHUP))
        readSome();
    if (revents & POLLOUT)
        flushSome();
}

void
Connection::readSome()
{
    if (_peer_gone || _read_closed)
        return;
    char buffer[kReadChunk];
    const auto got = recvSome(_socket.get(), buffer, sizeof buffer);
    if (got.status == IoStatus::Closed) {
        _read_closed = true;
        if (auto tail = _splitter.finish())
            queueLine(std::move(*tail));
        return;
    }
    if (got.status != IoStatus::Ready)
        return;
    _splitter.feed(std::string_view(buffer, got.bytes));
    while (auto line = _splitter.next())
        queueLine(std::move(*line));
}

void
Connection::queueLine(json::LineSplitter::Line line)
{
    if (_shutdown)
        return; // the stdio loop reads nothing past a shutdown
    _lines.push_back(std::move(line));
}

void
Connection::serveNextLine()
{
    if (_active || _lines.empty() || _shutdown)
        return;
    auto line = std::move(_lines.front());
    _lines.pop_front();

    if (line.oversized) {
        // Wire-only condition: stdio lines are unbounded, socket
        // lines are not, and the record must say which cap fired.
        emit(api::recordError(
            "", badRequest("request line exceeds " +
                           std::to_string(_config.max_line) +
                           " bytes")));
        ++_stats.errors;
        return;
    }
    if (line.text.find_first_not_of(" \t\r") == std::string::npos)
        return;

    const auto parsed = json::parse(line.text);
    if (!parsed.ok()) {
        emit(api::recordError(
            "", badRequest("malformed JSON at byte " +
                           std::to_string(parsed.offset) + ": " +
                           parsed.error)));
        ++_stats.errors;
        return;
    }
    auto request = api::decodeServiceRequest(parsed.value);
    if (!request.ok()) {
        std::string id;
        if (const auto *found = parsed.value.find("id");
            found && found->isString())
            id = found->string();
        emit(api::recordError(id, request.error()));
        ++_stats.errors;
        return;
    }
    ++_stats.requests;
    if (request.value().op == api::ServiceOp::Shutdown) {
        emit(api::recordDone(request.value().id, 0, 0, false));
        _shutdown = true;
        _read_closed = true;
        _lines.clear();
        return;
    }
    startRequest(std::move(request).value());
}

void
Connection::startRequest(api::ServiceRequest request)
{
    auto validated = api::validateExperiments(request.specs);
    if (!validated.ok()) {
        emit(api::recordError(request.id, validated.error()));
        ++_stats.errors;
        return;
    }
    auto experiments = std::move(validated).value();

    Active active;
    if (experiments.empty()) {
        active.columns = {"spec", "seed"};
    } else {
        active.columns = experiments.front()->columns();
        active.columns.emplace_back("seed");
    }

    const std::uint64_t base =
        request.seed.value_or(_session.baseSeed());
    const bool spec_seeded =
        request.seed_mode == api::SeedMode::Spec;
    active.use_cache =
        spec_seeded && _cache && base == _cache->baseSeed();

    std::vector<std::unique_ptr<api::Experiment>> misses;
    std::vector<std::uint64_t> miss_seeds;
    if (spec_seeded) {
        // Spec-addressed points: resolvable from the cache, and equal
        // specs share one stream — simulate each distinct miss once.
        std::unordered_map<std::string, std::size_t> first_slot;
        for (std::size_t i = 0; i < experiments.size(); ++i) {
            Slot slot;
            active.keys.push_back(api::printSpec(request.specs[i]));
            const auto &key = active.keys.back();
            active.seeds.push_back(opt::specSeed(base, key));
            std::optional<opt::CachedResult> hit;
            if (active.use_cache)
                hit = _cache->lookup(key);
            if (hit) {
                slot.kind = Slot::Kind::Cached;
                slot.row = std::move(hit->row);
                slot.row.emplace_back(hit->seed);
                slot.resolved = true;
            } else if (const auto seen = first_slot.find(key);
                       seen != first_slot.end()) {
                slot.kind = Slot::Kind::Dup;
                slot.dup_of = seen->second;
            } else {
                first_slot.emplace(key, i);
                slot.kind = Slot::Kind::Job;
                slot.job_ordinal = misses.size();
                misses.push_back(std::move(experiments[i]));
                miss_seeds.push_back(active.seeds.back());
                active.job_slots.push_back(i);
            }
            active.slots.push_back(std::move(slot));
        }
    } else {
        // Index-addressed points: position-dependent streams, so no
        // cache and no dedup — exactly the stdio submit.
        for (std::size_t i = 0; i < experiments.size(); ++i) {
            Slot slot;
            slot.kind = Slot::Kind::Job;
            slot.job_ordinal = i;
            active.job_slots.push_back(i);
            active.slots.push_back(std::move(slot));
        }
        misses = std::move(experiments);
    }

    if (!misses.empty()) {
        api::SubmitOptions options;
        options.base_seed = request.seed;
        options.seeds = std::move(miss_seeds);
        EventLoop *loop = &_loop;
        options.on_retire = [loop]() { loop->wakeup(); };
        auto submitted =
            _session.submit(std::move(misses), std::move(options));
        if (!submitted.ok()) {
            emit(api::recordError(request.id, submitted.error()));
            ++_stats.errors;
            return;
        }
        active.job = std::move(submitted).value();
    }

    emit(api::recordAccepted(request.id, active.slots.size(),
                             active.columns));
    active.request = std::move(request);
    _active = std::move(active);
}

void
Connection::harvestJobRows()
{
    auto &active = *_active;
    if (!active.job)
        return;
    std::vector<sweep::Cell> row;
    while (active.harvested < active.job_slots.size() &&
           active.job->pollRow(row) == api::RowPoll::Ready) {
        const std::size_t slot_index =
            active.job_slots[active.harvested++];
        auto &slot = active.slots[slot_index];
        if (active.use_cache && !row.empty()) {
            // Cache the engine columns; the seed cell is appended at
            // emission, exactly as opt::runSpecSweepCached replays.
            std::vector<sweep::Cell> engine(row.begin(),
                                            row.end() - 1);
            _cache->insert(active.keys[slot_index],
                           active.seeds[slot_index],
                           std::move(engine));
        }
        slot.row = std::move(row);
        slot.resolved = true;
        row = {};
    }
}

void
Connection::advanceActive()
{
    if (!_active)
        return;
    harvestJobRows();
    auto &active = *_active;
    const std::size_t limit = active.request.limit;
    for (;;) {
        if (_out.size() - _out_head > _config.max_buffered)
            return; // backpressure: resume once the reader drains

        if (limit != 0 && active.streamed >= limit) {
            // The stdio path: cancel cooperatively, wait for the
            // tail to retire, report no tail failure (those rows
            // were never requested).
            if (active.job) {
                if (!active.limit_cancelled) {
                    active.job->cancel();
                    active.limit_cancelled = true;
                }
                if (!active.job->progress().finished)
                    return; // retirement wakeups finish this
            }
            finalizeActive(false);
            return;
        }

        if (active.next_emit == active.slots.size()) {
            if (active.job && !active.job->progress().finished)
                return;
            finalizeActive(true);
            return;
        }

        auto &slot = active.slots[active.next_emit];
        if (slot.kind == Slot::Kind::Dup && !slot.resolved) {
            const auto &source = active.slots[slot.dup_of];
            if (source.resolved) {
                slot.row = source.row;
                slot.resolved = true;
            }
        }
        if (slot.resolved) {
            emitRow(slot.row);
            ++active.next_emit;
            ++active.streamed;
            continue;
        }
        // The next slot needs a job row that has not landed. If the
        // job can still produce it, wait; if the job is over, the
        // stream ended early (a failed or skipped point) — stdio
        // prefix semantics end the row stream right here.
        if (active.job && active.job->progress().finished) {
            finalizeActive(true);
            return;
        }
        return;
    }
}

void
Connection::finalizeActive(bool stream_ended)
{
    auto &active = *_active;
    if (active.job) {
        const auto result = active.job->wait();
        _stats.simulated += result.executed;
        if (stream_ended && result.failure) {
            emit(api::recordError(active.request.id,
                                  *result.failure));
            ++_stats.errors;
        }
    }
    const bool truncated = active.streamed < active.slots.size();
    emit(api::recordDone(active.request.id, active.streamed,
                         active.slots.size(), truncated));
    _stats.rows += active.streamed;
    _active.reset();
}

void
Connection::emitRow(const std::vector<sweep::Cell> &row)
{
    emit(api::recordRow(_active->request.id, _active->streamed,
                        _active->columns, row));
}

void
Connection::emit(const std::string &record)
{
    _out.append(record);
    _out.push_back('\n');
    _emitted += record.size() + 1;
}

void
Connection::pump()
{
    if (_peer_gone)
        return;
    // Run to quiescence: a round that consumes no line, emits no
    // byte and flushes no byte cannot make progress until the next
    // event (socket readiness or a job retirement wakeup). Stopping
    // any earlier can strand resolved rows forever — with the buffer
    // flushed empty there is no POLLOUT to re-arm and, once the job
    // has finished, no retirement left to ring the loop. Backpressure
    // still binds: at the high-water mark emission pauses, and when
    // the socket stops taking bytes the round goes quiet with
    // POLLOUT armed.
    for (;;) {
        const std::size_t lines = _lines.size();
        const std::size_t emitted = _emitted;
        const std::size_t flushed = _flushed;
        serveNextLine();
        advanceActive();
        flushSome();
        if (_peer_gone || _shutdown)
            return;
        if (_lines.size() == lines && _emitted == emitted &&
            _flushed == flushed)
            return;
    }
}

void
Connection::flushSome()
{
    if (_peer_gone)
        return;
    for (std::size_t burst = 0;
         burst < kSendBurst && _out_head < _out.size(); ++burst) {
        const auto sent = sendSome(_socket.get(), _out.data() + _out_head,
                                   _out.size() - _out_head);
        if (sent.status == IoStatus::Closed) {
            dropPeer();
            return;
        }
        if (sent.status != IoStatus::Ready || sent.bytes == 0)
            break;
        _out_head += sent.bytes;
        _flushed += sent.bytes;
    }
    if (_out_head == _out.size()) {
        _out.clear();
        _out_head = 0;
    } else if (_out_head > kReadChunk) {
        _out.erase(0, _out_head);
        _out_head = 0;
    }
}

void
Connection::dropPeer()
{
    _peer_gone = true;
    _read_closed = true;
    if (_active && _active->job)
        _active->job->cancel(); // deterministic-prefix cancellation
    _active.reset();
    _lines.clear();
    _out.clear();
    _out_head = 0;
}

short
Connection::wantedEvents() const
{
    if (_peer_gone)
        return 0;
    short events = 0;
    const std::size_t outstanding = _out.size() - _out_head;
    if (!_read_closed && _lines.size() < _config.max_pending_lines &&
        outstanding <= _config.max_buffered)
        events |= POLLIN;
    if (outstanding > 0)
        events |= POLLOUT;
    return events;
}

bool
Connection::finished() const
{
    if (_peer_gone)
        return true;
    return _read_closed && !_active && _lines.empty() &&
           _out_head == _out.size();
}

bool
Connection::shutdownFlushed() const
{
    return _shutdown && (_peer_gone || _out_head == _out.size());
}

} // namespace server
} // namespace qmh
