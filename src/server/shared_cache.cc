#include "shared_cache.hh"

#include <algorithm>

namespace qmh {
namespace server {

namespace {

/** FNV-1a 64-bit — the shard selector (stable across runs). */
std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const unsigned char c : text) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    return hash;
}

} // namespace

SharedCache::SharedCache(std::uint64_t base_seed,
                         SharedCacheConfig config)
    : _base_seed(base_seed), _config(config)
{
    _config.shards = std::max<std::size_t>(1, _config.shards);
    _config.capacity_per_shard =
        std::max<std::size_t>(1, _config.capacity_per_shard);
    _shards.reserve(_config.shards);
    for (std::size_t i = 0; i < _config.shards; ++i)
        _shards.push_back(std::make_unique<Shard>());
}

std::string
SharedCache::open(const std::string &path)
{
    std::lock_guard<std::mutex> lock(_persistent_mutex);
    return _persistent.open(path, _base_seed);
}

bool
SharedCache::backed() const
{
    std::lock_guard<std::mutex> lock(_persistent_mutex);
    return _persistent.backed();
}

SharedCache::Shard &
SharedCache::shardFor(const std::string &spec_key)
{
    return *_shards[fnv1a(spec_key) % _shards.size()];
}

void
SharedCache::placeLocked(Shard &shard, const std::string &spec_key,
                         opt::CachedResult result)
{
    shard.lru.push_front(Entry{spec_key, std::move(result)});
    shard.index[spec_key] = shard.lru.begin();
    while (shard.lru.size() > _config.capacity_per_shard) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.evictions;
    }
}

std::optional<opt::CachedResult>
SharedCache::lookup(const std::string &spec_key)
{
    auto &shard = shardFor(spec_key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto found = shard.index.find(spec_key);
        if (found != shard.index.end()) {
            // Promote to most recently used.
            shard.lru.splice(shard.lru.begin(), shard.lru,
                             found->second);
            ++shard.hits;
            return found->second->result;
        }
    }

    std::optional<opt::CachedResult> persisted;
    {
        // Only a *backed* ResultCache is a second tier. Unbacked it
        // would be just another unbounded in-memory map, quietly
        // resurrecting every LRU eviction and defeating the bound.
        std::lock_guard<std::mutex> lock(_persistent_mutex);
        if (_persistent.backed())
            if (const auto *entry = _persistent.lookup(spec_key))
                persisted = *entry;
    }

    std::lock_guard<std::mutex> lock(shard.mutex);
    if (!persisted) {
        ++shard.misses;
        return std::nullopt;
    }
    // Re-home the backed entry unless a racing lookup beat us to it.
    if (shard.index.find(spec_key) == shard.index.end()) {
        placeLocked(shard, spec_key, *persisted);
        ++shard.promotions;
    }
    ++shard.hits;
    return persisted;
}

bool
SharedCache::insert(const std::string &spec_key, std::uint64_t seed,
                    std::vector<sweep::Cell> row)
{
    bool inserted = false;
    auto &shard = shardFor(spec_key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.index.find(spec_key) == shard.index.end()) {
            placeLocked(shard, spec_key,
                        opt::CachedResult{seed, row});
            ++shard.inserts;
            inserted = true;
        }
    }
    if (inserted) {
        std::lock_guard<std::mutex> lock(_persistent_mutex);
        // Also a no-op for keys the backing file already held; the
        // memory tier may simply have evicted them since.
        if (_persistent.backed())
            _persistent.insert(spec_key, seed, std::move(row));
    }
    return inserted;
}

SharedCacheStats
SharedCache::stats() const
{
    SharedCacheStats stats;
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        stats.hits += shard->hits;
        stats.misses += shard->misses;
        stats.inserts += shard->inserts;
        stats.evictions += shard->evictions;
        stats.promotions += shard->promotions;
        stats.resident += shard->lru.size();
    }
    std::lock_guard<std::mutex> lock(_persistent_mutex);
    stats.persisted = _persistent.size();
    return stats;
}

std::vector<std::string>
SharedCache::residentKeys() const
{
    std::vector<std::string> keys;
    for (const auto &shard : _shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (const auto &entry : shard->lru)
            keys.push_back(entry.key);
    }
    return keys;
}

} // namespace server
} // namespace qmh
