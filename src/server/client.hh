/**
 * @file
 * Blocking lockstep client for the experiment server: send one
 * request line, read records until the protocol says the request is
 * over. Used by the tests (byte-diffing server responses against
 * stdio runs) and by `qmh_service --connect`.
 *
 * Termination follows the api/service.hh framing rule: a request
 * ends at its "done" record, or at an "error" record that was not
 * preceded by a matching "accepted" (a rejected request). Records
 * are returned as raw lines, newline stripped and nothing else
 * touched — byte fidelity is the point.
 */

#ifndef QMH_SERVER_CLIENT_HH
#define QMH_SERVER_CLIENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/outcome.hh"
#include "common/json.hh"
#include "server/socket.hh"

namespace qmh {
namespace server {

class Client
{
  public:
    /** Connect to @p host:@p port (Unavailable on refusal). */
    [[nodiscard]] static api::Outcome<Client> connect(const std::string &host,
                                        std::uint16_t port);

    /**
     * Send @p line (newline appended if missing) and collect the
     * response records. @p on_record, when set, sees each record as
     * it arrives (streaming display). Unavailable when the server
     * goes away mid-request.
     */
    [[nodiscard]] api::Outcome<std::vector<std::string>>
    request(const std::string &line,
            const std::function<void(const std::string &)>
                &on_record = {});

    /**
     * Convenience: {"op":"shutdown"} with @p id; the server stops
     * once the confirming done record arrives.
     */
    [[nodiscard]] api::Outcome<std::vector<std::string>>
    shutdownServer(const std::string &id = "shutdown");

  private:
    explicit Client(Fd socket) : _socket(std::move(socket)) {}

    /** Next record line (blocking); Unavailable on EOF/error. */
    [[nodiscard]] api::Outcome<std::string> nextRecord();

    Fd _socket;
    json::LineSplitter _splitter;
};

} // namespace server
} // namespace qmh

#endif // QMH_SERVER_CLIENT_HH
