#include "code.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/units.hh"

namespace qmh {
namespace ecc {

Code
Code::steane()
{
    Code c;
    c._kind = CodeKind::Steane713;
    c._name = "Steane [[7,1,3]]";
    c._short_name = "7";
    c._n = 7;
    c._k = 1;
    c._d = 3;
    // Paper Section 4.1: "the level 1 error correction circuit will
    // take 154 cycles" per syndrome; with two syndromes and a 10 us
    // cycle this reproduces the reported 3.1e-3 s level-1 EC latency.
    c._l1_cycles_per_syndrome = 154;
    // Fully serialized level-2 EC is "approximately 0.3 seconds", i.e.
    // 97x the level-1 latency.
    c._serialization_ratio = 0.3 / 3.08e-3;
    // 490 ions x (50 um)^2 x 2.776 = 3.4 mm^2 (Table 2).
    c._layout_factor = 2.776;
    // Svore/Terhal/DiVincenzo local threshold with movement.
    c._threshold = 7.5e-5;
    c._overlap_channels = 1;
    c._transfer_channel_cost = 1.0;
    c._l1_ancilla = 21;   // 7 syndrome + 7 verify + 7 (second syndrome)
    c._l2_ancilla = 441;  // Table 2
    return c;
}

Code
Code::baconShor()
{
    Code c;
    c._kind = CodeKind::BaconShor913;
    c._name = "Bacon-Shor [[9,1,3]]";
    c._short_name = "9";
    c._n = 9;
    c._k = 1;
    c._d = 3;
    // Gauge-operator syndrome extraction needs only two-qubit ancilla
    // states (no verified cat states): 60 cycles per syndrome
    // reproduces the paper's 1.2e-3 s level-1 latency.
    c._l1_cycles_per_syndrome = 60;
    // Level-2 EC "0.1 seconds" => 83x level 1.
    c._serialization_ratio = 0.1 / 1.2e-3;
    // 379 ions x (50 um)^2 x 2.533 = 2.4 mm^2 (Table 2); the compact
    // physical structure of the [[9,1,3]] layout packs tighter than
    // Steane.
    c._layout_factor = 2.533;
    // Documented calibration; the paper says only "more favourable
    // due to a higher threshold".
    c._threshold = 1.5e-4;
    c._overlap_channels = 3;
    c._transfer_channel_cost = 2.0;
    c._l1_ancilla = 12;
    c._l2_ancilla = 298;  // Table 2
    return c;
}

Code
Code::byKind(CodeKind kind)
{
    switch (kind) {
      case CodeKind::Steane713:
        return steane();
      case CodeKind::BaconShor913:
        return baconShor();
    }
    qmh_panic("unknown CodeKind");
}

std::int64_t
Code::dataIons(Level level) const
{
    if (level < 0)
        qmh_panic("negative concatenation level");
    std::int64_t ions = 1;
    for (Level l = 0; l < level; ++l)
        ions *= _n;
    return ions;
}

std::int64_t
Code::ancillaIons(Level level) const
{
    if (level < 0)
        qmh_panic("negative concatenation level");
    if (level == 0)
        return 0;
    if (level == 1)
        return _l1_ancilla;
    if (level == 2)
        return _l2_ancilla;
    // Extrapolate with the observed level-1 -> level-2 growth.
    const double growth =
        static_cast<double>(_l2_ancilla) / static_cast<double>(_l1_ancilla);
    double ions = static_cast<double>(_l2_ancilla);
    for (Level l = 3; l <= level; ++l)
        ions *= growth;
    return static_cast<std::int64_t>(ions);
}

std::int64_t
Code::totalIons(Level level) const
{
    return dataIons(level) + ancillaIons(level);
}

double
Code::ionsPerDataQubit(Level level, double ancilla_ratio) const
{
    if (ancilla_ratio < 0.0)
        qmh_panic("negative ancilla ratio");
    // Standard provisioning carries two logical ancilla qubits per data
    // qubit; scale that block linearly with the requested ratio.
    const double standard_ratio = 2.0;
    return static_cast<double>(dataIons(level)) +
           static_cast<double>(ancillaIons(level)) *
               (ancilla_ratio / standard_ratio);
}

int
Code::level1EcCycles() const
{
    return _l1_cycles_per_syndrome * syndromesPerEc();
}

double
Code::ecTime(Level level, const iontrap::Params &params) const
{
    if (level < 0)
        qmh_panic("negative concatenation level");
    if (level == 0)
        return 0.0;
    const double l1 =
        level1EcCycles() * units::usToSeconds(params.cycle_us);
    return l1 * std::pow(_serialization_ratio, level - 1);
}

double
Code::gateStepTime(Level level, const iontrap::Params &params) const
{
    // Transversal physical gate: all n^(L-1) sub-gates fire in
    // parallel, so the gate itself costs one double-gate latency plus
    // local moves into/out of the shared trapping regions.
    const double moves =
        2.0 * params.opCycles(iontrap::PhysOp::Move) * params.cycle_us;
    const double gate =
        params.opCycles(iontrap::PhysOp::DoubleGate) * params.cycle_us;
    return units::usToSeconds(moves + gate) + ecTime(level, params);
}

double
Code::transversalGateTime(Level level, const iontrap::Params &params) const
{
    // Paper Table 2 metric: EC before + gate + EC after.
    return ecTime(level, params) + gateStepTime(level, params);
}

double
Code::toffoliTime(Level level, const iontrap::Params &params) const
{
    return toffoli_gate_steps * gateStepTime(level, params);
}

double
Code::qubitAreaMm2(Level level, const iontrap::Params &params,
                   double ancilla_ratio) const
{
    const double ions = ionsPerDataQubit(level, ancilla_ratio);
    return units::um2ToMm2(ions * params.regionAreaUm2()) * _layout_factor;
}

} // namespace ecc
} // namespace qmh
