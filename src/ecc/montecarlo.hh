/**
 * @file
 * Monte-Carlo validation of the concatenated-code reliability model.
 *
 * A deliberately simple stochastic model of one error-correction cycle:
 * each of the n data qubits of a block (plus the ancilla interactions
 * touching it) suffers an error with some physical probability; a
 * distance-3 block corrects one error and fails on two or more. At
 * higher levels the same combinatorics applies to sub-block failures.
 * The point is not absolute accuracy but checking the structural
 * predictions the architecture rests on: quadratic suppression per
 * level (p -> A p^2), double-exponential suppression with L, and the
 * existence of a pseudo-threshold.
 */

#ifndef QMH_ECC_MONTECARLO_HH
#define QMH_ECC_MONTECARLO_HH

#include <cstdint>

#include "code.hh"
#include "common/random.hh"

namespace qmh {
namespace ecc {

/** Result of a Monte-Carlo logical-error estimate. */
struct McEstimate
{
    double rate = 0.0;      ///< estimated logical failure probability
    double std_error = 0.0; ///< binomial standard error of the estimate
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;
};

/** Monte-Carlo simulator of recursive error correction for one code. */
class EcMonteCarlo
{
  public:
    /**
     * @param code code under test
     * @param ec_noise_factor multiplies the per-qubit error probability
     *        to account for the extra locations the EC circuit itself
     *        introduces (ancilla interactions, movement)
     */
    explicit EcMonteCarlo(const Code &code, double ec_noise_factor = 2.0);

    /**
     * Estimate the probability that a level-@p level block suffers a
     * logical error in one EC cycle, given physical error rate @p p0.
     */
    McEstimate estimate(Level level, double p0, std::uint64_t trials,
                        Random &rng) const;

    /**
     * Analytic leading-order prediction of the same quantity:
     * failures of >= 2 of the n_eff error locations, recursed per level.
     */
    double analytic(Level level, double p0) const;

    /**
     * Pseudo-threshold of the *model*: the p0 at which one level of
     * encoding stops helping (analytic level-1 rate equals p0). Found
     * by bisection.
     */
    double pseudoThreshold() const;

    /** Effective number of error locations per block. */
    double effectiveLocations() const;

  private:
    /** One trial: does a level-L block fail? */
    bool blockFails(Level level, double p0, Random &rng) const;

    Code _code;
    double _ec_noise_factor;
};

} // namespace ecc
} // namespace qmh

#endif // QMH_ECC_MONTECARLO_HH
