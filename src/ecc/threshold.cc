#include "threshold.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace qmh {
namespace ecc {

double
localFailureRate(Level level, double p0, double pth, double r)
{
    if (level < 0)
        qmh_panic("negative concatenation level");
    if (p0 <= 0.0 || pth <= 0.0 || r <= 0.0)
        qmh_panic("localFailureRate: parameters must be positive");
    if (level == 0)
        return p0;
    const double exponent = std::pow(2.0, level);
    return (pth / std::pow(r, level)) * std::pow(p0 / pth, exponent);
}

double
shorKqOps(int n_bits)
{
    if (n_bits < 2)
        qmh_fatal("shorKqOps: problem size must be at least 2 bits");
    const double n = n_bits;
    const double steps = kq_step_coeff * n * n * std::log2(n);
    const double qubits = 5.0 * n;
    return steps * qubits;
}

FidelityBudget::FidelityBudget(const Code &code,
                               const iontrap::Params &params,
                               double total_ops)
    : _code(code), _params(params), _total_ops(total_ops)
{
    if (total_ops <= 0.0)
        qmh_fatal("FidelityBudget: total_ops must be positive");
}

double
FidelityBudget::failureRate(Level level) const
{
    return localFailureRate(level, _params.averageFailure(),
                            _code.threshold());
}

bool
FidelityBudget::feasible(Level level) const
{
    // The computation succeeds with reasonable probability when the
    // expected number of logical failures is at most one.
    return _total_ops * failureRate(level) <= 1.0;
}

double
FidelityBudget::maxLevel1OpsFraction() const
{
    // Expected failures: f*N*Pf(1) + (1-f)*N*Pf(2) <= 1.
    const double p1 = failureRate(1);
    const double p2 = failureRate(2);
    const double budget = 1.0 - _total_ops * p2;
    if (budget <= 0.0)
        return 0.0;
    const double denom = _total_ops * (p1 - p2);
    if (denom <= 0.0)
        return 1.0;  // level 1 is no worse than level 2
    return std::clamp(budget / denom, 0.0, 1.0);
}

double
FidelityBudget::level1TimeFraction(double ops_fraction) const
{
    if (ops_fraction < 0.0 || ops_fraction > 1.0)
        qmh_panic("level1TimeFraction: fraction out of range");
    // A level-1 gate slot is faster than a level-2 slot by the EC
    // serialization ratio.
    const double t1 = 1.0;
    const double t2 = _code.serializationRatio();
    const double time_l1 = ops_fraction * t1;
    const double time_l2 = (1.0 - ops_fraction) * t2;
    if (time_l1 + time_l2 <= 0.0)
        return 0.0;
    return time_l1 / (time_l1 + time_l2);
}

double
FidelityBudget::maxLevel1TimeFraction() const
{
    return level1TimeFraction(maxLevel1OpsFraction());
}

double
FidelityBudget::recommendedLevel1AddFraction() const
{
    // Paper: one level-1 addition for every two level-2 additions under
    // Steane; the Bacon-Shor budget is loose enough to invert the mix.
    const double max_ops = maxLevel1OpsFraction();
    if (max_ops >= 1.0)
        return 2.0 / 3.0;
    return std::min(1.0 / 3.0, max_ops / 2.0);
}

} // namespace ecc
} // namespace qmh
