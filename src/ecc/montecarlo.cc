#include "montecarlo.hh"

#include <cmath>

#include "common/logging.hh"

namespace qmh {
namespace ecc {

EcMonteCarlo::EcMonteCarlo(const Code &code, double ec_noise_factor)
    : _code(code), _ec_noise_factor(ec_noise_factor)
{
    if (ec_noise_factor < 1.0)
        qmh_fatal("ec_noise_factor must be >= 1");
}

double
EcMonteCarlo::effectiveLocations() const
{
    return _code.n() * _ec_noise_factor;
}

bool
EcMonteCarlo::blockFails(Level level, double p0, Random &rng) const
{
    const auto locations =
        static_cast<std::uint64_t>(std::llround(effectiveLocations()));
    if (level == 1) {
        std::uint64_t errors = 0;
        for (std::uint64_t i = 0; i < locations && errors < 2; ++i)
            errors += rng.bernoulli(p0) ? 1 : 0;
        return errors >= 2;
    }
    // A level-L block fails when two or more of its sub-blocks fail
    // within the cycle.
    std::uint64_t failed = 0;
    for (int i = 0; i < _code.n() && failed < 2; ++i)
        failed += blockFails(level - 1, p0, rng) ? 1 : 0;
    return failed >= 2;
}

McEstimate
EcMonteCarlo::estimate(Level level, double p0, std::uint64_t trials,
                       Random &rng) const
{
    if (level < 1)
        qmh_panic("EcMonteCarlo: level must be >= 1");
    if (trials == 0)
        qmh_panic("EcMonteCarlo: need at least one trial");

    McEstimate est;
    est.trials = trials;
    for (std::uint64_t t = 0; t < trials; ++t)
        est.failures += blockFails(level, p0, rng) ? 1 : 0;
    est.rate = static_cast<double>(est.failures) /
               static_cast<double>(trials);
    est.std_error =
        std::sqrt(est.rate * (1.0 - est.rate) /
                  static_cast<double>(trials));
    return est;
}

double
EcMonteCarlo::analytic(Level level, double p0) const
{
    if (level < 1)
        qmh_panic("EcMonteCarlo: level must be >= 1");
    const double m = effectiveLocations();
    // P[>= 2 of m locations err] to leading order, exact two-term form.
    auto level_rate = [](double m_loc, double p) {
        const double none = std::pow(1.0 - p, m_loc);
        const double one = m_loc * p * std::pow(1.0 - p, m_loc - 1.0);
        const double rate = 1.0 - none - one;
        return rate < 0.0 ? 0.0 : rate;
    };
    double rate = level_rate(m, p0);
    for (Level l = 2; l <= level; ++l)
        rate = level_rate(static_cast<double>(_code.n()), rate);
    return rate;
}

double
EcMonteCarlo::pseudoThreshold() const
{
    double lo = 1e-8;
    double hi = 0.5;
    // analytic(1, p) - p is negative below threshold, positive above.
    for (int iter = 0; iter < 200; ++iter) {
        const double mid = std::sqrt(lo * hi);
        if (analytic(1, mid) < mid)
            lo = mid;
        else
            hi = mid;
    }
    return std::sqrt(lo * hi);
}

} // namespace ecc
} // namespace qmh
