/**
 * @file
 * Quantum error-correcting code models: the Steane [[7,1,3]] code and
 * the Bacon-Shor [[9,1,3]] code, with the recursive (concatenated)
 * latency, reliability and area metrics the CQLA analysis is built on
 * (paper Section 4 and Table 2).
 *
 * Modeling approach (see DESIGN.md section 4.2): a level-1 error
 * correction extracts two syndromes (bit-flip and phase-flip); the
 * per-syndrome cycle count is a structural estimate calibrated to the
 * paper's reported level-1 latencies (Steane 154 cycles/syndrome,
 * Bacon-Shor 60). Level L >= 2 latency follows the serialized recursive
 * construction, expressed as a per-code serialization ratio. Areas are
 * bottom-up: ion counts x trapping-region area x a per-code layout
 * compactness factor.
 */

#ifndef QMH_ECC_CODE_HH
#define QMH_ECC_CODE_HH

#include <cstdint>
#include <string>

#include "iontrap/params.hh"

namespace qmh {
namespace ecc {

/** Supported codes. */
enum class CodeKind {
    Steane713,    ///< Steane [[7,1,3]]
    BaconShor913  ///< Bacon-Shor [[9,1,3]] (optimized subsystem code)
};

/** Concatenation level. Level 0 is a bare physical qubit. */
using Level = int;

/**
 * An [[n,k,d]] code together with the structural constants of its
 * fault-tolerant error-correction circuit on the ion-trap layout.
 *
 * Instances are value types; obtain them from steane() / baconShor()
 * or byKind().
 */
class Code
{
  public:
    /** The Steane [[7,1,3]] code (paper Section 4.1). */
    static Code steane();

    /** The optimized Bacon-Shor [[9,1,3]] code (paper Section 4.1). */
    static Code baconShor();

    /** Lookup by kind. */
    static Code byKind(CodeKind kind);

    CodeKind kind() const { return _kind; }
    const std::string &name() const { return _name; }
    /** Short label used in tables, e.g. "7" or "9". */
    const std::string &shortName() const { return _short_name; }

    /** Physical qubits per logical qubit (one level). */
    int n() const { return _n; }
    /** Logical qubits encoded. */
    int k() const { return _k; }
    /** Code distance. */
    int d() const { return _d; }

    /** Data ions of a level-L logical qubit: n^L. */
    std::int64_t dataIons(Level level) const;

    /**
     * Ancilla ions accompanying a level-L logical qubit under the
     * standard QLA provisioning (two logical ancilla qubits plus
     * verification ancilla; paper Table 2: Steane 21/441, Bacon-Shor
     * 12/298 at levels 1/2).
     */
    std::int64_t ancillaIons(Level level) const;

    /** Data + ancilla ions under standard provisioning. */
    std::int64_t totalIons(Level level) const;

    /**
     * Ions of a level-L data qubit provisioned with @p ancilla_ratio
     * logical ancilla qubits per data qubit (2.0 for compute regions,
     * 1/8 for the CQLA dense memory).
     */
    double ionsPerDataQubit(Level level, double ancilla_ratio) const;

    /** Calibrated physical cycles per syndrome extraction at level 1. */
    int level1CyclesPerSyndrome() const { return _l1_cycles_per_syndrome; }

    /** Number of syndromes per EC (bit-flip + phase-flip). */
    int syndromesPerEc() const { return 2; }

    /**
     * Ratio EC(L) / EC(L-1) of the fully serialized recursive error
     * correction (paper: ~two orders of magnitude; Steane 97x,
     * Bacon-Shor 83x).
     */
    double serializationRatio() const { return _serialization_ratio; }

    /** Fundamental cycles of a level-1 error correction (both syndromes). */
    int level1EcCycles() const;

    /** Error-correction latency at @p level, in seconds. */
    double ecTime(Level level, const iontrap::Params &params) const;

    /**
     * Latency of one transversal logical gate *step* at @p level: the
     * physical transversal gate plus the following error correction.
     * This is the per-gate cost used when scheduling circuits.
     */
    double gateStepTime(Level level, const iontrap::Params &params) const;

    /**
     * The paper's "transversal gate time" metric (Table 2): error
     * correction before, the gate, and error correction after.
     */
    double transversalGateTime(Level level,
                               const iontrap::Params &params) const;

    /**
     * Latency of a fault-tolerant Toffoli at @p level. The paper models
     * it as fifteen two-qubit gate steps ("time to perform a single
     * fault-tolerant toffoli is equal to the time for fifteen two qubit
     * gates, each of which is followed by an error-correction step").
     */
    double toffoliTime(Level level, const iontrap::Params &params) const;

    /** Two-qubit gate steps per fault-tolerant Toffoli. */
    static constexpr int toffoli_gate_steps = 15;

    /**
     * Area of a level-L logical qubit with @p ancilla_ratio logical
     * ancilla per data qubit, in mm^2. The default ratio 2.0 gives the
     * paper's Table 2 "qubit size".
     */
    double qubitAreaMm2(Level level, const iontrap::Params &params,
                        double ancilla_ratio = 2.0) const;

    /**
     * Layout compactness multiplier: converts raw ion area into tile
     * area including intra-tile junctions and channels. Calibrated to
     * the paper's Table 2 areas (Steane 3.4 mm^2, Bacon-Shor 2.4 mm^2
     * at level 2).
     */
    double layoutFactor() const { return _layout_factor; }

    /**
     * Per-code fault-tolerance threshold used in the Gottesman local-
     * architecture estimate (Eq. 1). Steane: 7.5e-5 (Svore et al.,
     * movement included). Bacon-Shor: 1.5e-4 (documented calibration;
     * the paper states only "more favourable").
     */
    double threshold() const { return _threshold; }

    /**
     * Teleportation cost scale: logical data ions that must physically
     * move in a logical teleport (paper: "only data qubits are involved
     * during teleportation", so Bacon-Shor pays more than Steane).
     */
    std::int64_t teleportIons(Level level) const { return dataIons(level); }

    /**
     * Channels required on the compute-block perimeter to overlap all
     * communication with computation (paper Section 5.1: Steane 1,
     * Bacon-Shor 3).
     */
    int overlapBandwidthChannels() const { return _overlap_channels; }

    /**
     * Transfer-network channel slots one logical transfer of this code
     * occupies (Bacon-Shor moves larger data blocks; paper Section
     * 5.1 notes its bandwidth requirement is higher).
     */
    double transferChannelCost() const { return _transfer_channel_cost; }

  private:
    Code() = default;

    CodeKind _kind{};
    std::string _name;
    std::string _short_name;
    int _n = 0;
    int _k = 0;
    int _d = 0;
    int _l1_cycles_per_syndrome = 0;
    double _serialization_ratio = 0.0;
    double _layout_factor = 0.0;
    double _threshold = 0.0;
    int _overlap_channels = 0;
    double _transfer_channel_cost = 1.0;
    std::int64_t _l1_ancilla = 0;
    std::int64_t _l2_ancilla = 0;
};

} // namespace ecc
} // namespace qmh

#endif // QMH_ECC_CODE_HH
