/**
 * @file
 * Schedule-level fidelity analysis: converts a logical program plus an
 * encoding choice into an expected-logical-failure count and success
 * probability, using the Eq.-1 component failure rates. This is the
 * quantitative backing for the paper's claim that the hierarchy
 * preserves overall computation fidelity (Section 5.2).
 */

#ifndef QMH_ECC_CIRCUIT_FIDELITY_HH
#define QMH_ECC_CIRCUIT_FIDELITY_HH

#include <cstdint>

#include "circuit/program.hh"
#include "code.hh"
#include "common/random.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace ecc {

/** Outcome of analyzing one program under one encoding policy. */
struct FidelityReport
{
    std::uint64_t logical_slots = 0;   ///< gate-steps executed
    std::uint64_t level1_slots = 0;    ///< slots run at level 1
    std::uint64_t level2_slots = 0;    ///< slots run at level 2
    double expected_failures = 0.0;    ///< sum of per-slot Eq.-1 rates
    double success_probability = 0.0;  ///< exp(-expected_failures)
    double level1_time_fraction = 0.0; ///< wall-clock share at level 1
};

/**
 * Analyzer for programs executed on a CQLA under a given code.
 * Every gate occupies latency-model slots; each slot is one
 * error-corrected component in the Eq.-1 sense.
 */
class ScheduleFidelity
{
  public:
    ScheduleFidelity(const Code &code, const iontrap::Params &params);

    /** Gate-steps a gate kind occupies (matches sched::LatencyModel). */
    static std::uint32_t slotsFor(circuit::GateKind kind);

    /** Analyze a program executed entirely at @p level. */
    FidelityReport analyze(const circuit::Program &program,
                           Level level) const;

    /**
     * Analyze the hierarchy execution: the first
     * @p level1_fraction of the program's slots run at level 1, the
     * rest at level 2 (the paper interleaves whole additions; the
     * failure arithmetic only depends on the totals).
     */
    FidelityReport analyzeMixed(const circuit::Program &program,
                                double level1_fraction) const;

    /**
     * Monte-Carlo run: sample per-slot logical failures; returns true
     * when the whole program executes without one.
     */
    bool sampleRun(const circuit::Program &program, Level level,
                   Random &rng) const;

    /** Eq.-1 failure rate per slot at @p level. */
    double slotFailureRate(Level level) const;

  private:
    Code _code;
    iontrap::Params _params;
};

} // namespace ecc
} // namespace qmh

#endif // QMH_ECC_CIRCUIT_FIDELITY_HH
