#include "circuit_fidelity.hh"

#include <cmath>

#include "common/logging.hh"
#include "threshold.hh"

namespace qmh {
namespace ecc {

ScheduleFidelity::ScheduleFidelity(const Code &code,
                                   const iontrap::Params &params)
    : _code(code), _params(params)
{
}

std::uint32_t
ScheduleFidelity::slotsFor(circuit::GateKind kind)
{
    using circuit::GateKind;
    switch (kind) {
      case GateKind::Cnot:    return 1;
      case GateKind::Cphase:  return 2;
      case GateKind::Swap:    return 3;
      case GateKind::Toffoli: return 15;
      case GateKind::Barrier: return 0;
      default:                return 1;
    }
}

double
ScheduleFidelity::slotFailureRate(Level level) const
{
    return localFailureRate(level, _params.averageFailure(),
                            _code.threshold());
}

FidelityReport
ScheduleFidelity::analyze(const circuit::Program &program,
                          Level level) const
{
    return analyzeMixed(program, level == 1 ? 1.0 : 0.0);
}

FidelityReport
ScheduleFidelity::analyzeMixed(const circuit::Program &program,
                               double level1_fraction) const
{
    if (level1_fraction < 0.0 || level1_fraction > 1.0)
        qmh_panic("analyzeMixed: fraction out of range");

    FidelityReport report;
    for (const auto &inst : program.instructions())
        report.logical_slots += slotsFor(inst.kind);

    report.level1_slots = static_cast<std::uint64_t>(std::llround(
        level1_fraction * static_cast<double>(report.logical_slots)));
    report.level2_slots = report.logical_slots - report.level1_slots;

    const double p1 = slotFailureRate(1);
    const double p2 = slotFailureRate(2);
    report.expected_failures =
        static_cast<double>(report.level1_slots) * p1 +
        static_cast<double>(report.level2_slots) * p2;
    report.success_probability = std::exp(-report.expected_failures);

    // Wall-clock share: a level-1 slot is faster by the serialization
    // ratio.
    const double t1 = static_cast<double>(report.level1_slots);
    const double t2 = static_cast<double>(report.level2_slots) *
                      _code.serializationRatio();
    report.level1_time_fraction =
        (t1 + t2) > 0.0 ? t1 / (t1 + t2) : 0.0;
    return report;
}

bool
ScheduleFidelity::sampleRun(const circuit::Program &program, Level level,
                            Random &rng) const
{
    const double p = slotFailureRate(level);
    std::uint64_t slots = 0;
    for (const auto &inst : program.instructions())
        slots += slotsFor(inst.kind);
    // One binomial draw over all slots is equivalent to per-slot
    // Bernoulli sampling and far faster for big programs.
    return rng.binomial(slots, p) == 0;
}

} // namespace ecc
} // namespace qmh
