/**
 * @file
 * Fault-tolerance threshold analysis (paper Section 5.2, Eq. 1).
 *
 * Implements Gottesman's local-architecture failure estimate
 *
 *   Pf(L) = (pth / r^L) * (p0 / pth)^(2^L)
 *
 * and the fidelity budget that decides how much of an application may
 * execute at the fast-but-leaky level-1 encoding: a computation of
 * size S = K*Q logical-gate slots tolerates about one expected logical
 * failure, so the admissible number of level-1 operations is
 * 1 / Pf(1).
 */

#ifndef QMH_ECC_THRESHOLD_HH
#define QMH_ECC_THRESHOLD_HH

#include "code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace ecc {

/**
 * Average communication distance between level-1 blocks, in cells, for
 * the QLA-style layout (paper: "aligned in QLA to allow r = 12 cells
 * on average").
 */
constexpr double qla_block_distance = 12.0;

/**
 * Eq. 1: expected component failure rate at recursion level @p level
 * for physical failure rate @p p0, threshold @p pth and local
 * communication distance @p r.
 */
double localFailureRate(Level level, double p0, double pth,
                        double r = qla_block_distance);

/**
 * Application size model for n-bit quantum modular exponentiation:
 * the KQ product (logical timesteps x logical qubits) with
 * K = kq_step_coeff * n^2 * log2(n) and Q = 5n. The coefficient is
 * calibrated so that the Steane fidelity budget reproduces the paper's
 * "only 2% of total execution time in level 1" at n = 1024 (see
 * DESIGN.md section 4.7).
 */
double shorKqOps(int n_bits);

/** Calibrated timestep coefficient of shorKqOps(). */
constexpr double kq_step_coeff = 14.0;

/**
 * Decides how much level-1 execution an application can afford under a
 * given code.
 */
class FidelityBudget
{
  public:
    /**
     * @param code the error-correcting code in use
     * @param params physical parameter set
     * @param total_ops total logical-gate slots of the application
     *        (e.g. shorKqOps(n))
     */
    FidelityBudget(const Code &code, const iontrap::Params &params,
                   double total_ops);

    /** Eq. 1 failure rate of this code at @p level. */
    double failureRate(Level level) const;

    /** True if running *every* operation at @p level meets the budget. */
    bool feasible(Level level) const;

    /**
     * Largest fraction of operations that may run at level 1 (with the
     * rest at level 2), clamped to [0, 1].
     */
    double maxLevel1OpsFraction() const;

    /**
     * Fraction of wall-clock time spent at level 1 when @p ops_fraction
     * of the operations run there (level-1 ops are faster by the EC
     * serialization ratio).
     */
    double level1TimeFraction(double ops_fraction) const;

    /** Time fraction corresponding to maxLevel1OpsFraction(). */
    double maxLevel1TimeFraction() const;

    /**
     * The paper's recommended mix: the fraction of *additions* executed
     * at level 1. Steane affords 1 in 3; Bacon-Shor's higher threshold
     * affords 2 in 3 (paper: "more favourable").
     */
    double recommendedLevel1AddFraction() const;

    double totalOps() const { return _total_ops; }
    const Code &code() const { return _code; }

  private:
    Code _code;
    iontrap::Params _params;
    double _total_ops;
};

} // namespace ecc
} // namespace qmh

#endif // QMH_ECC_THRESHOLD_HH
