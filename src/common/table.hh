/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print
 * paper-style tables (fixed columns, right-aligned numerics).
 */

#ifndef QMH_COMMON_TABLE_HH
#define QMH_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace qmh {

/** Column alignment. */
enum class Align { Left, Right };

/**
 * Shortest decimal form that parses back to the same double — the
 * single implementation behind both the sweep emitters and the
 * qmh::api spec printer (their exact-round-trip contracts must agree).
 */
std::string formatDoubleShortest(double v);

/**
 * Builds a table row by row, then renders it with column widths computed
 * from the content. Cells are strings; helpers format numerics.
 */
class AsciiTable
{
  public:
    /** Define the header row; the column count is fixed from here on. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator at the current position. */
    void addSeparator();

    /** Set alignment for one column (default Right). */
    void setAlign(std::size_t col, Align align);

    /** Optional caption printed above the table. */
    void setCaption(std::string caption) { _caption = std::move(caption); }

    /** Render to a stream. */
    void print(std::ostream &os) const;

    /** Render to a string. */
    std::string toString() const;

    std::size_t rows() const { return _rows.size(); }
    std::size_t columns() const { return _header.size(); }

    /** Format a double with @p digits significant decimal places. */
    static std::string num(double v, int digits = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);
    static std::string num(int v);

    /** Format a double in scientific notation, paper style (1.2e-3). */
    static std::string sci(double v, int digits = 1);

  private:
    std::string _caption;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;  // empty row = separator
    std::vector<Align> _align;
};

} // namespace qmh

#endif // QMH_COMMON_TABLE_HH
