#include "table.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace qmh {

std::string
formatDoubleShortest(double v)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), v);
    if (ec != std::errc())
        qmh_panic("formatDoubleShortest: to_chars failed");
    return std::string(buffer, end);
}

void
AsciiTable::setHeader(std::vector<std::string> header)
{
    if (header.empty())
        qmh_panic("AsciiTable: header must have at least one column");
    _header = std::move(header);
    _align.assign(_header.size(), Align::Right);
}

void
AsciiTable::addRow(std::vector<std::string> row)
{
    if (_header.empty())
        qmh_panic("AsciiTable: setHeader() before addRow()");
    if (row.size() != _header.size())
        qmh_panic("AsciiTable: row width ", row.size(),
                  " != header width ", _header.size());
    _rows.push_back(std::move(row));
}

void
AsciiTable::addSeparator()
{
    _rows.emplace_back();
}

void
AsciiTable::setAlign(std::size_t col, Align align)
{
    if (col >= _align.size())
        qmh_panic("AsciiTable: bad column index ", col);
    _align[col] = align;
}

void
AsciiTable::print(std::ostream &os) const
{
    if (_header.empty())
        return;

    std::vector<std::size_t> widths(_header.size());
    for (std::size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        if (row.empty())
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_sep = [&] {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };

    auto print_cells = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            const auto pad = widths[c] - cells[c].size();
            os << ' ';
            if (_align[c] == Align::Right)
                os << std::string(pad, ' ') << cells[c];
            else
                os << cells[c] << std::string(pad, ' ');
            os << " |";
        }
        os << '\n';
    };

    if (!_caption.empty())
        os << _caption << '\n';
    print_sep();
    print_cells(_header);
    print_sep();
    for (const auto &row : _rows) {
        if (row.empty())
            print_sep();
        else
            print_cells(row);
    }
    print_sep();
}

std::string
AsciiTable::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

std::string
AsciiTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
AsciiTable::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
AsciiTable::num(int v)
{
    return std::to_string(v);
}

std::string
AsciiTable::sci(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, v);
    return buf;
}

} // namespace qmh
