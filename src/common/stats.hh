/**
 * @file
 * Lightweight statistics collection in the spirit of gem5's stats
 * package: named scalar counters, averages and histograms that a
 * component registers with a StatGroup and dumps in one call.
 */

#ifndef QMH_COMMON_STATS_HH
#define QMH_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

namespace qmh {
namespace stats {

/** A named, monotonically adjustable counter. */
class Scalar
{
  public:
    Scalar(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    void inc(double v = 1.0) { _value += v; }
    void set(double v) { _value = v; }
    double value() const { return _value; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    void reset() { _value = 0.0; }

  private:
    std::string _name;
    std::string _desc;
    double _value = 0.0;
};

/**
 * Running mean/min/max over samples.
 *
 * With no samples taken (fresh or just reset()), min() and max()
 * return NaN — a real extremum of 0.0 must stay distinguishable from
 * "never sampled" (consumers rank NaN with the non-numeric cells, the
 * same convention as ResultTable's NaN-safe sort). mean() keeps the
 * historical 0.0-on-empty so accumulating dumps stay finite.
 */
class Average
{
  public:
    Average(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}

    void sample(double v);
    double mean() const { return _count ? _sum / _count : 0.0; }
    double min() const;
    double max() const;
    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }
    void reset();

  private:
    std::string _name;
    std::string _desc;
    double _sum = 0.0;
    double _min = std::numeric_limits<double>::quiet_NaN();
    double _max = std::numeric_limits<double>::quiet_NaN();
    std::uint64_t _count = 0;
};

/** Fixed-width-bucket histogram with overflow/underflow buckets. */
class Histogram
{
  public:
    /**
     * @param name stat name
     * @param desc human description
     * @param lo lower edge of the first bucket
     * @param hi upper edge of the last bucket
     * @param buckets number of equal-width buckets between lo and hi
     */
    Histogram(std::string name, std::string desc, double lo, double hi,
              std::size_t buckets);

    void sample(double v, std::uint64_t weight = 1);
    std::uint64_t bucketCount(std::size_t i) const { return _counts.at(i); }
    std::size_t buckets() const { return _counts.size(); }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::uint64_t totalSamples() const;
    const std::string &name() const { return _name; }
    void reset();

  private:
    std::string _name;
    std::string _desc;
    double _lo;
    double _hi;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
};

/**
 * A named collection of stats owned by a component. The group stores
 * non-owning pointers; the registering component must outlive dumps.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : _name(std::move(name)) {}

    void add(Scalar *s) { _scalars.push_back(s); }
    void add(Average *a) { _averages.push_back(a); }

    /** Write "name.stat value # desc" lines, gem5 stats.txt style. */
    void dump(std::ostream &os) const;

    void resetAll();

    const std::string &name() const { return _name; }

  private:
    std::string _name;
    std::vector<Scalar *> _scalars;
    std::vector<Average *> _averages;
};

} // namespace stats
} // namespace qmh

#endif // QMH_COMMON_STATS_HH
