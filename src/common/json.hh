/**
 * @file
 * Minimal JSON value model and strict recursive-descent parser.
 *
 * The emit side of the repo (sweep::ResultTable, opt::ResultCache)
 * writes JSON with hand-rolled printers; the service side needs the
 * inverse: qmh_service requests arrive as JSON lines. This is a
 * deliberately small, dependency-free reader for that protocol —
 * full RFC 8259 value grammar (null/bool/number/string/array/object,
 * \uXXXX escapes with surrogate pairs, strict trailing-garbage and
 * depth checks) but no streaming, no comments, no mutation API.
 * Object members preserve insertion order and duplicate keys resolve
 * to the last occurrence via find().
 */

#ifndef QMH_COMMON_JSON_HH
#define QMH_COMMON_JSON_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qmh {
namespace json {

/** One parsed JSON value (tree-owning). */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    /** Typed accessors; panic on a type mismatch (check first). */
    bool boolean() const;
    double number() const;
    const std::string &string() const;
    const std::vector<Value> &items() const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /**
     * Member of an object by key; nullptr when absent or when this
     * value is not an object. Duplicate keys: last wins.
     */
    const Value *find(std::string_view key) const;

    /** Construction helpers (used by the parser and by tests). */
    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value
    makeObject(std::vector<std::pair<std::string, Value>> members);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Value> _items;
    std::vector<std::pair<std::string, Value>> _members;
};

/** Outcome of parsing one JSON document. */
struct ParseResult
{
    Value value;
    std::string error;   ///< empty = success
    std::size_t offset = 0;  ///< byte offset of the error

    bool ok() const { return error.empty(); }
};

/**
 * Parse exactly one JSON value spanning all of @p text (surrounding
 * whitespace allowed, trailing garbage is an error). Nesting beyond
 * 64 levels is rejected.
 */
ParseResult parse(std::string_view text);

} // namespace json
} // namespace qmh

#endif // QMH_COMMON_JSON_HH
