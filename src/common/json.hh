/**
 * @file
 * Minimal JSON value model and strict recursive-descent parser.
 *
 * The emit side of the repo (sweep::ResultTable, opt::ResultCache)
 * writes JSON with hand-rolled printers; the service side needs the
 * inverse: qmh_service requests arrive as JSON lines. This is a
 * deliberately small, dependency-free reader for that protocol —
 * full RFC 8259 value grammar (null/bool/number/string/array/object,
 * \uXXXX escapes with surrogate pairs, strict trailing-garbage and
 * depth checks) but no streaming, no comments, no mutation API.
 * Object members preserve insertion order and duplicate keys resolve
 * to the last occurrence via find().
 */

#ifndef QMH_COMMON_JSON_HH
#define QMH_COMMON_JSON_HH

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qmh {
namespace json {

/** One parsed JSON value (tree-owning). */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    /** Typed accessors; panic on a type mismatch (check first). */
    bool boolean() const;
    double number() const;
    const std::string &string() const;
    const std::vector<Value> &items() const;
    const std::vector<std::pair<std::string, Value>> &members() const;

    /**
     * Member of an object by key; nullptr when absent or when this
     * value is not an object. Duplicate keys: last wins.
     */
    const Value *find(std::string_view key) const;

    /** Construction helpers (used by the parser and by tests). */
    static Value makeNull();
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> items);
    static Value
    makeObject(std::vector<std::pair<std::string, Value>> members);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<Value> _items;
    std::vector<std::pair<std::string, Value>> _members;
};

/** Outcome of parsing one JSON document. */
struct ParseResult
{
    Value value;
    std::string error;   ///< empty = success
    std::size_t offset = 0;  ///< byte offset of the error

    bool ok() const { return error.empty(); }
};

/**
 * Parse exactly one JSON value spanning all of @p text (surrounding
 * whitespace allowed, trailing garbage is an error). Nesting beyond
 * 64 levels is rejected.
 */
ParseResult parse(std::string_view text);

/**
 * Incremental newline framing for the JSONL transports: socket reads
 * arrive in arbitrary chunks, so a record may span several feed()
 * calls or share one chunk with its neighbours. The splitter
 * reassembles complete lines, strips one trailing '\r' (CRLF
 * clients), and bounds memory: a line longer than max_line is
 * *discarded* — never buffered — and surfaces once, as an oversized
 * line, when its newline finally arrives, so a hostile or broken
 * writer cannot balloon the server. The caller turns that flag into
 * a typed error record; the splitter itself stays error-agnostic.
 */
class LineSplitter
{
  public:
    /** One reassembled line. */
    struct Line
    {
        std::string text;       ///< without the newline (or the CR)
        bool oversized = false; ///< exceeded max_line; text is empty
    };

    explicit LineSplitter(std::size_t max_line = 1u << 20)
        : _max_line(max_line)
    {
    }

    std::size_t maxLine() const { return _max_line; }

    /** Append a received chunk (may contain any number of lines). */
    void feed(std::string_view chunk);

    /** Next completed line in arrival order; nullopt = need more. */
    std::optional<Line> next();

    /**
     * End of stream: the trailing unterminated data, if any, as a
     * final line (JSONL tolerates a missing last newline). At most
     * one call returns a value; the splitter is then empty.
     */
    std::optional<Line> finish();

    /** Bytes currently buffered for the incomplete trailing line. */
    std::size_t pending() const { return _partial.size(); }

  private:
    std::size_t _max_line;
    std::string _partial;        ///< incomplete trailing line
    bool _discarding = false;    ///< partial overflowed; drop to '\n'
    std::vector<Line> _ready;    ///< completed lines (FIFO)
    std::size_t _ready_head = 0; ///< consumed prefix of _ready
};

} // namespace json
} // namespace qmh

#endif // QMH_COMMON_JSON_HH
