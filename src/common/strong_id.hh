/**
 * @file
 * A zero-cost strongly-typed integer identifier.
 *
 * Logical qubits, physical ions, compute blocks and instructions all use
 * small integer handles; wrapping them in distinct types prevents the
 * classic bug of passing a qubit index where a block index was expected.
 */

#ifndef QMH_COMMON_STRONG_ID_HH
#define QMH_COMMON_STRONG_ID_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

namespace qmh {

/**
 * Strongly-typed integer id. Tag is an empty struct used only to make
 * instantiations distinct types.
 */
template <typename Tag, typename Rep = std::uint32_t>
class StrongId
{
  public:
    using rep_type = Rep;

    constexpr StrongId() = default;
    constexpr explicit StrongId(Rep v) : _value(v) {}

    /** Raw integer value. */
    constexpr Rep value() const { return _value; }

    /** An id no valid object ever carries. */
    static constexpr StrongId
    invalid()
    {
        return StrongId(static_cast<Rep>(~Rep(0)));
    }

    constexpr bool isValid() const { return _value != ~Rep(0); }

    constexpr bool
    operator==(const StrongId &other) const = default;

    constexpr bool
    operator<(const StrongId &other) const
    {
        return _value < other._value;
    }

  private:
    Rep _value = ~Rep(0);
};

template <typename Tag, typename Rep>
std::ostream &
operator<<(std::ostream &os, const StrongId<Tag, Rep> &id)
{
    if (id.isValid())
        return os << id.value();
    return os << "<invalid>";
}

} // namespace qmh

namespace std {

template <typename Tag, typename Rep>
struct hash<qmh::StrongId<Tag, Rep>>
{
    size_t
    operator()(const qmh::StrongId<Tag, Rep> &id) const noexcept
    {
        return std::hash<Rep>{}(id.value());
    }
};

} // namespace std

#endif // QMH_COMMON_STRONG_ID_HH
