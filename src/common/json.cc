#include "json.hh"

#include <charconv>

#include "common/logging.hh"

namespace qmh {
namespace json {

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

namespace {

const char *
typeName(Value::Type type)
{
    switch (type) {
      case Value::Type::Null:   return "null";
      case Value::Type::Bool:   return "bool";
      case Value::Type::Number: return "number";
      case Value::Type::String: return "string";
      case Value::Type::Array:  return "array";
      case Value::Type::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
typeMismatch(Value::Type actual, Value::Type wanted)
{
    qmh_panic("json::Value: accessed a ", typeName(actual), " as a ",
              typeName(wanted));
}

} // namespace

bool
Value::boolean() const
{
    if (_type != Type::Bool)
        typeMismatch(_type, Type::Bool);
    return _bool;
}

double
Value::number() const
{
    if (_type != Type::Number)
        typeMismatch(_type, Type::Number);
    return _number;
}

const std::string &
Value::string() const
{
    if (_type != Type::String)
        typeMismatch(_type, Type::String);
    return _string;
}

const std::vector<Value> &
Value::items() const
{
    if (_type != Type::Array)
        typeMismatch(_type, Type::Array);
    return _items;
}

const std::vector<std::pair<std::string, Value>> &
Value::members() const
{
    if (_type != Type::Object)
        typeMismatch(_type, Type::Object);
    return _members;
}

const Value *
Value::find(std::string_view key) const
{
    if (_type != Type::Object)
        return nullptr;
    const Value *hit = nullptr;
    for (const auto &[name, value] : _members)
        if (name == key)
            hit = &value;
    return hit;
}

Value
Value::makeNull()
{
    return Value();
}

Value
Value::makeBool(bool b)
{
    Value v;
    v._type = Type::Bool;
    v._bool = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v._type = Type::Number;
    v._number = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v._type = Type::String;
    v._string = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> items)
{
    Value v;
    v._type = Type::Array;
    v._items = std::move(items);
    return v;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> members)
{
    Value v;
    v._type = Type::Object;
    v._members = std::move(members);
    return v;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

constexpr int max_depth = 64;

struct Parser
{
    std::string_view text;
    std::size_t pos = 0;
    std::string error = {};

    bool
    fail(const std::string &message)
    {
        if (error.empty())
            error = message;
        return false;
    }

    void
    skipWhitespace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text.substr(pos, word.size()) != word)
            return fail("bad literal");
        pos += word.size();
        return true;
    }

    /** Append code point @p cp to @p out as UTF-8. */
    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(unsigned &value)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text[pos++];
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad \\u escape digit");
        }
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected '\"'");
        out.clear();
        for (;;) {
            if (pos >= text.size())
                return fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  if (!hex4(cp))
                      return false;
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      // High surrogate: a low surrogate must follow.
                      if (!consume('\\') || !consume('u'))
                          return fail("lone high surrogate");
                      unsigned low = 0;
                      if (!hex4(low))
                          return false;
                      if (low < 0xDC00 || low > 0xDFFF)
                          return fail("bad low surrogate");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (low - 0xDC00);
                  } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                      return fail("lone low surrogate");
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                  return fail("unknown escape");
            }
        }
    }

    bool
    parseNumber(double &out)
    {
        // Validate the strict JSON grammar first; from_chars is more
        // permissive (it would take "1.", hex forms, "inf").
        const std::size_t start = pos;
        if (consume('-') && pos >= text.size())
            return fail("truncated number");
        if (consume('0')) {
            // no leading zeros
        } else if (pos < text.size() && text[pos] >= '1' &&
                   text[pos] <= '9') {
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        } else {
            return fail("bad number");
        }
        if (consume('.')) {
            if (pos >= text.size() || text[pos] < '0' ||
                text[pos] > '9')
                return fail("bad number fraction");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        if (pos < text.size() &&
            (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (pos >= text.size() || text[pos] < '0' ||
                text[pos] > '9')
                return fail("bad number exponent");
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9')
                ++pos;
        }
        const auto result = std::from_chars(
            text.data() + start, text.data() + pos, out);
        if (result.ec != std::errc() ||
            result.ptr != text.data() + pos)
            return fail("number out of range");
        return true;
    }

    bool
    parseValue(Value &out, int depth)
    {
        if (depth > max_depth)
            return fail("nesting too deep");
        skipWhitespace();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            std::vector<std::pair<std::string, Value>> members;
            skipWhitespace();
            if (!consume('}')) {
                for (;;) {
                    skipWhitespace();
                    std::string key;
                    if (!parseString(key))
                        return false;
                    skipWhitespace();
                    if (!consume(':'))
                        return fail("expected ':'");
                    Value value;
                    if (!parseValue(value, depth + 1))
                        return false;
                    members.emplace_back(std::move(key),
                                         std::move(value));
                    skipWhitespace();
                    if (consume(','))
                        continue;
                    if (consume('}'))
                        break;
                    return fail("expected ',' or '}'");
                }
            }
            out = Value::makeObject(std::move(members));
            return true;
        }
        if (c == '[') {
            ++pos;
            std::vector<Value> items;
            skipWhitespace();
            if (!consume(']')) {
                for (;;) {
                    Value value;
                    if (!parseValue(value, depth + 1))
                        return false;
                    items.push_back(std::move(value));
                    skipWhitespace();
                    if (consume(','))
                        continue;
                    if (consume(']'))
                        break;
                    return fail("expected ',' or ']'");
                }
            }
            out = Value::makeArray(std::move(items));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = Value::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = Value::makeBool(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = Value::makeNull();
            return true;
        }
        double number = 0.0;
        if (!parseNumber(number))
            return false;
        out = Value::makeNumber(number);
        return true;
    }
};

} // namespace

ParseResult
parse(std::string_view text)
{
    Parser parser{text};
    ParseResult result;
    if (!parser.parseValue(result.value, 0)) {
        result.error = parser.error;
        result.offset = parser.pos;
        return result;
    }
    parser.skipWhitespace();
    if (parser.pos != text.size()) {
        result.error = "trailing garbage after the value";
        result.offset = parser.pos;
        result.value = Value();
    }
    return result;
}

// ---------------------------------------------------------------------------
// LineSplitter
// ---------------------------------------------------------------------------

void
LineSplitter::feed(std::string_view chunk)
{
    while (!chunk.empty()) {
        const std::size_t newline = chunk.find('\n');
        if (newline == std::string_view::npos) {
            if (!_discarding) {
                if (_partial.size() + chunk.size() > _max_line) {
                    // Stop buffering the moment the cap is crossed;
                    // the line is reported once, at its newline.
                    _discarding = true;
                    _partial.clear();
                    _partial.shrink_to_fit();
                } else {
                    _partial.append(chunk);
                }
            }
            return;
        }

        Line line;
        if (_discarding ||
            _partial.size() + newline > _max_line) {
            line.oversized = true;
            _discarding = false;
        } else {
            line.text = std::move(_partial);
            line.text.append(chunk.substr(0, newline));
            if (!line.text.empty() && line.text.back() == '\r')
                line.text.pop_back();
        }
        _partial.clear();
        _ready.push_back(std::move(line));
        chunk.remove_prefix(newline + 1);
    }
}

std::optional<LineSplitter::Line>
LineSplitter::next()
{
    if (_ready_head >= _ready.size()) {
        _ready.clear();
        _ready_head = 0;
        return std::nullopt;
    }
    return std::move(_ready[_ready_head++]);
}

std::optional<LineSplitter::Line>
LineSplitter::finish()
{
    if (_discarding) {
        _discarding = false;
        Line line;
        line.oversized = true;
        return line;
    }
    if (_partial.empty())
        return std::nullopt;
    Line line;
    line.text = std::move(_partial);
    _partial.clear();
    if (!line.text.empty() && line.text.back() == '\r')
        line.text.pop_back();
    return line;
}

} // namespace json
} // namespace qmh
