/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256** implementation: the simulator must give
 * bit-identical results across standard libraries, which std::mt19937
 * distributions do not guarantee. All stochastic components (error
 * injection, random circuits, traffic generators) take a Random by
 * reference so tests control the seed.
 */

#ifndef QMH_COMMON_RANDOM_HH
#define QMH_COMMON_RANDOM_HH

#include <cstdint>

namespace qmh {

/** xoshiro256** generator with splitmix64 seeding. */
class Random
{
  public:
    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Random(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial: true with probability p. */
    bool bernoulli(double p);

    /**
     * Sample a binomial(n, p) count. Uses direct simulation for small n
     * and a normal approximation above the cutoff; accurate enough for
     * error-injection statistics.
     */
    std::uint64_t binomial(std::uint64_t n, double p);

  private:
    std::uint64_t s[4];
};

} // namespace qmh

#endif // QMH_COMMON_RANDOM_HH
