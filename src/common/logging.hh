/**
 * @file
 * Status and error reporting helpers in the gem5 idiom.
 *
 * Two classes of error are distinguished:
 *  - panic(): an internal invariant was violated (a simulator bug);
 *    aborts so a debugger or core dump can capture the state.
 *  - fatal(): the simulation cannot continue because of a user error
 *    (bad configuration, invalid argument); exits with status 1.
 *
 * warn()/inform() report conditions that do not stop the simulation.
 */

#ifndef QMH_COMMON_LOGGING_HH
#define QMH_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace qmh {

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel {
    Silent,  ///< suppress inform() and warn()
    Warn,    ///< show warn() only
    Info     ///< show warn() and inform()
};

/** Set the global verbosity. Defaults to LogLevel::Info. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenate a mixed argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort. */
#define qmh_panic(...) \
    ::qmh::detail::panicImpl(__FILE__, __LINE__, \
                             ::qmh::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user/configuration error and exit(1). */
#define qmh_fatal(...) \
    ::qmh::detail::fatalImpl(__FILE__, __LINE__, \
                             ::qmh::detail::concat(__VA_ARGS__))

/** Report a suspicious but survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace qmh

#endif // QMH_COMMON_LOGGING_HH
