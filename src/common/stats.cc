#include "stats.hh"

#include <algorithm>
#include <iomanip>
#include <limits>

#include "logging.hh"

namespace qmh {
namespace stats {

void
Average::sample(double v)
{
    if (_count == 0) {
        _min = v;
        _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _sum += v;
    ++_count;
}

double
Average::min() const
{
    return _count ? _min : std::numeric_limits<double>::quiet_NaN();
}

double
Average::max() const
{
    return _count ? _max : std::numeric_limits<double>::quiet_NaN();
}

void
Average::reset()
{
    _sum = 0.0;
    // Poison the extrema instead of leaving the last run's values
    // behind: sample() reinitializes them on the first post-reset
    // sample, and min()/max() guard on _count, so stale _min/_max
    // must never be observable.
    _min = std::numeric_limits<double>::quiet_NaN();
    _max = std::numeric_limits<double>::quiet_NaN();
    _count = 0;
}

Histogram::Histogram(std::string name, std::string desc, double lo,
                     double hi, std::size_t buckets)
    : _name(std::move(name)), _desc(std::move(desc)), _lo(lo), _hi(hi),
      _counts(buckets, 0)
{
    if (buckets == 0 || hi <= lo)
        qmh_panic("Histogram '", _name, "': invalid bucket configuration");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    if (v < _lo) {
        _underflow += weight;
        return;
    }
    if (v >= _hi) {
        _overflow += weight;
        return;
    }
    const double width = (_hi - _lo) / static_cast<double>(_counts.size());
    auto idx = static_cast<std::size_t>((v - _lo) / width);
    if (idx >= _counts.size())
        idx = _counts.size() - 1;
    _counts[idx] += weight;
}

std::uint64_t
Histogram::totalSamples() const
{
    std::uint64_t total = _underflow + _overflow;
    for (auto c : _counts)
        total += c;
    return total;
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _underflow = 0;
    _overflow = 0;
}

void
StatGroup::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto *s : _scalars) {
        os << std::setw(40) << (_name + "." + s->name()) << " "
           << std::setw(16) << s->value() << " # " << s->desc() << "\n";
    }
    for (const auto *a : _averages) {
        os << std::setw(40) << (_name + "." + a->name() + ".mean") << " "
           << std::setw(16) << a->mean() << " # " << a->desc() << "\n";
        os << std::setw(40) << (_name + "." + a->name() + ".max") << " "
           << std::setw(16) << a->max() << " # max of samples\n";
    }
}

void
StatGroup::resetAll()
{
    for (auto *s : _scalars)
        s->reset();
    for (auto *a : _averages)
        a->reset();
}

} // namespace stats
} // namespace qmh
