/**
 * @file
 * Small-buffer-optimized move-only callable.
 *
 * std::function heap-allocates any closure larger than its tiny
 * internal buffer (16 bytes on libstdc++), which puts an allocation on
 * every event and every port completion of the simulation hot path.
 * SmallFunction<N> stores closures up to N bytes inline — simulation
 * callbacks capture a handful of pointers and a claim record, well
 * within a fixed budget — and falls back to the heap only for
 * oversized closures, reporting that it did so through
 * heapAllocated() so callers (the EventQueue arena) can count
 * fallbacks and tests can pin the steady state to zero.
 *
 * Move-only by design: simulation callbacks are dispatched exactly
 * once and never copied, and move-only closures (owning a moved-in
 * buffer, say) must be storable.
 */

#ifndef QMH_COMMON_SMALL_FUNCTION_HH
#define QMH_COMMON_SMALL_FUNCTION_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace qmh {
namespace common {

/** Move-only `void()` callable with @p InlineSize bytes of inline
 * closure storage and a counted heap fallback beyond it. */
template <std::size_t InlineSize>
class SmallFunction
{
  public:
    /** Inline closure budget in bytes. */
    static constexpr std::size_t inline_size = InlineSize;

    SmallFunction() = default;

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, SmallFunction> &&
                  std::is_invocable_v<D &>>>
    SmallFunction(F &&fn)  // NOLINT: implicit from any callable
    {
        if constexpr (fitsInline<D>() &&
                      std::is_trivially_copyable_v<D> &&
                      std::is_trivially_destructible_v<D>) {
            // Trivial inline closure (the simulation hot path: a
            // couple of pointers and ints). _manage stays null as the
            // marker: moves are a raw buffer copy and destruction is
            // a no-op, so the per-event indirect manage calls
            // disappear entirely.
            InlineTraits<D>::construct(_storage, std::forward<F>(fn));
            _invoke = &InlineTraits<D>::invoke;
        } else {
            using Traits = std::conditional_t<fitsInline<D>(),
                                              InlineTraits<D>,
                                              HeapTraits<D>>;
            Traits::construct(_storage, std::forward<F>(fn));
            _invoke = &Traits::invoke;
            _manage = &Traits::manage;
            _heap = !fitsInline<D>();
        }
    }

    SmallFunction(SmallFunction &&other) noexcept { moveFrom(other); }

    SmallFunction &
    operator=(SmallFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFunction(const SmallFunction &) = delete;
    SmallFunction &operator=(const SmallFunction &) = delete;

    ~SmallFunction() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const { return _invoke != nullptr; }

    /** True when the stored closure spilled to the heap. */
    bool heapAllocated() const { return _heap; }

    /** Invoke the stored callable (undefined when empty). */
    void
    operator()()
    {
        _invoke(_storage);
    }

  private:
    enum class Op { MoveTo, Destroy };

    template <typename D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= InlineSize &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    struct InlineTraits
    {
        template <typename F>
        static void
        construct(void *storage, F &&fn)
        {
            ::new (storage) D(std::forward<F>(fn));
        }
        static void
        invoke(void *storage)
        {
            (*std::launder(reinterpret_cast<D *>(storage)))();
        }
        static void
        manage(Op op, void *storage, void *other)
        {
            D *self = std::launder(reinterpret_cast<D *>(storage));
            if (op == Op::MoveTo)
                ::new (other) D(std::move(*self));
            self->~D();
        }
    };

    template <typename D>
    struct HeapTraits
    {
        template <typename F>
        static void
        construct(void *storage, F &&fn)
        {
            ::new (storage) (D *)(new D(std::forward<F>(fn)));
        }
        static D *&
        slot(void *storage)
        {
            return *std::launder(reinterpret_cast<D **>(storage));
        }
        static void
        invoke(void *storage)
        {
            (*slot(storage))();
        }
        static void
        manage(Op op, void *storage, void *other)
        {
            if (op == Op::MoveTo)
                ::new (other) (D *)(slot(storage));
            else
                delete slot(storage);
        }
    };

    void
    reset()
    {
        if (_manage)
            _manage(Op::Destroy, _storage, nullptr);
        _invoke = nullptr;
        _manage = nullptr;
        _heap = false;
    }

    void
    moveFrom(SmallFunction &other) noexcept
    {
        if (!other._invoke)
            return;
        if (other._manage)
            other._manage(Op::MoveTo, other._storage, _storage);
        else
            // Trivial closure: the whole inline buffer is copyable
            // bytes (unsigned char, so the uninitialized tail is fine
            // to copy), and a fixed-size memcpy inlines to a few
            // vector moves.
            std::memcpy(_storage, other._storage, InlineSize);
        _invoke = other._invoke;
        _manage = other._manage;
        _heap = other._heap;
        other._invoke = nullptr;
        other._manage = nullptr;
        other._heap = false;
    }

    using Invoke = void (*)(void *);
    using Manage = void (*)(Op, void *, void *);

    Invoke _invoke = nullptr;
    Manage _manage = nullptr;
    bool _heap = false;
    alignas(std::max_align_t) unsigned char _storage[InlineSize];
};

} // namespace common
} // namespace qmh

#endif // QMH_COMMON_SMALL_FUNCTION_HH
