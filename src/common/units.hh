/**
 * @file
 * Time, area and rate units shared across the simulator.
 *
 * Discrete-event time is kept in integer nanoseconds (Tick) so that a
 * full 1024-bit modular exponentiation (hundreds of hours) still fits a
 * 64-bit counter with nine decimal digits to spare. Analytic models use
 * double-precision seconds and convert at the boundary.
 */

#ifndef QMH_COMMON_UNITS_HH
#define QMH_COMMON_UNITS_HH

#include <cstdint>

namespace qmh {

/** Discrete-event simulation time in nanoseconds. */
using Tick = std::uint64_t;

/** An invalid/unscheduled tick. */
constexpr Tick max_tick = ~Tick(0);

namespace units {

constexpr double ns_per_sec = 1e9;

/** Convert seconds to ticks, rounding to the nearest nanosecond. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * ns_per_sec + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / ns_per_sec;
}

/** Microseconds to seconds. */
constexpr double
usToSeconds(double us)
{
    return us * 1e-6;
}

/** Square micrometres to square millimetres. */
constexpr double
um2ToMm2(double um2)
{
    return um2 * 1e-6;
}

/** Seconds to hours. */
constexpr double
secondsToHours(double s)
{
    return s / 3600.0;
}

} // namespace units

} // namespace qmh

#endif // QMH_COMMON_UNITS_HH
