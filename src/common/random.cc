#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace qmh {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Random::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Random::uniformInt(std::uint64_t bound)
{
    if (bound == 0)
        qmh_panic("uniformInt bound must be nonzero");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - ~std::uint64_t(0) % bound;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Random::uniformRange(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        qmh_panic("uniformRange: lo > hi");
    // hi - lo in signed arithmetic overflows (UB) whenever the span
    // exceeds INT64_MAX, so compute it on the unsigned wrap-around
    // representatives instead.
    const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                               static_cast<std::uint64_t>(lo);
    if (span == ~std::uint64_t(0)) {
        // Full 64-bit range: span + 1 would wrap to 0 and uniformInt
        // would reject it, yet every 64-bit pattern is a valid sample.
        return static_cast<std::int64_t>(next());
    }
    const std::uint64_t offset = uniformInt(span + 1);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                     offset);
}

bool
Random::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Random::binomial(std::uint64_t n, double p)
{
    if (p <= 0.0 || n == 0)
        return 0;
    if (p >= 1.0)
        return n;

    constexpr std::uint64_t direct_cutoff = 64;
    if (n <= direct_cutoff) {
        std::uint64_t count = 0;
        for (std::uint64_t i = 0; i < n; ++i)
            count += bernoulli(p) ? 1 : 0;
        return count;
    }

    const double mean = static_cast<double>(n) * p;
    if (mean < 32.0) {
        // Poisson regime: the normal approximation is badly skewed
        // here (it misestimates P[X = 0], the quantity the fidelity
        // sampler depends on). Knuth's product method is exact for
        // Poisson and the binomial->Poisson error is O(p).
        const double threshold = std::exp(-mean);
        std::uint64_t count = 0;
        double product = uniform();
        while (product > threshold) {
            ++count;
            product *= uniform();
        }
        return count < n ? count : n;
    }

    // Normal approximation with continuity correction, clamped to the
    // valid range. For the bulk regime the mean is what matters; tails
    // beyond ~6 sigma are irrelevant.
    const double sigma = std::sqrt(mean * (1.0 - p));
    // Box-Muller transform.
    const double u1 = uniform();
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(6.28318530717958648 *
                                                        u2);
    double value = mean + sigma * z + 0.5;
    if (value < 0.0)
        value = 0.0;
    const double max_value = static_cast<double>(n);
    if (value > max_value)
        value = max_value;
    return static_cast<std::uint64_t>(value);
}

} // namespace qmh
