#include "sweep.hh"

#include <algorithm>

#include "common/table.hh"

namespace qmh {
namespace sweep {

std::uint64_t
pointSeed(std::uint64_t base_seed, std::size_t index)
{
    // splitmix64 finalizer over (base ^ golden-ratio-scaled index):
    // adjacent indices land in unrelated regions of the seed space, so
    // per-point Random streams do not overlap in practice.
    std::uint64_t z = base_seed +
                      (static_cast<std::uint64_t>(index) + 1) *
                          0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
keySeed(std::uint64_t base_seed, std::string_view key)
{
    // FNV-1a 64 over the key, folded through pointSeed. The constants
    // are load-bearing: opt::ResultCache files persist seeds derived
    // here, so changing the hash invalidates every existing cache.
    std::uint64_t hash = 0xCBF29CE484222325ULL;
    for (const char c : key) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001B3ULL;
    }
    return pointSeed(base_seed, hash);
}

std::vector<cqla::HierarchySimConfig>
HierarchyGrid::expand() const
{
    // Every axis defaults to the base config's single value.
    const std::vector<ecc::CodeKind> axis_codes =
        codes.empty() ? std::vector<ecc::CodeKind>{base.code} : codes;
    const std::vector<int> axis_bits =
        n_bits.empty() ? std::vector<int>{base.n_bits} : n_bits;
    const std::vector<unsigned> axis_transfers =
        parallel_transfers.empty()
            ? std::vector<unsigned>{base.parallel_transfers}
            : parallel_transfers;
    const std::vector<unsigned> axis_blocks =
        blocks.empty() ? std::vector<unsigned>{base.blocks} : blocks;
    const std::vector<double> axis_fractions =
        level1_fractions.empty()
            ? std::vector<double>{base.level1_fraction}
            : level1_fractions;

    std::vector<cqla::HierarchySimConfig> configs;
    configs.reserve(axis_codes.size() * axis_bits.size() *
                    axis_transfers.size() * axis_blocks.size() *
                    axis_fractions.size());
    for (const auto code : axis_codes)
        for (const auto bits : axis_bits)
            for (const auto transfers : axis_transfers)
                for (const auto block_count : axis_blocks)
                    for (const auto fraction : axis_fractions) {
                        cqla::HierarchySimConfig config = base;
                        config.code = code;
                        config.n_bits = bits;
                        config.parallel_transfers = transfers;
                        config.blocks = block_count;
                        config.level1_fraction = fraction;
                        configs.push_back(config);
                    }
    return configs;
}

std::vector<HierarchySweepPoint>
runHierarchySweep(SweepRunner &runner,
                  const std::vector<cqla::HierarchySimConfig> &configs,
                  const iontrap::Params &params)
{
    const std::uint64_t base_seed = runner.options().base_seed;
    return runner.map(
        configs.size(),
        [&configs, &params, base_seed](std::size_t i, Random &) {
            HierarchySweepPoint point;
            point.config = configs[i];
            point.seed = pointSeed(base_seed, i);
            point.result = cqla::runHierarchySim(point.config, params);
            return point;
        });
}

std::vector<HierarchySweepPoint>
runHierarchySweep(const std::vector<cqla::HierarchySimConfig> &configs,
                  const iontrap::Params &params,
                  const SweepOptions &options)
{
    SweepRunner runner(options);
    return runHierarchySweep(runner, configs, params);
}

ResultTable
hierarchySweepTable(const std::vector<HierarchySweepPoint> &points)
{
    ResultTable table({"code", "n_bits", "channels", "blocks",
                       "level1_fraction", "seed", "makespan_s",
                       "baseline_s", "makespan_speedup",
                       "mean_adder_speedup", "level1_adds",
                       "level2_adds", "transfer_utilization",
                       "events_executed"});
    for (const auto &point : points) {
        const auto &config = point.config;
        const auto &result = point.result;
        table.addRow({ecc::Code::byKind(config.code).name(),
                      config.n_bits,
                      config.parallel_transfers,
                      config.blocks,
                      config.level1_fraction,
                      point.seed,
                      result.makespan_s,
                      result.baseline_s,
                      result.makespan_speedup,
                      result.mean_adder_speedup,
                      result.level1_adds,
                      result.level2_adds,
                      result.transfer_utilization,
                      result.events_executed});
    }
    return table;
}

void
printTopBySpeedup(std::ostream &os,
                  const std::vector<HierarchySweepPoint> &points,
                  std::size_t top_n)
{
    auto ranked = points;
    std::sort(ranked.begin(), ranked.end(),
              [](const HierarchySweepPoint &a,
                 const HierarchySweepPoint &b) {
                  return a.result.makespan_speedup >
                         b.result.makespan_speedup;
              });

    AsciiTable t;
    t.setHeader({"Rank", "Code", "Size", "Xfer", "Blocks", "f(L1)",
                 "Makespan SpUp", "Adder SpUp", "Xfer Util"});
    t.setAlign(1, Align::Left);
    const std::size_t show = std::min(top_n, ranked.size());
    for (std::size_t i = 0; i < show; ++i) {
        const auto &p = ranked[i];
        t.addRow({std::to_string(i + 1),
                  p.config.code == ecc::CodeKind::Steane713
                      ? "Steane"
                      : "Bacon-Shor",
                  std::to_string(p.config.n_bits),
                  std::to_string(p.config.parallel_transfers),
                  std::to_string(p.config.blocks),
                  AsciiTable::num(p.config.level1_fraction, 2),
                  AsciiTable::num(p.result.makespan_speedup, 2),
                  AsciiTable::num(p.result.mean_adder_speedup, 2),
                  AsciiTable::num(p.result.transfer_utilization, 2)});
    }
    t.print(os);
}

} // namespace sweep
} // namespace qmh
