#include "thread_pool.hh"

#include <utility>

namespace qmh {
namespace sweep {

ThreadPool::ThreadPool(unsigned n_threads)
{
    if (n_threads == 0) {
        n_threads = std::thread::hardware_concurrency();
        if (n_threads == 0)
            n_threads = 1;
    }
    _workers.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i)
        _workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _stopping = true;
    }
    _work_ready.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(Task task)
{
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _queue.push_back(std::move(task));
        ++_in_flight;
    }
    _work_ready.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _all_done.wait(lock, [this]() { return _in_flight == 0; });
    if (_first_error) {
        auto error = std::exchange(_first_error, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _work_ready.wait(lock, [this]() {
                return _stopping || !_queue.empty();
            });
            if (_queue.empty())
                return; // stopping and drained
            task = std::move(_queue.front());
            _queue.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(_mutex);
            if (!_first_error)
                _first_error = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(_mutex);
            if (--_in_flight == 0)
                _all_done.notify_all();
        }
    }
}

} // namespace sweep
} // namespace qmh
