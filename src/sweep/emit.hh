/**
 * @file
 * Machine-readable sweep-result emission (CSV and JSON).
 *
 * The reproduction benches print paper-style ASCII tables for humans;
 * this module emits the same sweep results in forms downstream tooling
 * can parse: RFC-4180-style CSV and a JSON array of row objects.
 * Numeric cells round-trip exactly (shortest representation that
 * parses back to the same double).
 */

#ifndef QMH_SWEEP_EMIT_HH
#define QMH_SWEEP_EMIT_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/table.hh"

namespace qmh {
namespace sweep {

/** One table cell: text, real, or integer. */
class Cell
{
  public:
    Cell(std::string text) : _value(std::move(text)) {}
    Cell(const char *text) : _value(std::string(text)) {}
    Cell(double v) : _value(v) {}
    Cell(std::int64_t v) : _value(v) {}
    Cell(std::uint64_t v) : _value(v) {}
    Cell(int v) : _value(static_cast<std::int64_t>(v)) {}
    Cell(unsigned v) : _value(static_cast<std::uint64_t>(v)) {}

    bool isText() const
    {
        return std::holds_alternative<std::string>(_value);
    }

    bool isReal() const
    {
        return std::holds_alternative<double>(_value);
    }

    /** Numeric value as a double; nullopt for text cells. */
    std::optional<double> asNumber() const;

    /** Unquoted rendering (CSV body, JSON number, or raw text). */
    std::string toString() const;

    /**
     * JSON value: quoted+escaped for text, bare for numbers.
     * Non-finite doubles have no JSON literal and emit null.
     */
    std::string toJson() const;

    /**
     * One-character alternative tag for serialization: 's' text,
     * 'd' real, 'i' signed integer, 'u' unsigned integer.
     */
    char typeTag() const;

    /**
     * Rebuild a cell from (typeTag(), toString()); round-trips every
     * cell exactly, alternative included. nullopt when @p text does
     * not parse under @p tag (or the tag is unknown).
     */
    static std::optional<Cell> fromTagged(char tag, std::string text);

  private:
    std::variant<std::string, double, std::int64_t, std::uint64_t>
        _value;
};

/** Column-labelled result rows with CSV/JSON writers. */
class ResultTable
{
  public:
    explicit ResultTable(std::vector<std::string> columns);

    /** Append one row; width must match the column count. */
    void addRow(std::vector<Cell> row);

    std::size_t rows() const { return _rows.size(); }
    std::size_t columns() const { return _columns.size(); }

    /** Column labels in declaration order. */
    const std::vector<std::string> &columnNames() const
    {
        return _columns;
    }

    /** Index of the column named @p name; nullopt when absent. */
    std::optional<std::size_t> findColumn(std::string_view name) const;

    /** Cell at (@p row, @p col); bounds panic. */
    const Cell &cell(std::size_t row, std::size_t col) const;

    /**
     * Stable-sort rows by the numeric value of column @p col, in the
     * requested direction; text and NaN cells sort after every number
     * either way.
     */
    void sortRowsByColumn(std::size_t col, bool descending);

    /** sortRowsByColumn(col, true). */
    void sortRowsByColumnDesc(std::size_t col);

    /** CSV with a header line; cells quoted when they need it. */
    void writeCsv(std::ostream &os) const;

    /** JSON array of {column: value} objects. */
    void writeJson(std::ostream &os) const;

    /** Write CSV to @p path; returns false on I/O failure. */
    bool writeCsvFile(const std::string &path) const;

    /** Write JSON to @p path; returns false on I/O failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::vector<std::string> _columns;
    std::vector<std::vector<Cell>> _rows;
};

/** JSON string literal (quotes plus the mandatory escapes) for @p s. */
std::string jsonQuote(const std::string &s);

/**
 * Render up to @p max_rows of @p table as a paper-style ASCII table,
 * dropping any column named in @p drop_columns (the wide "spec"
 * column, typically).
 */
AsciiTable toAsciiTable(const ResultTable &table,
                        std::size_t max_rows = std::size_t(-1),
                        const std::vector<std::string> &drop_columns = {});

} // namespace sweep
} // namespace qmh

#endif // QMH_SWEEP_EMIT_HH
