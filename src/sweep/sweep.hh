/**
 * @file
 * Multithreaded parameter-sweep engine.
 *
 * Hierarchy simulations are embarrassingly parallel: every point owns
 * its EventQueue (there is no global singleton by design), so a grid
 * of HierarchySimConfig / cache-size / bandwidth points fans across
 * cores with no shared mutable state. SweepRunner::map evaluates
 * `fn(index, rng)` for every point of a grid and stores the result at
 * its index, so the output is independent of task completion order.
 *
 * Determinism contract: each point receives its own qmh::Random seeded
 * from (base_seed, index) via pointSeed(). The result vector is
 * bit-identical whether the sweep runs on 1 thread or N threads.
 */

#ifndef QMH_SWEEP_SWEEP_HH
#define QMH_SWEEP_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/random.hh"
#include "cqla/hierarchy_sim.hh"
#include "iontrap/params.hh"
#include "sweep/emit.hh"
#include "sweep/thread_pool.hh"

namespace qmh {
namespace sweep {

/** Sweep execution options. */
struct SweepOptions
{
    /** Worker threads; 0 means one per hardware thread. */
    unsigned threads = 0;
    /** Base seed; every grid point derives its own stream from it. */
    std::uint64_t base_seed = 0x243F6A8885A308D3ULL;
};

/**
 * Deterministic per-point seed: a splitmix64-style mix of the base
 * seed and the point index. Depends only on its arguments, never on
 * scheduling.
 */
std::uint64_t pointSeed(std::uint64_t base_seed, std::size_t index);

/**
 * Deterministic seed for a string-keyed point: FNV-1a 64 of @p key
 * folded through pointSeed(). This is the seeding scheme of every
 * string-addressed surface (opt::specSeed over canonical spec
 * strings, the service's seed_mode="spec", the shared server cache):
 * a row is a function of (base seed, key) alone, independent of
 * request order, batching or thread count.
 */
std::uint64_t keySeed(std::uint64_t base_seed, std::string_view key);

/** Fans grid points across a worker pool; results land by index. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions options = {})
        : _options(options), _pool(options.threads)
    {
    }

    /** Worker threads actually running. */
    unsigned threadCount() const { return _pool.threadCount(); }

    const SweepOptions &options() const { return _options; }

    /**
     * The underlying pool, for job-oriented execution layered on a
     * shared runner (api::Session). Note the pool's wait() covers
     * every queued task, not one caller's batch.
     */
    ThreadPool &pool() { return _pool; }

    /**
     * Evaluate @p fn(index, rng) for index in [0, n_points) and return
     * the results in index order. @p fn must be callable concurrently
     * from multiple threads and must not touch shared mutable state;
     * its result type must be default-constructible.
     *
     * Workers claim indices dynamically (atomic counter), so load
     * imbalance across points does not serialize the sweep.
     */
    template <typename Fn>
    auto
    map(std::size_t n_points, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, std::size_t, Random &>>
    {
        using Result = std::invoke_result_t<Fn &, std::size_t, Random &>;
        std::vector<Result> results(n_points);
        if (n_points == 0)
            return results;

        std::atomic<std::size_t> next_index{0};
        const std::uint64_t base_seed = _options.base_seed;
        auto worker = [&]() {
            for (;;) {
                const std::size_t i =
                    next_index.fetch_add(1, std::memory_order_relaxed);
                if (i >= n_points)
                    return;
                Random rng(pointSeed(base_seed, i));
                results[i] = fn(i, rng);
            }
        };

        const unsigned n_workers = _pool.threadCount();
        for (unsigned t = 0; t < n_workers; ++t)
            _pool.submit(worker);
        _pool.wait();
        return results;
    }

  private:
    SweepOptions _options;
    ThreadPool _pool;
};

/**
 * Cartesian grid of hierarchy-simulation configurations. Empty axes
 * fall back to the base config's value for that axis.
 */
struct HierarchyGrid
{
    cqla::HierarchySimConfig base;
    std::vector<ecc::CodeKind> codes;
    std::vector<int> n_bits;
    std::vector<unsigned> parallel_transfers;
    std::vector<unsigned> blocks;
    std::vector<double> level1_fractions;

    /** Expand the cross product into concrete configs. */
    std::vector<cqla::HierarchySimConfig> expand() const;
};

/** One evaluated hierarchy point: config, derived seed, outcome. */
struct HierarchySweepPoint
{
    cqla::HierarchySimConfig config;
    std::uint64_t seed = 0;
    cqla::HierarchySimResult result;
};

/**
 * Run every config through runHierarchySim across the pool of
 * @p runner. Results are index-aligned with @p configs and
 * bit-identical for a fixed base seed regardless of thread count.
 */
std::vector<HierarchySweepPoint>
runHierarchySweep(SweepRunner &runner,
                  const std::vector<cqla::HierarchySimConfig> &configs,
                  const iontrap::Params &params);

/** Convenience overload: builds a runner from @p options. */
std::vector<HierarchySweepPoint>
runHierarchySweep(const std::vector<cqla::HierarchySimConfig> &configs,
                  const iontrap::Params &params,
                  const SweepOptions &options = {});

/**
 * Flatten sweep points into the canonical result table (one row per
 * point, config columns then outcome columns) for CSV/JSON emission.
 */
ResultTable
hierarchySweepTable(const std::vector<HierarchySweepPoint> &points);

/**
 * Print the @p top_n configurations ranked by makespan speedup as a
 * paper-style ASCII table (shared by the table-5 bench and the sweep
 * explorer so their reports cannot drift apart).
 */
void printTopBySpeedup(std::ostream &os,
                       const std::vector<HierarchySweepPoint> &points,
                       std::size_t top_n);

} // namespace sweep
} // namespace qmh

#endif // QMH_SWEEP_SWEEP_HH
