#include "emit.hh"

#include <charconv>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"

namespace qmh {
namespace sweep {

namespace {

/** Shortest decimal form that parses back to the same double. */
std::string
formatDouble(double v)
{
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), v);
    if (ec != std::errc())
        qmh_panic("formatDouble: to_chars failed");
    return std::string(buffer, end);
}

/** CSV cell: quote and double embedded quotes when needed. */
std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** JSON string literal with the mandatory escapes. */
std::string
jsonEscape(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

std::string
Cell::toString() const
{
    if (const auto *text = std::get_if<std::string>(&_value))
        return *text;
    if (const auto *real = std::get_if<double>(&_value))
        return formatDouble(*real);
    if (const auto *wide = std::get_if<std::uint64_t>(&_value))
        return std::to_string(*wide);
    return std::to_string(std::get<std::int64_t>(_value));
}

std::string
Cell::toJson() const
{
    if (const auto *text = std::get_if<std::string>(&_value))
        return jsonEscape(*text);
    return toString();
}

ResultTable::ResultTable(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
    if (_columns.empty())
        qmh_panic("ResultTable needs at least one column");
}

void
ResultTable::addRow(std::vector<Cell> row)
{
    if (row.size() != _columns.size())
        qmh_panic("ResultTable row width ", row.size(),
                  " != column count ", _columns.size());
    _rows.push_back(std::move(row));
}

void
ResultTable::writeCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < _columns.size(); ++c)
        os << (c ? "," : "") << csvEscape(_columns[c]);
    os << '\n';
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c].toString());
        os << '\n';
    }
}

void
ResultTable::writeJson(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        os << "  {";
        for (std::size_t c = 0; c < _columns.size(); ++c) {
            os << (c ? ", " : "") << jsonEscape(_columns[c]) << ": "
               << _rows[r][c].toJson();
        }
        os << (r + 1 < _rows.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

bool
ResultTable::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeCsv(os);
    return static_cast<bool>(os);
}

bool
ResultTable::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return static_cast<bool>(os);
}

} // namespace sweep
} // namespace qmh
