#include "emit.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "common/logging.hh"

namespace qmh {
namespace sweep {

namespace {

/** CSV cell: quote and double embedded quotes when needed. */
std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
Cell::toString() const
{
    if (const auto *text = std::get_if<std::string>(&_value))
        return *text;
    if (const auto *real = std::get_if<double>(&_value))
        return formatDoubleShortest(*real);
    if (const auto *wide = std::get_if<std::uint64_t>(&_value))
        return std::to_string(*wide);
    return std::to_string(std::get<std::int64_t>(_value));
}

std::optional<double>
Cell::asNumber() const
{
    if (const auto *real = std::get_if<double>(&_value))
        return *real;
    if (const auto *wide = std::get_if<std::uint64_t>(&_value))
        return static_cast<double>(*wide);
    if (const auto *narrow = std::get_if<std::int64_t>(&_value))
        return static_cast<double>(*narrow);
    return std::nullopt;
}

char
Cell::typeTag() const
{
    if (std::holds_alternative<std::string>(_value))
        return 's';
    if (std::holds_alternative<double>(_value))
        return 'd';
    if (std::holds_alternative<std::int64_t>(_value))
        return 'i';
    return 'u';
}

std::optional<Cell>
Cell::fromTagged(char tag, std::string text)
{
    // Strict full-consumption parsing, like api::parseInt and
    // friends (which live above this layer): trailing garbage means
    // a corrupt serialization, never a silent zero.
    const char *first = text.data();
    const char *last = text.data() + text.size();
    switch (tag) {
    case 's':
        return Cell(std::move(text));
    case 'd': {
        double v = 0.0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec != std::errc() || ptr != last)
            return std::nullopt;
        return Cell(v);
    }
    case 'i': {
        std::int64_t v = 0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec != std::errc() || ptr != last)
            return std::nullopt;
        return Cell(v);
    }
    case 'u': {
        std::uint64_t v = 0;
        const auto [ptr, ec] = std::from_chars(first, last, v);
        if (ec != std::errc() || ptr != last)
            return std::nullopt;
        return Cell(v);
    }
    default:
        return std::nullopt;
    }
}

std::string
Cell::toJson() const
{
    if (const auto *text = std::get_if<std::string>(&_value))
        return jsonQuote(*text);
    // JSON has no literal for inf/nan; a bare token would make the
    // whole document unparseable, so emit null.
    if (const auto *real = std::get_if<double>(&_value))
        if (!std::isfinite(*real))
            return "null";
    return toString();
}

ResultTable::ResultTable(std::vector<std::string> columns)
    : _columns(std::move(columns))
{
    if (_columns.empty())
        qmh_panic("ResultTable needs at least one column");
}

void
ResultTable::addRow(std::vector<Cell> row)
{
    if (row.size() != _columns.size())
        qmh_panic("ResultTable row width ", row.size(),
                  " != column count ", _columns.size());
    _rows.push_back(std::move(row));
}

std::optional<std::size_t>
ResultTable::findColumn(std::string_view name) const
{
    for (std::size_t c = 0; c < _columns.size(); ++c)
        if (_columns[c] == name)
            return c;
    return std::nullopt;
}

const Cell &
ResultTable::cell(std::size_t row, std::size_t col) const
{
    if (row >= _rows.size() || col >= _columns.size())
        qmh_panic("ResultTable::cell(", row, ", ", col,
                  ") out of bounds for ", _rows.size(), "x",
                  _columns.size());
    return _rows[row][col];
}

void
ResultTable::sortRowsByColumn(std::size_t col, bool descending)
{
    if (col >= _columns.size())
        qmh_panic("ResultTable::sortRowsByColumn: column ", col,
                  " out of bounds for ", _columns.size());
    // Text and NaN cells always rank after the numbers (NaN in the
    // comparator itself would break strict weak ordering — UB in
    // stable_sort — so it is mapped to the worst rank up front).
    const double worst = descending
                             ? -std::numeric_limits<double>::infinity()
                             : std::numeric_limits<double>::infinity();
    auto rank = [col, worst](const std::vector<Cell> &row) {
        const auto number = row[col].asNumber();
        return number && !std::isnan(*number) ? *number : worst;
    };
    std::stable_sort(_rows.begin(), _rows.end(),
                     [&rank, descending](const auto &a, const auto &b) {
                         return descending ? rank(a) > rank(b)
                                           : rank(a) < rank(b);
                     });
}

void
ResultTable::sortRowsByColumnDesc(std::size_t col)
{
    sortRowsByColumn(col, true);
}

void
ResultTable::writeCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < _columns.size(); ++c)
        os << (c ? "," : "") << csvEscape(_columns[c]);
    os << '\n';
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c].toString());
        os << '\n';
    }
}

void
ResultTable::writeJson(std::ostream &os) const
{
    os << "[\n";
    for (std::size_t r = 0; r < _rows.size(); ++r) {
        os << "  {";
        for (std::size_t c = 0; c < _columns.size(); ++c) {
            os << (c ? ", " : "") << jsonQuote(_columns[c]) << ": "
               << _rows[r][c].toJson();
        }
        os << (r + 1 < _rows.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

bool
ResultTable::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeCsv(os);
    return static_cast<bool>(os);
}

bool
ResultTable::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return static_cast<bool>(os);
}

AsciiTable
toAsciiTable(const ResultTable &table, std::size_t max_rows,
             const std::vector<std::string> &drop_columns)
{
    std::vector<std::size_t> keep;
    for (std::size_t c = 0; c < table.columns(); ++c) {
        const auto &name = table.columnNames()[c];
        if (std::find(drop_columns.begin(), drop_columns.end(),
                      name) == drop_columns.end())
            keep.push_back(c);
    }

    AsciiTable ascii;
    std::vector<std::string> header;
    for (const auto c : keep)
        header.push_back(table.columnNames()[c]);
    ascii.setHeader(std::move(header));
    for (std::size_t out = 0; out < keep.size(); ++out)
        if (table.rows() &&
            table.cell(0, keep[out]).isText())
            ascii.setAlign(out, Align::Left);

    const std::size_t show = std::min(max_rows, table.rows());
    for (std::size_t r = 0; r < show; ++r) {
        std::vector<std::string> row;
        for (const auto c : keep) {
            const auto &value = table.cell(r, c);
            // Shortest-round-trip doubles are exact but unreadable in
            // a report; four decimals is plenty here.
            if (value.isReal() &&
                std::isfinite(*value.asNumber()))
                row.push_back(
                    AsciiTable::num(*value.asNumber(), 4));
            else
                row.push_back(value.toString());
        }
        ascii.addRow(std::move(row));
    }
    return ascii;
}

} // namespace sweep
} // namespace qmh
