/**
 * @file
 * Fixed-size worker pool for parameter sweeps.
 *
 * The pool owns N worker threads that drain a shared task queue. It is
 * deliberately minimal: sweeps decompose into many independent
 * simulation points, so a shared queue with dynamic self-scheduling
 * (each worker pulls the next task when it goes idle) balances load
 * without per-thread deques. Exceptions thrown by tasks are captured
 * and rethrown from wait() on the submitting thread.
 */

#ifndef QMH_SWEEP_THREAD_POOL_HH
#define QMH_SWEEP_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qmh {
namespace sweep {

/** Shared-queue worker pool; tasks run in submission order. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /**
     * Start @p n_threads workers. 0 means one per hardware thread
     * (at least one).
     */
    explicit ThreadPool(unsigned n_threads = 0);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; runs as soon as a worker is idle. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished. If any task threw,
     * the first captured exception is rethrown here (subsequent ones
     * are dropped).
     */
    void wait();

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(_workers.size());
    }

  private:
    void workerLoop();

    std::mutex _mutex;
    std::condition_variable _work_ready;
    std::condition_variable _all_done;
    std::deque<Task> _queue;
    std::vector<std::thread> _workers;
    std::exception_ptr _first_error;
    std::size_t _in_flight = 0;
    bool _stopping = false;
};

} // namespace sweep
} // namespace qmh

#endif // QMH_SWEEP_THREAD_POOL_HH
