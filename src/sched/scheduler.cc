#include "scheduler.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace qmh {
namespace sched {

namespace {

/** Ready-queue entry ordered by critical-path priority, then index. */
struct ReadyEntry
{
    std::uint64_t priority;
    std::uint32_t index;

    bool
    operator<(const ReadyEntry &other) const
    {
        // std::priority_queue is a max-heap; higher priority first,
        // ties broken toward program order for determinism.
        if (priority != other.priority)
            return priority < other.priority;
        return index > other.index;
    }
};

/** Completion-queue entry ordered by finish time. */
struct FinishEntry
{
    std::uint64_t finish;
    std::uint32_t index;
    std::uint32_t block;

    bool
    operator>(const FinishEntry &other) const
    {
        if (finish != other.finish)
            return finish > other.finish;
        return index > other.index;
    }
};

} // namespace

std::vector<std::uint32_t>
ScheduleResult::inFlightProfile() const
{
    std::vector<std::int64_t> delta(makespan + 1, 0);
    for (std::size_t i = 0; i < start.size(); ++i) {
        delta[start[i]] += 1;
        delta[start[i] + _latency[i]] -= 1;
    }
    std::vector<std::uint32_t> profile(makespan, 0);
    std::int64_t current = 0;
    for (std::uint64_t t = 0; t < makespan; ++t) {
        current += delta[t];
        profile[t] = static_cast<std::uint32_t>(current);
    }
    return profile;
}

std::vector<double>
ScheduleResult::windowedProfile(std::uint64_t window) const
{
    if (window == 0)
        qmh_panic("windowedProfile: zero window");
    const auto profile = inFlightProfile();
    std::vector<double> out;
    for (std::uint64_t base = 0; base < profile.size(); base += window) {
        const auto end = std::min<std::uint64_t>(base + window,
                                                 profile.size());
        double sum = 0.0;
        for (std::uint64_t t = base; t < end; ++t)
            sum += profile[t];
        out.push_back(sum / static_cast<double>(end - base));
    }
    return out;
}

std::uint32_t
ScheduleResult::peakParallelism() const
{
    std::uint32_t peak = 0;
    for (const auto v : inFlightProfile())
        peak = std::max(peak, v);
    return peak;
}

double
ScheduleResult::utilization() const
{
    const unsigned blocks =
        blocks_requested == unlimited_blocks ? blocks_used
                                             : blocks_requested;
    if (blocks == 0 || makespan == 0)
        return 0.0;
    return static_cast<double>(busy_block_steps) /
           (static_cast<double>(blocks) * static_cast<double>(makespan));
}

ScheduleResult
listSchedule(const circuit::Program &program,
             const circuit::DependencyGraph &dag,
             const LatencyModel &latency, unsigned blocks)
{
    const auto &insts = program.instructions();
    const auto m = static_cast<std::uint32_t>(insts.size());

    ScheduleResult result;
    result.blocks_requested = blocks;
    result.start.assign(m, 0);
    result.block.assign(m, 0);
    result._latency.resize(m);
    for (std::uint32_t i = 0; i < m; ++i) {
        result._latency[i] = latency.steps(insts[i].kind);
        result.busy_block_steps += result._latency[i];
    }
    if (m == 0)
        return result;

    // Critical-path priority: longest weighted path to any sink.
    std::vector<std::uint64_t> priority(m, 0);
    for (std::uint32_t i = m; i-- > 0;) {
        std::uint64_t best = 0;
        for (const auto s : dag.successors(i))
            best = std::max(best, priority[s]);
        priority[i] = best + result._latency[i];
    }

    std::vector<int> remaining(m);
    std::priority_queue<ReadyEntry> ready;
    for (std::uint32_t i = 0; i < m; ++i) {
        remaining[i] = dag.inDegree(i);
        if (remaining[i] == 0)
            ready.push({priority[i], i});
    }

    std::priority_queue<FinishEntry, std::vector<FinishEntry>,
                        std::greater<>> running;
    // Free block ids, smallest first so assignments are deterministic
    // and dense.
    std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                        std::greater<>> free_blocks;
    const bool capped = blocks != unlimited_blocks;
    unsigned next_fresh_block = 0;
    if (capped)
        for (std::uint32_t b = 0; b < blocks; ++b)
            free_blocks.push(b);

    std::uint64_t now = 0;
    std::uint32_t scheduled = 0;
    unsigned peak_blocks = 0;

    while (scheduled < m) {
        // Issue every ready gate a free block can take.
        while (!ready.empty() &&
               (!capped || !free_blocks.empty())) {
            const auto entry = ready.top();
            ready.pop();
            std::uint32_t block_id;
            if (capped) {
                block_id = free_blocks.top();
                free_blocks.pop();
            } else if (!free_blocks.empty()) {
                block_id = free_blocks.top();
                free_blocks.pop();
            } else {
                block_id = next_fresh_block++;
            }
            result.start[entry.index] = now;
            result.block[entry.index] = block_id;
            running.push({now + result._latency[entry.index], entry.index,
                          block_id});
            peak_blocks = std::max<unsigned>(
                peak_blocks, static_cast<unsigned>(running.size()));
            ++scheduled;
        }

        if (running.empty()) {
            if (scheduled < m)
                qmh_panic("scheduler deadlock: ", m - scheduled,
                          " gates unscheduled (cyclic DAG?)");
            break;
        }

        // Advance to the next completion time and retire everything
        // finishing then.
        now = running.top().finish;
        while (!running.empty() && running.top().finish == now) {
            const auto done = running.top();
            running.pop();
            free_blocks.push(done.block);
            for (const auto s : dag.successors(done.index)) {
                if (--remaining[s] == 0)
                    ready.push({priority[s], s});
            }
        }
    }

    // Drain: makespan is the last completion.
    result.makespan = now;
    while (!running.empty()) {
        result.makespan = std::max(result.makespan, running.top().finish);
        running.pop();
    }
    result.blocks_used =
        capped ? blocks : std::max(peak_blocks, next_fresh_block);
    return result;
}

ScheduleResult
listSchedule(const circuit::Program &program, const LatencyModel &latency,
             unsigned blocks)
{
    circuit::DependencyGraph dag(program);
    return listSchedule(program, dag, latency, blocks);
}

ScheduleResult
roundSchedule(const circuit::Program &program,
              const circuit::DependencyGraph &dag,
              const LatencyModel &latency, unsigned blocks)
{
    const auto &insts = program.instructions();
    const auto m = static_cast<std::uint32_t>(insts.size());

    ScheduleResult result;
    result.blocks_requested = blocks;
    result.start.assign(m, 0);
    result.block.assign(m, 0);
    result._latency.resize(m);
    for (std::uint32_t i = 0; i < m; ++i) {
        result._latency[i] = latency.steps(insts[i].kind);
        result.busy_block_steps += result._latency[i];
    }
    if (m == 0)
        return result;

    // Program-order round formation: an instruction joins the open
    // round unless one of its qubits was already touched in it (the
    // static compiler issues the algorithm's structural rounds as
    // written; it does not reorder across phases the way ASAP
    // levelling would).
    std::vector<std::vector<std::uint32_t>> rounds;
    {
        std::vector<std::int64_t> qubit_round(
            static_cast<std::size_t>(program.qubitCount()), -1);
        std::int64_t current = -1;
        for (std::uint32_t i = 0; i < m; ++i) {
            // An explicit barrier always opens a fresh round;
            // subsequent instructions fall into that round.
            bool conflict = current < 0 ||
                            insts[i].kind == circuit::GateKind::Barrier;
            for (const auto &q : insts[i].operands())
                conflict |= qubit_round[q.value()] == current;
            if (conflict) {
                ++current;
                rounds.emplace_back();
            }
            rounds.back().push_back(i);
            for (const auto &q : insts[i].operands())
                qubit_round[q.value()] = current;
        }
    }
    (void)dag;

    const bool capped = blocks != unlimited_blocks;
    std::uint64_t now = 0;
    unsigned widest_round = 0;

    for (const auto &round : rounds) {
        // The round's slot latency is its slowest gate (every gate is
        // followed by error correction before the barrier lifts).
        std::uint32_t slot = 0;
        for (const auto i : round)
            slot = std::max(slot, result._latency[i]);

        // Zero-latency instructions (barriers) pin to the round start
        // and do not consume block slots.
        unsigned count = 0;
        for (const auto i : round)
            count += result._latency[i] > 0 ? 1 : 0;
        widest_round = std::max(widest_round, count);
        const unsigned per_batch =
            capped ? blocks : std::max(1u, count);
        unsigned in_batch = 0;
        std::uint64_t batch_start = now;
        for (const auto i : round) {
            if (result._latency[i] == 0) {
                result.start[i] = now;
                result.block[i] = 0;
                continue;
            }
            if (in_batch == per_batch) {
                in_batch = 0;
                batch_start += slot;
            }
            result.start[i] = batch_start;
            result.block[i] = in_batch;
            ++in_batch;
        }
        const auto batches =
            std::max<unsigned>(1, (count + per_batch - 1) /
                                      std::max(1u, per_batch));
        now += count == 0 ? 0
                          : static_cast<std::uint64_t>(batches) * slot;
    }

    result.makespan = now;
    result.blocks_used = capped ? blocks : widest_round;
    return result;
}

ScheduleResult
roundSchedule(const circuit::Program &program, const LatencyModel &latency,
              unsigned blocks)
{
    circuit::DependencyGraph dag(program);
    return roundSchedule(program, dag, latency, blocks);
}

} // namespace sched
} // namespace qmh
