#include "scheduler.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace qmh {
namespace sched {

namespace {

/** Completion-queue entry ordered by finish time. */
struct FinishEntry
{
    std::uint64_t finish;
    std::uint32_t index;
    std::uint32_t block;

    bool
    operator>(const FinishEntry &other) const
    {
        if (finish != other.finish)
            return finish > other.finish;
        return index > other.index;
    }
};

} // namespace

std::vector<ProfileSegment>
buildProfileSegments(const std::vector<std::uint64_t> &start,
                     const std::vector<std::uint64_t> &duration,
                     std::uint64_t span)
{
    if (start.size() != duration.size())
        qmh_panic("buildProfileSegments: ", start.size(),
                  " starts vs ", duration.size(), " durations");
    // Delta counting over the *distinct event times* only — never a
    // slot per time step, so tick-resolution traces with makespans in
    // the billions stay O(gates log gates).
    std::vector<std::pair<std::uint64_t, std::int32_t>> events;
    events.reserve(2 * start.size());
    for (std::size_t i = 0; i < start.size(); ++i) {
        if (duration[i] == 0)
            continue;  // barriers occupy no block time
        events.emplace_back(start[i], 1);
        events.emplace_back(start[i] + duration[i], -1);
    }
    std::sort(events.begin(), events.end());

    std::vector<ProfileSegment> segments;
    const auto emit = [&segments](std::uint64_t begin,
                                  std::uint64_t end,
                                  std::uint32_t in_flight) {
        // Maximal runs: extend the previous segment when the value
        // did not actually change at the boundary.
        if (!segments.empty() &&
            segments.back().in_flight == in_flight)
            segments.back().end = end;
        else
            segments.push_back({begin, end, in_flight});
    };
    std::uint64_t cursor = 0;
    std::int64_t current = 0;
    std::size_t e = 0;
    while (e < events.size()) {
        const auto when = events[e].first;
        if (when > cursor)
            emit(cursor, when, static_cast<std::uint32_t>(current));
        while (e < events.size() && events[e].first == when)
            current += events[e++].second;
        cursor = when;
    }
    if (current != 0)
        qmh_panic("buildProfileSegments: unbalanced profile (", current,
                  " gates never finish)");
    if (cursor < span)
        emit(cursor, span, 0);
    return segments;
}

std::vector<ProfileSegment>
ScheduleResult::inFlightSegments() const
{
    std::vector<std::uint64_t> duration(_latency.begin(), _latency.end());
    return buildProfileSegments(start, duration, makespan);
}

std::vector<std::uint32_t>
ScheduleResult::inFlightProfile() const
{
    std::vector<std::uint32_t> profile(makespan, 0);
    for (const auto &segment : inFlightSegments())
        for (std::uint64_t t = segment.begin;
             t < std::min(segment.end, makespan); ++t)
            profile[t] = segment.in_flight;
    return profile;
}

std::vector<double>
ScheduleResult::windowedProfile(std::uint64_t window) const
{
    if (window == 0)
        qmh_panic("windowedProfile: zero window");
    if (makespan == 0)
        return {};
    const auto windows =
        static_cast<std::size_t>((makespan + window - 1) / window);
    std::vector<double> sums(windows, 0.0);
    for (const auto &segment : inFlightSegments()) {
        if (segment.in_flight == 0 || segment.begin >= makespan)
            continue;
        const auto end = std::min(segment.end, makespan);
        for (auto w = segment.begin / window; w * window < end; ++w) {
            const auto lo = std::max(segment.begin, w * window);
            const auto hi = std::min(end, (w + 1) * window);
            sums[w] += static_cast<double>(segment.in_flight) *
                       static_cast<double>(hi - lo);
        }
    }
    std::vector<double> out(windows, 0.0);
    for (std::size_t w = 0; w < windows; ++w) {
        const auto base = static_cast<std::uint64_t>(w) * window;
        const auto width = std::min(window, makespan - base);
        out[w] = sums[w] / static_cast<double>(width);
    }
    return out;
}

std::uint32_t
ScheduleResult::peakParallelism() const
{
    std::uint32_t peak = 0;
    for (const auto &segment : inFlightSegments())
        peak = std::max(peak, segment.in_flight);
    return peak;
}

double
ScheduleResult::utilization() const
{
    const unsigned blocks =
        blocks_requested == unlimited_blocks ? blocks_used
                                             : blocks_requested;
    if (blocks == 0 || makespan == 0)
        return 0.0;
    return static_cast<double>(busy_block_steps) /
           (static_cast<double>(blocks) * static_cast<double>(makespan));
}

IncrementalScheduler::IncrementalScheduler(
    const circuit::Program &program,
    const circuit::DependencyGraph &dag, const LatencyModel &latency,
    unsigned blocks)
    : _blocks(blocks), _capped(blocks != unlimited_blocks)
{
    const auto &insts = program.instructions();
    _total = static_cast<std::uint32_t>(insts.size());
    _latency.resize(_total);
    for (std::uint32_t i = 0; i < _total; ++i) {
        _latency[i] = latency.steps(insts[i].kind);
        _busy_block_steps += _latency[i];
    }

    // The DAG already stores successor adjacency in CSR form; take a
    // flat copy so every later claim/complete walks contiguous memory
    // the scheduler owns outright.
    _succ_offset = dag.succOffsets();
    _succ = dag.succEdges();

    // Critical-path priority: longest weighted path to any sink.
    _priority.assign(_total, 0);
    for (std::uint32_t i = _total; i-- > 0;) {
        std::uint64_t best = 0;
        for (auto e = _succ_offset[i]; e < _succ_offset[i + 1]; ++e)
            best = std::max(best, _priority[_succ[e]]);
        _priority[i] = best + _latency[i];
    }

    // The ready-set key only needs a monotone priority-descending
    // rank, not a dense one. Every priority is bounded by the total
    // busy steps, so when that fits 32 bits (any program the spec
    // layer admits) the bitwise complement is the rank directly —
    // no sort, no per-instruction binary search. The sort-based
    // dense compression remains as the arbitrary-latency fallback.
    _rank.resize(_total);
    if (_busy_block_steps <= 0xffffffffull) {
        for (std::uint32_t i = 0; i < _total; ++i)
            _rank[i] = ~static_cast<std::uint32_t>(_priority[i]);
    } else {
        std::vector<std::uint64_t> distinct(_priority);
        std::sort(distinct.begin(), distinct.end(), std::greater<>{});
        distinct.erase(std::unique(distinct.begin(), distinct.end()),
                       distinct.end());
        for (std::uint32_t i = 0; i < _total; ++i)
            _rank[i] = static_cast<std::uint32_t>(
                std::lower_bound(distinct.begin(), distinct.end(),
                                 _priority[i], std::greater<>{}) -
                distinct.begin());
    }

    _remaining.resize(_total);
    for (std::uint32_t i = 0; i < _total; ++i) {
        _remaining[i] = dag.inDegree(i);
        if (_remaining[i] == 0)
            pushReady(i);
    }

    if (_capped) {
        _free_words.assign((blocks + 63) / 64, 0);
        for (std::uint32_t b = 0; b < blocks; ++b)
            _free_words[b >> 6] |= std::uint64_t{1} << (b & 63);
        _free_count = blocks;
    }
}

void
IncrementalScheduler::pushReady(std::uint32_t index)
{
    _ready.push_back((static_cast<std::uint64_t>(_rank[index]) << 32) |
                     index);
    std::push_heap(_ready.begin(), _ready.end(), std::greater<>{});
}

std::uint32_t
IncrementalScheduler::popReady()
{
    std::pop_heap(_ready.begin(), _ready.end(), std::greater<>{});
    const auto index =
        static_cast<std::uint32_t>(_ready.back() & 0xffffffffu);
    _ready.pop_back();
    return index;
}

std::uint32_t
IncrementalScheduler::allocBlock()
{
    while (_first_free_word < _free_words.size() &&
           _free_words[_first_free_word] == 0)
        ++_first_free_word;
    if (_first_free_word < _free_words.size()) {
        auto &word = _free_words[_first_free_word];
        const auto bit =
            static_cast<std::uint32_t>(std::countr_zero(word));
        word &= word - 1;
        --_free_count;
        return static_cast<std::uint32_t>(_first_free_word * 64) + bit;
    }
    return _next_fresh_block++;
}

void
IncrementalScheduler::freeBlock(std::uint32_t block)
{
    const std::size_t word = block >> 6;
    if (word >= _free_words.size())
        _free_words.resize(word + 1, 0);
    _free_words[word] |= std::uint64_t{1} << (block & 63);
    _first_free_word = std::min(_first_free_word, word);
    ++_free_count;
}

std::optional<IssueClaim>
IncrementalScheduler::claim()
{
    if (_ready.empty())
        return std::nullopt;
    if (_capped && _free_count == 0)
        return std::nullopt;
    const auto index = popReady();
    ++_claimed;
    ++_in_flight;
    _peak_in_flight = std::max(_peak_in_flight, _in_flight);
    return IssueClaim{index, allocBlock(), _latency[index]};
}

std::uint32_t
IncrementalScheduler::claimBatch(std::vector<IssueClaim> &out)
{
    std::uint32_t issued = 0;
    while (!_ready.empty() && !(_capped && _free_count == 0)) {
        const auto index = popReady();
        ++_claimed;
        ++_in_flight;
        _peak_in_flight = std::max(_peak_in_flight, _in_flight);
        out.push_back(IssueClaim{index, allocBlock(),
                                 _latency[index]});
        ++issued;
    }
    return issued;
}

void
IncrementalScheduler::complete(const IssueClaim &done)
{
    if (_in_flight == 0)
        qmh_panic("IncrementalScheduler: complete() with nothing in "
                  "flight");
    --_in_flight;
    ++_completed;
    freeBlock(done.block);
    for (auto e = _succ_offset[done.index];
         e < _succ_offset[done.index + 1]; ++e) {
        const auto s = _succ[e];
        if (--_remaining[s] == 0)
            pushReady(s);
    }
}

unsigned
IncrementalScheduler::blocksUsed() const
{
    return _capped ? _blocks
                   : std::max<unsigned>(_peak_in_flight,
                                        _next_fresh_block);
}

ScheduleResult
listSchedule(const circuit::Program &program,
             const circuit::DependencyGraph &dag,
             const LatencyModel &latency, unsigned blocks)
{
    const auto m =
        static_cast<std::uint32_t>(program.instructions().size());

    ScheduleResult result;
    result.blocks_requested = blocks;
    result.start.assign(m, 0);
    result.block.assign(m, 0);
    IncrementalScheduler scheduler(program, dag, latency, blocks);
    result._latency.resize(m);
    for (std::uint32_t i = 0; i < m; ++i)
        result._latency[i] = scheduler.latencyOf(i);
    result.busy_block_steps = scheduler.busyBlockSteps();
    if (m == 0)
        return result;

    std::priority_queue<FinishEntry, std::vector<FinishEntry>,
                        std::greater<>> running;
    std::uint64_t now = 0;
    std::vector<IssueClaim> front;

    while (!scheduler.finished()) {
        // Issue every ready gate a free block can take.
        front.clear();
        scheduler.claimBatch(front);
        for (const auto &claimed : front) {
            result.start[claimed.index] = now;
            result.block[claimed.index] = claimed.block;
            running.push({now + claimed.latency, claimed.index,
                          claimed.block});
        }

        if (running.empty()) {
            qmh_panic("scheduler deadlock: ",
                      scheduler.totalCount() - scheduler.claimedCount(),
                      " gates unscheduled (cyclic DAG?)");
        }

        // Advance to the next completion time and retire everything
        // finishing then.
        now = running.top().finish;
        while (!running.empty() && running.top().finish == now) {
            const auto done = running.top();
            running.pop();
            scheduler.complete(
                {done.index, done.block,
                 scheduler.latencyOf(done.index)});
        }
    }

    result.makespan = now;
    result.blocks_used = scheduler.blocksUsed();
    return result;
}

ScheduleResult
listSchedule(const circuit::Program &program, const LatencyModel &latency,
             unsigned blocks)
{
    circuit::DependencyGraph dag(program);
    return listSchedule(program, dag, latency, blocks);
}

ScheduleResult
roundSchedule(const circuit::Program &program,
              const circuit::DependencyGraph &dag,
              const LatencyModel &latency, unsigned blocks)
{
    const auto &insts = program.instructions();
    const auto m = static_cast<std::uint32_t>(insts.size());

    ScheduleResult result;
    result.blocks_requested = blocks;
    result.start.assign(m, 0);
    result.block.assign(m, 0);
    result._latency.resize(m);
    for (std::uint32_t i = 0; i < m; ++i) {
        result._latency[i] = latency.steps(insts[i].kind);
        result.busy_block_steps += result._latency[i];
    }
    if (m == 0)
        return result;

    // Program-order round formation: an instruction joins the open
    // round unless one of its qubits was already touched in it (the
    // static compiler issues the algorithm's structural rounds as
    // written; it does not reorder across phases the way ASAP
    // levelling would).
    std::vector<std::vector<std::uint32_t>> rounds;
    {
        std::vector<std::int64_t> qubit_round(
            static_cast<std::size_t>(program.qubitCount()), -1);
        std::int64_t current = -1;
        for (std::uint32_t i = 0; i < m; ++i) {
            // An explicit barrier always opens a fresh round;
            // subsequent instructions fall into that round.
            bool conflict = current < 0 ||
                            insts[i].kind == circuit::GateKind::Barrier;
            for (const auto &q : insts[i].operands())
                conflict |= qubit_round[q.value()] == current;
            if (conflict) {
                ++current;
                rounds.emplace_back();
            }
            rounds.back().push_back(i);
            for (const auto &q : insts[i].operands())
                qubit_round[q.value()] = current;
        }
    }
    (void)dag;

    const bool capped = blocks != unlimited_blocks;
    std::uint64_t now = 0;
    unsigned widest_round = 0;

    for (const auto &round : rounds) {
        // The round's slot latency is its slowest gate (every gate is
        // followed by error correction before the barrier lifts).
        std::uint32_t slot = 0;
        for (const auto i : round)
            slot = std::max(slot, result._latency[i]);

        // Zero-latency instructions (barriers) pin to the round start
        // and do not consume block slots.
        unsigned count = 0;
        for (const auto i : round)
            count += result._latency[i] > 0 ? 1 : 0;
        widest_round = std::max(widest_round, count);
        const unsigned per_batch =
            capped ? blocks : std::max(1u, count);
        unsigned in_batch = 0;
        std::uint64_t batch_start = now;
        for (const auto i : round) {
            if (result._latency[i] == 0) {
                result.start[i] = now;
                result.block[i] = 0;
                continue;
            }
            if (in_batch == per_batch) {
                in_batch = 0;
                batch_start += slot;
            }
            result.start[i] = batch_start;
            result.block[i] = in_batch;
            ++in_batch;
        }
        const auto batches =
            std::max<unsigned>(1, (count + per_batch - 1) /
                                      std::max(1u, per_batch));
        now += count == 0 ? 0
                          : static_cast<std::uint64_t>(batches) * slot;
    }

    result.makespan = now;
    result.blocks_used = capped ? blocks : widest_round;
    return result;
}

ScheduleResult
roundSchedule(const circuit::Program &program, const LatencyModel &latency,
              unsigned blocks)
{
    circuit::DependencyGraph dag(program);
    return roundSchedule(program, dag, latency, blocks);
}

} // namespace sched
} // namespace qmh
