/**
 * @file
 * Resource-constrained list scheduler.
 *
 * Maps a logical program onto B compute blocks (paper: one Toffoli, or
 * one cheaper gate, in flight per block). Critical-path priority with
 * event-driven issue. B = 0 means unlimited resources — the QLA
 * "sea-of-qubits" baseline where computation may happen anywhere.
 *
 * Produces everything the evaluation needs: makespan, per-gate start
 * times and block assignments, the gates-in-flight profile (paper
 * Fig. 2), and block utilization (paper Fig. 6a).
 */

#ifndef QMH_SCHED_SCHEDULER_HH
#define QMH_SCHED_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "circuit/dag.hh"
#include "circuit/program.hh"
#include "latency.hh"

namespace qmh {
namespace sched {

/** Unlimited-resources marker for listSchedule(). */
constexpr unsigned unlimited_blocks = 0;

/** A computed schedule. */
struct ScheduleResult
{
    /** Total schedule length in gate-steps. */
    std::uint64_t makespan = 0;

    /** Issue time of each instruction, in gate-steps. */
    std::vector<std::uint64_t> start;

    /** Block each instruction ran on (0-based; unlimited mode packs). */
    std::vector<std::uint32_t> block;

    /** Sum over gates of their latency (block-steps of real work). */
    std::uint64_t busy_block_steps = 0;

    /** Number of blocks used (for unlimited mode: peak concurrency). */
    unsigned blocks_used = 0;

    /** Requested block count (0 = unlimited). */
    unsigned blocks_requested = 0;

    /**
     * Gates in flight at each gate-step (size = makespan). This is the
     * parallelism profile of Fig. 2.
     */
    std::vector<std::uint32_t> inFlightProfile() const;

    /**
     * The same profile aggregated into windows of @p window steps
     * (mean gates in flight), matching the paper's Toffoli-slot axis.
     */
    std::vector<double> windowedProfile(std::uint64_t window) const;

    /** Peak of inFlightProfile(). */
    std::uint32_t peakParallelism() const;

    /**
     * Fraction of block-steps doing real work:
     * busy / (blocks * makespan). Uses blocks_used when the schedule
     * was unlimited.
     */
    double utilization() const;

  private:
    friend ScheduleResult listSchedule(const circuit::Program &,
                                       const circuit::DependencyGraph &,
                                       const LatencyModel &, unsigned);
    friend ScheduleResult roundSchedule(const circuit::Program &,
                                        const circuit::DependencyGraph &,
                                        const LatencyModel &, unsigned);
    std::vector<std::uint32_t> _latency;  // per-gate, for profiles
};

/**
 * Schedule @p program onto @p blocks compute blocks
 * (unlimited_blocks = no resource constraint).
 */
ScheduleResult listSchedule(const circuit::Program &program,
                            const circuit::DependencyGraph &dag,
                            const LatencyModel &latency,
                            unsigned blocks);

/** Convenience overload building the DAG internally. */
ScheduleResult listSchedule(const circuit::Program &program,
                            const LatencyModel &latency,
                            unsigned blocks);

/**
 * Round-synchronous schedule: instructions issue in the program's
 * structural rounds (program-order round formation — an instruction
 * joins the open round unless it conflicts with it) with a barrier
 * between rounds: every logical gate is followed by error correction
 * and operand routing, so rounds do not overlap. A round with more
 * gates than blocks issues in ceil(count / blocks) batches.
 *
 * The unlimited-resources makespan of this schedule is the
 * round-structural critical path the paper's QLA baseline executes
 * (Fig. 2's ~20-25 Toffoli slots for the 64-bit adder);
 * listSchedule() is the more aggressive overlapped mode used for
 * ablation studies.
 */
ScheduleResult roundSchedule(const circuit::Program &program,
                             const circuit::DependencyGraph &dag,
                             const LatencyModel &latency,
                             unsigned blocks);

/** Convenience overload building the DAG internally. */
ScheduleResult roundSchedule(const circuit::Program &program,
                             const LatencyModel &latency,
                             unsigned blocks);

} // namespace sched
} // namespace qmh

#endif // QMH_SCHED_SCHEDULER_HH
