/**
 * @file
 * Resource-constrained list scheduler.
 *
 * Maps a logical program onto B compute blocks (paper: one Toffoli, or
 * one cheaper gate, in flight per block). Critical-path priority with
 * event-driven issue. B = 0 means unlimited resources — the QLA
 * "sea-of-qubits" baseline where computation may happen anywhere.
 *
 * Two forms share one issue policy:
 *  - listSchedule() runs the whole program against an internal
 *    completion clock and returns the batch ScheduleResult;
 *  - IncrementalScheduler exposes the same claim/complete decisions
 *    one instruction at a time, so an external event loop (the trace
 *    engine's discrete-event pipeline, trace/engine.hh) can interleave
 *    issue with cache residency and transfer-network latency.
 *
 * Produces everything the evaluation needs: makespan, per-gate start
 * times and block assignments, the gates-in-flight profile (paper
 * Fig. 2), and block utilization (paper Fig. 6a).
 */

#ifndef QMH_SCHED_SCHEDULER_HH
#define QMH_SCHED_SCHEDULER_HH

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "circuit/dag.hh"
#include "circuit/program.hh"
#include "latency.hh"

namespace qmh {
namespace sched {

/** Unlimited-resources marker for listSchedule(). */
constexpr unsigned unlimited_blocks = 0;

/**
 * One maximal run of constant parallelism: @p in_flight gates are
 * executing over [begin, end). Segments tile the schedule span
 * contiguously, zero-valued gaps included.
 */
struct ProfileSegment
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    std::uint32_t in_flight = 0;

    bool operator==(const ProfileSegment &) const = default;
};

/**
 * Piecewise-constant gates-in-flight profile from per-gate start
 * times and durations, as segments over [0, @p span). O(n log n) in
 * the gate count and independent of the schedule length, so
 * huge-latency schedules (tick-resolution traces) never allocate a
 * slot per time step. Zero-duration entries (barriers) contribute
 * nothing.
 */
std::vector<ProfileSegment>
buildProfileSegments(const std::vector<std::uint64_t> &start,
                     const std::vector<std::uint64_t> &duration,
                     std::uint64_t span);

/** A computed schedule. */
struct ScheduleResult
{
    /** Total schedule length in gate-steps. */
    std::uint64_t makespan = 0;

    /** Issue time of each instruction, in gate-steps. */
    std::vector<std::uint64_t> start;

    /** Block each instruction ran on (0-based; unlimited mode packs). */
    std::vector<std::uint32_t> block;

    /** Sum over gates of their latency (block-steps of real work). */
    std::uint64_t busy_block_steps = 0;

    /** Number of blocks used (for unlimited mode: peak concurrency). */
    unsigned blocks_used = 0;

    /** Requested block count (0 = unlimited). */
    unsigned blocks_requested = 0;

    /**
     * Gates-in-flight profile as constant segments; O(gates log
     * gates), independent of the makespan. This is the parallelism
     * profile of Fig. 2 in its scalable form.
     */
    std::vector<ProfileSegment> inFlightSegments() const;

    /**
     * Gates in flight at each gate-step (size = makespan), expanded
     * densely from inFlightSegments(). O(makespan) memory — use the
     * segments directly for huge-latency schedules.
     */
    std::vector<std::uint32_t> inFlightProfile() const;

    /**
     * The same profile aggregated into windows of @p window steps
     * (mean gates in flight), matching the paper's Toffoli-slot axis.
     * Computed from segments: O(gates + makespan / window).
     */
    std::vector<double> windowedProfile(std::uint64_t window) const;

    /** Peak of the in-flight profile (from segments, O(gates log gates)). */
    std::uint32_t peakParallelism() const;

    /**
     * Fraction of block-steps doing real work:
     * busy / (blocks * makespan). Uses blocks_used when the schedule
     * was unlimited.
     */
    double utilization() const;

  private:
    friend ScheduleResult listSchedule(const circuit::Program &,
                                       const circuit::DependencyGraph &,
                                       const LatencyModel &, unsigned);
    friend ScheduleResult roundSchedule(const circuit::Program &,
                                        const circuit::DependencyGraph &,
                                        const LatencyModel &, unsigned);
    std::vector<std::uint32_t> _latency;  // per-gate, for profiles
};

/** One claimed instruction: what to run, where, and for how long. */
struct IssueClaim
{
    std::uint32_t index = 0;    ///< instruction position in the program
    std::uint32_t block = 0;    ///< compute block it occupies
    std::uint32_t latency = 0;  ///< gate-steps of compute
};

/**
 * The list scheduler's issue policy in incremental form. The caller
 * owns time: claim() hands out the highest-priority ready instruction
 * while a block is free, complete() retires one and readies its
 * dependents. Driving claim-all / advance-to-next-completion /
 * complete-in-(finish, index)-order reproduces listSchedule() exactly
 * (the batch function is implemented on this class); an event-driven
 * caller may instead hold a claim through arbitrary stalls (operand
 * fetch, transfer-network queueing) before completing it.
 */
class IncrementalScheduler
{
  public:
    IncrementalScheduler(const circuit::Program &program,
                         const circuit::DependencyGraph &dag,
                         const LatencyModel &latency, unsigned blocks);

    /**
     * Claim the highest-priority ready instruction, allocating a
     * block; nullopt when nothing is ready or (capped mode) every
     * block is busy. Loop until nullopt to issue everything currently
     * issuable.
     */
    std::optional<IssueClaim> claim();

    /**
     * Claim every currently issuable instruction — the whole ready
     * front, highest priority first, program order within a priority,
     * bounded by free blocks in capped mode — appending to @p out.
     * Exactly equivalent to looping claim() until nullopt (claims
     * never ready new instructions; only complete() does), but issues
     * whole fronts without per-gate heap churn. Returns the number
     * claimed.
     */
    std::uint32_t claimBatch(std::vector<IssueClaim> &out);

    /** Retire a claim: frees its block and readies its dependents. */
    void complete(const IssueClaim &done);

    /** Instructions in the program. */
    std::uint32_t totalCount() const { return _total; }

    /** Instructions claimed so far. */
    std::uint32_t claimedCount() const { return _claimed; }

    /** Claims not yet completed. */
    std::uint32_t inFlight() const { return _in_flight; }

    /** True once every instruction has been claimed and completed. */
    bool finished() const { return _completed == _total; }

    /** True when no instruction is ready to claim right now. */
    bool readyEmpty() const { return _ready.empty(); }

    /**
     * Blocks in use by the schedule so far: the requested count in
     * capped mode, the peak concurrency in unlimited mode (equals
     * ScheduleResult::blocks_used after the final completion).
     */
    unsigned blocksUsed() const;

    /** Gate-step latency of instruction @p index. */
    std::uint32_t latencyOf(std::uint32_t index) const
    {
        return _latency[index];
    }

    /** Sum over all instructions of their latency. */
    std::uint64_t busyBlockSteps() const { return _busy_block_steps; }

  private:
    void pushReady(std::uint32_t index);
    std::uint32_t popReady();
    std::uint32_t allocBlock();
    void freeBlock(std::uint32_t block);

    std::uint32_t _total = 0;
    std::uint32_t _claimed = 0;
    std::uint32_t _completed = 0;
    std::uint32_t _in_flight = 0;
    unsigned _blocks = 0;
    bool _capped = false;
    unsigned _next_fresh_block = 0;
    unsigned _peak_in_flight = 0;
    std::uint64_t _busy_block_steps = 0;

    std::vector<std::uint32_t> _latency;
    std::vector<std::uint64_t> _priority;
    std::vector<std::int32_t> _remaining;

    // Successor adjacency in compressed-sparse-row form, built once
    // from the DAG so claim/complete never chase per-node vectors.
    std::vector<std::uint32_t> _succ_offset;  // size _total + 1
    std::vector<std::uint32_t> _succ;

    // Ready set: one min-heap of (rank << 32 | index) keys, where
    // rank is any monotone priority-descending mapping (smaller =
    // higher critical-path priority). The packed key orders by
    // priority first and program position within a priority, in a
    // single flat vector — no per-priority bucket allocation, one
    // heap operation per push/pop.
    std::vector<std::uint32_t> _rank;
    std::vector<std::uint64_t> _ready;

    // Free block ids as a bitmask (bit b of word w = block 64w + b is
    // free): allocation takes the lowest set bit, so assignments are
    // deterministic and dense — the same smallest-id policy as a
    // min-heap, in O(1) for any realistic block count.
    // _first_free_word is a monotone scan hint (no free bits below
    // it); _free_count gates capped-mode claims.
    std::vector<std::uint64_t> _free_words;
    std::size_t _first_free_word = 0;
    std::uint32_t _free_count = 0;
};

/**
 * Schedule @p program onto @p blocks compute blocks
 * (unlimited_blocks = no resource constraint).
 */
ScheduleResult listSchedule(const circuit::Program &program,
                            const circuit::DependencyGraph &dag,
                            const LatencyModel &latency,
                            unsigned blocks);

/** Convenience overload building the DAG internally. */
ScheduleResult listSchedule(const circuit::Program &program,
                            const LatencyModel &latency,
                            unsigned blocks);

/**
 * Round-synchronous schedule: instructions issue in the program's
 * structural rounds (program-order round formation — an instruction
 * joins the open round unless it conflicts with it) with a barrier
 * between rounds: every logical gate is followed by error correction
 * and operand routing, so rounds do not overlap. A round with more
 * gates than blocks issues in ceil(count / blocks) batches.
 *
 * The unlimited-resources makespan of this schedule is the
 * round-structural critical path the paper's QLA baseline executes
 * (Fig. 2's ~20-25 Toffoli slots for the 64-bit adder);
 * listSchedule() is the more aggressive overlapped mode used for
 * ablation studies.
 */
ScheduleResult roundSchedule(const circuit::Program &program,
                             const circuit::DependencyGraph &dag,
                             const LatencyModel &latency,
                             unsigned blocks);

/** Convenience overload building the DAG internally. */
ScheduleResult roundSchedule(const circuit::Program &program,
                             const LatencyModel &latency,
                             unsigned blocks);

} // namespace sched
} // namespace qmh

#endif // QMH_SCHED_SCHEDULER_HH
