/**
 * @file
 * Logical gate latencies in abstract gate-steps.
 *
 * One gate-step is the time of a transversal two-qubit logical gate
 * followed by its error correction (ecc::Code::gateStepTime). The
 * fault-tolerant Toffoli costs fifteen such steps (paper Section 5.1);
 * the physical duration of a step depends on the code and the
 * concatenation level, so schedules are computed in steps and scaled
 * into seconds afterwards.
 */

#ifndef QMH_SCHED_LATENCY_HH
#define QMH_SCHED_LATENCY_HH

#include <cstdint>

#include "circuit/instruction.hh"

namespace qmh {
namespace sched {

/** Per-gate-kind latencies in gate-steps. */
struct LatencyModel
{
    std::uint32_t single = 1;   ///< X/Z/H/S/T/measure
    std::uint32_t cnot = 1;     ///< CNOT
    std::uint32_t cphase = 2;   ///< controlled rotation (QFT)
    std::uint32_t swap = 3;     ///< three CNOTs
    std::uint32_t toffoli = 15; ///< paper: fifteen two-qubit gate steps

    /** Latency of an instruction in gate-steps. */
    std::uint32_t
    steps(circuit::GateKind kind) const
    {
        using circuit::GateKind;
        switch (kind) {
          case GateKind::Cnot:    return cnot;
          case GateKind::Cphase:  return cphase;
          case GateKind::Swap:    return swap;
          case GateKind::Toffoli: return toffoli;
          case GateKind::Barrier: return 0;
          default:                return single;
        }
    }
};

} // namespace sched
} // namespace qmh

#endif // QMH_SCHED_LATENCY_HH
