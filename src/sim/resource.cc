#include "resource.hh"

#include "common/logging.hh"

namespace qmh {
namespace sim {

Resource::Resource(EventQueue &eq, std::string name, unsigned capacity)
    : _eq(eq), _name(std::move(name)), _capacity(capacity)
{
    if (capacity == 0)
        qmh_fatal("resource '", _name, "' must have nonzero capacity");
}

void
Resource::acquire(Grant on_grant)
{
    if (!on_grant)
        qmh_panic("resource '", _name, "': empty grant callback");
    if (_in_use < _capacity) {
        ++_in_use;
        grantOne(std::move(on_grant));
    } else {
        _waiters.push_back(std::move(on_grant));
    }
}

void
Resource::release()
{
    if (_in_use == 0)
        qmh_panic("resource '", _name, "': release without acquire");
    if (!_waiters.empty()) {
        // Hand the unit straight to the oldest waiter; _in_use is
        // unchanged because ownership transfers.
        Grant next = std::move(_waiters.front());
        _waiters.pop_front();
        grantOne(std::move(next));
    } else {
        --_in_use;
    }
}

void
Resource::grantOne(Grant fn)
{
    ++_grants;
    _eq.scheduleAfter(0, std::move(fn), Priority::Default);
}

} // namespace sim
} // namespace qmh
