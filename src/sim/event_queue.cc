#include "event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace qmh {
namespace sim {

// Calendar invariants, maintained by insert()/refill()/growTo():
//
//  1. Pending events all have when >= _now, so every bucket key is
//     >= _now >> _shift and bucket keys pairwise differ by less than
//     bucket_count — each ring slot holds exactly one key.
//  2. While _active is non-empty, every bucketed or far event
//     dispatches after every active event: inserts keyed at or before
//     _active_key join the active heap directly, and a window slide
//     cannot occur until the active heap drains.
//  3. _shift only grows. An old bucket's tick range is an aligned
//     2^shift block, which always lands inside a single coarser
//     aligned block, so rebucketing preserves (2) by re-routing
//     events through insert() with the recomputed _active_key.

std::uint64_t
EventQueue::schedule(Tick when, Handler fn, Priority prio)
{
    if (!fn)
        qmh_panic("scheduling empty handler");
    return scheduleImpl(when, EventFn(std::move(fn)), prio);
}

std::uint64_t
EventQueue::scheduleImpl(Tick when, EventFn fn, Priority prio)
{
    if (when < _now)
        qmh_panic("scheduling event in the past: when=", when,
                  " now=", _now);
    if (fn.heapAllocated())
        ++_spilled;
    // Keep the near window wide enough that the common case — events
    // within the current scheduling horizon — stays in the bucket
    // ring rather than churning through the far heap.
    const Tick delta = when - _now;
    if ((delta >> _shift) >= bucket_count) {
        auto s = _shift;
        while (s < max_shift && (delta >> s) >= bucket_count)
            ++s;
        growTo(s);
    }
    Event *e = allocEvent();
    e->when = when;
    e->seq = _next_seq++;
    e->prio = static_cast<int>(prio);
    e->fn = std::move(fn);
    insert(e);
    ++_size;
    return e->seq;
}

void
EventQueue::insert(Event *e)
{
    const auto key = e->when >> _shift;
    if (!_active.empty() && key <= _active_key) {
        // At or before the dispatching bucket: the active heap is the
        // only structure guaranteed to be consulted before time
        // reaches this event.
        _active.push_back(e);
        std::push_heap(_active.begin(), _active.end(), Later{});
    } else if (key - (_now >> _shift) < bucket_count) {
        _buckets[key & bucket_mask].push_back(e);
        ++_near_count;
    } else {
        _far.push_back(e);
        std::push_heap(_far.begin(), _far.end(), Later{});
    }
}

void
EventQueue::growTo(std::uint32_t new_shift)
{
    _rebucket.clear();
    for (auto &bucket : _buckets) {
        _rebucket.insert(_rebucket.end(), bucket.begin(),
                         bucket.end());
        bucket.clear();
    }
    _near_count = 0;
    const auto old_shift = _shift;
    _shift = new_shift;
    if (!_active.empty())
        _active_key >>= (new_shift - old_shift);
    for (auto *e : _rebucket)
        insert(e);
}

bool
EventQueue::refillSlow()
{
    if (_size == 0)
        return false;
    for (;;) {
        // Slide the window up to the present and pull far events that
        // now fit the near horizon into their buckets.
        const auto base = _now >> _shift;
        while (!_far.empty() &&
               (_far.front()->when >> _shift) - base < bucket_count) {
            std::pop_heap(_far.begin(), _far.end(), Later{});
            Event *e = _far.back();
            _far.pop_back();
            _buckets[(e->when >> _shift) & bucket_mask].push_back(e);
            ++_near_count;
        }
        if (_near_count > 0)
            break;
        // Only far events remain and all sit beyond the horizon:
        // coarsen the buckets until the earliest one fits. At
        // max_shift any 64-bit tick fits, so progress is guaranteed.
        const Tick far_when = _far.front()->when;
        auto s = _shift;
        while (s < max_shift &&
               (far_when >> s) - (_now >> s) >= bucket_count)
            ++s;
        if (s == _shift)
            qmh_panic("event queue window failed to advance");
        growTo(s);
    }
    auto key = _now >> _shift;
    while (_buckets[key & bucket_mask].empty())
        ++key;
    auto &bucket = _buckets[key & bucket_mask];
    _near_count -= bucket.size();
    _active.swap(bucket);
    std::make_heap(_active.begin(), _active.end(), Later{});
    _active_key = key;
    return true;
}

void
EventQueue::dispatchTop()
{
    std::pop_heap(_active.begin(), _active.end(), Later{});
    Event *e = _active.back();
    _active.pop_back();
    _now = e->when;
    ++_executed;
    --_size;
    e->fn();
    recycle(e);
}

bool
EventQueue::step()
{
    if (!refill())
        return false;
    dispatchTop();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    // One refill per dispatch: the loop condition already established
    // a non-empty active heap, so dispatch directly instead of going
    // through step()'s second refill check.
    while (refill() && _active.front()->when <= limit)
        dispatchTop();
    if (_now < limit && limit != max_tick)
        _now = limit;
    return _now;
}

EventQueue::Event *
EventQueue::allocEvent()
{
    if (_free == nullptr) {
        auto block = std::make_unique<Event[]>(block_events);
        for (auto i = block_events; i-- > 0;) {
            block[i].next_free = _free;
            _free = &block[i];
        }
        _blocks.push_back(std::move(block));
    }
    Event *e = _free;
    _free = e->next_free;
    return e;
}

void
EventQueue::recycle(Event *e)
{
    e->fn = EventFn{};
    e->next_free = _free;
    _free = e;
}

} // namespace sim
} // namespace qmh
