#include "event_queue.hh"

#include "common/logging.hh"

namespace qmh {
namespace sim {

std::uint64_t
EventQueue::schedule(Tick when, Handler fn, Priority prio)
{
    if (when < _now)
        qmh_panic("scheduling event in the past: when=", when,
                  " now=", _now);
    if (!fn)
        qmh_panic("scheduling empty handler");
    const auto seq = _next_seq++;
    _events.push(Entry{when, static_cast<int>(prio), seq, std::move(fn)});
    return seq;
}

bool
EventQueue::step()
{
    if (_events.empty())
        return false;
    // Copy out before pop so the handler can schedule new events.
    Entry entry = _events.top();
    _events.pop();
    _now = entry.when;
    ++_executed;
    entry.fn();
    return true;
}

Tick
EventQueue::run(Tick limit)
{
    while (!_events.empty() && _events.top().when <= limit)
        step();
    if (_now < limit && limit != max_tick)
        _now = limit;
    return _now;
}

} // namespace sim
} // namespace qmh
