#include "component.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace qmh {
namespace sim {

Component::Component(EventQueue &eq, std::string name)
    : _eq(eq), _name(std::move(name))
{
}

// ---------------------------------------------------------------------------
// TokenPool
// ---------------------------------------------------------------------------

TokenPool::TokenPool(unsigned capacity) : _capacity(capacity)
{
    if (capacity == 0)
        qmh_fatal("token pool must have nonzero capacity");
}

bool
TokenPool::tryAcquire()
{
    if (_in_use >= _capacity)
        return false;
    ++_in_use;
    return true;
}

void
TokenPool::release()
{
    if (_in_use == 0)
        qmh_panic("token pool: release without acquire");
    --_in_use;
    // Wake parked ports in parking order until one actually takes the
    // token (a parked port may have drained its queue meanwhile).
    while (!_waiters.empty() && _in_use < _capacity) {
        Port *next = _waiters.front();
        _waiters.pop_front();
        next->_parked = false;
        next->pump();
    }
}

void
TokenPool::enlist(Port &port)
{
    if (port._parked)
        return;
    port._parked = true;
    _waiters.push_back(&port);
}

// ---------------------------------------------------------------------------
// Port
// ---------------------------------------------------------------------------

Port::Port(Component &owner, std::string name, unsigned width,
           std::size_t buffer_limit, TokenPool *tokens)
    : _owner(owner), _name(std::move(name)), _width(width),
      _buffer_limit(buffer_limit), _tokens(tokens)
{
    if (width == 0)
        qmh_fatal("port '", _owner.name(), ".", _name,
                  "' must have nonzero width");
    if (buffer_limit == 0)
        qmh_fatal("port '", _owner.name(), ".", _name,
                  "' must have a nonzero buffer limit");
}

void
Port::submit(Tick service, CompletionFn on_done)
{
    ++_stats.requests;

    // Uncontended fast path: nothing queued, a service slot free and
    // a token in hand — start immediately without the buffer
    // round-trip. Observably identical to queue-then-pump: the
    // request would be popped right back in the same call, with zero
    // wait and zero queue occupancy either way.
    if (_buffer.empty() && _overflow.empty() && _in_service < _width &&
        (_tokens == nullptr || _tokens->tryAcquire())) {
        const auto seq = _next_seq++;
        ++_in_service;
        _stats.busy_ticks += service;
        // Park the callback in the in-flight store so the scheduled
        // closure is two words and never spills out of its arena
        // frame.
        _in_flight.push_back({seq, std::move(on_done)});
        _owner.queue().scheduleAfter(
            service, [this, seq] { complete(seq); });
        return;
    }

    Request request;
    request.service = service;
    request.submitted = _owner.now();
    request.seq = _next_seq++;
    request.on_done = std::move(on_done);

    noteQueueChange();
    if (_buffer.size() < _buffer_limit) {
        _buffer.push_back(std::move(request));
    } else {
        // Bounded buffer full: the request waits at the requester's
        // side of the port and is admitted FIFO when a slot frees.
        ++_stats.buffer_overflows;
        _overflow.push_back(std::move(request));
    }
    pump();
    // Peak is measured after the pump so an uncontended request that
    // went straight into service never counts as queue occupancy.
    _stats.peak_queue = std::max(_stats.peak_queue, queued());
}

void
Port::pump()
{
    while (_in_service < _width && !_buffer.empty()) {
        if (_tokens && !_tokens->tryAcquire()) {
            _tokens->enlist(*this);
            return;
        }
        startFront();
    }
}

void
Port::startFront()
{
    noteQueueChange();
    Request request = std::move(_buffer.front());
    _buffer.pop_front();
    if (!_overflow.empty()) {
        // A buffer slot freed: admit the longest-waiting overflow
        // request so overall service order stays submission order.
        _buffer.push_back(std::move(_overflow.front()));
        _overflow.pop_front();
    }

    const Tick waited = _owner.now() - request.submitted;
    if (waited > 0) {
        ++_stats.conflict_stalls;
        _stats.stall_ticks += waited;
    }
    ++_in_service;
    _stats.busy_ticks += request.service;

    // Park the callback in the in-flight store so the scheduled
    // closure is two words and never spills out of its arena frame.
    _in_flight.push_back({request.seq, std::move(request.on_done)});
    _owner.queue().scheduleAfter(
        request.service,
        [this, seq = request.seq] { complete(seq); });
}

void
Port::complete(std::uint64_t seq)
{
    CompletionFn on_done;
    for (auto &entry : _in_flight) {
        if (entry.seq == seq) {
            on_done = std::move(entry.on_done);
            entry = std::move(_in_flight.back());
            _in_flight.pop_back();
            break;
        }
    }
    if (_in_service == 0)
        qmh_panic("port '", _owner.name(), ".", _name,
                  "': completion without a request in service");
    --_in_service;
    ++_stats.served;
    if (_tokens)
        _tokens->release();
    if (on_done)
        on_done();
    pump();
}

void
Port::noteQueueChange()
{
    const Tick now = _owner.now();
    _stats.queue_integral += static_cast<double>(queued()) *
                             static_cast<double>(now -
                                                 _last_queue_change);
    _last_queue_change = now;
}

double
Port::utilization(Tick makespan) const
{
    const double capacity_ticks = static_cast<double>(makespan) *
                                  static_cast<double>(_width);
    return capacity_ticks > 0.0
               ? static_cast<double>(_stats.busy_ticks) / capacity_ticks
               : 0.0;
}

double
Port::meanQueue(Tick makespan) const
{
    if (makespan == 0)
        return 0.0;
    // The integral is only maintained up to the last queue change;
    // after that the queue is whatever is still pending (usually 0 at
    // the end of a run).
    const double tail = static_cast<double>(queued()) *
                        static_cast<double>(makespan -
                                            std::min(makespan,
                                                     _last_queue_change));
    return (_stats.queue_integral + tail) /
           static_cast<double>(makespan);
}

} // namespace sim
} // namespace qmh
