/**
 * @file
 * Banked memory component: per-bank queueing, bounded buffers, a
 * shared port issue-width, and deterministic bank-conflict
 * accounting.
 *
 * This is the ported mgsim BankedMemory/ParallelMemory shape on the
 * component kernel (component.hh): a request for @p address hashes to
 * bank `address % banks`; each bank is a width-1 Port that serves one
 * request at a time for `cycles_per_request + cycles_per_line x
 * lines` ticks out of a bounded request deque. All banks share a
 * TokenPool of `ports` issue tokens — the pin/bus width between the
 * requesters and the banks — so at most `ports` requests are in
 * service at once however many banks exist. Full bank buffers apply
 * deterministic backpressure: the submission waits at the requester
 * and is admitted in strict FIFO order when a slot frees.
 *
 * Everything above the cache boundary reads its contention truth from
 * here: per-bank busy ticks, peak and time-weighted mean queue
 * occupancy, conflict-stall counts (requests whose service start was
 * delayed) and the total stall ticks. A run without contention —
 * enough banks, ports and buffer for the traffic — reports zero
 * conflict stalls, which tests pin.
 */

#ifndef QMH_SIM_BANKED_MEMORY_HH
#define QMH_SIM_BANKED_MEMORY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "component.hh"

namespace qmh {
namespace sim {

/** Static configuration of a BankedMemory. */
struct BankedMemoryConfig
{
    unsigned banks = 8;    ///< independent banks (address % banks)
    unsigned ports = 4;    ///< concurrent requests in service overall
    std::size_t buffer = 8;///< bounded request deque per bank
    /** Base service ticks charged to every request. */
    Tick cycles_per_request = 1;
    /** Additional service ticks per line transferred. */
    Tick cycles_per_line = 0;
};

/** Banked memory with bounded per-bank buffers and FIFO arbitration. */
class BankedMemory : public Component
{
  public:
    BankedMemory(EventQueue &eq, std::string name,
                 const BankedMemoryConfig &config);

    /**
     * Request @p lines lines at @p address; @p on_done (which may be
     * empty for fire-and-forget traffic such as writebacks) runs when
     * the owning bank completes the service.
     */
    void request(std::uint64_t address, unsigned lines,
                 CompletionFn on_done);

    unsigned banks() const
    {
        return static_cast<unsigned>(_banks.size());
    }
    unsigned ports() const { return _tokens.capacity(); }
    const BankedMemoryConfig &config() const { return _config; }

    /** Bank a request for @p address is served by. */
    unsigned
    bankOf(std::uint64_t address) const
    {
        return static_cast<unsigned>(address % _banks.size());
    }

    /** The bank port itself (stats, queue introspection). */
    const Port &bank(unsigned index) const { return *_banks[index]; }

    // --- aggregated contention statistics ---

    /** Requests submitted so far. */
    std::uint64_t requests() const;

    /** Requests completed so far. */
    std::uint64_t served() const;

    /** Requests whose service start was delayed by contention. */
    std::uint64_t bankConflicts() const;

    /** Submissions that found a bank buffer full (backpressure). */
    std::uint64_t bufferOverflows() const;

    /** Total ticks requests spent waiting for a bank to serve them. */
    Tick stallTicks() const;

    /** Total bank service time charged so far. */
    Tick busyTicks() const;

    /** Highest queue occupancy any single bank reached. */
    std::size_t peakQueue() const;

    /**
     * Time-weighted mean queued requests across the whole memory over
     * @p makespan (0 when the makespan is zero).
     */
    double meanQueue(Tick makespan) const;

    /**
     * Busy fraction of total bank capacity over @p makespan (0 when
     * the makespan is zero — never a division by zero).
     */
    double utilization(Tick makespan) const;

  private:
    BankedMemoryConfig _config;
    TokenPool _tokens;
    // unique_ptr: Ports pin their address (scheduled completions
    // capture `this`), so the vector must never relocate them.
    std::vector<std::unique_ptr<Port>> _banks;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_BANKED_MEMORY_HH
