/**
 * @file
 * Counted resource with FIFO waiters, for modeling limited facilities
 * (transfer-network channels, compute blocks) in the event-driven
 * hierarchy simulation.
 */

#ifndef QMH_SIM_RESOURCE_HH
#define QMH_SIM_RESOURCE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "event_queue.hh"

namespace qmh {
namespace sim {

/**
 * A pool of @p capacity identical units. Clients request a unit and are
 * called back (immediately if one is free, otherwise in FIFO order when
 * a unit is released). Grants happen through the event queue so that
 * callbacks never run re-entrantly inside release().
 */
class Resource
{
  public:
    /**
     * Grant callback. The event-frame callable itself, so handing a
     * queued grant to the event queue is a move, never a re-wrap (and
     * never an allocation for closures within the inline budget).
     */
    using Grant = EventQueue::EventFn;

    Resource(EventQueue &eq, std::string name, unsigned capacity);

    /** Request one unit; @p on_grant runs when it is allocated. */
    void acquire(Grant on_grant);

    /** Return one unit to the pool. */
    void release();

    unsigned capacity() const { return _capacity; }
    unsigned inUse() const { return _in_use; }
    std::size_t waiting() const { return _waiters.size(); }
    const std::string &name() const { return _name; }

    /** Total grants handed out (for utilization accounting). */
    std::uint64_t grants() const { return _grants; }

  private:
    void grantOne(Grant fn);

    EventQueue &_eq;
    std::string _name;
    unsigned _capacity;
    unsigned _in_use = 0;
    std::deque<Grant> _waiters;
    std::uint64_t _grants = 0;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_RESOURCE_HH
