/**
 * @file
 * Component kernel for the discrete-event simulator.
 *
 * The EventQueue dispatches bare callables; everything above it in
 * the hierarchy stack is built from three small pieces modeled on
 * mgsim's component/port architecture (ParallelMemory/BankedMemory):
 *
 *  - Component: a named simulation object attached to one EventQueue.
 *    Components never share state across queues, so every simulation
 *    run stays an isolated, deterministic world.
 *
 *  - Port: a named service point owned by a component. A port has
 *    `width` identical servers, a *bounded* request deque, and an
 *    overflow queue that models backpressure to the requester: a
 *    submission that finds the buffer full waits outside the
 *    component and is admitted — in strict FIFO order — only when a
 *    slot frees. Requests in flight are parked in a flat store keyed
 *    by submission seq (the mgsim in-flight map, reduced to a reused
 *    vector) until their completion event fires. Arbitration is
 *    deterministic: same-tick submissions are served in submission
 *    order, never in hash or pointer order.
 *
 *  - TokenPool: a counted issue-width shared by several ports of one
 *    component (e.g. the memory ports in front of the banks). A port
 *    that cannot take a token parks itself in the pool's FIFO and is
 *    woken in parking order when a token returns.
 *
 * Every port keeps the contention statistics the honest-contention
 * models need: busy server-time, peak and time-weighted mean queue
 * occupancy, conflict-stall counts (requests whose service start was
 * delayed) and the total ticks those requests waited.
 */

#ifndef QMH_SIM_COMPONENT_HH
#define QMH_SIM_COMPONENT_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/small_function.hh"
#include "event_queue.hh"

namespace qmh {
namespace sim {

/**
 * Completion callback for component requests. Small-buffer-optimized:
 * closures up to 48 bytes (a handful of pointers plus a claim record)
 * are stored inline; anything larger spills to the heap, so hot-path
 * callers keep their captures within the budget.
 */
using CompletionFn = common::SmallFunction<48>;

/** A named simulation object attached to one EventQueue. */
class Component
{
  public:
    Component(EventQueue &eq, std::string name);
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    const std::string &name() const { return _name; }
    EventQueue &queue() { return _eq; }
    Tick now() const { return _eq.now(); }

  private:
    EventQueue &_eq;
    std::string _name;
};

class Port;

/**
 * A counted pool of issue tokens shared by the ports of one
 * component. Ports that find the pool empty park in FIFO order and
 * are woken — in that order — as tokens return.
 */
class TokenPool
{
  public:
    /** @param capacity concurrent tokens (must be nonzero) */
    explicit TokenPool(unsigned capacity);

    unsigned capacity() const { return _capacity; }
    unsigned inUse() const { return _in_use; }

  private:
    friend class Port;

    /** Take a token if one is free. */
    bool tryAcquire();

    /** Return a token and wake the longest-parked port. */
    void release();

    /** Park @p port until a token returns (idempotent). */
    void enlist(Port &port);

    unsigned _capacity;
    unsigned _in_use = 0;
    std::deque<Port *> _waiters;
};

/**
 * A service point with @p width identical servers, a bounded request
 * buffer and deterministic FIFO arbitration.
 *
 * submit() places a request; when a server (and, if the port shares a
 * TokenPool, a token) is available the request is served for its
 * @p service ticks, then its completion callback runs. Requests are
 * always served in submission order. A submission that finds the
 * bounded buffer full waits in the overflow queue — the component's
 * backpressure to the requester — and both the occurrence and the
 * waiting time are counted.
 */
class Port
{
  public:
    /** Contention statistics of one port. */
    struct Stats
    {
        std::uint64_t requests = 0;   ///< submissions accepted
        std::uint64_t served = 0;     ///< completions delivered
        /** Requests whose service start was delayed (> 0 ticks). */
        std::uint64_t conflict_stalls = 0;
        /** Submissions that found the bounded buffer full. */
        std::uint64_t buffer_overflows = 0;
        Tick stall_ticks = 0;         ///< total queued waiting time
        Tick busy_ticks = 0;          ///< total server-time held
        std::size_t peak_queue = 0;   ///< max waiting (buffer+overflow)
        double queue_integral = 0.0;  ///< time-weighted queued requests
    };

    /**
     * @param owner        component this port belongs to
     * @param name         port name (diagnostics only)
     * @param width        identical servers (must be nonzero)
     * @param buffer_limit bounded request-deque size (must be nonzero)
     * @param tokens       optional shared issue-width pool
     */
    Port(Component &owner, std::string name, unsigned width,
         std::size_t buffer_limit, TokenPool *tokens = nullptr);

    Port(const Port &) = delete;
    Port &operator=(const Port &) = delete;
    Port(Port &&) = delete;
    Port &operator=(Port &&) = delete;

    /**
     * Submit a request that holds one server for @p service ticks and
     * then invokes @p on_done (which may be empty for fire-and-forget
     * traffic such as writebacks).
     */
    void submit(Tick service, CompletionFn on_done);

    const std::string &name() const { return _name; }
    unsigned width() const { return _width; }
    std::size_t bufferLimit() const { return _buffer_limit; }

    /** Requests waiting to start (bounded buffer + overflow). */
    std::size_t queued() const
    {
        return _buffer.size() + _overflow.size();
    }

    /** Requests currently holding a server. */
    unsigned inService() const { return _in_service; }

    /** Requests awaiting their completion event (== inService()). */
    std::size_t inFlight() const { return _in_flight.size(); }

    const Stats &stats() const { return _stats; }

    /**
     * Busy fraction of total server capacity over @p makespan.
     * Returns 0 when the makespan (or the width) is zero — a port
     * that never ran has no utilization, not a division by zero.
     */
    double utilization(Tick makespan) const;

    /**
     * Time-weighted mean queue occupancy over @p makespan (0 when the
     * makespan is zero).
     */
    double meanQueue(Tick makespan) const;

  private:
    struct Request
    {
        Tick service;
        Tick submitted;
        std::uint64_t seq;
        CompletionFn on_done;
    };

    /** A started request parked until its completion event fires. */
    struct InFlight
    {
        std::uint64_t seq;
        CompletionFn on_done;
    };

    friend class TokenPool;

    /** Start as many queued requests as servers/tokens allow. */
    void pump();
    void startFront();
    void complete(std::uint64_t seq);
    void noteQueueChange();

    Component &_owner;
    std::string _name;
    unsigned _width;
    std::size_t _buffer_limit;
    TokenPool *_tokens;

    std::deque<Request> _buffer;    ///< bounded request deque
    std::deque<Request> _overflow;  ///< backpressured submissions
    /**
     * Started requests keyed by seq. The callback stays here — not in
     * the scheduled closure — so the completion event captures only
     * {port, seq} and always fits an inline arena frame. The vector's
     * capacity is reused across the run; lookup is by unique seq, so
     * its internal order is unobservable.
     */
    std::vector<InFlight> _in_flight;

    unsigned _in_service = 0;
    bool _parked = false;           ///< enlisted in the token pool
    std::uint64_t _next_seq = 0;
    Tick _last_queue_change = 0;
    Stats _stats;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_COMPONENT_HH
