#include "banked_memory.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace qmh {
namespace sim {

BankedMemory::BankedMemory(EventQueue &eq, std::string name,
                           const BankedMemoryConfig &config)
    : Component(eq, std::move(name)), _config(config),
      _tokens(config.ports)
{
    if (config.banks == 0)
        qmh_fatal("banked memory '", this->name(),
                  "' must have at least one bank");
    if (config.cycles_per_request == 0)
        qmh_fatal("banked memory '", this->name(),
                  "' must charge at least one tick per request");
    _banks.reserve(config.banks);
    for (unsigned b = 0; b < config.banks; ++b)
        _banks.push_back(std::make_unique<Port>(
            *this, "bank" + std::to_string(b), /*width=*/1,
            config.buffer, &_tokens));
}

void
BankedMemory::request(std::uint64_t address, unsigned lines,
                      CompletionFn on_done)
{
    const Tick service = _config.cycles_per_request +
                         _config.cycles_per_line *
                             static_cast<Tick>(lines);
    _banks[bankOf(address)]->submit(service, std::move(on_done));
}

std::uint64_t
BankedMemory::requests() const
{
    std::uint64_t total = 0;
    for (const auto &bank : _banks)
        total += bank->stats().requests;
    return total;
}

std::uint64_t
BankedMemory::served() const
{
    std::uint64_t total = 0;
    for (const auto &bank : _banks)
        total += bank->stats().served;
    return total;
}

std::uint64_t
BankedMemory::bankConflicts() const
{
    std::uint64_t total = 0;
    for (const auto &bank : _banks)
        total += bank->stats().conflict_stalls;
    return total;
}

std::uint64_t
BankedMemory::bufferOverflows() const
{
    std::uint64_t total = 0;
    for (const auto &bank : _banks)
        total += bank->stats().buffer_overflows;
    return total;
}

Tick
BankedMemory::stallTicks() const
{
    Tick total = 0;
    for (const auto &bank : _banks)
        total += bank->stats().stall_ticks;
    return total;
}

Tick
BankedMemory::busyTicks() const
{
    Tick total = 0;
    for (const auto &bank : _banks)
        total += bank->stats().busy_ticks;
    return total;
}

std::size_t
BankedMemory::peakQueue() const
{
    std::size_t peak = 0;
    for (const auto &bank : _banks)
        peak = std::max(peak, bank->stats().peak_queue);
    return peak;
}

double
BankedMemory::meanQueue(Tick makespan) const
{
    if (makespan == 0)
        return 0.0;
    double total = 0.0;
    for (const auto &bank : _banks)
        total += bank->meanQueue(makespan);
    return total;
}

double
BankedMemory::utilization(Tick makespan) const
{
    if (makespan == 0 || _banks.empty())
        return 0.0;
    double busy = 0.0;
    for (const auto &bank : _banks)
        busy += static_cast<double>(bank->stats().busy_ticks);
    return busy / (static_cast<double>(makespan) *
                   static_cast<double>(_banks.size()));
}

} // namespace sim
} // namespace qmh
