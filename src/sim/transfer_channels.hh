/**
 * @file
 * Counted code-transfer channels as a simulation resource.
 *
 * Wraps a Resource pool of identical transfer-network channels with
 * the latency and busy-time accounting every hierarchy simulation
 * needs: a client requests a channel, holds it for the transfer's
 * latency, and the pool tracks how much channel-time was kept busy so
 * utilization falls out of the makespan at the end.
 *
 * Shared by the abstract adder-stream hierarchy model
 * (cqla::runHierarchySim, paper Table 5) and the instruction-level
 * trace engine (trace/engine.hh) so the two charge transfer capacity
 * identically.
 */

#ifndef QMH_SIM_TRANSFER_CHANNELS_HH
#define QMH_SIM_TRANSFER_CHANNELS_HH

#include <cstdint>
#include <functional>

#include "event_queue.hh"
#include "resource.hh"

namespace qmh {
namespace sim {

/** A pool of parallel transfer channels with busy accounting. */
class TransferChannels
{
  public:
    TransferChannels(EventQueue &eq, unsigned capacity);

    /**
     * Request one channel (FIFO when all are busy), hold it for
     * @p hold ticks once granted, then release it and invoke
     * @p on_done. @p busy ticks are charged to the busy accounting at
     * request time — a pipelined batch holds one channel for its wave
     * latency while keeping every wire of the batch busy, so the two
     * can legitimately differ (single transfers pass hold == busy).
     */
    void transfer(Tick hold, Tick busy, std::function<void()> on_done);

    unsigned capacity() const { return _channels.capacity(); }

    /** Transfers started so far. */
    std::uint64_t transfers() const { return _transfers; }

    /** Channel-time charged busy so far. */
    Tick busyTicks() const { return _busy; }

    /** Busy fraction of total channel capacity over @p makespan. */
    double utilization(Tick makespan) const;

  private:
    EventQueue &_eq;
    Resource _channels;
    Tick _busy = 0;
    std::uint64_t _transfers = 0;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_TRANSFER_CHANNELS_HH
