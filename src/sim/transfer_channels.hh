/**
 * @file
 * Counted code-transfer channels as a simulation component.
 *
 * A Component owning one Port whose width is the channel count: a
 * client requests a channel, holds it for the transfer's latency, and
 * the port tracks how much channel-time was kept busy so utilization
 * falls out of the makespan at the end. The port's request buffer is
 * bounded — submissions past the limit wait in the port's overflow
 * queue (deterministic backpressure) instead of growing an unbounded
 * FIFO — and the port's contention statistics (conflict stalls, stall
 * ticks, peak/mean queue occupancy) are surfaced directly.
 *
 * Shared by the abstract adder-stream hierarchy model
 * (cqla::runHierarchySim, paper Table 5) and the instruction-level
 * trace engine (trace/engine.hh) so the two charge transfer capacity
 * identically.
 */

#ifndef QMH_SIM_TRANSFER_CHANNELS_HH
#define QMH_SIM_TRANSFER_CHANNELS_HH

#include <cstdint>

#include "component.hh"
#include "event_queue.hh"

namespace qmh {
namespace sim {

/** A pool of parallel transfer channels with busy accounting. */
class TransferChannels : public Component
{
  public:
    /**
     * @param eq       event queue the component runs on
     * @param capacity parallel channels (port width, must be nonzero)
     * @param buffer   bounded request-buffer depth before submissions
     *                 spill to the backpressure overflow queue
     */
    TransferChannels(EventQueue &eq, unsigned capacity,
                     std::size_t buffer = 64);

    /**
     * Request one channel (FIFO when all are busy), hold it for
     * @p hold ticks once granted, then release it and invoke
     * @p on_done. @p busy ticks are charged to the busy accounting at
     * request time — a pipelined batch holds one channel for its wave
     * latency while keeping every wire of the batch busy, so the two
     * can legitimately differ (single transfers pass hold == busy).
     */
    void transfer(Tick hold, Tick busy, CompletionFn on_done);

    unsigned capacity() const { return _port.width(); }

    /** Transfers started so far. */
    std::uint64_t transfers() const { return _port.stats().requests; }

    /** Channel-time charged busy so far. */
    Tick busyTicks() const { return _busy; }

    /** Transfers whose channel grant was delayed by contention. */
    std::uint64_t conflicts() const
    {
        return _port.stats().conflict_stalls;
    }

    /** Total ticks transfers spent waiting for a channel. */
    Tick stallTicks() const { return _port.stats().stall_ticks; }

    /** Submissions that found the bounded buffer full. */
    std::uint64_t bufferOverflows() const
    {
        return _port.stats().buffer_overflows;
    }

    /** Highest queue occupancy the channel port reached. */
    std::size_t peakQueue() const { return _port.stats().peak_queue; }

    /**
     * Time-weighted mean queued transfers over @p makespan (0 when
     * the makespan is zero).
     */
    double meanQueue(Tick makespan) const
    {
        return _port.meanQueue(makespan);
    }

    /**
     * Busy fraction of total channel capacity over @p makespan.
     * Returns 0 when makespan or capacity is zero — never a division
     * by zero.
     */
    double utilization(Tick makespan) const;

    /** The underlying channel port (introspection/tests). */
    const Port &port() const { return _port; }

  private:
    Port _port;
    Tick _busy = 0;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_TRANSFER_CHANNELS_HH
