#include "transfer_channels.hh"

#include <utility>

namespace qmh {
namespace sim {

TransferChannels::TransferChannels(EventQueue &eq, unsigned capacity,
                                   std::size_t buffer)
    : Component(eq, "transfer-channels"),
      _port(*this, "wire", capacity, buffer)
{
}

void
TransferChannels::transfer(Tick hold, Tick busy, CompletionFn on_done)
{
    _busy += busy;
    _port.submit(hold, std::move(on_done));
}

double
TransferChannels::utilization(Tick makespan) const
{
    const double capacity_ticks = static_cast<double>(makespan) *
                                  static_cast<double>(capacity());
    return capacity_ticks > 0.0
               ? static_cast<double>(_busy) / capacity_ticks
               : 0.0;
}

} // namespace sim
} // namespace qmh
