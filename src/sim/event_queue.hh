/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queue dispatches callables in (tick, priority, insertion-order)
 * order. Components schedule lambdas; there is deliberately no global
 * singleton queue — every simulation owns its own EventQueue so tests
 * and benches can run many independent simulations in one process.
 */

#ifndef QMH_SIM_EVENT_QUEUE_HH
#define QMH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/units.hh"

namespace qmh {
namespace sim {

/** Dispatch priority for events scheduled at the same tick. */
enum class Priority : int {
    Stat = -10,    ///< sampled before any same-tick state change
    Default = 0,
    Late = 10      ///< runs after all Default events of the tick
};

/**
 * Time-ordered event queue. Events may schedule further events while
 * executing (including at the current tick).
 */
class EventQueue
{
  public:
    using Handler = std::function<void()>;

    /** Current simulation time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return a monotonically increasing sequence id (for debugging).
     */
    std::uint64_t schedule(Tick when, Handler fn,
                           Priority prio = Priority::Default);

    /** Schedule @p fn @p delay ticks after now(). */
    std::uint64_t
    scheduleAfter(Tick delay, Handler fn,
                  Priority prio = Priority::Default)
    {
        return schedule(_now + delay, std::move(fn), prio);
    }

    /** True when no events remain. */
    bool empty() const { return _events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return _events.size(); }

    /** Execute the single next event; returns false if none remain. */
    bool step();

    /**
     * Run until the queue drains or simulated time would pass
     * @p limit. Returns the final simulation time.
     */
    Tick run(Tick limit = max_tick);

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Entry {
        Tick when;
        int prio;
        std::uint64_t seq;
        Handler fn;
    };

    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> _events;
    Tick _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_EVENT_QUEUE_HH
