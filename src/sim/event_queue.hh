/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queue dispatches callables in (tick, priority, insertion-order)
 * order. Components schedule lambdas; there is deliberately no global
 * singleton queue — every simulation owns its own EventQueue so tests
 * and benches can run many independent simulations in one process.
 *
 * Internally this is a two-tier calendar queue built for raw event
 * throughput rather than the textbook binary heap:
 *
 *  - Event records live in a per-queue arena (blocks of frames strung
 *    on a free list), so steady-state scheduling performs no heap
 *    allocation. Handlers are stored in a small-buffer-optimized
 *    callable inline in the frame; closures beyond the inline budget
 *    spill to the heap and are counted (spilledHandlers()) so tests
 *    can pin the hot path to zero spills.
 *
 *  - Pending events within a near horizon of `bucket_count` tick-wide
 *    buckets (width 2^shift ticks, shift grows adaptively and never
 *    shrinks) are filed by tick bucket; only the single *active*
 *    bucket — the one currently dispatching — is kept heap-ordered by
 *    (tick, priority, seq). Events past the horizon wait in a small
 *    far heap and are drained into buckets as the window slides.
 *
 * Dispatch order is governed solely by the strict total order
 * (tick, priority, seq), so the calendar layout is unobservable:
 * ordering semantics are byte-identical to the previous
 * priority-queue kernel.
 */

#ifndef QMH_SIM_EVENT_QUEUE_HH
#define QMH_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/small_function.hh"
#include "common/units.hh"

namespace qmh {
namespace sim {

/** Dispatch priority for events scheduled at the same tick. */
enum class Priority : int {
    Stat = -10,    ///< sampled before any same-tick state change
    Default = 0,
    Late = 10      ///< runs after all Default events of the tick
};

/**
 * Time-ordered event queue. Events may schedule further events while
 * executing (including at the current tick).
 */
class EventQueue
{
  public:
    /** Inline closure budget per event frame, bytes. */
    static constexpr std::size_t event_inline_bytes = 64;

    using Handler = std::function<void()>;
    using EventFn = common::SmallFunction<event_inline_bytes>;

    /** Current simulation time. */
    Tick now() const { return _now; }

    /**
     * Schedule @p fn at absolute time @p when (>= now()).
     * @return a monotonically increasing sequence id (for debugging).
     */
    std::uint64_t schedule(Tick when, Handler fn,
                           Priority prio = Priority::Default);

    /**
     * Schedule any callable at absolute time @p when (>= now()).
     * Closures up to event_inline_bytes are stored inline in the
     * arena frame; larger ones spill to the heap (counted).
     */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Handler> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    std::uint64_t
    schedule(Tick when, F &&fn, Priority prio = Priority::Default)
    {
        return scheduleImpl(when, EventFn(std::forward<F>(fn)), prio);
    }

    /** Schedule @p fn @p delay ticks after now(). */
    template <typename F>
    std::uint64_t
    scheduleAfter(Tick delay, F &&fn,
                  Priority prio = Priority::Default)
    {
        return schedule(_now + delay, std::forward<F>(fn), prio);
    }

    /** True when no events remain. */
    bool empty() const { return _size == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return _size; }

    /** Execute the single next event; returns false if none remain. */
    bool step();

    /**
     * Run until the queue drains or simulated time would pass
     * @p limit. Returns the final simulation time.
     */
    Tick run(Tick limit = max_tick);

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return _executed; }

    /** Arena blocks allocated over the queue's lifetime. */
    std::size_t arenaBlocks() const { return _blocks.size(); }

    /** Event frames the arena can hold without growing. */
    std::size_t
    arenaCapacity() const
    {
        return _blocks.size() * block_events;
    }

    /** Handlers too large for the inline budget (heap spills). */
    std::uint64_t spilledHandlers() const { return _spilled; }

  private:
    /// Near-horizon bucket ring size; power of two.
    static constexpr std::uint64_t bucket_count = 256;
    static constexpr std::uint64_t bucket_mask = bucket_count - 1;
    /// Cap so that any 64-bit tick delta spans < bucket_count keys.
    static constexpr std::uint32_t max_shift = 56;
    /// Event frames per arena block.
    static constexpr std::size_t block_events = 128;

    struct Event {
        Tick when = 0;
        std::uint64_t seq = 0;
        int prio = 0;
        EventFn fn;
        Event *next_free = nullptr;
    };

    /// "a dispatches after b" under the (tick, priority, seq) order.
    struct Later {
        bool
        operator()(const Event *a, const Event *b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->prio != b->prio)
                return a->prio > b->prio;
            return a->seq > b->seq;
        }
    };

    std::uint64_t scheduleImpl(Tick when, EventFn fn, Priority prio);
    void insert(Event *e);

    /**
     * Ensure the active heap holds the next bucket to dispatch.
     * Inline fast path — while the active heap is non-empty nothing
     * needs refilling; the slide/coarsen machinery lives out of line.
     */
    bool
    refill()
    {
        return !_active.empty() || refillSlow();
    }
    bool refillSlow();
    void dispatchTop();
    void growTo(std::uint32_t new_shift);
    Event *allocEvent();
    void recycle(Event *e);

    Tick _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;
    std::size_t _size = 0;

    std::uint32_t _shift = 0;
    std::uint64_t _active_key = 0;
    std::vector<Event *> _active;   ///< dispatching bucket, min-heap
    std::array<std::vector<Event *>, bucket_count> _buckets;
    std::size_t _near_count = 0;
    std::vector<Event *> _far;      ///< beyond-horizon min-heap
    std::vector<Event *> _rebucket; ///< scratch for shift growth

    std::vector<std::unique_ptr<Event[]>> _blocks;
    Event *_free = nullptr;
    std::uint64_t _spilled = 0;
};

} // namespace sim
} // namespace qmh

#endif // QMH_SIM_EVENT_QUEUE_HH
