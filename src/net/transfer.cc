#include "transfer.hh"

#include "common/logging.hh"

namespace qmh {
namespace net {

std::string
encodingLabel(const Encoding &enc)
{
    return ecc::Code::byKind(enc.code).shortName() + "-L" +
           std::to_string(enc.level);
}

TransferNetwork::TransferNetwork(const iontrap::Params &params)
    : _params(params)
{
}

double
TransferNetwork::transferTime(const Encoding &src,
                              const Encoding &dst) const
{
    if (src == dst)
        return 0.0;
    const auto src_code = ecc::Code::byKind(src.code);
    const auto dst_code = ecc::Code::byKind(dst.code);
    return src_ec_equivalents * src_code.ecTime(src.level, _params) +
           dst_ec_equivalents * dst_code.ecTime(dst.level, _params);
}

std::vector<std::vector<double>>
TransferNetwork::latencyMatrix(
    const std::vector<Encoding> &encodings) const
{
    std::vector<std::vector<double>> matrix;
    matrix.reserve(encodings.size());
    for (const auto &src : encodings) {
        std::vector<double> row;
        row.reserve(encodings.size());
        for (const auto &dst : encodings)
            row.push_back(transferTime(src, dst));
        matrix.push_back(std::move(row));
    }
    return matrix;
}

} // namespace net
} // namespace qmh
