#include "bandwidth.hh"

#include <cmath>

#include "common/logging.hh"

namespace qmh {
namespace net {

BandwidthModel::BandwidthModel(const ecc::Code &code, ecc::Level level,
                               const iontrap::Params &params)
    : _code(code), _level(level), _params(params)
{
    if (level < 1)
        qmh_fatal("BandwidthModel: level must be >= 1");
}

double
BandwidthModel::gateStepTime() const
{
    return _code.gateStepTime(_level, _params);
}

double
BandwidthModel::availablePerSuperblock(double blocks) const
{
    if (blocks <= 0.0)
        return 0.0;
    const double perimeter_channels =
        4.0 * std::sqrt(blocks) * channels_per_edge;
    const double per_channel_rate =
        1.0 / (channel_service_steps * gateStepTime());
    return perimeter_channels * per_channel_rate;
}

double
BandwidthModel::requiredDraper(double blocks, double utilization) const
{
    const double per_block_rate =
        draper_qubits_per_toffoli / (toffoli_steps * gateStepTime());
    return blocks * utilization * per_block_rate;
}

double
BandwidthModel::requiredWorstCase(double blocks) const
{
    const double per_block_rate =
        worst_case_qubits_per_toffoli / (toffoli_steps * gateStepTime());
    return blocks * per_block_rate;
}

unsigned
BandwidthModel::crossoverBlocks(unsigned max_blocks,
                                double utilization) const
{
    for (unsigned b = 1; b <= max_blocks; ++b) {
        if (requiredDraper(b, utilization) >
            availablePerSuperblock(b))
            return b;
    }
    return max_blocks;
}

} // namespace net
} // namespace qmh
