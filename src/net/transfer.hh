/**
 * @file
 * Code-transfer network (paper Section 4.2, Table 3): teleports a
 * logical qubit from one (code, level) encoding into another without
 * decoding. A correlated ancilla pair spanning the two encodings is
 * prepared via a multi-qubit cat state and verified; the data interacts
 * with the equivalently-encoded half through a transversal CNOT and is
 * measured; the destination half absorbs the state and is error
 * corrected.
 *
 * Cost model: the source side (cat-state preparation, verification,
 * transversal Bell measurement) costs src_ec_equivalents error-
 * correction times of the source encoding; the destination side
 * (correction plus EC) costs dst_ec_equivalents of the destination
 * encoding. The two constants are calibrated once against the paper's
 * Table 3 and reproduce 13 of its 14 entries within its one-digit
 * rounding (see EXPERIMENTS.md).
 */

#ifndef QMH_NET_TRANSFER_HH
#define QMH_NET_TRANSFER_HH

#include <vector>

#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace net {

/** One endpoint of a transfer: a code at a concatenation level. */
struct Encoding
{
    ecc::CodeKind code;
    ecc::Level level;

    bool operator==(const Encoding &) const = default;
};

/** Short label like "7-L2" for tables. */
std::string encodingLabel(const Encoding &enc);

/** Latency model for the transfer network. */
class TransferNetwork
{
  public:
    explicit TransferNetwork(const iontrap::Params &params);

    /**
     * Seconds to move one logical qubit from @p src encoding to
     * @p dst encoding. Zero when the encodings are identical.
     */
    double transferTime(const Encoding &src, const Encoding &dst) const;

    /** All pairwise latencies over @p encodings (Table 3). */
    std::vector<std::vector<double>>
    latencyMatrix(const std::vector<Encoding> &encodings) const;

    /** Source-side cost in EC times of the source encoding. */
    static constexpr double src_ec_equivalents = 4.3;

    /** Destination-side cost in EC times of the destination encoding. */
    static constexpr double dst_ec_equivalents = 2.0;

  private:
    iontrap::Params _params;
};

} // namespace net
} // namespace qmh

#endif // QMH_NET_TRANSFER_HH
