#include "mesh.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace qmh {
namespace net {

Mesh::Mesh(int side) : _side(side)
{
    if (side < 1)
        qmh_fatal("Mesh: side must be >= 1, got ", side);
}

int
Mesh::hops(int from, int to) const
{
    if (from < 0 || from >= nodes() || to < 0 || to >= nodes())
        qmh_panic("Mesh::hops: node index out of range");
    const int fx = from % _side;
    const int fy = from / _side;
    const int tx = to % _side;
    const int ty = to / _side;
    return std::abs(fx - tx) + std::abs(fy - ty);
}

double
Mesh::meanDistance() const
{
    // Mean |x1-x2| over a discrete line of s nodes is (s^2-1)/(3s);
    // the mesh distance is twice that (x and y independent).
    const double s = _side;
    return 2.0 * (s * s - 1.0) / (3.0 * s);
}

double
Mesh::bisectionLinks() const
{
    return static_cast<double>(_side);
}

double
Mesh::allToAllTime(std::uint64_t items, double channel_rate) const
{
    if (channel_rate <= 0.0)
        qmh_panic("Mesh::allToAllTime: rate must be positive");
    if (items < 2)
        return 0.0;
    // Every ordered pair exchanges one qubit; on average half the
    // traffic crosses the bisection, served by bisectionLinks() links
    // in each direction.
    const double transfers =
        static_cast<double>(items) * static_cast<double>(items - 1);
    const double crossing = transfers / 2.0;
    return crossing / (2.0 * bisectionLinks() * channel_rate);
}

} // namespace net
} // namespace qmh
