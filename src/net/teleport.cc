#include "teleport.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace qmh {
namespace net {

TeleportModel::TeleportModel(const ecc::Code &code, ecc::Level level,
                             const iontrap::Params &params)
    : _code(code), _level(level), _params(params)
{
    if (level < 1)
        qmh_fatal("TeleportModel: level must be >= 1");
}

double
TeleportModel::transportTime() const
{
    const double ion_cycles =
        cycles_per_data_ion *
        static_cast<double>(_code.teleportIons(_level));
    const double bell_cycles =
        _params.opCycles(iontrap::PhysOp::DoubleGate) +
        _params.opCycles(iontrap::PhysOp::Measure);
    const double total_cycles =
        epr_setup_cycles + ion_cycles + bell_cycles;
    return units::usToSeconds(total_cycles * _params.cycle_us);
}

double
TeleportModel::teleportTime() const
{
    // The arrival error correction dominates at any realistic level.
    return transportTime() + _code.ecTime(_level, _params);
}

double
TeleportModel::channelRate() const
{
    return 1.0 / teleportTime();
}

} // namespace net
} // namespace qmh
