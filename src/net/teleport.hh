/**
 * @file
 * Teleportation-based interconnect model (paper Section 2 and 6).
 *
 * Logical qubits move by teleportation: an EPR pair is generated and
 * purified between source and destination islands, the data interacts
 * transversally with the local half, both are measured, and the
 * destination applies a classically-controlled correction followed by
 * an error correction. The post-arrival EC dominates, which is why "a
 * single communication step does not take longer than the computation
 * of a single gate" (paper Section 6) and why quantum computers do not
 * hit a conventional memory wall.
 */

#ifndef QMH_NET_TELEPORT_HH
#define QMH_NET_TELEPORT_HH

#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace net {

/** Cost model for logical teleportation. */
class TeleportModel
{
  public:
    TeleportModel(const ecc::Code &code, ecc::Level level,
                  const iontrap::Params &params);

    /**
     * Wall-clock time to teleport one logical qubit through one
     * channel, including the post-arrival error correction.
     */
    double teleportTime() const;

    /**
     * The pre-EC part only (EPR generation, purification, ballistic
     * moves of the physical data ions, Bell measurement). Bacon-Shor
     * pays more here than Steane: only data ions teleport, and
     * [[9,1,3]] has more of them.
     */
    double transportTime() const;

    /** Qubits per second through one channel. */
    double channelRate() const;

    const ecc::Code &code() const { return _code; }
    ecc::Level level() const { return _level; }

    /** EPR generation + purification rounds, in fundamental cycles. */
    static constexpr int epr_setup_cycles = 24;

    /** Junction traversal cycles charged per physical data ion. */
    static constexpr double cycles_per_data_ion = 1.0;

  private:
    ecc::Code _code;
    ecc::Level _level;
    iontrap::Params _params;
};

} // namespace net
} // namespace qmh

#endif // QMH_NET_TELEPORT_HH
