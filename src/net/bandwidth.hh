/**
 * @file
 * Superblock perimeter-bandwidth model (paper Section 5.1, Fig. 6b).
 *
 * Compute blocks are grouped into square superblocks. Data enters and
 * leaves across the perimeter teleportation channels, so available
 * bandwidth grows with sqrt(B) while demand grows with B: past a
 * crossover size it no longer pays to grow a superblock. The paper
 * finds the crossover at 36 blocks regardless of the error-correcting
 * code; in this model both demand and supply scale inversely with the
 * logical gate-step, so the crossover is code-independent by
 * construction.
 */

#ifndef QMH_NET_BANDWIDTH_HH
#define QMH_NET_BANDWIDTH_HH

#include "ecc/code.hh"
#include "iontrap/params.hh"

namespace qmh {
namespace net {

/** Perimeter-bandwidth supply/demand model for compute superblocks. */
class BandwidthModel
{
  public:
    BandwidthModel(const ecc::Code &code, ecc::Level level,
                   const iontrap::Params &params);

    /**
     * Qubits per second deliverable across the perimeter of a
     * superblock of @p blocks compute blocks:
     * 4*sqrt(B) block edges x channels_per_edge, each serving one
     * logical qubit every channel_service_steps gate-steps.
     */
    double availablePerSuperblock(double blocks) const;

    /**
     * Qubits per second demanded by modular exponentiation (the Draper
     * adder): every busy block consumes and produces
     * draper_qubits_per_toffoli operands per Toffoli slot.
     * @p utilization is the fraction of busy blocks (1.0 when the
     * schedule is work-bound).
     */
    double requiredDraper(double blocks, double utilization = 1.0) const;

    /**
     * Worst-case demand: all nine qubits a fault-tolerant Toffoli
     * touches (three data plus ancilla and cat-state qubits) are
     * remote every slot.
     */
    double requiredWorstCase(double blocks) const;

    /**
     * Smallest superblock size at which Draper demand exceeds supply
     * (the optimal superblock size; paper: 36).
     */
    unsigned crossoverBlocks(unsigned max_blocks = 4096,
                             double utilization = 1.0) const;

    /** Seconds per logical gate-step at this (code, level). */
    double gateStepTime() const;

    /** Teleportation channels per compute-block edge (paper: 2). */
    static constexpr double channels_per_edge = 2.0;

    /**
     * Gate-steps of channel occupancy per transferred logical qubit
     * (pipeline fill, landing error correction and hand-off).
     * Calibrated so the Draper crossover lands at 36 blocks.
     */
    static constexpr double channel_service_steps = 10.0 / 3.0;

    /** Operand traffic per busy block per Toffoli slot (3 in, 3 out). */
    static constexpr double draper_qubits_per_toffoli = 6.0;

    /** Worst-case traffic per block per Toffoli slot. */
    static constexpr double worst_case_qubits_per_toffoli = 9.0;

    /** Gate-steps per Toffoli slot. */
    static constexpr double toffoli_steps = 15.0;

  private:
    ecc::Code _code;
    ecc::Level _level;
    iontrap::Params _params;
};

} // namespace net
} // namespace qmh

#endif // QMH_NET_BANDWIDTH_HH
