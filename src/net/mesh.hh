/**
 * @file
 * Mesh interconnect utilities: XY routing distance and the
 * near-optimal pipelined all-to-all personalized exchange the paper
 * adopts for the QFT (Yang & Wang, IEEE ToC 50(10), all-port meshes).
 */

#ifndef QMH_NET_MESH_HH
#define QMH_NET_MESH_HH

#include <cstdint>

namespace qmh {
namespace net {

/** Square mesh of nodes with all-port teleportation routing. */
class Mesh
{
  public:
    /** @param side nodes per edge (side*side nodes total) */
    explicit Mesh(int side);

    int side() const { return _side; }
    int nodes() const { return _side * _side; }

    /** XY-routing hop count between node indices (row-major). */
    int hops(int from, int to) const;

    /** Mean pairwise XY distance of the mesh (closed form: 2s/3). */
    double meanDistance() const;

    /** Bisection width in links (all-port: 2 directions per link). */
    double bisectionLinks() const;

    /**
     * Time for all-to-all personalized communication where each of
     * the @p items qubits must visit every other, moved at
     * @p channel_rate qubits/s per link. Near-optimal pipelined
     * schedule: total traffic items*(items-1) qubit-transfers spread
     * over the bisection.
     */
    double allToAllTime(std::uint64_t items, double channel_rate) const;

  private:
    int _side;
};

} // namespace net
} // namespace qmh

#endif // QMH_NET_MESH_HH
