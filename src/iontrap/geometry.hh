/**
 * @file
 * Abstraction of the planar ion-trap layout (paper Fig. 1(b)): a grid
 * of trapping regions joined by shared crossing junctions. Provides the
 * movement-latency and area primitives the tile and interconnect models
 * are built on.
 */

#ifndef QMH_IONTRAP_GEOMETRY_HH
#define QMH_IONTRAP_GEOMETRY_HH

#include <cstdint>

#include "params.hh"

namespace qmh {
namespace iontrap {

/** Integer coordinate of a trapping region in the grid. */
struct GridCoord
{
    int x = 0;
    int y = 0;

    bool operator==(const GridCoord &) const = default;
};

/** Manhattan distance in trapping regions. */
int manhattan(GridCoord a, GridCoord b);

/**
 * A rectangular field of trapping regions. The grid is purely
 * geometric: occupancy/routing policy lives with the callers.
 */
class TrapGrid
{
  public:
    TrapGrid(int width, int height, const Params &params);

    int width() const { return _width; }
    int height() const { return _height; }
    std::int64_t regions() const;

    /** True if @p c lies inside the grid. */
    bool contains(GridCoord c) const;

    /** Physical area of the whole grid in mm^2. */
    double areaMm2() const;

    /** Side lengths of the grid in micrometres. */
    double widthUm() const;
    double heightUm() const;

    /**
     * Latency, in fundamental cycles, to ballistically shuttle an ion
     * between two regions: one split, one move per region traversed,
     * and one cooling step at the destination.
     */
    int moveLatencyCycles(GridCoord from, GridCoord to) const;

    /** Same, in microseconds. */
    double moveLatencyUs(GridCoord from, GridCoord to) const;

    /**
     * Accumulated movement failure probability along the path
     * (per-region failure x regions traversed).
     */
    double moveFailure(GridCoord from, GridCoord to) const;

    const Params &params() const { return _params; }

  private:
    int _width;
    int _height;
    Params _params;
};

} // namespace iontrap
} // namespace qmh

#endif // QMH_IONTRAP_GEOMETRY_HH
