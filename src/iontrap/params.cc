#include "params.hh"

#include <cmath>

#include "common/logging.hh"

namespace qmh {
namespace iontrap {

const char *
physOpName(PhysOp op)
{
    switch (op) {
      case PhysOp::SingleGate: return "single_gate";
      case PhysOp::DoubleGate: return "double_gate";
      case PhysOp::Measure:    return "measure";
      case PhysOp::Move:       return "move";
      case PhysOp::Split:      return "split";
      case PhysOp::Cooling:    return "cooling";
    }
    qmh_panic("unknown PhysOp");
}

double
Params::opTimeUs(PhysOp op) const
{
    switch (op) {
      case PhysOp::SingleGate: return single_gate_us;
      case PhysOp::DoubleGate: return double_gate_us;
      case PhysOp::Measure:    return measure_us;
      case PhysOp::Move:       return move_us;
      case PhysOp::Split:      return split_us;
      case PhysOp::Cooling:    return cooling_us;
    }
    qmh_panic("unknown PhysOp");
}

double
Params::opFailure(PhysOp op) const
{
    switch (op) {
      case PhysOp::SingleGate: return single_gate_fail;
      case PhysOp::DoubleGate: return double_gate_fail;
      case PhysOp::Measure:    return measure_fail;
      case PhysOp::Move:       return moveFailurePerRegion();
      case PhysOp::Split:      return 0.0;
      case PhysOp::Cooling:    return 0.0;
    }
    qmh_panic("unknown PhysOp");
}

int
Params::opCycles(PhysOp op) const
{
    const double cycles = opTimeUs(op) / cycle_us;
    const int whole = static_cast<int>(std::ceil(cycles - 1e-9));
    return whole < 1 ? 1 : whole;
}

double
Params::regionDimUm() const
{
    return trap_size_um * electrodes_per_region;
}

double
Params::regionAreaUm2() const
{
    return regionDimUm() * regionDimUm();
}

double
Params::moveFailurePerRegion() const
{
    return move_fail_per_um * regionDimUm();
}

double
Params::averageFailure() const
{
    return (single_gate_fail + double_gate_fail + measure_fail +
            move_fail_per_um) / 4.0;
}

Params
Params::currentTechnology()
{
    Params p;
    p.name = "now";
    p.single_gate_us = 1.0;
    p.double_gate_us = 10.0;
    p.measure_us = 200.0;
    p.move_us = 20.0;
    p.split_us = 200.0;
    p.cooling_us = 200.0;
    p.single_gate_fail = 1e-4;
    p.double_gate_fail = 0.03;
    p.measure_fail = 0.01;
    p.move_fail_per_um = 0.005;
    p.memory_time_s = 10.0;
    p.trap_size_um = 200.0;
    p.electrodes_per_region = 10;
    p.cycle_us = 10.0;
    return p;
}

Params
Params::future()
{
    Params p;
    p.name = "future";
    p.single_gate_us = 1.0;
    p.double_gate_us = 10.0;
    p.measure_us = 10.0;
    p.move_us = 10.0;
    p.split_us = 0.1;
    p.cooling_us = 0.1;
    p.single_gate_fail = 1e-8;
    p.double_gate_fail = 1e-7;
    p.measure_fail = 1e-8;
    p.move_fail_per_um = 5e-8;
    p.memory_time_s = 100.0;
    p.trap_size_um = 5.0;
    p.electrodes_per_region = 10;
    p.cycle_us = 10.0;
    return p;
}

} // namespace iontrap
} // namespace qmh
