/**
 * @file
 * Physical-layer parameters for the trapped-ion technology model
 * (paper Table 1). Two calibrated sets are provided: "now" (2006
 * experimental values, NIST 9Be+/24Mg+) and "future" (the 10-15 year
 * projections the paper's analysis uses).
 */

#ifndef QMH_IONTRAP_PARAMS_HH
#define QMH_IONTRAP_PARAMS_HH

#include <string>

namespace qmh {
namespace iontrap {

/** Fundamental physical operations of the ion-trap microarchitecture. */
enum class PhysOp {
    SingleGate,  ///< one-qubit rotation by a pulsed laser
    DoubleGate,  ///< two-ion gate in a shared trapping region
    Measure,     ///< state readout by fluorescence
    Move,        ///< ballistic shuttle between adjacent trapping regions
    Split,       ///< separate two ions sharing a trap
    Cooling      ///< sympathetic cooling after movement
};

/** Human-readable operation name. */
const char *physOpName(PhysOp op);

/** Number of PhysOp enumerators. */
constexpr int num_phys_ops = 6;

/**
 * A complete physical parameter set. Times are in microseconds and
 * failure probabilities are per operation (movement failure is also
 * derivable per micrometre; see moveFailurePerUm).
 */
struct Params
{
    std::string name;          ///< parameter-set label

    double single_gate_us;     ///< one-qubit gate latency
    double double_gate_us;     ///< two-qubit gate latency
    double measure_us;         ///< measurement latency
    double move_us;            ///< shuttle latency per trapping region
    double split_us;           ///< ion-splitting latency
    double cooling_us;         ///< sympathetic cooling latency

    double single_gate_fail;   ///< one-qubit gate error probability
    double double_gate_fail;   ///< two-qubit gate error probability
    double measure_fail;       ///< measurement error probability
    double move_fail_per_um;   ///< movement error probability per um

    double memory_time_s;      ///< idle coherence lifetime (seconds)
    double trap_size_um;       ///< electrode pitch of a single trap
    int electrodes_per_region; ///< electrodes forming a trapping region

    /**
     * Fundamental clock cycle of the abstract machine. The paper defines
     * one cycle as any un-encoded logic/move/measure step and uses 10 us
     * throughout the analysis.
     */
    double cycle_us;

    /** Latency of @p op in microseconds. */
    double opTimeUs(PhysOp op) const;

    /**
     * Failure probability of @p op. Movement is reported per trapping
     * region traversed (move_fail_per_um * trapping region extent).
     */
    double opFailure(PhysOp op) const;

    /** Latency of @p op in integer fundamental cycles (>= 1). */
    int opCycles(PhysOp op) const;

    /**
     * Side length of one trapping region including its share of the
     * crossing junction: electrodes_per_region * trap_size_um.
     */
    double regionDimUm() const;

    /** Area of one trapping region in um^2. */
    double regionAreaUm2() const;

    /** Movement failure probability across one trapping region. */
    double moveFailurePerRegion() const;

    /**
     * Mean physical failure probability p0 used by the Gottesman local-
     * architecture estimate (Eq. 1 of the paper): the average of the
     * single-gate, double-gate, measurement and per-um movement rates.
     */
    double averageFailure() const;

    /** 2006 experimentally demonstrated values (paper Table 1). */
    static Params currentTechnology();

    /** Projected values used for the CQLA analysis (paper Table 1). */
    static Params future();
};

} // namespace iontrap
} // namespace qmh

#endif // QMH_IONTRAP_PARAMS_HH
