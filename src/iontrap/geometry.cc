#include "geometry.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/units.hh"

namespace qmh {
namespace iontrap {

int
manhattan(GridCoord a, GridCoord b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

TrapGrid::TrapGrid(int width, int height, const Params &params)
    : _width(width), _height(height), _params(params)
{
    if (width <= 0 || height <= 0)
        qmh_fatal("TrapGrid dimensions must be positive: ", width, "x",
                  height);
}

std::int64_t
TrapGrid::regions() const
{
    return static_cast<std::int64_t>(_width) * _height;
}

bool
TrapGrid::contains(GridCoord c) const
{
    return c.x >= 0 && c.x < _width && c.y >= 0 && c.y < _height;
}

double
TrapGrid::areaMm2() const
{
    return units::um2ToMm2(static_cast<double>(regions()) *
                           _params.regionAreaUm2());
}

double
TrapGrid::widthUm() const
{
    return _width * _params.regionDimUm();
}

double
TrapGrid::heightUm() const
{
    return _height * _params.regionDimUm();
}

int
TrapGrid::moveLatencyCycles(GridCoord from, GridCoord to) const
{
    if (!contains(from) || !contains(to))
        qmh_panic("moveLatencyCycles: coordinate outside grid");
    const int hops = manhattan(from, to);
    if (hops == 0)
        return 0;
    return _params.opCycles(PhysOp::Split) +
           hops * _params.opCycles(PhysOp::Move) +
           _params.opCycles(PhysOp::Cooling);
}

double
TrapGrid::moveLatencyUs(GridCoord from, GridCoord to) const
{
    return moveLatencyCycles(from, to) * _params.cycle_us;
}

double
TrapGrid::moveFailure(GridCoord from, GridCoord to) const
{
    const int hops = manhattan(from, to);
    // 1 - (1-p)^hops, computed stably for small p.
    const double p = _params.moveFailurePerRegion();
    return -std::expm1(static_cast<double>(hops) * std::log1p(-p));
}

} // namespace iontrap
} // namespace qmh
