#include "instruction.hh"

#include <sstream>

#include "common/logging.hh"

namespace qmh {
namespace circuit {

const char *
gateName(GateKind kind)
{
    switch (kind) {
      case GateKind::X:       return "x";
      case GateKind::Z:       return "z";
      case GateKind::H:       return "h";
      case GateKind::S:       return "s";
      case GateKind::T:       return "t";
      case GateKind::Cnot:    return "cnot";
      case GateKind::Cphase:  return "cphase";
      case GateKind::Swap:    return "swap";
      case GateKind::Toffoli: return "toffoli";
      case GateKind::Measure: return "measure";
      case GateKind::Barrier: return "barrier";
    }
    qmh_panic("unknown GateKind");
}

int
gateArity(GateKind kind)
{
    switch (kind) {
      case GateKind::X:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::S:
      case GateKind::T:
      case GateKind::Measure:
        return 1;
      case GateKind::Barrier:
        return 0;
      case GateKind::Cnot:
      case GateKind::Cphase:
      case GateKind::Swap:
        return 2;
      case GateKind::Toffoli:
        return 3;
    }
    qmh_panic("unknown GateKind");
}

bool
isClassicalGate(GateKind kind)
{
    switch (kind) {
      case GateKind::X:
      case GateKind::Cnot:
      case GateKind::Swap:
      case GateKind::Toffoli:
      case GateKind::Barrier:  // no-op under classical semantics
        return true;
      default:
        return false;
    }
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << gateName(kind);
    if (kind == GateKind::Cphase)
        os << ' ' << param;
    for (const auto &q : operands())
        os << " q" << q.value();
    return os.str();
}

Instruction
Instruction::makeBarrier()
{
    Instruction inst;
    inst.kind = GateKind::Barrier;
    inst.arity = 0;
    return inst;
}

Instruction
Instruction::makeOne(GateKind kind, QubitId a)
{
    if (gateArity(kind) != 1)
        qmh_panic("makeOne: ", gateName(kind), " is not a 1-qubit gate");
    Instruction inst;
    inst.kind = kind;
    inst.ops[0] = a;
    inst.arity = 1;
    return inst;
}

Instruction
Instruction::makeTwo(GateKind kind, QubitId a, QubitId b,
                     std::int32_t param)
{
    if (gateArity(kind) != 2)
        qmh_panic("makeTwo: ", gateName(kind), " is not a 2-qubit gate");
    if (a == b)
        qmh_panic("makeTwo: duplicate operand q", a.value());
    Instruction inst;
    inst.kind = kind;
    inst.ops[0] = a;
    inst.ops[1] = b;
    inst.arity = 2;
    inst.param = param;
    return inst;
}

Instruction
Instruction::makeThree(GateKind kind, QubitId a, QubitId b, QubitId c)
{
    if (gateArity(kind) != 3)
        qmh_panic("makeThree: ", gateName(kind), " is not a 3-qubit gate");
    if (a == b || a == c || b == c)
        qmh_panic("makeThree: duplicate operand");
    Instruction inst;
    inst.kind = kind;
    inst.ops[0] = a;
    inst.ops[1] = b;
    inst.ops[2] = c;
    inst.arity = 3;
    return inst;
}

} // namespace circuit
} // namespace qmh
