/**
 * @file
 * Classical reversible-logic simulator.
 *
 * The Draper adder and the modular-exponentiation building blocks use
 * only X, CNOT, SWAP and Toffoli — all permutations of computational
 * basis states — so their functional correctness can be *proved* on a
 * bit-vector: encode inputs, run the instruction stream, check the
 * output integer. The test suite uses this to verify every generated
 * adder actually adds.
 */

#ifndef QMH_CIRCUIT_REVERSIBLE_HH
#define QMH_CIRCUIT_REVERSIBLE_HH

#include <cstdint>
#include <vector>

#include "program.hh"

namespace qmh {
namespace circuit {

/** Bit-vector state of a classical (basis-state) register. */
class ReversibleState
{
  public:
    explicit ReversibleState(int qubits);

    int qubitCount() const { return static_cast<int>(_bits.size()); }

    bool get(QubitId q) const;
    void set(QubitId q, bool value);

    /**
     * Load an unsigned integer, little-endian, into qubits
     * [offset, offset + width).
     */
    void loadInteger(std::uint64_t value, int offset, int width);

    /** Read an unsigned integer from qubits [offset, offset + width). */
    std::uint64_t readInteger(int offset, int width) const;

    /** Apply one classical gate. Panics on non-classical gates. */
    void apply(const Instruction &inst);

    /**
     * Run a whole program. Returns false (leaving the state at the
     * offending instruction) if a non-classical gate is encountered.
     */
    bool run(const Program &program);

    const std::vector<bool> &bits() const { return _bits; }

  private:
    std::vector<bool> _bits;
};

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_REVERSIBLE_HH
