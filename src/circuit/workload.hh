/**
 * @file
 * A circuit plus the architectural metadata the engines need to
 * interpret it.
 *
 * The struct lives at the circuit layer (not in qmh::api, which
 * *builds* workloads from registered generators) so engines below the
 * facade — the trace pipeline in particular — can consume a workload
 * without an upward dependency on the api module. The facade re-exports
 * it as api::Workload.
 */

#ifndef QMH_CIRCUIT_WORKLOAD_HH
#define QMH_CIRCUIT_WORKLOAD_HH

#include <vector>

#include "circuit/program.hh"

namespace qmh {
namespace circuit {

/** A generated workload with its architectural metadata. */
struct Workload
{
    circuit::Program program;
    /** Per-qubit cacheable mask; empty = every qubit is cacheable. */
    std::vector<bool> cacheable;
    /** Processing-element qubit count (auto cache sizing). */
    unsigned pe_qubits = 0;
};

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_WORKLOAD_HH
