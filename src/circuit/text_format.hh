/**
 * @file
 * Text (assembly-like) serialization of logical programs.
 *
 * Format, one instruction per line:
 *
 *     # comment
 *     name   draper-adder-8
 *     qubits 32
 *     cnot q0 q8
 *     toffoli q0 q8 q16
 *     cphase 3 q1 q2
 *
 * Header directives (`name`, `qubits`) must precede instructions.
 */

#ifndef QMH_CIRCUIT_TEXT_FORMAT_HH
#define QMH_CIRCUIT_TEXT_FORMAT_HH

#include <iosfwd>
#include <string>

#include "program.hh"

namespace qmh {
namespace circuit {

/** Outcome of parsing. On failure `ok` is false and `error` explains. */
struct ParseResult
{
    bool ok = false;
    Program program;
    std::string error;
    int line = 0;

    explicit operator bool() const { return ok; }
};

/** Serialize @p program to the text format. */
std::string writeText(const Program &program);

/** Serialize to a stream. */
void writeText(const Program &program, std::ostream &os);

/** Parse a program from text. Never throws; check the result. */
ParseResult parseText(const std::string &text);

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_TEXT_FORMAT_HH
