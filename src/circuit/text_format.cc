#include "text_format.hh"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

namespace qmh {
namespace circuit {

namespace {

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char ch : line) {
        if (ch == '#')
            break;
        if (std::isspace(static_cast<unsigned char>(ch))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(ch);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

std::optional<GateKind>
kindFromName(const std::string &name)
{
    static const struct { const char *name; GateKind kind; } table[] = {
        {"x", GateKind::X},          {"z", GateKind::Z},
        {"h", GateKind::H},          {"s", GateKind::S},
        {"t", GateKind::T},          {"cnot", GateKind::Cnot},
        {"cphase", GateKind::Cphase},{"swap", GateKind::Swap},
        {"toffoli", GateKind::Toffoli},
        {"measure", GateKind::Measure},
        {"barrier", GateKind::Barrier},
    };
    for (const auto &entry : table)
        if (name == entry.name)
            return entry.kind;
    return std::nullopt;
}

std::optional<long>
parseInt(const std::string &tok)
{
    if (tok.empty())
        return std::nullopt;
    std::size_t pos = 0;
    long value = 0;
    try {
        value = std::stol(tok, &pos);
    } catch (...) {
        return std::nullopt;
    }
    if (pos != tok.size())
        return std::nullopt;
    return value;
}

std::optional<QubitId>
parseQubit(const std::string &tok, int register_size)
{
    if (tok.size() < 2 || tok[0] != 'q')
        return std::nullopt;
    const auto idx = parseInt(tok.substr(1));
    if (!idx || *idx < 0 || *idx >= register_size)
        return std::nullopt;
    return QubitId(static_cast<QubitId::rep_type>(*idx));
}

} // namespace

void
writeText(const Program &program, std::ostream &os)
{
    os << "name " << program.name() << "\n";
    os << "qubits " << program.qubitCount() << "\n";
    for (const auto &inst : program.instructions())
        os << inst.toString() << "\n";
}

std::string
writeText(const Program &program)
{
    std::ostringstream os;
    writeText(program, os);
    return os.str();
}

ParseResult
parseText(const std::string &text)
{
    ParseResult result;
    std::istringstream is(text);
    std::string line;
    int line_no = 0;
    std::string name = "program";
    int qubits = -1;
    std::vector<Instruction> pending;

    auto fail = [&](const std::string &msg) {
        result.ok = false;
        result.error = msg;
        result.line = line_no;
        return result;
    };

    while (std::getline(is, line)) {
        ++line_no;
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;

        if (tokens[0] == "name") {
            if (tokens.size() != 2)
                return fail("'name' takes exactly one token");
            name = tokens[1];
            continue;
        }
        if (tokens[0] == "qubits") {
            if (tokens.size() != 2)
                return fail("'qubits' takes exactly one integer");
            const auto count = parseInt(tokens[1]);
            if (!count || *count < 0)
                return fail("bad qubit count '" + tokens[1] + "'");
            qubits = static_cast<int>(*count);
            continue;
        }

        const auto kind = kindFromName(tokens[0]);
        if (!kind)
            return fail("unknown mnemonic '" + tokens[0] + "'");
        if (qubits < 0)
            return fail("instruction before 'qubits' directive");

        std::size_t operand_start = 1;
        std::int32_t param = 0;
        if (*kind == GateKind::Cphase) {
            if (tokens.size() < 2)
                return fail("cphase requires a rotation index");
            const auto k = parseInt(tokens[1]);
            if (!k)
                return fail("bad cphase parameter '" + tokens[1] + "'");
            param = static_cast<std::int32_t>(*k);
            operand_start = 2;
        }

        const int arity = gateArity(*kind);
        if (tokens.size() != operand_start + static_cast<std::size_t>(arity))
            return fail(std::string("'") + gateName(*kind) + "' expects " +
                        std::to_string(arity) + " qubit operand(s)");

        std::array<QubitId, 3> ops{};
        for (int i = 0; i < arity; ++i) {
            const auto q = parseQubit(tokens[operand_start + i], qubits);
            if (!q)
                return fail("bad qubit operand '" +
                            tokens[operand_start + i] + "'");
            ops[static_cast<std::size_t>(i)] = *q;
        }
        for (int i = 0; i < arity; ++i)
            for (int j = i + 1; j < arity; ++j)
                if (ops[i] == ops[j])
                    return fail("duplicate operand in '" + line + "'");

        Instruction inst;
        inst.kind = *kind;
        inst.ops = ops;
        inst.arity = static_cast<std::uint8_t>(arity);
        inst.param = param;
        pending.push_back(inst);
    }

    if (qubits < 0)
        return fail("missing 'qubits' directive");

    result.program = Program(name, qubits);
    for (const auto &inst : pending)
        result.program.append(inst);
    result.ok = true;
    return result;
}

} // namespace circuit
} // namespace qmh
