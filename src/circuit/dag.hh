/**
 * @file
 * Data-dependency analysis of a logical program.
 *
 * Two instructions conflict when they share a qubit operand (quantum
 * data cannot be copied, so every shared operand is a true dependency).
 * The DAG drives the list scheduler, the parallelism profiles (paper
 * Fig. 2) and the optimized cache fetch policy (paper Section 5.2).
 */

#ifndef QMH_CIRCUIT_DAG_HH
#define QMH_CIRCUIT_DAG_HH

#include <cstdint>
#include <vector>

#include "program.hh"

namespace qmh {
namespace circuit {

/** Dependency DAG over a program's instructions (indexed by position). */
class DependencyGraph
{
  public:
    explicit DependencyGraph(const Program &program);

    std::size_t size() const { return _preds.size(); }

    const std::vector<std::uint32_t> &
    predecessors(std::size_t i) const
    {
        return _preds[i];
    }

    const std::vector<std::uint32_t> &
    successors(std::size_t i) const
    {
        return _succs[i];
    }

    /** Number of unfinished predecessors at the start (in-degree). */
    int inDegree(std::size_t i) const { return _in_degree[i]; }

    /**
     * ASAP level of each instruction under unit gate latency: the
     * earliest timestep it can issue with unlimited resources.
     */
    const std::vector<std::uint32_t> &asapLevels() const { return _asap; }

    /** Critical-path length in gates (max ASAP level + 1); 0 if empty. */
    std::uint32_t depth() const { return _depth; }

    /**
     * Per-level instruction counts: the unlimited-resources parallelism
     * profile of the program (paper Fig. 2's upper curve).
     */
    std::vector<std::uint32_t> parallelismProfile() const;

    /** Maximum number of gates issuable in one level. */
    std::uint32_t maxParallelism() const;

  private:
    std::vector<std::vector<std::uint32_t>> _preds;
    std::vector<std::vector<std::uint32_t>> _succs;
    std::vector<int> _in_degree;
    std::vector<std::uint32_t> _asap;
    std::uint32_t _depth = 0;
};

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_DAG_HH
