/**
 * @file
 * Data-dependency analysis of a logical program.
 *
 * Two instructions conflict when they share a qubit operand (quantum
 * data cannot be copied, so every shared operand is a true dependency).
 * The DAG drives the list scheduler, the parallelism profiles (paper
 * Fig. 2) and the optimized cache fetch policy (paper Section 5.2).
 */

#ifndef QMH_CIRCUIT_DAG_HH
#define QMH_CIRCUIT_DAG_HH

#include <cstdint>
#include <span>
#include <vector>

#include "program.hh"

namespace qmh {
namespace circuit {

/** Dependency DAG over a program's instructions (indexed by position). */
class DependencyGraph
{
  public:
    explicit DependencyGraph(const Program &program);

    std::size_t size() const { return _in_degree.size(); }

    std::span<const std::uint32_t>
    predecessors(std::size_t i) const
    {
        return {_pred_edges.data() + _pred_offset[i],
                _pred_offset[i + 1] - _pred_offset[i]};
    }

    std::span<const std::uint32_t>
    successors(std::size_t i) const
    {
        return {_succ_edges.data() + _succ_offset[i],
                _succ_offset[i + 1] - _succ_offset[i]};
    }

    /** Successor adjacency in CSR form (offsets into succEdges()). */
    const std::vector<std::uint32_t> &succOffsets() const
    {
        return _succ_offset;
    }

    /** Flat successor edge array (indexed via succOffsets()). */
    const std::vector<std::uint32_t> &succEdges() const
    {
        return _succ_edges;
    }

    /** Number of unfinished predecessors at the start (in-degree). */
    int inDegree(std::size_t i) const { return _in_degree[i]; }

    /**
     * ASAP level of each instruction under unit gate latency: the
     * earliest timestep it can issue with unlimited resources.
     */
    const std::vector<std::uint32_t> &asapLevels() const { return _asap; }

    /** Critical-path length in gates (max ASAP level + 1); 0 if empty. */
    std::uint32_t depth() const { return _depth; }

    /**
     * Per-level instruction counts: the unlimited-resources parallelism
     * profile of the program (paper Fig. 2's upper curve).
     */
    std::vector<std::uint32_t> parallelismProfile() const;

    /** Maximum number of gates issuable in one level. */
    std::uint32_t maxParallelism() const;

  private:
    // Both adjacency directions in CSR form: one flat edge array plus
    // per-node offsets, so construction is two passes over a flat
    // edge list instead of thousands of small vector allocations.
    std::vector<std::uint32_t> _pred_offset;
    std::vector<std::uint32_t> _pred_edges;
    std::vector<std::uint32_t> _succ_offset;
    std::vector<std::uint32_t> _succ_edges;
    std::vector<int> _in_degree;
    std::vector<std::uint32_t> _asap;
    std::uint32_t _depth = 0;
};

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_DAG_HH
