#include "reversible.hh"

#include "common/logging.hh"

namespace qmh {
namespace circuit {

ReversibleState::ReversibleState(int qubits)
{
    if (qubits < 0)
        qmh_fatal("ReversibleState: negative qubit count");
    _bits.assign(static_cast<std::size_t>(qubits), false);
}

bool
ReversibleState::get(QubitId q) const
{
    if (!q.isValid() || q.value() >= _bits.size())
        qmh_panic("ReversibleState::get: qubit out of range");
    return _bits[q.value()];
}

void
ReversibleState::set(QubitId q, bool value)
{
    if (!q.isValid() || q.value() >= _bits.size())
        qmh_panic("ReversibleState::set: qubit out of range");
    _bits[q.value()] = value;
}

void
ReversibleState::loadInteger(std::uint64_t value, int offset, int width)
{
    if (offset < 0 || width < 0 ||
        static_cast<std::size_t>(offset + width) > _bits.size())
        qmh_panic("loadInteger: window outside register");
    if (width < 64 && value >> width)
        qmh_panic("loadInteger: value does not fit in ", width, " bits");
    for (int i = 0; i < width; ++i)
        _bits[static_cast<std::size_t>(offset + i)] =
            (value >> i) & 1ULL;
}

std::uint64_t
ReversibleState::readInteger(int offset, int width) const
{
    if (offset < 0 || width < 0 || width > 64 ||
        static_cast<std::size_t>(offset + width) > _bits.size())
        qmh_panic("readInteger: window outside register");
    std::uint64_t value = 0;
    for (int i = 0; i < width; ++i)
        if (_bits[static_cast<std::size_t>(offset + i)])
            value |= 1ULL << i;
    return value;
}

void
ReversibleState::apply(const Instruction &inst)
{
    switch (inst.kind) {
      case GateKind::Barrier:
        return;
      case GateKind::X:
        _bits[inst.ops[0].value()] = !_bits[inst.ops[0].value()];
        return;
      case GateKind::Cnot:
        if (_bits[inst.ops[0].value()])
            _bits[inst.ops[1].value()] = !_bits[inst.ops[1].value()];
        return;
      case GateKind::Swap: {
        const bool tmp = _bits[inst.ops[0].value()];
        _bits[inst.ops[0].value()] = _bits[inst.ops[1].value()];
        _bits[inst.ops[1].value()] = tmp;
        return;
      }
      case GateKind::Toffoli:
        if (_bits[inst.ops[0].value()] && _bits[inst.ops[1].value()])
            _bits[inst.ops[2].value()] = !_bits[inst.ops[2].value()];
        return;
      default:
        qmh_panic("ReversibleState: non-classical gate '",
                  inst.toString(), "'");
    }
}

bool
ReversibleState::run(const Program &program)
{
    if (program.qubitCount() > qubitCount())
        qmh_panic("ReversibleState::run: program needs ",
                  program.qubitCount(), " qubits, state has ",
                  qubitCount());
    for (const auto &inst : program.instructions()) {
        if (!isClassicalGate(inst.kind))
            return false;
        apply(inst);
    }
    return true;
}

} // namespace circuit
} // namespace qmh
