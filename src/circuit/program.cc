#include "program.hh"

#include "common/logging.hh"

namespace qmh {
namespace circuit {

Program::Program(std::string name, int qubits)
    : _name(std::move(name)), _qubits(qubits)
{
    if (qubits < 0)
        qmh_fatal("Program '", _name, "': negative qubit count");
}

QubitId
Program::addQubit()
{
    return QubitId(static_cast<QubitId::rep_type>(_qubits++));
}

void
Program::append(Instruction inst)
{
    for (const auto &q : inst.operands()) {
        if (!q.isValid() || static_cast<int>(q.value()) >= _qubits)
            qmh_panic("Program '", _name, "': instruction '",
                      inst.toString(), "' references qubit outside the ",
                      _qubits, "-qubit register");
    }
    _insts.push_back(inst);
}

std::uint64_t
Program::gateCount(GateKind kind) const
{
    std::uint64_t count = 0;
    for (const auto &inst : _insts)
        count += inst.kind == kind ? 1 : 0;
    return count;
}

std::map<GateKind, std::uint64_t>
Program::gateHistogram() const
{
    std::map<GateKind, std::uint64_t> hist;
    for (const auto &inst : _insts)
        ++hist[inst.kind];
    return hist;
}

bool
Program::isClassical() const
{
    for (const auto &inst : _insts)
        if (!isClassicalGate(inst.kind))
            return false;
    return true;
}

void
Program::concat(const Program &other)
{
    if (other._qubits > _qubits)
        qmh_fatal("Program::concat: '", other._name, "' uses ",
                  other._qubits, " qubits but '", _name, "' has only ",
                  _qubits);
    _insts.insert(_insts.end(), other._insts.begin(), other._insts.end());
}

} // namespace circuit
} // namespace qmh
