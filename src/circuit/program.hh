/**
 * @file
 * A logical quantum program: a named, ordered instruction sequence over
 * a fixed set of logical qubits, with gate-count statistics.
 */

#ifndef QMH_CIRCUIT_PROGRAM_HH
#define QMH_CIRCUIT_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "instruction.hh"

namespace qmh {
namespace circuit {

/** An ordered logical gate sequence. */
class Program
{
  public:
    Program() = default;

    /** @param name program label @param qubits number of logical qubits */
    Program(std::string name, int qubits);

    const std::string &name() const { return _name; }
    void setName(std::string name) { _name = std::move(name); }

    int qubitCount() const { return _qubits; }

    /** Grow the qubit register; existing ids stay valid. */
    QubitId addQubit();

    /** Append an instruction (operands validated against the register). */
    void append(Instruction inst);

    /** Convenience emitters. */
    void x(QubitId a) { append(Instruction::makeOne(GateKind::X, a)); }
    void z(QubitId a) { append(Instruction::makeOne(GateKind::Z, a)); }
    void h(QubitId a) { append(Instruction::makeOne(GateKind::H, a)); }
    void s(QubitId a) { append(Instruction::makeOne(GateKind::S, a)); }
    void t(QubitId a) { append(Instruction::makeOne(GateKind::T, a)); }
    void measure(QubitId a)
    {
        append(Instruction::makeOne(GateKind::Measure, a));
    }
    void
    cnot(QubitId control, QubitId target)
    {
        append(Instruction::makeTwo(GateKind::Cnot, control, target));
    }
    void
    cphase(std::int32_t k, QubitId control, QubitId target)
    {
        append(Instruction::makeTwo(GateKind::Cphase, control, target, k));
    }
    void
    swapq(QubitId a, QubitId b)
    {
        append(Instruction::makeTwo(GateKind::Swap, a, b));
    }
    void
    toffoli(QubitId c0, QubitId c1, QubitId target)
    {
        append(Instruction::makeThree(GateKind::Toffoli, c0, c1, target));
    }
    /** Close the current logical round (scheduling fence). */
    void barrier() { append(Instruction::makeBarrier()); }

    const std::vector<Instruction> &instructions() const { return _insts; }
    std::size_t size() const { return _insts.size(); }
    bool empty() const { return _insts.empty(); }
    const Instruction &operator[](std::size_t i) const { return _insts[i]; }

    /** Number of gates of one kind. */
    std::uint64_t gateCount(GateKind kind) const;

    /** Gates by kind, for reporting. */
    std::map<GateKind, std::uint64_t> gateHistogram() const;

    /** True when every gate is classical reversible logic. */
    bool isClassical() const;

    /**
     * Concatenate another program over the same register width
     * (sequential composition).
     */
    void concat(const Program &other);

  private:
    std::string _name = "program";
    int _qubits = 0;
    std::vector<Instruction> _insts;
};

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_PROGRAM_HH
