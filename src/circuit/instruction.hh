/**
 * @file
 * Logical-level instruction set. The paper's cache simulator consumes
 * "a sequence of instructions; each instruction is similar to assembly
 * language and describes a logical gate between qubits" (Section 5.2);
 * this is that instruction set.
 */

#ifndef QMH_CIRCUIT_INSTRUCTION_HH
#define QMH_CIRCUIT_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "common/strong_id.hh"

namespace qmh {
namespace circuit {

/** Strongly-typed logical qubit index within a program. */
using QubitId = StrongId<struct QubitIdTag>;

/** Logical gate kinds. */
enum class GateKind : std::uint8_t {
    X,        ///< bit flip
    Z,        ///< phase flip
    H,        ///< Hadamard
    S,        ///< phase gate
    T,        ///< pi/8 gate (the expensive non-Clifford gate)
    Cnot,     ///< controlled-X
    Cphase,   ///< controlled phase rotation R_k (QFT); param = k
    Swap,     ///< exchange two logical qubits
    Toffoli,  ///< controlled-controlled-X
    Measure,  ///< computational-basis measurement
    Barrier   ///< scheduling barrier: closes the current logical round
};

/** Human-readable mnemonic, matching the assembly syntax. */
const char *gateName(GateKind kind);

/** Number of qubit operands a gate kind takes. */
int gateArity(GateKind kind);

/**
 * True when a gate is classical reversible logic (X/Cnot/Swap/Toffoli)
 * and can be executed by the bit-vector simulator.
 */
bool isClassicalGate(GateKind kind);

/** One logical instruction: a gate applied to 1-3 qubit operands. */
struct Instruction
{
    GateKind kind{GateKind::X};
    std::array<QubitId, 3> ops{};
    std::uint8_t arity = 0;
    /** Gate parameter (rotation index k for Cphase, else 0). */
    std::int32_t param = 0;

    /** The operands actually used. */
    std::span<const QubitId>
    operands() const
    {
        return {ops.data(), arity};
    }

    /** Mnemonic plus operands, e.g. "toffoli q1 q2 q7". */
    std::string toString() const;

    /** Factory helpers. */
    static Instruction makeOne(GateKind kind, QubitId a);
    static Instruction makeTwo(GateKind kind, QubitId a, QubitId b,
                               std::int32_t param = 0);
    static Instruction makeThree(GateKind kind, QubitId a, QubitId b,
                                 QubitId c);
    static Instruction makeBarrier();
};

} // namespace circuit
} // namespace qmh

#endif // QMH_CIRCUIT_INSTRUCTION_HH
