#include "dag.hh"

#include <algorithm>
#include <span>

#include "common/logging.hh"

namespace qmh {
namespace circuit {

DependencyGraph::DependencyGraph(const Program &program)
{
    const auto &insts = program.instructions();
    const std::size_t m = insts.size();
    _preds.resize(m);
    _succs.resize(m);
    _in_degree.assign(m, 0);
    _asap.assign(m, 0);

    // last_writer[q] = most recent instruction touching qubit q.
    std::vector<std::int64_t> last_writer(
        static_cast<std::size_t>(program.qubitCount()), -1);

    for (std::size_t i = 0; i < m; ++i) {
        if (insts[i].kind == GateKind::Barrier) {
            // A barrier synchronizes against every qubit: depend on
            // the distinct set of last touchers and become the last
            // toucher of everything.
            std::vector<std::uint32_t> preds;
            for (auto &last : last_writer) {
                if (last >= 0)
                    preds.push_back(static_cast<std::uint32_t>(last));
                last = static_cast<std::int64_t>(i);
            }
            std::sort(preds.begin(), preds.end());
            preds.erase(std::unique(preds.begin(), preds.end()),
                        preds.end());
            for (const auto p : preds) {
                _preds[i].push_back(p);
                _succs[p].push_back(static_cast<std::uint32_t>(i));
                ++_in_degree[i];
            }
            continue;
        }
        for (const auto &q : insts[i].operands()) {
            const auto prev = last_writer[q.value()];
            if (prev >= 0) {
                const auto p = static_cast<std::uint32_t>(prev);
                // Avoid duplicate edges when two operands share the
                // same predecessor.
                if (std::find(_preds[i].begin(), _preds[i].end(), p) ==
                    _preds[i].end()) {
                    _preds[i].push_back(p);
                    _succs[p].push_back(static_cast<std::uint32_t>(i));
                    ++_in_degree[i];
                }
            }
            last_writer[q.value()] = static_cast<std::int64_t>(i);
        }
    }

    // ASAP levels: instructions are already in a valid topological
    // order (program order), so one forward pass suffices.
    for (std::size_t i = 0; i < m; ++i) {
        std::uint32_t level = 0;
        for (const auto p : _preds[i])
            level = std::max(level, _asap[p] + 1);
        _asap[i] = level;
        _depth = std::max(_depth, level + 1);
    }
}

std::vector<std::uint32_t>
DependencyGraph::parallelismProfile() const
{
    std::vector<std::uint32_t> profile(_depth, 0);
    for (const auto level : _asap)
        ++profile[level];
    return profile;
}

std::uint32_t
DependencyGraph::maxParallelism() const
{
    std::uint32_t best = 0;
    for (const auto count : parallelismProfile())
        best = std::max(best, count);
    return best;
}

} // namespace circuit
} // namespace qmh
