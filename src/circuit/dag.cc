#include "dag.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace qmh {
namespace circuit {

DependencyGraph::DependencyGraph(const Program &program)
{
    const auto &insts = program.instructions();
    const std::size_t m = insts.size();
    _in_degree.assign(m, 0);
    _asap.assign(m, 0);

    // One flat (pred, succ) edge list in discovery order, converted
    // to CSR in a second pass — predecessor edges of instruction i
    // are contiguous, successor edges are gathered by a stable
    // counting sort, and the whole build does a handful of
    // allocations however many gates the program has.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(2 * m);

    // last_writer[q] = most recent instruction touching qubit q.
    std::vector<std::int64_t> last_writer(
        static_cast<std::size_t>(program.qubitCount()), -1);
    std::vector<std::uint32_t> barrier_preds;

    for (std::size_t i = 0; i < m; ++i) {
        if (insts[i].kind == GateKind::Barrier) {
            // A barrier synchronizes against every qubit: depend on
            // the distinct set of last touchers and become the last
            // toucher of everything.
            barrier_preds.clear();
            for (auto &last : last_writer) {
                if (last >= 0)
                    barrier_preds.push_back(
                        static_cast<std::uint32_t>(last));
                last = static_cast<std::int64_t>(i);
            }
            std::sort(barrier_preds.begin(), barrier_preds.end());
            barrier_preds.erase(std::unique(barrier_preds.begin(),
                                            barrier_preds.end()),
                                barrier_preds.end());
            for (const auto p : barrier_preds) {
                edges.emplace_back(p, static_cast<std::uint32_t>(i));
                ++_in_degree[i];
            }
            continue;
        }
        const auto first_edge = edges.size();
        for (const auto &q : insts[i].operands()) {
            const auto prev = last_writer[q.value()];
            if (prev >= 0) {
                const auto p = static_cast<std::uint32_t>(prev);
                // Avoid duplicate edges when two operands share the
                // same predecessor (operand counts are tiny, so the
                // linear scan is over at most a couple of entries).
                bool duplicate = false;
                for (auto e = first_edge; e < edges.size(); ++e)
                    duplicate |= edges[e].first == p;
                if (!duplicate) {
                    edges.emplace_back(p,
                                       static_cast<std::uint32_t>(i));
                    ++_in_degree[i];
                }
            }
            last_writer[q.value()] = static_cast<std::int64_t>(i);
        }
    }

    // Predecessor CSR: edges were appended in ascending-instruction
    // order, so each instruction's predecessors are already one
    // contiguous run.
    _pred_offset.assign(m + 1, 0);
    for (std::size_t i = 0; i < m; ++i)
        _pred_offset[i + 1] =
            _pred_offset[i] + static_cast<std::uint32_t>(_in_degree[i]);
    _pred_edges.resize(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e)
        _pred_edges[e] = edges[e].first;

    // Successor CSR: stable counting sort by source keeps each
    // node's successors in discovery (ascending) order.
    _succ_offset.assign(m + 1, 0);
    for (const auto &edge : edges)
        ++_succ_offset[edge.first + 1];
    for (std::size_t i = 0; i < m; ++i)
        _succ_offset[i + 1] += _succ_offset[i];
    _succ_edges.resize(edges.size());
    std::vector<std::uint32_t> cursor(_succ_offset.begin(),
                                      _succ_offset.end() - 1);
    for (const auto &edge : edges)
        _succ_edges[cursor[edge.first]++] = edge.second;

    // ASAP levels: instructions are already in a valid topological
    // order (program order), so one forward pass suffices.
    for (std::size_t i = 0; i < m; ++i) {
        std::uint32_t level = 0;
        for (const auto p : predecessors(i))
            level = std::max(level, _asap[p] + 1);
        _asap[i] = level;
        _depth = std::max(_depth, level + 1);
    }
}

std::vector<std::uint32_t>
DependencyGraph::parallelismProfile() const
{
    std::vector<std::uint32_t> profile(_depth, 0);
    for (const auto level : _asap)
        ++profile[level];
    return profile;
}

std::uint32_t
DependencyGraph::maxParallelism() const
{
    std::uint32_t best = 0;
    for (const auto count : parallelismProfile())
        best = std::max(best, count);
    return best;
}

} // namespace circuit
} // namespace qmh
