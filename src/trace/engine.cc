#include "engine.hh"

#include <algorithm>
#include <functional>
#include <vector>

#include "cache/cache_sim.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "net/transfer.hh"
#include "sim/banked_memory.hh"
#include "sim/event_queue.hh"
#include "sim/transfer_channels.hh"

namespace qmh {
namespace trace {

TraceResult
runTrace(const circuit::Workload &workload, const TraceConfig &config,
         const iontrap::Params &params)
{
    const auto &program = workload.program;
    if (config.capacity == 0)
        qmh_fatal("trace: cache capacity must be nonzero");
    if (config.transfers == 0)
        qmh_fatal("trace: need at least one transfer channel");
    if (!workload.cacheable.empty() &&
        workload.cacheable.size() !=
            static_cast<std::size_t>(program.qubitCount()))
        qmh_fatal("trace: cacheable mask size ",
                  workload.cacheable.size(), " != qubit count ",
                  program.qubitCount());

    const auto m = static_cast<std::uint32_t>(program.size());
    TraceResult result;
    result.instructions = m;

    const circuit::DependencyGraph dag(program);
    const auto code = ecc::Code::byKind(config.code);

    // Flat baseline: the identical issue policy with every qubit at
    // level 2 — no cache, no transfers, only the slower step time.
    const auto flat =
        sched::listSchedule(program, dag, config.latency, config.blocks);
    result.baseline_s = static_cast<double>(flat.makespan) *
                        code.gateStepTime(2, params);
    if (m == 0)
        return result;

    // Tick-resolution costs. Per-step rounding keeps every gate's
    // duration an exact multiple of one step.
    const Tick step1 =
        units::secondsToTicks(code.gateStepTime(1, params));
    const net::TransferNetwork net(params);
    const Tick per_transfer = units::secondsToTicks(
        net.transferTime({config.code, 2}, {config.code, 1}) *
        code.transferChannelCost());

    sim::EventQueue eq;
    sim::TransferChannels channels(eq, config.transfers);
    sim::BankedMemoryConfig mem_config;
    mem_config.banks = config.mem_banks;
    mem_config.ports = config.mem_ports;
    mem_config.buffer = config.mem_buffer;
    // The bank holds the line for the transfer latency before the
    // wire takes over (never zero: the component charges real time).
    mem_config.cycles_per_request = std::max<Tick>(1, per_transfer);
    mem_config.cycles_per_line = config.cycles_per_line;
    sim::BankedMemory memory(eq, "l2-memory", mem_config);
    cache::CacheState cache(config.capacity, workload.cacheable);
    sched::IncrementalScheduler scheduler(program, dag, config.latency,
                                          config.blocks);

    std::vector<Tick> start(m, 0);
    std::vector<Tick> duration(m, 0);
    // Transfers still outstanding before a claimed gate may compute.
    std::vector<std::uint32_t> waiting(m, 0);
    std::uint64_t writebacks = 0;

    std::function<void()> pump;

    auto begin_compute = [&](const sched::IssueClaim claimed) {
        start[claimed.index] = eq.now();
        duration[claimed.index] =
            static_cast<Tick>(claimed.latency) * step1;
        eq.scheduleAfter(duration[claimed.index], [&, claimed]() {
            scheduler.complete(claimed);
            pump();
        });
    };

    pump = [&]() {
        while (const auto claimed = scheduler.claim()) {
            const auto &inst = program[claimed->index];
            // Residency first: the missing set is what this issue
            // pulls through the memory banks and the transfer
            // network. access() then counts hits/misses and brings
            // the missing qubits in, so a later gate touching an
            // in-flight qubit hits (the fetch is already on the wire
            // — MSHR-style merging).
            const auto missing = cache.missingOperands(inst);
            const auto evicted = cache.access(inst);
            // Evicted qubits write back through their owning bank:
            // fire-and-forget traffic that still occupies bank time
            // and competes with fills for ports and buffer slots.
            for (const auto victim : evicted) {
                ++writebacks;
                memory.request(victim.value(), 1, {});
            }
            if (missing.empty()) {
                begin_compute(*claimed);
                continue;
            }
            waiting[claimed->index] =
                static_cast<std::uint32_t>(missing.size());
            for (const auto qubit : missing) {
                // Fill: the owning bank serves the line, then the
                // wire carries it to level 1.
                memory.request(qubit.value(), 1,
                               [&, claimed = *claimed]() {
                    channels.transfer(
                        per_transfer, per_transfer,
                        [&, claimed]() {
                            if (--waiting[claimed.index] == 0)
                                begin_compute(claimed);
                        });
                });
            }
        }
    };

    eq.schedule(0, pump);
    eq.run();

    if (!scheduler.finished())
        qmh_panic("trace deadlock: ",
                  scheduler.totalCount() - scheduler.claimedCount(),
                  " instructions never issued (cyclic DAG?)");

    const Tick makespan = eq.now();
    result.makespan_s = units::ticksToSeconds(makespan);
    result.speedup = result.makespan_s > 0.0
                         ? result.baseline_s / result.makespan_s
                         : 0.0;

    result.accesses = cache.accesses();
    result.hits = cache.hits();
    result.misses = cache.misses();
    result.evictions = cache.evictions();
    result.hit_rate = result.accesses
                          ? static_cast<double>(result.hits) /
                                static_cast<double>(result.accesses)
                          : 0.0;

    result.transfer_utilization = channels.utilization(makespan);

    result.mem_requests = memory.requests();
    result.writebacks = writebacks;
    result.bank_conflicts = memory.bankConflicts();
    result.mem_stall_ticks = memory.stallTicks();
    result.mem_peak_queue = memory.peakQueue();
    result.mem_mean_queue = memory.meanQueue(makespan);
    result.mem_utilization = memory.utilization(makespan);

    result.blocks_used = scheduler.blocksUsed();

    Tick busy = 0;
    for (const auto d : duration)
        busy += d;
    const double block_capacity =
        static_cast<double>(makespan) *
        static_cast<double>(result.blocks_used);
    result.block_utilization =
        block_capacity > 0.0 ? static_cast<double>(busy) / block_capacity
                             : 0.0;
    result.mean_in_flight =
        makespan > 0 ? static_cast<double>(busy) /
                           static_cast<double>(makespan)
                     : 0.0;
    for (const auto &segment :
         sched::buildProfileSegments(start, duration, makespan))
        result.peak_in_flight =
            std::max(result.peak_in_flight, segment.in_flight);

    result.events_executed = eq.executed();
    return result;
}

} // namespace trace
} // namespace qmh
