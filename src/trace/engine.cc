#include "engine.hh"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache_sim.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "net/transfer.hh"
#include "sim/banked_memory.hh"
#include "sim/event_queue.hh"
#include "sim/transfer_channels.hh"

namespace qmh {
namespace trace {

namespace {

/**
 * Memo for the flat-baseline makespan. A design-space sweep runs the
 * same workload at many channel/capacity points, and the no-cache
 * baseline schedule depends only on (instruction stream, latency
 * model, block count) — for the 24-point trace grid that is 2
 * distinct schedules computed 24 times. Keys are the exact serialized
 * inputs (not a hash), so a hit is byte-for-byte the same computation
 * and every result row stays bit-identical with the memo disabled.
 * Thread-safe: sweeps fan runTrace() out across worker threads. The
 * store is bounded; eviction clears it wholesale, which at most costs
 * a recompute.
 */
class FlatBaselineMemo
{
  public:
    std::uint64_t
    makespan(const circuit::Program &program,
             const circuit::DependencyGraph &dag,
             const sched::LatencyModel &latency, unsigned blocks)
    {
        std::string key = serialize(program, latency, blocks);
        {
            std::lock_guard<std::mutex> lock(_mutex);
            for (const auto &entry : _entries)
                if (entry.first == key)
                    return entry.second;
        }
        // Compute outside the lock; a racing duplicate insert is
        // benign (identical value, bounded store).
        const auto flat =
            sched::listSchedule(program, dag, latency, blocks);
        std::lock_guard<std::mutex> lock(_mutex);
        if (_entries.size() >= max_entries)
            _entries.clear();
        _entries.emplace_back(std::move(key), flat.makespan);
        return flat.makespan;
    }

  private:
    static constexpr std::size_t max_entries = 32;

    static std::string
    serialize(const circuit::Program &program,
              const sched::LatencyModel &latency, unsigned blocks)
    {
        std::string key;
        key.reserve(16 + 16 * program.size());
        appendBits(key, blocks);
        appendBits(key, latency.single);
        appendBits(key, latency.cnot);
        appendBits(key, latency.cphase);
        appendBits(key, latency.swap);
        appendBits(key, latency.toffoli);
        for (const auto &inst : program.instructions()) {
            key.push_back(static_cast<char>(inst.kind));
            key.push_back(static_cast<char>(inst.arity));
            for (const auto q : inst.operands())
                appendBits(key, q.value());
            appendBits(key, inst.param);
        }
        return key;
    }

    template <typename T>
    static void
    appendBits(std::string &key, T value)
    {
        char bytes[sizeof(T)];
        std::memcpy(bytes, &value, sizeof(T));
        key.append(bytes, sizeof(T));
    }

    std::mutex _mutex;
    std::vector<std::pair<std::string, std::uint64_t>> _entries;
};

FlatBaselineMemo flat_baseline_memo;

/**
 * Per-run issue pipeline state. Bundling it behind one pointer keeps
 * every simulation callback down to {context, claim} — 20 bytes, well
 * inside the inline closure budgets of the event arena and the
 * component ports — and lets the per-gate scratch vectors (missing
 * operands, eviction victims, the claimed front) reuse their capacity
 * across all gates of the run.
 */
struct EngineCtx
{
    const circuit::Program &program;
    sim::EventQueue &eq;
    sim::TransferChannels &channels;
    sim::BankedMemory &memory;
    cache::CacheState &cache;
    sched::IncrementalScheduler &scheduler;
    Tick step1;
    Tick per_transfer;

    std::vector<Tick> start;
    std::vector<Tick> duration;
    // Transfers still outstanding before a claimed gate may compute.
    std::vector<std::uint32_t> waiting;
    std::uint64_t writebacks = 0;

    // Compute begin/end instants in event-execution order (each
    // stream is non-decreasing because simulated time only moves
    // forward), recorded for the peak-concurrency merge below —
    // zero-duration gates occupy no block time and are skipped.
    std::vector<Tick> begin_times;
    std::vector<Tick> end_times;

    // Reused per-gate scratch.
    std::vector<sched::IssueClaim> front;
    std::vector<circuit::QubitId> missing;
    std::vector<circuit::QubitId> evicted;

    void
    beginCompute(const sched::IssueClaim &claimed)
    {
        start[claimed.index] = eq.now();
        duration[claimed.index] =
            static_cast<Tick>(claimed.latency) * step1;
        if (duration[claimed.index] > 0)
            begin_times.push_back(eq.now());
        eq.scheduleAfter(duration[claimed.index], [this, claimed] {
            if (duration[claimed.index] > 0)
                end_times.push_back(eq.now());
            scheduler.complete(claimed);
            pump();
        });
    }

    /**
     * Peak concurrently-computing gates: one merge over the two
     * sorted time streams, retiring ends before starts at the same
     * instant — the same tie order (and therefore the same value) as
     * delta-counting a fully sorted event list, without the sort.
     */
    std::uint32_t
    peakInFlight() const
    {
        std::uint32_t peak = 0;
        std::uint32_t current = 0;
        std::size_t b = 0;
        std::size_t e = 0;
        while (b < begin_times.size()) {
            const Tick t = e < end_times.size() &&
                                   end_times[e] <= begin_times[b]
                               ? end_times[e]
                               : begin_times[b];
            while (e < end_times.size() && end_times[e] == t) {
                --current;
                ++e;
            }
            while (b < begin_times.size() && begin_times[b] == t) {
                ++current;
                ++b;
            }
            peak = std::max(peak, current);
        }
        return peak;
    }

    void
    issue(const sched::IssueClaim &claimed)
    {
        const auto &inst = program[claimed.index];
        // Residency first: the missing set is what this issue pulls
        // through the memory banks and the transfer network.
        // access() then counts hits/misses and brings the missing
        // qubits in, so a later gate touching an in-flight qubit hits
        // (the fetch is already on the wire — MSHR-style merging).
        cache.missingOperandsInto(inst, missing);
        cache.accessInto(inst, evicted);
        // Evicted qubits write back through their owning bank:
        // fire-and-forget traffic that still occupies bank time and
        // competes with fills for ports and buffer slots.
        for (const auto victim : evicted) {
            ++writebacks;
            memory.request(victim.value(), 1, {});
        }
        if (missing.empty()) {
            beginCompute(claimed);
            return;
        }
        waiting[claimed.index] =
            static_cast<std::uint32_t>(missing.size());
        for (const auto qubit : missing) {
            // Fill: the owning bank serves the line, then the wire
            // carries it to level 1.
            memory.request(qubit.value(), 1, [this, claimed] {
                channels.transfer(
                    per_transfer, per_transfer, [this, claimed] {
                        if (--waiting[claimed.index] == 0)
                            beginCompute(claimed);
                    });
            });
        }
    }

    void
    pump()
    {
        // Batch-claim the whole ready front, then issue the claims
        // one at a time in claim order — the same decision sequence
        // (and therefore the same event order) as claiming one gate
        // per pop, without re-entering the scheduler per gate.
        front.clear();
        scheduler.claimBatch(front);
        for (const auto &claimed : front)
            issue(claimed);
    }
};

} // namespace

TraceResult
runTrace(const circuit::Workload &workload, const TraceConfig &config,
         const iontrap::Params &params)
{
    const auto &program = workload.program;
    if (config.capacity == 0)
        qmh_fatal("trace: cache capacity must be nonzero");
    if (config.transfers == 0)
        qmh_fatal("trace: need at least one transfer channel");
    if (!workload.cacheable.empty() &&
        workload.cacheable.size() !=
            static_cast<std::size_t>(program.qubitCount()))
        qmh_fatal("trace: cacheable mask size ",
                  workload.cacheable.size(), " != qubit count ",
                  program.qubitCount());

    const auto m = static_cast<std::uint32_t>(program.size());
    TraceResult result;
    result.instructions = m;

    const circuit::DependencyGraph dag(program);
    const auto code = ecc::Code::byKind(config.code);

    // Flat baseline: the identical issue policy with every qubit at
    // level 2 — no cache, no transfers, only the slower step time.
    // Memoized: within a sweep every point over the same workload and
    // block count shares this schedule.
    const auto flat_makespan = flat_baseline_memo.makespan(
        program, dag, config.latency, config.blocks);
    result.baseline_s = static_cast<double>(flat_makespan) *
                        code.gateStepTime(2, params);
    if (m == 0)
        return result;

    // Tick-resolution costs. Per-step rounding keeps every gate's
    // duration an exact multiple of one step.
    const Tick step1 =
        units::secondsToTicks(code.gateStepTime(1, params));
    const net::TransferNetwork net(params);
    const Tick per_transfer = units::secondsToTicks(
        net.transferTime({config.code, 2}, {config.code, 1}) *
        code.transferChannelCost());

    sim::EventQueue eq;
    sim::TransferChannels channels(eq, config.transfers);
    sim::BankedMemoryConfig mem_config;
    mem_config.banks = config.mem_banks;
    mem_config.ports = config.mem_ports;
    mem_config.buffer = config.mem_buffer;
    // The bank holds the line for the transfer latency before the
    // wire takes over (never zero: the component charges real time).
    mem_config.cycles_per_request = std::max<Tick>(1, per_transfer);
    mem_config.cycles_per_line = config.cycles_per_line;
    sim::BankedMemory memory(eq, "l2-memory", mem_config);
    cache::CacheState cache(config.capacity, workload.cacheable);
    sched::IncrementalScheduler scheduler(program, dag, config.latency,
                                          config.blocks);

    EngineCtx ctx{program,  eq,    channels, memory,
                  cache,    scheduler, step1, per_transfer,
                  std::vector<Tick>(m, 0), std::vector<Tick>(m, 0),
                  std::vector<std::uint32_t>(m, 0),
                  0,        {},    {},       {},     {},  {}};
    ctx.begin_times.reserve(m);
    ctx.end_times.reserve(m);

    eq.schedule(0, [&ctx] { ctx.pump(); });
    eq.run();

    if (!scheduler.finished())
        qmh_panic("trace deadlock: ",
                  scheduler.totalCount() - scheduler.claimedCount(),
                  " instructions never issued (cyclic DAG?)");

    const Tick makespan = eq.now();
    result.makespan_s = units::ticksToSeconds(makespan);
    result.speedup = result.makespan_s > 0.0
                         ? result.baseline_s / result.makespan_s
                         : 0.0;

    result.accesses = cache.accesses();
    result.hits = cache.hits();
    result.misses = cache.misses();
    result.evictions = cache.evictions();
    result.hit_rate = result.accesses
                          ? static_cast<double>(result.hits) /
                                static_cast<double>(result.accesses)
                          : 0.0;

    result.transfer_utilization = channels.utilization(makespan);

    result.mem_requests = memory.requests();
    result.writebacks = ctx.writebacks;
    result.bank_conflicts = memory.bankConflicts();
    result.mem_stall_ticks = memory.stallTicks();
    result.mem_peak_queue = memory.peakQueue();
    result.mem_mean_queue = memory.meanQueue(makespan);
    result.mem_utilization = memory.utilization(makespan);

    result.blocks_used = scheduler.blocksUsed();

    Tick busy = 0;
    for (const auto d : ctx.duration)
        busy += d;
    const double block_capacity =
        static_cast<double>(makespan) *
        static_cast<double>(result.blocks_used);
    result.block_utilization =
        block_capacity > 0.0 ? static_cast<double>(busy) / block_capacity
                             : 0.0;
    result.mean_in_flight =
        makespan > 0 ? static_cast<double>(busy) /
                           static_cast<double>(makespan)
                     : 0.0;
    result.peak_in_flight = ctx.peakInFlight();

    result.events_executed = eq.executed();
    return result;
}

} // namespace trace
} // namespace qmh
