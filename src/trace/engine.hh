/**
 * @file
 * Trace-driven memory-hierarchy engine: one event-driven pipeline
 * from circuit to cache to transfer network.
 *
 * Where cqla::runHierarchySim models an *abstract* stream of whole
 * additions (the paper's Table-5 granularity), this engine executes a
 * real logical circuit instruction by instruction through the full
 * hierarchy:
 *
 *  - the list scheduler's issue policy (sched::IncrementalScheduler,
 *    critical-path priority) maps ready instructions onto B level-1
 *    compute blocks;
 *  - every issued instruction's cacheable operands are looked up in
 *    the level-1 qubit cache (cache::CacheState, LRU); hits proceed,
 *    misses are served by the banked level-2 memory
 *    (sim::BankedMemory — the qubit hashes to a bank, bounded
 *    per-bank buffers, a shared port issue-width, deterministic FIFO
 *    arbitration) and then pull the qubit through the counted
 *    code-transfer channels (sim::TransferChannels — the same
 *    resource the abstract model charges) at the Table-3 transfer
 *    latency of the configured code. Qubits evicted by a fill write
 *    back through the same banks as fire-and-forget traffic;
 *  - once all operands are resident the gate computes for its
 *    gate-step latency at the level-1 step time, then releases its
 *    block and readies its dependents.
 *
 * The flat baseline is the same schedule with every qubit held at
 * level 2 (no cache, no transfers) at the level-2 step time — the QLA
 * sea-of-qubits execution the paper compares against. One run yields
 * makespan, speedup over that baseline, hit rate, transfer-channel
 * utilization and the gates-in-flight profile (peak and mean — the
 * Fig. 2 parallelism measure at tick resolution).
 *
 * Everything is deterministic: no randomness, one private EventQueue
 * per run, so identical inputs give bit-identical results on any
 * thread of a sweep.
 */

#ifndef QMH_TRACE_ENGINE_HH
#define QMH_TRACE_ENGINE_HH

#include <cstdint>

#include "circuit/workload.hh"
#include "common/units.hh"
#include "ecc/code.hh"
#include "iontrap/params.hh"
#include "sched/latency.hh"
#include "sched/scheduler.hh"

namespace qmh {
namespace trace {

/** Configuration of one trace run. */
struct TraceConfig
{
    ecc::CodeKind code = ecc::CodeKind::Steane713;
    /** Level-1 compute blocks (sched::unlimited_blocks = no cap). */
    unsigned blocks = 49;
    /** Parallel code-transfer channels. */
    unsigned transfers = 10;
    /** Level-1 cache capacity in logical qubits. */
    std::size_t capacity = 64;
    /** Level-2 memory banks (a qubit's fill hashes to id % banks). */
    unsigned mem_banks = 8;
    /** Concurrent memory requests in service across all banks. */
    unsigned mem_ports = 4;
    /** Bounded request-buffer depth per bank (backpressure beyond). */
    std::size_t mem_buffer = 8;
    /** Extra bank service ticks per line transferred. */
    Tick cycles_per_line = 0;
    /** Per-gate-kind latencies in gate-steps. */
    sched::LatencyModel latency{};
};

/** Measured outcomes of one trace run. */
struct TraceResult
{
    double makespan_s = 0.0;
    /** Flat level-2 execution of the same schedule (no transfers). */
    double baseline_s = 0.0;
    /** baseline / makespan; 0 on an empty program. */
    double speedup = 0.0;

    std::uint64_t instructions = 0;

    // Cache residency (cacheable operand touches).
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    double hit_rate = 0.0;

    // Transfer network (one transfer per miss).
    double transfer_utilization = 0.0;

    // Banked level-2 memory (fills + writebacks; engine.cc header
    // comment explains the fill path).
    std::uint64_t mem_requests = 0;   ///< bank requests submitted
    std::uint64_t writebacks = 0;     ///< eviction writebacks among them
    /** Requests whose bank-service start was delayed by contention.
     * Structurally zero on an uncontended run. */
    std::uint64_t bank_conflicts = 0;
    Tick mem_stall_ticks = 0;         ///< total bank-queue waiting time
    std::size_t mem_peak_queue = 0;   ///< deepest single-bank queue
    double mem_mean_queue = 0.0;      ///< time-weighted mean queued
    double mem_utilization = 0.0;     ///< busy fraction of bank capacity

    // Compute blocks.
    unsigned blocks_used = 0;
    /** Compute-busy fraction of block-time: busy / (blocks * makespan). */
    double block_utilization = 0.0;
    /** Peak gates computing concurrently (Fig. 2 at tick resolution). */
    std::uint32_t peak_in_flight = 0;
    /** Time-weighted mean gates in flight. */
    double mean_in_flight = 0.0;

    std::uint64_t events_executed = 0;
};

/**
 * Execute @p workload through the hierarchy under @p config /
 * @p params. The workload's cacheable mask (empty = everything
 * cacheable) decides which qubits cross the memory hierarchy; its
 * program may come from any registered generator or a parsed
 * text-format circuit — the engine only sees the instruction DAG.
 * Panics on a malformed workload (mask size mismatch, zero capacity
 * or channels); validate specs at the api layer for recoverable
 * diagnostics.
 */
TraceResult runTrace(const circuit::Workload &workload,
                     const TraceConfig &config,
                     const iontrap::Params &params);

} // namespace trace
} // namespace qmh

#endif // QMH_TRACE_ENGINE_HH
