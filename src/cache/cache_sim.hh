/**
 * @file
 * Quantum cache simulator (paper Section 5.2, Fig. 7).
 *
 * The cache holds logical qubits at level-1 encoding next to the
 * level-1 compute region; memory holds them at level 2. An instruction
 * can only execute when its operands are cached; a miss costs a
 * code-transfer from memory. Replacement is least-recently-used.
 *
 * The residency state (LRU cache + cacheability mask + hit/miss
 * counters) lives in CacheState, steppable one instruction at a time,
 * so external engines — the trace engine's event-driven pipeline
 * (trace/engine.hh) in particular — can drive residency from their
 * own issue loop. simulateCache() keeps the whole-program driver with
 * its two fetch policies on top of that state:
 *
 *  - InOrder: issue the instruction stream as written (the paper
 *    measures ~20% hit rate on the Draper adder);
 *  - OptimizedLookahead: with static scheduling the fetch window is
 *    the whole program, so the simulator builds the dependency list
 *    and greedily issues the ready instruction with the most operands
 *    already cached (~85% in the paper, roughly independent of adder
 *    and cache size).
 */

#ifndef QMH_CACHE_CACHE_SIM_HH
#define QMH_CACHE_CACHE_SIM_HH

#include <cstdint>
#include <vector>

#include "circuit/dag.hh"
#include "circuit/program.hh"

namespace qmh {
namespace cache {

/** Instruction selection policy. */
enum class FetchPolicy {
    InOrder,
    OptimizedLookahead
};

/** Human-readable policy name. */
const char *fetchPolicyName(FetchPolicy policy);

/** Fully-associative LRU cache of logical qubits. */
class QubitCache
{
  public:
    explicit QubitCache(std::size_t capacity);

    /**
     * Access @p qubit: returns true on hit. On miss the qubit is
     * brought in, evicting the least-recently-used entry if full.
     * When @p evicted is non-null the victim (if any) is appended to
     * it, so engines can charge writeback traffic for what falls out.
     */
    bool touch(circuit::QubitId qubit,
               std::vector<circuit::QubitId> *evicted = nullptr);

    /** Non-mutating lookup. */
    bool contains(circuit::QubitId qubit) const;

    std::size_t capacity() const { return _capacity; }
    std::size_t size() const { return _nodes.size(); }
    std::uint64_t evictions() const { return _evictions; }

    /**
     * Resident qubits in recency order, most recent first. Read from
     * the LRU list — a deterministic function of the access history —
     * never from the unordered index, so persisting or printing the
     * residency set cannot leak hash-map layout.
     */
    std::vector<circuit::QubitId> residents() const;

  private:
    static constexpr std::uint32_t npos = ~0u;

    /** One resident qubit threaded into the recency list. */
    struct Node {
        circuit::QubitId qubit;
        std::uint32_t prev;
        std::uint32_t next;
    };

    void unlink(std::uint32_t n);
    void linkFront(std::uint32_t n);

    std::size_t _capacity;
    // Flat intrusive LRU: prev/next indices threaded through one node
    // array (MRU at _head), with a dense qubit-id -> node index map.
    // touch() is O(1) with zero allocation once the id map is sized;
    // eviction reuses the victim's node slot in place.
    std::vector<Node> _nodes;
    std::vector<std::uint32_t> _where;
    std::uint32_t _head = npos;
    std::uint32_t _tail = npos;
    std::uint64_t _evictions = 0;
};

/**
 * Steppable cache residency: the LRU cache, the per-qubit
 * cacheability mask and the access counters, decoupled from any
 * instruction-selection loop. Callers decide which instruction issues
 * next (a fetch policy, or the trace engine's list scheduler) and
 * step the state with access().
 */
class CacheState
{
  public:
    /**
     * @param capacity cached logical qubits (must be nonzero)
     * @param cacheable per-qubit mask: qubits outside the mask are
     *        compute-block-local scratch that never crosses the
     *        memory hierarchy; empty means every qubit is cacheable
     */
    CacheState(std::size_t capacity, std::vector<bool> cacheable);

    /** True when @p qubit participates in the memory hierarchy. */
    bool
    isCacheable(circuit::QubitId qubit) const
    {
        return _cacheable.empty() || _cacheable[qubit.value()];
    }

    /** True when @p qubit is cacheable and currently resident. */
    bool
    resident(circuit::QubitId qubit) const
    {
        return isCacheable(qubit) && _cache.contains(qubit);
    }

    /**
     * Cacheable operands of @p inst not currently resident — the
     * transfers an issue of @p inst would trigger. Non-mutating.
     */
    std::vector<circuit::QubitId>
    missingOperands(const circuit::Instruction &inst) const;

    /**
     * missingOperands() into a caller-owned scratch vector (cleared
     * first), so per-gate issue loops reuse capacity instead of
     * allocating a fresh vector per instruction.
     */
    void missingOperandsInto(const circuit::Instruction &inst,
                             std::vector<circuit::QubitId> &out) const;

    /**
     * Issue @p inst against the cache: touch every cacheable operand,
     * counting hits and misses; missing operands are brought in
     * (evicting LRU entries when full). Returns the qubits evicted by
     * this access, in eviction order — the writeback traffic the
     * issue generated. Callers that do not model writebacks may
     * ignore the return value.
     */
    std::vector<circuit::QubitId> access(const circuit::Instruction &inst);

    /** access() into a caller-owned scratch vector (cleared first). */
    void accessInto(const circuit::Instruction &inst,
                    std::vector<circuit::QubitId> &evicted);

    /** Reset the access counters, keeping residency (warm start). */
    void resetCounters();

    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    /** Cumulative evictions over the cache's whole lifetime. */
    std::uint64_t evictions() const { return _cache.evictions(); }

    const QubitCache &cache() const { return _cache; }

  private:
    QubitCache _cache;
    std::vector<bool> _cacheable;
    std::uint64_t _accesses = 0;
    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
};

/** Result of a cache simulation run. */
struct CacheSimResult
{
    std::uint64_t accesses = 0;   ///< operand touches
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    FetchPolicy policy{};
    std::size_t capacity = 0;

    /** Order in which instructions were issued. */
    std::vector<std::uint32_t> issue_order;

    double
    hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * Run the cache simulation of @p program with a cache of
 * @p capacity logical qubits under @p policy.
 *
 * @param warm_start when true the program is run once beforehand to
 *        warm the cache (steady-state behaviour of repeated additions
 *        in modular exponentiation)
 * @param cacheable optional per-qubit mask: qubits outside the mask
 *        are compute-block-local scratch (Toffoli workspace, carry
 *        ancilla) that never crosses the memory hierarchy; empty means
 *        every qubit is cacheable
 */
CacheSimResult simulateCache(const circuit::Program &program,
                             std::size_t capacity, FetchPolicy policy,
                             bool warm_start = false,
                             const std::vector<bool> &cacheable = {});

} // namespace cache
} // namespace qmh

#endif // QMH_CACHE_CACHE_SIM_HH
