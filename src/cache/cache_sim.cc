#include "cache_sim.hh"

#include "common/logging.hh"

namespace qmh {
namespace cache {

const char *
fetchPolicyName(FetchPolicy policy)
{
    switch (policy) {
      case FetchPolicy::InOrder:
        return "in-order";
      case FetchPolicy::OptimizedLookahead:
        return "optimized";
    }
    qmh_panic("unknown FetchPolicy");
}

QubitCache::QubitCache(std::size_t capacity) : _capacity(capacity)
{
    if (capacity == 0)
        qmh_fatal("QubitCache: capacity must be nonzero");
}

bool
QubitCache::touch(circuit::QubitId qubit)
{
    const auto it = _entries.find(qubit);
    if (it != _entries.end()) {
        _lru.splice(_lru.begin(), _lru, it->second);
        return true;
    }
    if (_entries.size() >= _capacity) {
        const auto victim = _lru.back();
        _lru.pop_back();
        _entries.erase(victim);
        ++_evictions;
    }
    _lru.push_front(qubit);
    _entries[qubit] = _lru.begin();
    return false;
}

bool
QubitCache::contains(circuit::QubitId qubit) const
{
    return _entries.find(qubit) != _entries.end();
}

namespace {

/** Shared context: the cache plus the cacheability mask. */
struct SimContext
{
    QubitCache &cache;
    const std::vector<bool> &cacheable;

    bool
    isCacheable(circuit::QubitId q) const
    {
        return cacheable.empty() || cacheable[q.value()];
    }
};

/** Issue one instruction: touch cacheable operands, count hits. */
void
issue(const circuit::Instruction &inst, SimContext &ctx,
      CacheSimResult &result, std::uint32_t index)
{
    for (const auto &q : inst.operands()) {
        if (!ctx.isCacheable(q))
            continue;
        ++result.accesses;
        if (ctx.cache.touch(q))
            ++result.hits;
        else
            ++result.misses;
    }
    result.issue_order.push_back(index);
}

void
runInOrder(const circuit::Program &program, SimContext &ctx,
           CacheSimResult &result)
{
    const auto &insts = program.instructions();
    for (std::uint32_t i = 0; i < insts.size(); ++i)
        issue(insts[i], ctx, result, i);
}

void
runOptimized(const circuit::Program &program, SimContext &ctx,
             CacheSimResult &result)
{
    const auto &insts = program.instructions();
    const circuit::DependencyGraph dag(program);
    const auto m = static_cast<std::uint32_t>(insts.size());

    std::vector<int> remaining(m);
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < m; ++i) {
        remaining[i] = dag.inDegree(i);
        if (remaining[i] == 0)
            ready.push_back(i);
    }

    std::uint32_t issued = 0;
    while (issued < m) {
        if (ready.empty())
            qmh_panic("cache sim deadlock: ", m - issued,
                      " instructions blocked");
        // Greedy selection: most operands already cached; ties go to
        // the oldest instruction so progress matches program order.
        std::size_t best_pos = 0;
        int best_cached = -1;
        std::uint32_t best_index = 0;
        for (std::size_t pos = 0; pos < ready.size(); ++pos) {
            const auto idx = ready[pos];
            int cached = 0;
            int relevant = 0;
            for (const auto &q : insts[idx].operands()) {
                if (!ctx.isCacheable(q))
                    continue;
                ++relevant;
                cached += ctx.cache.contains(q) ? 1 : 0;
            }
            // Normalize by arity: an instruction with all cacheable
            // operands resident beats one with some missing.
            const int missing = relevant - cached;
            const int score = 1000 * (missing == 0) + cached * 10 -
                              missing;
            if (best_cached < 0 || score > best_cached ||
                (score == best_cached && idx < best_index)) {
                best_cached = score;
                best_pos = pos;
                best_index = idx;
            }
        }

        const auto idx = ready[best_pos];
        ready[best_pos] = ready.back();
        ready.pop_back();
        issue(insts[idx], ctx, result, idx);
        ++issued;
        for (const auto s : dag.successors(idx)) {
            if (--remaining[s] == 0)
                ready.push_back(s);
        }
    }
}

} // namespace

CacheSimResult
simulateCache(const circuit::Program &program, std::size_t capacity,
              FetchPolicy policy, bool warm_start,
              const std::vector<bool> &cacheable)
{
    if (!cacheable.empty() &&
        cacheable.size() != static_cast<std::size_t>(program.qubitCount()))
        qmh_fatal("simulateCache: cacheable mask size ", cacheable.size(),
                  " != qubit count ", program.qubitCount());
    QubitCache cache(capacity);
    SimContext ctx{cache, cacheable};
    CacheSimResult result;
    result.policy = policy;
    result.capacity = capacity;

    for (int pass = warm_start ? 0 : 1; pass < 2; ++pass) {
        result.accesses = 0;
        result.hits = 0;
        result.misses = 0;
        result.issue_order.clear();
        if (policy == FetchPolicy::InOrder)
            runInOrder(program, ctx, result);
        else
            runOptimized(program, ctx, result);
    }
    result.evictions = cache.evictions();
    return result;
}

} // namespace cache
} // namespace qmh
