#include "cache_sim.hh"

#include "common/logging.hh"

namespace qmh {
namespace cache {

const char *
fetchPolicyName(FetchPolicy policy)
{
    switch (policy) {
      case FetchPolicy::InOrder:
        return "in-order";
      case FetchPolicy::OptimizedLookahead:
        return "optimized";
    }
    qmh_panic("unknown FetchPolicy");
}

QubitCache::QubitCache(std::size_t capacity) : _capacity(capacity)
{
    if (capacity == 0)
        qmh_fatal("QubitCache: capacity must be nonzero");
}

void
QubitCache::unlink(std::uint32_t n)
{
    const auto &node = _nodes[n];
    if (node.prev != npos)
        _nodes[node.prev].next = node.next;
    else
        _head = node.next;
    if (node.next != npos)
        _nodes[node.next].prev = node.prev;
    else
        _tail = node.prev;
}

void
QubitCache::linkFront(std::uint32_t n)
{
    auto &node = _nodes[n];
    node.prev = npos;
    node.next = _head;
    if (_head != npos)
        _nodes[_head].prev = n;
    else
        _tail = n;
    _head = n;
}

bool
QubitCache::touch(circuit::QubitId qubit,
                  std::vector<circuit::QubitId> *evicted)
{
    const auto id = qubit.value();
    if (id >= _where.size())
        _where.resize(id + 1, npos);
    auto n = _where[id];
    if (n != npos) {
        if (_head != n) {
            unlink(n);
            linkFront(n);
        }
        return true;
    }
    if (_nodes.size() >= _capacity) {
        // Evict the LRU entry and reuse its node slot in place.
        n = _tail;
        const auto victim = _nodes[n].qubit;
        _where[victim.value()] = npos;
        ++_evictions;
        if (evicted)
            evicted->push_back(victim);
        unlink(n);
        _nodes[n].qubit = qubit;
    } else {
        n = static_cast<std::uint32_t>(_nodes.size());
        _nodes.push_back({qubit, npos, npos});
    }
    _where[id] = n;
    linkFront(n);
    return false;
}

bool
QubitCache::contains(circuit::QubitId qubit) const
{
    return qubit.value() < _where.size() &&
           _where[qubit.value()] != npos;
}

std::vector<circuit::QubitId>
QubitCache::residents() const
{
    std::vector<circuit::QubitId> out;
    out.reserve(_nodes.size());
    for (auto n = _head; n != npos; n = _nodes[n].next)
        out.push_back(_nodes[n].qubit);
    return out;
}

CacheState::CacheState(std::size_t capacity,
                       std::vector<bool> cacheable)
    : _cache(capacity), _cacheable(std::move(cacheable))
{
}

std::vector<circuit::QubitId>
CacheState::missingOperands(const circuit::Instruction &inst) const
{
    std::vector<circuit::QubitId> missing;
    missingOperandsInto(inst, missing);
    return missing;
}

void
CacheState::missingOperandsInto(
    const circuit::Instruction &inst,
    std::vector<circuit::QubitId> &out) const
{
    out.clear();
    for (const auto &q : inst.operands())
        if (isCacheable(q) && !_cache.contains(q))
            out.push_back(q);
}

std::vector<circuit::QubitId>
CacheState::access(const circuit::Instruction &inst)
{
    std::vector<circuit::QubitId> evicted;
    accessInto(inst, evicted);
    return evicted;
}

void
CacheState::accessInto(const circuit::Instruction &inst,
                       std::vector<circuit::QubitId> &evicted)
{
    evicted.clear();
    for (const auto &q : inst.operands()) {
        if (!isCacheable(q))
            continue;
        ++_accesses;
        if (_cache.touch(q, &evicted))
            ++_hits;
        else
            ++_misses;
    }
}

void
CacheState::resetCounters()
{
    _accesses = 0;
    _hits = 0;
    _misses = 0;
}

namespace {

/** Issue one instruction through the state, recording the order. */
void
issue(const circuit::Instruction &inst, CacheState &state,
      CacheSimResult &result, std::uint32_t index)
{
    state.access(inst);
    result.issue_order.push_back(index);
}

void
runInOrder(const circuit::Program &program, CacheState &state,
           CacheSimResult &result)
{
    const auto &insts = program.instructions();
    for (std::uint32_t i = 0; i < insts.size(); ++i)
        issue(insts[i], state, result, i);
}

void
runOptimized(const circuit::Program &program, CacheState &state,
             CacheSimResult &result)
{
    const auto &insts = program.instructions();
    const circuit::DependencyGraph dag(program);
    const auto m = static_cast<std::uint32_t>(insts.size());

    std::vector<int> remaining(m);
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < m; ++i) {
        remaining[i] = dag.inDegree(i);
        if (remaining[i] == 0)
            ready.push_back(i);
    }

    std::uint32_t issued = 0;
    while (issued < m) {
        if (ready.empty())
            qmh_panic("cache sim deadlock: ", m - issued,
                      " instructions blocked");
        // Greedy selection: most operands already cached; ties go to
        // the oldest instruction so progress matches program order.
        std::size_t best_pos = 0;
        int best_cached = -1;
        std::uint32_t best_index = 0;
        for (std::size_t pos = 0; pos < ready.size(); ++pos) {
            const auto idx = ready[pos];
            int cached = 0;
            int relevant = 0;
            for (const auto &q : insts[idx].operands()) {
                if (!state.isCacheable(q))
                    continue;
                ++relevant;
                cached += state.resident(q) ? 1 : 0;
            }
            // Normalize by arity: an instruction with all cacheable
            // operands resident beats one with some missing.
            const int missing = relevant - cached;
            const int score = 1000 * (missing == 0) + cached * 10 -
                              missing;
            if (best_cached < 0 || score > best_cached ||
                (score == best_cached && idx < best_index)) {
                best_cached = score;
                best_pos = pos;
                best_index = idx;
            }
        }

        const auto idx = ready[best_pos];
        ready[best_pos] = ready.back();
        ready.pop_back();
        issue(insts[idx], state, result, idx);
        ++issued;
        for (const auto s : dag.successors(idx)) {
            if (--remaining[s] == 0)
                ready.push_back(s);
        }
    }
}

} // namespace

CacheSimResult
simulateCache(const circuit::Program &program, std::size_t capacity,
              FetchPolicy policy, bool warm_start,
              const std::vector<bool> &cacheable)
{
    if (!cacheable.empty() &&
        cacheable.size() != static_cast<std::size_t>(program.qubitCount()))
        qmh_fatal("simulateCache: cacheable mask size ", cacheable.size(),
                  " != qubit count ", program.qubitCount());
    CacheState state(capacity, cacheable);
    CacheSimResult result;
    result.policy = policy;
    result.capacity = capacity;

    for (int pass = warm_start ? 0 : 1; pass < 2; ++pass) {
        state.resetCounters();
        result.issue_order.clear();
        if (policy == FetchPolicy::InOrder)
            runInOrder(program, state, result);
        else
            runOptimized(program, state, result);
    }
    result.accesses = state.accesses();
    result.hits = state.hits();
    result.misses = state.misses();
    result.evictions = state.evictions();
    return result;
}

} // namespace cache
} // namespace qmh
