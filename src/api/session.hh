/**
 * @file
 * Job-oriented experiment execution: streaming, cancellable sweeps.
 *
 * Where runSpecSweep() blocks until the last point lands, a Session
 * turns a sweep into a job: submit() validates the specs up front
 * (typed Outcome errors, never a panic for caller mistakes) and
 * returns a JobHandle whose points fan across the worker pool while
 * the caller observes them:
 *
 *  - progress() — points done / total, monotonic;
 *  - nextRow()/pollRow() — completed rows stream out in index order
 *    while later points are still running;
 *  - cancel() — cooperative: in-flight points finish, unclaimed
 *    points are skipped;
 *  - wait() — blocks for retirement and returns the result table.
 *
 * Determinism contract: each point's Random stream derives from
 * (base seed, index) exactly as in runSpecSweep, so the *contiguous
 * completed prefix* of rows — which is all a cancelled job returns —
 * is bit-identical to the same prefix of an uncancelled single-thread
 * run. How far the prefix extends past the cancellation point depends
 * on scheduling; the content of row i never does.
 *
 * Jobs share the session's pool and retire independently, but the
 * pool's queue is FIFO: a job submits up to threadCount() claim-loop
 * tasks, so a later job's tasks queue behind an earlier unfinished
 * job's (cancel() frees the pool quickly when the earlier job is
 * obsolete), and a ThreadPool::wait() on a shared runner waits for
 * every queued task, not one job's. A Session cancels its unfinished
 * jobs on destruction; handles outliving the session see a cancelled
 * job.
 */

#ifndef QMH_API_SESSION_HH
#define QMH_API_SESSION_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "api/experiment.hh"
#include "api/outcome.hh"
#include "sweep/sweep.hh"

namespace qmh {
namespace api {

namespace detail {
struct JobState;
} // namespace detail

/** Snapshot of a job's execution state (all counters monotonic). */
struct JobProgress
{
    std::size_t done = 0;       ///< points completed
    std::size_t failed = 0;     ///< points that ran but failed
    std::size_t skipped = 0;    ///< points skipped by cancellation
    std::size_t total = 0;      ///< points submitted
    std::size_t streamable = 0; ///< contiguous completed prefix length
    bool cancel_requested = false;
    bool finished = false;      ///< all retired (done+failed+skipped)
};

/** Final outcome of a job: the completed-prefix table plus counters. */
struct JobResult
{
    /** Kind columns plus a trailing "seed"; rows [0, completed). */
    sweep::ResultTable table{{"spec", "seed"}};
    std::size_t completed = 0;  ///< rows in the table (prefix length)
    std::size_t executed = 0;   ///< points run, failed included
    std::size_t skipped = 0;    ///< points never run
    bool cancelled = false;
    /** First execution failure; also cancels the remaining points. */
    std::optional<Error> failure;
};

/** Non-blocking row-poll states. */
enum class RowPoll {
    Ready,    ///< a row was produced
    Pending,  ///< the next in-order row has not completed yet
    End       ///< no further row will become available
};

/**
 * Shared handle to one submitted job. Copies address the same job and
 * share one streaming cursor; every method is thread-safe.
 */
class JobHandle
{
  public:
    /** Column labels of the result table (trailing "seed" included). */
    const std::vector<std::string> &columns() const;

    /** Points submitted. */
    std::size_t totalPoints() const;

    JobProgress progress() const;

    /**
     * Request cooperative cancellation: points not yet claimed by a
     * worker are skipped, in-flight points run to completion. Safe to
     * call repeatedly and after retirement.
     */
    void cancel();

    /**
     * Next completed row in index order; blocks until it is available
     * or no further row can become one. nullopt = end of stream (all
     * streamed, or the prefix ended at a cancelled/failed point).
     */
    std::optional<std::vector<sweep::Cell>> nextRow();

    /** Non-blocking nextRow(); fills @p row only when Ready. */
    RowPoll pollRow(std::vector<sweep::Cell> &row);

    /**
     * Block until every point has retired, then return the result.
     * Idempotent: the streaming cursor is not consumed and repeated
     * calls return the same table.
     */
    JobResult wait();

  private:
    friend class Session;
    explicit JobHandle(std::shared_ptr<detail::JobState> state)
        : _state(std::move(state))
    {
    }

    std::shared_ptr<detail::JobState> _state;
};

/** Per-submission knobs. */
struct SubmitOptions
{
    /** Base seed for pointSeed(seed, index); session's by default. */
    std::optional<std::uint64_t> base_seed;
    /**
     * Explicit per-point seeds (e.g. opt::specSeed streams). Must be
     * empty or exactly one per spec; overrides base_seed derivation.
     */
    std::vector<std::uint64_t> seeds;
    /**
     * Called after each point retires (complete, failed or skipped),
     * from the worker thread that retired it, outside the job lock.
     * An event loop hangs its wakeup here so it can poll rows only
     * when there is something new, instead of spinning. Must be
     * cheap, non-blocking, and must not touch the job handle. Not
     * invoked for an empty submission (it is born finished).
     */
    std::function<void()> on_retire;
};

/** Owns (or borrows) a worker pool and runs jobs on it. */
class Session
{
  public:
    /** Own a pool built from @p options. */
    explicit Session(sweep::SweepOptions options = {});

    /** Share @p runner's pool and base seed; @p runner must outlive
     *  every task of every job submitted here. */
    explicit Session(sweep::SweepRunner &runner);

    /** Cancels unfinished jobs (and, when owning, drains the pool). */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    unsigned threadCount() const;
    std::uint64_t baseSeed() const { return _base_seed; }

    /**
     * Validate and start a sweep over @p specs. Typed errors for
     * caller mistakes: InvalidSpec (with one detail per offending
     * spec), MixedKinds, BadSeeds. An empty spec list is a valid job
     * that is already finished. Never panics on bad input.
     */
    [[nodiscard]] Outcome<JobHandle>
    submit(const std::vector<ExperimentSpec> &specs,
           SubmitOptions options = {});

    /**
     * Same contract over pre-built experiments (custom Experiment
     * subclasses included). Each must validate and all must share one
     * column schema; a run() that throws or returns the wrong row
     * width retires the job with an ExecutionFailed failure.
     */
    [[nodiscard]] Outcome<JobHandle>
    submit(std::vector<std::unique_ptr<Experiment>> experiments,
           SubmitOptions options = {});

  private:
    /** Seed check + job start over already-validated experiments. */
    Outcome<JobHandle>
    startJob(std::vector<std::unique_ptr<Experiment>> experiments,
             SubmitOptions options);

    std::unique_ptr<sweep::SweepRunner> _owned;
    sweep::ThreadPool *_pool;
    std::uint64_t _base_seed;

    std::mutex _jobs_mutex;
    std::vector<std::weak_ptr<detail::JobState>> _jobs;
};

} // namespace api
} // namespace qmh

#endif // QMH_API_SESSION_HH
