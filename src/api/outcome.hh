/**
 * @file
 * Typed results for the recoverable edge of the qmh::api surface.
 *
 * The facade distinguishes two failure classes, mirroring logging.hh:
 * internal invariant violations stay qmh_panic (a simulator bug must
 * abort loudly), but *caller* mistakes — an out-of-range spec, a
 * mixed-kind sweep, a malformed service request — are data, not
 * crashes. Outcome<T> carries either the value or a structured Error
 * (a stable machine-readable code, a one-line message and per-item
 * details), so a CLI can print diagnostics, a service can emit an
 * error record and keep serving, and a test can assert on the code.
 */

#ifndef QMH_API_OUTCOME_HH
#define QMH_API_OUTCOME_HH

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/logging.hh"

namespace qmh {
namespace api {

/** Stable machine-readable error categories (service wire codes). */
enum class ErrorCode {
    BadRequest,      ///< malformed request (JSON, missing fields)
    InvalidSpec,     ///< a spec failed Experiment::validate()
    MixedKinds,      ///< specs of different kinds in one submission
    BadSeeds,        ///< explicit seed list does not match the specs
    ExecutionFailed, ///< an experiment threw while running
    Unavailable      ///< transport/capacity: the server refused entry
};

/** Wire name of @p code, e.g. "invalid_spec". */
inline const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadRequest:      return "bad_request";
      case ErrorCode::InvalidSpec:     return "invalid_spec";
      case ErrorCode::MixedKinds:      return "mixed_kinds";
      case ErrorCode::BadSeeds:        return "bad_seeds";
      case ErrorCode::ExecutionFailed: return "execution_failed";
      case ErrorCode::Unavailable:     return "unavailable";
    }
    // qmh-lint: allow(typed-errors): exhaustive-switch guard — an out-of-range enum is memory corruption, not a request failure
    qmh_panic("errorCodeName: bad ErrorCode ", static_cast<int>(code));
}

/** One recoverable failure: code, summary, per-item diagnostics. */
struct Error
{
    ErrorCode code = ErrorCode::BadRequest;
    /** One-line summary, e.g. "2 of 5 specs failed validation". */
    std::string message;
    /** Individual diagnostics (one per offending spec/field). */
    std::vector<std::string> details;

    /** Message plus every detail, "; "-joined, for logs and panics. */
    std::string
    describe() const
    {
        std::string text = message;
        for (const auto &detail : details) {
            text += "; ";
            text += detail;
        }
        return text;
    }
};

/**
 * Either a T or an Error. value()/error() panic when the alternative
 * is not held — check ok() first; accessing the wrong side is a
 * caller bug, not a recoverable condition.
 *
 * The class is [[nodiscard]]: silently dropping an Outcome drops the
 * failure with it, so the compiler flags every bare-statement call of
 * an Outcome-returning function (qmh_lint's unchecked-outcome rule is
 * the tree-wide twin of this attribute).
 */
template <typename T>
class [[nodiscard]] Outcome
{
  public:
    Outcome(T value) : _state(std::in_place_index<0>, std::move(value))
    {
    }

    Outcome(Error error)
        : _state(std::in_place_index<1>, std::move(error))
    {
    }

    bool ok() const { return _state.index() == 0; }
    explicit operator bool() const { return ok(); }

    T &
    value() &
    {
        requireOk();
        return std::get<0>(_state);
    }

    const T &
    value() const &
    {
        requireOk();
        return std::get<0>(_state);
    }

    T &&
    value() &&
    {
        requireOk();
        return std::get<0>(std::move(_state));
    }

    const Error &
    error() const
    {
        if (ok())
            // qmh-lint: allow(typed-errors): documented contract — reading the wrong alternative is a caller bug, not a recoverable failure
            qmh_panic("Outcome::error() on a success value");
        return std::get<1>(_state);
    }

  private:
    void
    requireOk() const
    {
        if (!ok())
            // qmh-lint: allow(typed-errors): documented contract — reading the wrong alternative is a caller bug, not a recoverable failure
            qmh_panic("Outcome::value() on an error: ",
                      std::get<1>(_state).describe());
    }

    std::variant<T, Error> _state;
};

} // namespace api
} // namespace qmh

#endif // QMH_API_OUTCOME_HH
