/**
 * @file
 * JSONL request/response protocol over a Session: the servable
 * backend behind examples/qmh_service.cpp.
 *
 * One request per input line, one JSON record per output line:
 *
 *   -> {"op":"sweep","id":"r1","specs":["experiment=cache n=64",
 *       "experiment=cache n=128"],"seed":7,"limit":10}
 *   <- {"type":"accepted","id":"r1","total":2,"columns":[...]}
 *   <- {"type":"row","id":"r1","index":0,"cells":{...}}
 *   <- {"type":"row","id":"r1","index":1,"cells":{...}}
 *   <- {"type":"done","id":"r1","rows":2,"total":2,
 *       "cancelled":false}
 *
 * Rows stream in index order as points complete, so a slow sweep
 * produces output long before it finishes. "limit" caps the streamed
 * rows: once reached the job is cancelled cooperatively and the done
 * record reports "cancelled":true. Any caller mistake — malformed
 * JSON, unknown op, a spec that fails validation — emits a structured
 * error record ({"type":"error","id":...,"code":...,"message":...,
 * "details":[...]}) and the loop keeps serving; the process never
 * aborts on bad input.
 *
 * Framing rule: a request that was *accepted* always terminates with
 * a "done" record (an execution failure emits "error" and then
 * "done"); a request rejected before acceptance terminates with its
 * "error" record alone. Clients should treat "done", and "error"
 * not preceded by a matching "accepted", as end-of-request.
 *
 * Determinism: "seed" pins the job's base seed, so two identical
 * requests stream byte-identical row records regardless of thread
 * count. "seed_mode" picks how per-point streams derive from it:
 *
 *  - "index" (default) — sweep::pointSeed(base, position in the
 *    request), the historical contract: a row depends on where it
 *    sits in the spec list;
 *  - "spec" — opt::specSeed(base, canonical spec string): a row is a
 *    function of the spec alone, independent of list position, batch
 *    composition, or which client asked. This is the mode the
 *    experiment server's shared result cache memoizes (an
 *    index-seeded row is not reusable across requests), and it makes
 *    a server response byte-identical to a stdio run of the same
 *    request line.
 *
 * A {"op":"shutdown","id":...} request answers with an empty "done"
 * record and ends the serve loop — the line-mode twin of EOF, so a
 * remote client can end a server session the same way closing stdin
 * ends a stdio one.
 *
 * The record writers (recordAccepted/recordRow/recordError/
 * recordDone) are exposed so the socket server (src/server/) emits
 * bytes through the exact same formatters as the stdio loop; the two
 * transports cannot drift apart.
 */

#ifndef QMH_API_SERVICE_HH
#define QMH_API_SERVICE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "api/outcome.hh"
#include "api/session.hh"
#include "api/spec.hh"
#include "common/json.hh"

namespace qmh {
namespace api {

/** Operations the protocol serves. */
enum class ServiceOp {
    Sweep,    ///< run specs, stream rows
    Shutdown  ///< end the serve loop (line-mode EOF)
};

/** Per-point seed derivation for a sweep request. */
enum class SeedMode {
    Index,  ///< sweep::pointSeed(base, request position) — default
    Spec    ///< opt::specSeed(base, canonical spec) — cacheable rows
};

/** One decoded request. */
struct ServiceRequest
{
    ServiceOp op = ServiceOp::Sweep;
    std::string id;                     ///< echoed in every record
    std::vector<ExperimentSpec> specs;  ///< points, in request order
    std::optional<std::uint64_t> seed;  ///< base-seed override
    SeedMode seed_mode = SeedMode::Index;
    std::size_t limit = 0;              ///< max rows streamed; 0 = all
};

/**
 * Decode one request line. Typed errors (never a panic): BadRequest
 * for malformed JSON / wrong field shapes / unknown op, InvalidSpec
 * (one detail per diagnostic) for specs that fail to parse. Spec
 * *validation* (ranges, workload existence) happens at submit time.
 */
[[nodiscard]] Outcome<ServiceRequest>
parseServiceRequest(const std::string &line);

/** parseServiceRequest over an already-parsed JSON document (the
 *  serve loop parses each line exactly once this way). */
[[nodiscard]] Outcome<ServiceRequest>
decodeServiceRequest(const json::Value &root);

/** Statistics of one runService loop. */
struct ServiceStats
{
    std::size_t requests = 0;  ///< well-formed requests served
    std::size_t errors = 0;    ///< error records emitted (any source)
    std::size_t rows = 0;      ///< row records streamed
};

/**
 * The wire records, one formatter per type, newline excluded. Every
 * byte a transport emits goes through these four functions — the
 * stdio loop below and the socket server share them, which is what
 * the cross-transport byte-identity tests pin.
 */
std::string recordAccepted(const std::string &id, std::size_t total,
                           const std::vector<std::string> &columns);
std::string recordRow(const std::string &id, std::size_t index,
                      const std::vector<std::string> &columns,
                      const std::vector<sweep::Cell> &cells);
std::string recordError(const std::string &id, const Error &error);
std::string recordDone(const std::string &id, std::size_t rows,
                       std::size_t total, bool cancelled);

/**
 * The explicit per-point seeds of @p request under its seed mode:
 * empty for Index (the session derives pointSeed itself), one
 * opt::specSeed per spec for Spec. @p session_base is used when the
 * request carries no seed override.
 */
std::vector<std::uint64_t>
requestSeeds(const ServiceRequest &request,
             std::uint64_t session_base);

/**
 * Run one request on @p session, streaming records to @p out and
 * accumulating row/error record counts into @p stats.
 */
void serveRequest(Session &session, const ServiceRequest &request,
                  std::ostream &out, ServiceStats &stats);

/**
 * Serve JSONL requests from @p in until EOF (blank lines ignored),
 * writing records to @p out. Errors are records, not exits.
 */
ServiceStats runService(Session &session, std::istream &in,
                        std::ostream &out);

} // namespace api
} // namespace qmh

#endif // QMH_API_SERVICE_HH
