/**
 * @file
 * JSONL request/response protocol over a Session: the servable
 * backend behind examples/qmh_service.cpp.
 *
 * One request per input line, one JSON record per output line:
 *
 *   -> {"op":"sweep","id":"r1","specs":["experiment=cache n=64",
 *       "experiment=cache n=128"],"seed":7,"limit":10}
 *   <- {"type":"accepted","id":"r1","total":2,"columns":[...]}
 *   <- {"type":"row","id":"r1","index":0,"cells":{...}}
 *   <- {"type":"row","id":"r1","index":1,"cells":{...}}
 *   <- {"type":"done","id":"r1","rows":2,"total":2,
 *       "cancelled":false}
 *
 * Rows stream in index order as points complete, so a slow sweep
 * produces output long before it finishes. "limit" caps the streamed
 * rows: once reached the job is cancelled cooperatively and the done
 * record reports "cancelled":true. Any caller mistake — malformed
 * JSON, unknown op, a spec that fails validation — emits a structured
 * error record ({"type":"error","id":...,"code":...,"message":...,
 * "details":[...]}) and the loop keeps serving; the process never
 * aborts on bad input.
 *
 * Framing rule: a request that was *accepted* always terminates with
 * a "done" record (an execution failure emits "error" and then
 * "done"); a request rejected before acceptance terminates with its
 * "error" record alone. Clients should treat "done", and "error"
 * not preceded by a matching "accepted", as end-of-request.
 *
 * Determinism: "seed" pins the job's base seed, so two identical
 * requests stream byte-identical row records regardless of thread
 * count.
 */

#ifndef QMH_API_SERVICE_HH
#define QMH_API_SERVICE_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "api/outcome.hh"
#include "api/session.hh"
#include "api/spec.hh"
#include "common/json.hh"

namespace qmh {
namespace api {

/** One decoded sweep request. */
struct ServiceRequest
{
    std::string id;                     ///< echoed in every record
    std::vector<ExperimentSpec> specs;  ///< points, in request order
    std::optional<std::uint64_t> seed;  ///< base-seed override
    std::size_t limit = 0;              ///< max rows streamed; 0 = all
};

/**
 * Decode one request line. Typed errors (never a panic): BadRequest
 * for malformed JSON / wrong field shapes / unknown op, InvalidSpec
 * (one detail per diagnostic) for specs that fail to parse. Spec
 * *validation* (ranges, workload existence) happens at submit time.
 */
Outcome<ServiceRequest> parseServiceRequest(const std::string &line);

/** parseServiceRequest over an already-parsed JSON document (the
 *  serve loop parses each line exactly once this way). */
Outcome<ServiceRequest> decodeServiceRequest(const json::Value &root);

/** Statistics of one runService loop. */
struct ServiceStats
{
    std::size_t requests = 0;  ///< well-formed requests served
    std::size_t errors = 0;    ///< error records emitted (any source)
    std::size_t rows = 0;      ///< row records streamed
};

/**
 * Run one request on @p session, streaming records to @p out and
 * accumulating row/error record counts into @p stats.
 */
void serveRequest(Session &session, const ServiceRequest &request,
                  std::ostream &out, ServiceStats &stats);

/**
 * Serve JSONL requests from @p in until EOF (blank lines ignored),
 * writing records to @p out. Errors are records, not exits.
 */
ServiceStats runService(Session &session, std::istream &in,
                        std::ostream &out);

} // namespace api
} // namespace qmh

#endif // QMH_API_SERVICE_HH
