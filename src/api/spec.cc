#include "spec.hh"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace qmh {
namespace api {

namespace {

/** Field descriptor: one `key=value` handled uniformly. */
struct FieldDef
{
    const char *key;
    const char *help;
    SpecKeyKind kind;
    std::string (*get)(const ExperimentSpec &);
    /** Returns "" on success, a diagnostic otherwise. */
    std::string (*set)(ExperimentSpec &, std::string_view);
};

std::string
badValue(const char *key, std::string_view value, const char *expect)
{
    return std::string(key) + "=" + std::string(value) + ": expected " +
           expect;
}

const char *
policyName(cache::FetchPolicy policy)
{
    return policy == cache::FetchPolicy::InOrder ? "inorder"
                                                 : "optimized";
}

const char *
codeSpecName(ecc::CodeKind kind)
{
    return kind == ecc::CodeKind::Steane713 ? "steane" : "bacon-shor";
}

// Setter/getter builders for the common field shapes. Each returns a
// captureless lambda convertible to the function pointers above.

#define QMH_INT_FIELD(member, lo, hi)                                   \
    [](const ExperimentSpec &s) {                                       \
        return std::to_string(s.member);                                \
    },                                                                  \
    [](ExperimentSpec &s, std::string_view v) -> std::string {          \
        const auto parsed = parseInt(v);                                \
        if (!parsed || *parsed < (lo) || *parsed > (hi))                \
            return badValue(#member, v,                                 \
                            "integer in [" #lo ", " #hi "]");           \
        s.member = static_cast<decltype(s.member)>(*parsed);            \
        return "";                                                      \
    }

#define QMH_U64_FIELD(member)                                           \
    [](const ExperimentSpec &s) {                                       \
        return std::to_string(s.member);                                \
    },                                                                  \
    [](ExperimentSpec &s, std::string_view v) -> std::string {          \
        const auto parsed = parseUInt(v);                               \
        if (!parsed)                                                    \
            return badValue(#member, v, "unsigned integer");            \
        s.member = *parsed;                                             \
        return "";                                                      \
    }

// Non-finite values are rejected even though parseDouble accepts
// them: NaN breaks the parse(print(s)) == s contract (NaN != NaN),
// and downstream consumers key result caches on the canonical spec
// string and cast spec reals to integers (capacity sizing), both of
// which inf/nan would silently corrupt.
#define QMH_DOUBLE_FIELD(member)                                        \
    [](const ExperimentSpec &s) { return formatDouble(s.member); },     \
    [](ExperimentSpec &s, std::string_view v) -> std::string {          \
        const auto parsed = parseDouble(v);                             \
        if (!parsed || !std::isfinite(*parsed))                         \
            return badValue(#member, v, "finite real number");          \
        s.member = *parsed;                                             \
        return "";                                                      \
    }

#define QMH_BOOL_FIELD(member)                                          \
    [](const ExperimentSpec &s) {                                       \
        return std::string(s.member ? "1" : "0");                       \
    },                                                                  \
    [](ExperimentSpec &s, std::string_view v) -> std::string {          \
        if (v == "1")                                                   \
            s.member = true;                                            \
        else if (v == "0")                                              \
            s.member = false;                                           \
        else                                                            \
            return badValue(#member, v, "0 or 1");                      \
        return "";                                                      \
    }

const FieldDef field_defs[] = {
    {"experiment",
     "hierarchy | cache | bandwidth | montecarlo | trace",
     SpecKeyKind::Text,
     [](const ExperimentSpec &s) { return std::string(kindName(s.kind)); },
     [](ExperimentSpec &s, std::string_view v) -> std::string {
         const auto kind = parseKind(v);
         if (!kind)
             return unknownNameDiagnostic("experiment", v,
                                          experimentKindNames());
         s.kind = *kind;
         return "";
     }},
    {"machine", "technology preset: now | future", SpecKeyKind::Text,
     [](const ExperimentSpec &s) { return s.machine; },
     [](ExperimentSpec &s, std::string_view v) -> std::string {
         if (v != "now" && v != "future")
             return badValue("machine", v, "now | future");
         s.machine = std::string(v);
         return "";
     }},
    {"code", "error-correcting code: steane | bacon-shor",
     SpecKeyKind::Text,
     [](const ExperimentSpec &s) {
         return std::string(codeSpecName(s.code));
     },
     [](ExperimentSpec &s, std::string_view v) -> std::string {
         if (v == "steane")
             s.code = ecc::CodeKind::Steane713;
         else if (v == "bacon-shor")
             s.code = ecc::CodeKind::BaconShor913;
         else
             return badValue("code", v, "steane | bacon-shor");
         return "";
     }},
    {"workload", "named generator (see api::workloadRegistry)",
     SpecKeyKind::Text,
     [](const ExperimentSpec &s) { return s.workload; },
     [](ExperimentSpec &s, std::string_view v) -> std::string {
         if (v.empty())
             return badValue("workload", v, "a generator name");
         s.workload = std::string(v);
         return "";
     }},
    {"n", "operand / register width", SpecKeyKind::Int,
     QMH_INT_FIELD(n, 1, 65536)},
    {"gates", "gate count of the random workload", SpecKeyKind::Int,
     QMH_INT_FIELD(gates, 1, 10000000)},
    {"reps", "repeated additions of the modexp workload",
     SpecKeyKind::Int, QMH_INT_FIELD(reps, 1, 10000)},
    {"transfers", "parallel code-transfer channels", SpecKeyKind::Int,
     QMH_INT_FIELD(transfers, 1, 100000)},
    {"blocks", "compute blocks", SpecKeyKind::Int,
     QMH_INT_FIELD(blocks, 1, 1000000)},
    {"mem_banks", "level-2 memory banks (address % banks)",
     SpecKeyKind::Int, QMH_INT_FIELD(mem_banks, 1, 4096)},
    {"mem_ports", "concurrent memory requests in service",
     SpecKeyKind::Int, QMH_INT_FIELD(mem_ports, 1, 4096)},
    {"mem_buffer", "bounded request-buffer depth per bank",
     SpecKeyKind::Int, QMH_INT_FIELD(mem_buffer, 1, 65536)},
    {"cycles_per_line", "extra bank service ticks per line",
     SpecKeyKind::Int, QMH_INT_FIELD(cycles_per_line, 0, 1000000000)},
    {"adders", "additions in the hierarchy stream", SpecKeyKind::UInt,
     QMH_U64_FIELD(adders)},
    {"l1_fraction", "share of additions routed to level 1",
     SpecKeyKind::Real, QMH_DOUBLE_FIELD(l1_fraction)},
    {"chain_fraction", "serially dependent share of additions",
     SpecKeyKind::Real, QMH_DOUBLE_FIELD(chain_fraction)},
    {"capacity", "cache capacity in qubits (0 = capacity_x * PE)",
     SpecKeyKind::UInt, QMH_U64_FIELD(capacity)},
    {"capacity_x", "auto-capacity multiplier of the PE count",
     SpecKeyKind::Real, QMH_DOUBLE_FIELD(capacity_x)},
    {"policy", "cache fetch policy: inorder | optimized",
     SpecKeyKind::Text,
     [](const ExperimentSpec &s) {
         return std::string(policyName(s.policy));
     },
     [](ExperimentSpec &s, std::string_view v) -> std::string {
         if (v == "inorder")
             s.policy = cache::FetchPolicy::InOrder;
         else if (v == "optimized")
             s.policy = cache::FetchPolicy::OptimizedLookahead;
         else
             return badValue("policy", v, "inorder | optimized");
         return "";
     }},
    {"warm", "warm-start the cache (0 | 1)", SpecKeyKind::Bool,
     QMH_BOOL_FIELD(warm)},
    {"mask_data", "cache only the data registers (0 | 1)",
     SpecKeyKind::Bool, QMH_BOOL_FIELD(mask_data)},
    {"level", "concatenation level", SpecKeyKind::Int,
     QMH_INT_FIELD(level, 1, 8)},
    {"utilization", "busy-block fraction (bandwidth demand)",
     SpecKeyKind::Real, QMH_DOUBLE_FIELD(utilization)},
    {"p0", "physical error rate (montecarlo)", SpecKeyKind::Real,
     QMH_DOUBLE_FIELD(p0)},
    {"trials", "Monte-Carlo trials", SpecKeyKind::UInt,
     QMH_U64_FIELD(trials)},
    {"noise_factor", "EC-circuit noise multiplier", SpecKeyKind::Real,
     QMH_DOUBLE_FIELD(noise_factor)},
};

#undef QMH_INT_FIELD
#undef QMH_U64_FIELD
#undef QMH_DOUBLE_FIELD
#undef QMH_BOOL_FIELD

const FieldDef *
findField(std::string_view key)
{
    for (const auto &field : field_defs)
        if (key == field.key)
            return &field;
    return nullptr;
}

} // namespace

const char *
kindName(ExperimentKind kind)
{
    switch (kind) {
      case ExperimentKind::Hierarchy:  return "hierarchy";
      case ExperimentKind::Cache:      return "cache";
      case ExperimentKind::Bandwidth:  return "bandwidth";
      case ExperimentKind::MonteCarlo: return "montecarlo";
      case ExperimentKind::Trace:      return "trace";
    }
    // qmh-lint: allow(typed-errors): exhaustive-switch guard — an out-of-range enum is memory corruption, not a request failure
    qmh_panic("kindName: bad ExperimentKind ",
              static_cast<int>(kind));
}

std::optional<ExperimentKind>
parseKind(std::string_view name)
{
    if (name == "hierarchy")
        return ExperimentKind::Hierarchy;
    if (name == "cache")
        return ExperimentKind::Cache;
    if (name == "bandwidth")
        return ExperimentKind::Bandwidth;
    if (name == "montecarlo")
        return ExperimentKind::MonteCarlo;
    if (name == "trace")
        return ExperimentKind::Trace;
    return std::nullopt;
}

const std::vector<std::string> &
experimentKindNames()
{
    static const std::vector<std::string> names = {
        "hierarchy", "cache", "bandwidth", "montecarlo", "trace"};
    return names;
}

namespace {

/** Levenshtein distance, for did-you-mean suggestions. */
std::size_t
editDistance(std::string_view a, std::string_view b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diagonal = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const auto previous = row[j];
            const std::size_t substitute =
                diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
            diagonal = previous;
        }
    }
    return row[b.size()];
}

} // namespace

std::string
unknownNameDiagnostic(std::string_view what, std::string_view name,
                      const std::vector<std::string> &valid)
{
    std::string message = "unknown " + std::string(what) + " '" +
                          std::string(name) + "'; valid " +
                          std::string(what) + " names: ";
    for (std::size_t i = 0; i < valid.size(); ++i) {
        if (i)
            message += ", ";
        message += valid[i];
    }
    const std::string *nearest = nullptr;
    std::size_t best = std::string::npos;
    for (const auto &candidate : valid) {
        const auto distance = editDistance(name, candidate);
        if (distance < best) {
            best = distance;
            nearest = &candidate;
        }
    }
    // Only suggest when the typo is plausibly a typo: within three
    // edits and closer than rewriting the whole name.
    if (nearest && best <= 3 && best < nearest->size())
        message += " (did you mean '" + *nearest + "'?)";
    return message;
}

iontrap::Params
ExperimentSpec::params() const
{
    if (machine == "now")
        return iontrap::Params::currentTechnology();
    if (machine == "future")
        return iontrap::Params::future();
    // qmh-lint: allow(typed-errors): unreachable after parse/specSet validation — the machine field only ever holds a registered preset
    qmh_panic("ExperimentSpec: unknown machine preset '", machine, "'");
}

const std::vector<std::string> &
specKeys()
{
    static const std::vector<std::string> keys = [] {
        std::vector<std::string> out;
        for (const auto &field : field_defs)
            out.emplace_back(field.key);
        return out;
    }();
    return keys;
}

const char *
specKeyHelp(std::string_view key)
{
    const auto *field = findField(key);
    return field ? field->help : nullptr;
}

std::optional<SpecKeyKind>
specKeyKind(std::string_view key)
{
    const auto *field = findField(key);
    if (!field)
        return std::nullopt;
    return field->kind;
}

std::optional<std::string>
specGet(const ExperimentSpec &spec, std::string_view key)
{
    const auto *field = findField(key);
    if (!field)
        return std::nullopt;
    return field->get(spec);
}

std::string
specSet(ExperimentSpec &spec, std::string_view key,
        std::string_view value)
{
    const auto *field = findField(key);
    if (!field)
        // The full key list plus a did-you-mean suggestion: a typoed
        // knob (mem_bank for mem_banks) fails with the fix in hand.
        return unknownNameDiagnostic("spec key", key, specKeys());
    return field->set(spec, value);
}

std::string
printSpec(const ExperimentSpec &spec)
{
    static const ExperimentSpec defaults;
    std::string out;
    for (const auto &field : field_defs) {
        const auto value = field.get(spec);
        if (std::string_view(field.key) != "experiment" &&
            value == field.get(defaults))
            continue;
        if (!out.empty())
            out += ' ';
        out += field.key;
        out += '=';
        out += value;
    }
    return out;
}

SpecParseResult
parseSpec(std::string_view text)
{
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos < text.size()) {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
        std::size_t end = pos;
        while (end < text.size() && text[end] != ' ' &&
               text[end] != '\t' && text[end] != '\n' &&
               text[end] != '\r')
            ++end;
        if (end > pos)
            tokens.emplace_back(text.substr(pos, end - pos));
        pos = end;
    }
    return parseSpecTokens(tokens);
}

SpecParseResult
parseSpecTokens(const std::vector<std::string> &tokens)
{
    SpecParseResult result;
    for (const auto &token : tokens) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            result.errors.push_back("'" + token +
                                    "' is not key=value");
            continue;
        }
        const auto error =
            specSet(result.spec, std::string_view(token).substr(0, eq),
                    std::string_view(token).substr(eq + 1));
        if (!error.empty())
            result.errors.push_back(error);
    }
    return result;
}

std::optional<std::int64_t>
parseInt(std::string_view text)
{
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size())
        return std::nullopt;
    return value;
}

std::optional<std::uint64_t>
parseUInt(std::string_view text)
{
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size())
        return std::nullopt;
    return value;
}

std::optional<double>
parseDouble(std::string_view text)
{
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc() || ptr != text.data() + text.size())
        return std::nullopt;
    return value;
}

std::string
formatDouble(double v)
{
    return formatDoubleShortest(v);
}

} // namespace api
} // namespace qmh
