/**
 * @file
 * Polymorphic experiment facade over the simulator families.
 *
 * makeExperiment() turns an ExperimentSpec into the matching
 * Experiment (hierarchy DES, cache simulator, bandwidth model,
 * error-correction Monte Carlo). The existing free functions
 * (cqla::runHierarchySim, cache::simulateCache, net::BandwidthModel,
 * ecc::EcMonteCarlo) stay the internal engines; this layer gives them
 * one contract — validate() -> diagnostics, run(Random&) -> one
 * result-table row — so every CLI, bench and sweep drives any of
 * them interchangeably.
 *
 * runSpecSweep() fans a list of specs across a sweep::SweepRunner
 * with the engine's determinism contract: each point's Random stream
 * derives from (base_seed, index), rows land by index, and the
 * emitted table is bit-identical on 1 or N threads.
 */

#ifndef QMH_API_EXPERIMENT_HH
#define QMH_API_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "api/outcome.hh"
#include "api/spec.hh"
#include "common/random.hh"
#include "sweep/emit.hh"
#include "sweep/sweep.hh"

namespace qmh {
namespace api {

/** One runnable experiment built from a spec. */
class Experiment
{
  public:
    virtual ~Experiment() = default;

    const ExperimentSpec &spec() const { return _spec; }

    /** Kind name, e.g. "hierarchy". */
    virtual std::string name() const = 0;

    /** Diagnostics for out-of-range or inconsistent fields; empty = ok. */
    virtual std::vector<std::string> validate() const = 0;

    /**
     * Column labels of the row run() produces. The first column is
     * always "spec" (the canonical spec string), so every emitted
     * table is self-describing and re-runnable.
     */
    virtual std::vector<std::string> columns() const = 0;

    /**
     * Execute once and return the row, aligned with columns(). Must
     * be safe to call concurrently from multiple threads (the engines
     * share no mutable state); all randomness comes from @p rng.
     */
    virtual std::vector<sweep::Cell> run(Random &rng) const = 0;

  protected:
    explicit Experiment(ExperimentSpec spec) : _spec(std::move(spec)) {}

    ExperimentSpec _spec;
};

/** Build the experiment for @p spec (any kind). Never null. */
std::unique_ptr<Experiment> makeExperiment(const ExperimentSpec &spec);

/**
 * The typed checks a runnable batch must pass: every experiment
 * validates (ErrorCode::InvalidSpec, one detail per diagnostic,
 * indexed so duplicate spec prints stay tellable apart) and all
 * share one column schema (ErrorCode::MixedKinds). The single
 * source of truth for Session::submit (both overloads) and
 * validateExperiments. nullopt = runnable.
 */
std::optional<Error> checkExperimentBatch(
    const std::vector<std::unique_ptr<Experiment>> &experiments);

/**
 * Build the experiments for a one-table sweep with typed errors
 * (makeExperiment per spec, then checkExperimentBatch). Shared by
 * Session::submit, runSpecSweep and the opt:: cached/adaptive
 * runners so their notion of "runnable batch" cannot drift apart.
 */
[[nodiscard]] Outcome<std::vector<std::unique_ptr<Experiment>>>
validateExperiments(const std::vector<ExperimentSpec> &specs);

/**
 * validateExperiments with the legacy contract: violations panic.
 * For recoverable diagnostics use validateExperiments (or submit
 * through an api::Session, which returns the typed error).
 */
std::vector<std::unique_ptr<Experiment>>
makeValidatedExperiments(const std::vector<ExperimentSpec> &specs);

/**
 * Run every spec across @p runner and emit one table (columns of the
 * specs' kind plus a trailing "seed" column with each point's derived
 * seed). All specs must validate and be of one kind; violations
 * panic — validate first (or Session::submit) for recoverable
 * diagnostics. Implemented as a blocking session job, so the table
 * is bit-identical to draining a Session submission of @p specs.
 */
sweep::ResultTable
runSpecSweep(sweep::SweepRunner &runner,
             const std::vector<ExperimentSpec> &specs);

/** Convenience overload: builds a runner from @p options. */
sweep::ResultTable
runSpecSweep(const std::vector<ExperimentSpec> &specs,
             const sweep::SweepOptions &options = {});

} // namespace api
} // namespace qmh

#endif // QMH_API_EXPERIMENT_HH
